"""Encrypted ML inference (PR 10): fitter, planner, and the e2e gate.

Three layers of guarantees:

* the Chebyshev fitter's reported ``max_error`` is an honest bound —
  re-measured here against the exact numpy reference on a fresh dense
  grid, and monotone non-increasing in degree;
* the level planner places **every** rescale (the model path hand-places
  none) and statically rejects undeployable depth/scale combinations
  with :class:`~repro.errors.ModelPlanError` diagnostics that name the
  layer and the failing budget;
* the end-to-end gate: encrypted and plaintext twins agree on the
  bundled iris data (>= 98% on the held-out split), and a compiled
  model admits into the serving layer as a vector tenant.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import ModelPlanError, ParameterError
from repro.ml import (
    AGREEMENT_THRESHOLD,
    DenseLayer,
    LevelPlanner,
    agreement,
    compile_model,
    fit_activation,
    load_iris,
    load_iris_split,
    logistic_regression,
    mlp,
    run_e2e,
)
from repro.ml.chebyshev import ACTIVATIONS

CTX_KW = dict(
    ring_degree=256, num_main=10, num_aux=7, dnum=2, seed=0,
    rotations=(1, 2),
)


@pytest.fixture(scope="module")
def cc():
    from repro import CkksContext

    return CkksContext(**CTX_KW)


@pytest.fixture(scope="module")
def split():
    return load_iris_split(seed=0)


# -- bundled dataset ---------------------------------------------------------

def test_iris_loads_and_splits():
    x, y = load_iris()
    assert x.shape == (150, 4) and y.shape == (150,)
    assert set(np.unique(y)) == {0, 1, 2}
    s = load_iris_split(seed=3)
    assert s.x_train.shape[0] + s.x_test.shape[0] == 150
    # standardized by train stats only
    assert np.allclose(s.x_train.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(s.x_train.std(axis=0), 1.0, atol=1e-9)
    # deterministic in the seed
    s2 = load_iris_split(seed=3)
    assert np.array_equal(s.x_test, s2.x_test)
    assert not np.array_equal(
        s.x_test, load_iris_split(seed=4).x_test
    )


# -- Chebyshev fitter --------------------------------------------------------

@pytest.mark.parametrize("name", ["sigmoid", "relu"])
@pytest.mark.parametrize("degree", [3, 5, 8])
def test_fit_max_error_bound_holds_on_fresh_grid(name, degree):
    """The reported max_error bounds the true error over the interval."""
    interval = (-4.0, 4.0)
    fit = fit_activation(name, degree, interval=interval)
    ref = ACTIVATIONS[name]
    # denser grid, different phase than the fitter's own measurement grid
    x = np.linspace(*interval, 7919)
    measured = float(np.max(np.abs(fit(x) - ref(x))))
    assert measured <= fit.max_error * 1.01 + 1e-12
    assert fit.max_error < 1.0
    assert np.allclose(fit.reference(x), ref(x))


@pytest.mark.parametrize("name", ["sigmoid", "relu"])
def test_fit_error_monotone_in_degree(name):
    errs = [
        fit_activation(name, d, interval=(-6.0, 6.0)).max_error
        for d in (2, 4, 8, 12)
    ]
    assert all(a >= b - 1e-12 for a, b in zip(errs, errs[1:]))
    # and the depth buys real accuracy, not noise
    assert errs[-1] < 0.5 * errs[0]


def test_fit_rejects_bad_requests():
    with pytest.raises(ParameterError):
        fit_activation("tanhh", 4)
    with pytest.raises(ParameterError):
        fit_activation("relu", 0)
    with pytest.raises(ParameterError):
        fit_activation("relu", 99)
    with pytest.raises(ParameterError):
        fit_activation("relu", 4, interval=(2.0, -2.0))


# -- level planner -----------------------------------------------------------

def test_model_path_places_every_rescale(cc, split):
    """Zero hand-placed rescales: the planner owns all of them."""
    y = (split.y_train == 2).astype(np.int64)
    model = logistic_regression(cc, split.x_train, y, degree=5)
    planned = model.placed_rescales
    in_plan = sum(
        1 for step in model.plan._steps if step.kind == "rescale"
    )
    assert planned > 0
    assert in_plan == planned
    assert model.report.ok


def test_planner_rejects_terminal_swap_scale(cc, split):
    """2^40 admits a rescaling cycle, but one that swaps terminal
    primes — undeployable on the prefix limb layout, said by name."""
    y = (split.y_train == 2).astype(np.int64)
    with pytest.raises(ModelPlanError, match="terminal-prime swaps"):
        logistic_regression(cc, split.x_train, y, degree=3, scale_bits=40)


def test_planner_rejects_cycleless_scale(cc, split):
    """2^41 admits no rescaling cycle at all: the other static path."""
    y = (split.y_train == 2).astype(np.int64)
    with pytest.raises(ModelPlanError, match="no rescaling cycle"):
        logistic_regression(cc, split.x_train, y, degree=3, scale_bits=41)


def test_depth_shortfall_names_layer_and_budget(split):
    """A chain too short for the activation fails statically, naming
    the layer and the rescale-level shortfall (mismatch_reason style)."""
    from repro import CkksContext

    shallow = CkksContext(
        ring_degree=256, num_main=4, num_aux=3, dnum=2, seed=0,
        rotations=(1, 2),
    )
    y = (split.y_train == 2).astype(np.int64)
    with pytest.raises(ModelPlanError) as ei:
        logistic_regression(shallow, split.x_train, y, degree=7)
    assert ei.value.layer == "logreg"
    msg = str(ei.value)
    assert "logreg" in msg
    assert "level" in msg or "budget" in msg or "scale" in msg


def test_layer_spans_cannot_nest(cc):
    planner = LevelPlanner(cc._tracer(), scale_bits=30)
    with planner.layer("outer"):
        with pytest.raises(ModelPlanError, match="cannot nest"):
            with planner.layer("inner"):
                pass


def test_compile_model_validates_shapes(cc):
    fit = fit_activation("relu", 3)
    with pytest.raises(ParameterError):
        compile_model(cc, [])
    with pytest.raises(ParameterError):
        DenseLayer("bad", np.zeros((2, 3)), np.zeros(2), fit)
    with pytest.raises(ParameterError):
        layers = [
            DenseLayer("a", np.eye(2), np.zeros(2), None),
            DenseLayer("b", np.eye(4), np.zeros(4), None),
        ]
        compile_model(cc, layers)


# -- end to end --------------------------------------------------------------

def test_e2e_agreement_gate(cc, split):
    """Encrypted vs plaintext twins agree on held-out iris rows."""
    y = (split.y_train == 2).astype(np.int64)
    y_test = (split.y_test == 2).astype(np.int64)
    model = logistic_regression(cc, split.x_train, y, degree=5)
    rows = split.x_test[:16]
    enc = model.classify(model.predict_encrypted(rows))
    plain = model.classify(model.predict_plain(rows))
    assert agreement(enc, plain) >= AGREEMENT_THRESHOLD
    assert agreement(enc, y_test[:16]) >= 0.75  # real accuracy, not chance


def test_mlp_end_to_end(cc, split):
    model = mlp(cc, split.x_train, split.y_train, degree=3)
    rows = split.x_test[:8]
    enc = model.classify(model.predict_encrypted(rows))
    plain = model.classify(model.predict_plain(rows))
    assert np.array_equal(enc, plain)
    assert model.output_level >= 1
    assert model.placed_rescales > 0


def test_run_e2e_artifact_shape(tmp_path):
    from repro.ml import write_artifact

    report = run_e2e(
        logreg_degrees=(3,), mlp_degrees=(2,), n_test=8, seed=0
    )
    assert report["passed"] is True
    assert report["agreement_threshold"] == AGREEMENT_THRESHOLD
    kinds = {(r["model"], r["degree"]) for r in report["results"]}
    assert kinds == {("logreg", 3), ("mlp", 2)}
    for cell in report["results"]:
        assert cell["agreement"] >= AGREEMENT_THRESHOLD
        assert cell["fit_max_error"] > 0
        assert cell["planner_rescales"] > 0
    out = tmp_path / "ml_e2e.json"
    write_artifact(report, out)
    assert out.exists() and out.read_text().startswith("{")


def test_model_admits_into_serving(cc, split):
    """A compiled model registers as a serving vector tenant and the
    served scores match the direct encrypted path."""
    from repro import CkksServer, ServingConfig

    y = (split.y_train == 2).astype(np.int64)
    model = logistic_regression(cc, split.x_train, y, degree=3)
    server = CkksServer(cc, config=ServingConfig(
        default_deadline_s=30.0, watchdog_s=30.0, seed=0,
    ))
    server.register_tenant(
        "logreg", model.build,
        scale_bits=model.scale_bits, input_dim=model.dim,
    )

    async def drive():
        await server.start()
        try:
            return await asyncio.gather(
                *(server.submit("logreg", row) for row in split.x_test[:4])
            )
        finally:
            await server.stop()

    served = asyncio.run(asyncio.wait_for(drive(), 60.0))
    scores = np.array([np.asarray(v).real for v in served])
    direct = model.predict_encrypted(split.x_test[:4])
    assert np.max(np.abs(scores - direct)) < 1e-4
    assert np.array_equal(model.classify(scores), model.classify(direct))
