"""The PR 10 public-API contract: one entry point, canonical kwargs.

Pins the redesign's three promises:

* :class:`repro.CkksContext` is the single public entry point — the
  curated ``repro.__all__`` resolves, and ``cc.matvec`` /
  ``cc.poly_eval`` / ``cc.compile`` / ``cc.model`` reproduce what the
  internals produce;
* construction kwargs are spelled one way everywhere (``scale_bits``,
  ``backend``, ``seed``, ``checked``) with the old spellings accepted
  behind a deprecation warning;
* every pre-redesign import path (``repro.scheme.SlotLinalg``,
  ``repro.scheme.circuit.CircuitTracer``, ``repro.poly.KeySwitcher``,
  ``cc.tracer()``, ``cc.linalg``) still works and warns **exactly
  once** per process, naming its replacement.
"""

import warnings

import numpy as np
import pytest

import repro
from repro import CkksContext
from repro._compat import _warned
from repro.errors import ParameterError

CTX_KW = dict(ring_degree=64, num_main=3, num_aux=3, dnum=2, seed=5)


@pytest.fixture(scope="module")
def cc() -> CkksContext:
    return CkksContext(rotations=(1, 2), **CTX_KW)


@pytest.fixture()
def fresh_warnings():
    """Reset the process-global warn-once registry around a test."""
    saved = set(_warned)
    _warned.clear()
    try:
        yield
    finally:
        _warned.clear()
        _warned.update(saved)


def _collect(fn):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fn()
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


# -- curated surface ---------------------------------------------------------

def test_repro_all_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_context_stores_canonical_attributes(cc):
    assert cc.scale_bits == 30
    assert cc.scale == 2.0**30
    assert cc.main_bits == 30 and cc.terminal_bits == 25
    assert cc.backend == "numpy"
    assert cc.checked in (True, False)


def test_encrypt_defaults_to_context_scale(cc):
    ct = cc.encrypt([0.5, -0.25], num_slots=2)
    assert ct.scale == cc.scale
    vals = cc.decrypt(ct, num_slots=2)
    assert np.allclose(vals.real, [0.5, -0.25], atol=1e-6)


# -- cc.compile parity -------------------------------------------------------

def test_compile_matches_eager_workloads(cc):
    rng = np.random.default_rng(9)
    matrix = rng.standard_normal((4, 4))
    coeffs = [0.25, -0.5, 0.125]

    def build(p, x):
        return p.rescale(p.poly_eval(p.rescale(p.matvec(x, matrix)), coeffs))

    # N=64 has a short chain: a smaller working scale keeps the degree-2
    # scale stack inside the budget on both paths
    scale = 2.0**20
    plan = cc.compile(build, scale=scale)
    v = rng.standard_normal(4)
    got = cc.decrypt(
        plan.run(cc.encrypt(v, scale=scale, num_slots=4)), num_slots=4
    )

    ct = cc.encrypt(v, scale=scale, num_slots=4)
    ev = cc.evaluator
    eager = ev.rescale(
        cc.poly_eval(ev.rescale(cc.matvec(ct, matrix)), coeffs)
    )
    want = cc.decrypt(eager, num_slots=4)
    # the two runs encrypt independently, so they agree only up to the
    # (scale-relative) noise floor — ~2^-8 after rescaling down to 2^10
    assert np.allclose(got, want, atol=2e-2)
    slots = matrix @ v
    expect = 0.25 - 0.5 * slots + 0.125 * slots**2
    assert np.allclose(got.real, expect, atol=2e-2)


def test_compile_program_delegates_evaluator_ops(cc):
    plan = cc.compile(lambda p, x: p.rescale(p.multiply(x, x)))
    out = cc.decrypt(plan.run(cc.encrypt([0.5], num_slots=1)), num_slots=1)
    assert np.allclose(out.real, [0.25], atol=1e-6)


def test_model_factory_rejects_unknown_kind(cc):
    with pytest.raises(ParameterError, match="unknown model kind"):
        cc.model("svm", np.zeros((4, 2)), np.zeros(4))


# -- canonical kwargs --------------------------------------------------------

def test_delta_alias_maps_to_scale_bits(fresh_warnings):
    caught = _collect(lambda: None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cc = CkksContext(delta=2.0**25, **CTX_KW)
    assert cc.scale_bits == 25
    msgs = [str(w.message) for w in caught]
    assert any("delta" in m and "scale_bits" in m for m in msgs)


def test_conflicting_scale_spellings_rejected(fresh_warnings):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with pytest.raises(ParameterError, match="deprecated alias"):
            CkksContext(scale_bits=30, delta=2.0**25, **CTX_KW)


def test_unknown_kwarg_still_a_typeerror():
    with pytest.raises(TypeError, match="unexpected keyword"):
        CkksContext(frobnicate=1, **CTX_KW)


def test_register_tenant_scale_alias(cc, fresh_warnings):
    from repro import CkksServer
    from repro.errors import AdmissionError

    server = CkksServer(cc)

    def build(tracer, x):
        return tracer.rescale(tracer.multiply(x, x))

    warned = _collect(
        lambda: server.register_tenant("sq-old", build, scale=2.0**30)
    )
    assert any("scale_bits" in str(w.message) for w in warned)
    server.register_tenant("sq-new", build, scale_bits=30)
    assert server._tenants["sq-old"].scale == server._tenants["sq-new"].scale
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with pytest.raises(AdmissionError) as ei:
            server.register_tenant(
                "sq-both", build, scale_bits=30, scale=2.0**30
            )
    assert ei.value.code == "conflicting-kwargs"


# -- deprecation shims: old paths work, warn exactly once --------------------

def _import_slotlinalg():
    from repro.scheme import SlotLinalg  # noqa: F401


def _import_slotlinalg_modpath():
    from repro.scheme.linalg import SlotLinalg  # noqa: F401


def _import_tracer_modpath():
    from repro.scheme.circuit import CircuitTracer  # noqa: F401


def _import_keyswitcher():
    from repro.poly import KeySwitcher  # noqa: F401


@pytest.mark.parametrize("trigger", [
    _import_slotlinalg,
    _import_slotlinalg_modpath,
    _import_tracer_modpath,
    _import_keyswitcher,
])
def test_old_import_paths_warn_exactly_once(trigger, fresh_warnings):
    first = _collect(trigger)
    assert len(first) == 1, [str(w.message) for w in first]
    assert "deprecated" in str(first[0].message)
    assert "instead" in str(first[0].message)  # names the replacement
    second = _collect(trigger)
    assert second == []


def test_old_names_resolve_to_the_internals(fresh_warnings):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        import repro.poly as poly
        import repro.scheme as scheme
        import repro.scheme.circuit as circuit_shim
        import repro.scheme.linalg as linalg_shim
        from repro.poly.basis_conv import KeySwitcher as real_ks
        from repro.scheme._circuit import CircuitTracer as real_tracer
        from repro.scheme._linalg import SlotLinalg as real_linalg

        assert scheme.SlotLinalg is real_linalg
        assert linalg_shim.SlotLinalg is real_linalg
        assert scheme.CircuitTracer is real_tracer
        assert circuit_shim.CircuitTracer is real_tracer
        assert poly.KeySwitcher is real_ks


def test_context_method_shims_warn_once(cc, fresh_warnings):
    first = _collect(lambda: cc.tracer())
    assert len(first) == 1 and "compile" in str(first[0].message)
    assert _collect(lambda: cc.tracer()) == []
    first = _collect(lambda: cc.linalg)
    assert len(first) == 1 and "matvec" in str(first[0].message)
    assert _collect(lambda: cc.linalg) == []


def test_silent_reexports_do_not_warn(fresh_warnings):
    def use():
        from repro.scheme import CircuitPlan, TracedCiphertext, bsgs_split
        from repro.scheme.circuit import CircuitPlan as cp2  # noqa: F401
        from repro.scheme.linalg import bsgs_split as bs2  # noqa: F401

        assert bsgs_split(8) == (3, 3)
        assert CircuitPlan is not None and TracedCiphertext is not None

    assert _collect(use) == []
