"""Table-3 reducer validation: exact products and output-range claims.

Every reducer is checked against ``(a * b) % q`` on randomized 31-bit
inputs, *and* against the output range Table 3 claims for it — the range
claims are what the lazy-reduction bounds of §4.2 are built on, so they
are asserted directly rather than assumed.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.rns.primes import ntt_friendly_primes
from repro.rns.reduction import (
    REDUCTION_COSTS,
    ShoupReducer,
    make_reducer,
)

# Fixed NTT-friendly moduli spanning the datapath: a Pr~25 terminal-sized
# prime, a Pr~30 main-sized prime, and one just under 2^31.
MODULI = [33554467, 1073741969, 2147483489]
SIZE = 4096


def _random_operands(q: int, rng: np.random.Generator):
    a = rng.integers(0, q, SIZE, dtype=np.uint64)
    b = rng.integers(0, q, SIZE, dtype=np.uint64)
    # Force boundary values into the stream: 0, 1, q-1.
    a[:3] = (0, 1, q - 1)
    b[:3] = (q - 1, q - 1, q - 1)
    return a, b


@pytest.fixture(params=MODULI, ids=lambda q: f"q={q}")
def q(request) -> int:
    return request.param


def test_moduli_are_prime():
    from repro.rns.primes import is_prime

    assert all(is_prime(q) for q in MODULI)


def test_barrett_exact_and_range(q, rng):
    red = make_reducer("barrett", q)
    a, b = _random_operands(q, rng)
    r = red.mulmod(a, b)
    assert int(r.max()) < 2 * q, "Table 3: Barrett output range [0, 2q)"
    expect = (a.astype(object) * b.astype(object)) % q
    assert np.array_equal(red.reduce_strict(r), expect.astype(np.uint64))


def test_montgomery_exact_and_range(q, rng):
    red = make_reducer("montgomery", q)
    a, b = _random_operands(q, rng)
    lazy = red.mulmod(red.to_form(a), b)  # cancels the 2^-32 factor
    assert int(lazy.max()) < 2 * q, "Table 3: Montgomery output range [0, 2q)"
    expect = (a.astype(object) * b.astype(object)) % q
    assert np.array_equal(red.reduce_strict(lazy), expect.astype(np.uint64))


def test_montgomery_form_round_trip(q, rng):
    red = make_reducer("montgomery", q)
    a = rng.integers(0, q, SIZE, dtype=np.uint64)
    assert np.array_equal(red.from_form(red.to_form(a)), a)


def test_shoup_exact_and_range(q, rng):
    red = make_reducer("shoup", q)
    a = rng.integers(0, q, SIZE, dtype=np.uint64)
    for w in (0, 1, 17, q // 2, q - 1):
        w_shoup = red.precompute(w)
        r = red.mulmod_const(a, w, w_shoup)
        assert int(r.max()) < 2 * q, "Table 3: Shoup output range [0, 2q)"
        expect = (a.astype(object) * w) % q
        assert np.array_equal(red.reduce_strict(r), expect.astype(np.uint64))


def test_shoup_vectorized_constants(q, rng):
    red = make_reducer("shoup", q)
    a = rng.integers(0, q, SIZE, dtype=np.uint64)
    w = rng.integers(0, q, SIZE, dtype=np.uint64)
    r = red.reduce_strict(red.mulmod_const(a, w, red.precompute(w)))
    expect = (a.astype(object) * w.astype(object)) % q
    assert np.array_equal(r, expect.astype(np.uint64))


def test_shoup_rejects_constant_ge_q(q):
    red: ShoupReducer = make_reducer("shoup", q)
    for bad in (q, q + 1, 2 * q):
        with pytest.raises(ParameterError):
            red.precompute(bad)
    with pytest.raises(ParameterError):
        red.precompute(-1)
    with pytest.raises(ParameterError):
        red.precompute(np.array([0, 5, q], dtype=np.int64))


def test_smr_exact_and_range(q, rng):
    red = make_reducer("smr", q)
    a, b = _random_operands(q, rng)
    # Montgomery-form second operand cancels Alg. 2's 2^-32 factor.
    r = red.mulmod(a.astype(np.int64), red.to_form(b))
    assert int(r.max()) < q and int(r.min()) > -q, (
        "Table 3: SMR output range (-q, q)"
    )
    expect = (a.astype(object) * b.astype(object)) % q
    assert np.array_equal(red.canonical(r), expect.astype(np.uint64))


def test_smr_signed_representatives(q, rng):
    red = make_reducer("smr", q)
    a = rng.integers(0, q, SIZE, dtype=np.uint64)
    centered = red.center(a)
    assert int(centered.max()) <= q // 2
    assert int(centered.min()) > -q // 2 - 1
    assert np.array_equal(red.canonical(centered), a)


def test_smr_form_round_trip(q, rng):
    red = make_reducer("smr", q)
    a = rng.integers(0, q, SIZE, dtype=np.uint64)
    assert np.array_equal(red.from_form(red.to_form(a)), a)


def test_reducers_from_generated_primes(rng):
    """All four methods agree on freshly generated NTT-friendly primes."""
    for prime in ntt_friendly_primes(29, 2, 32):
        q = prime.value
        a = rng.integers(0, q, 512, dtype=np.uint64)
        b = rng.integers(0, q, 512, dtype=np.uint64)
        expect = ((a.astype(object) * b.astype(object)) % q).astype(np.uint64)
        barrett = make_reducer("barrett", q)
        mont = make_reducer("montgomery", q)
        shoup = make_reducer("shoup", q)
        smr = make_reducer("smr", q)
        assert np.array_equal(barrett.reduce_strict(barrett.mulmod(a, b)), expect)
        assert np.array_equal(
            mont.reduce_strict(mont.mulmod(mont.to_form(a), b)), expect
        )
        assert np.array_equal(
            shoup.reduce_strict(shoup.mulmod_const(a, b, shoup.precompute(b))),
            expect,
        )
        assert np.array_equal(
            smr.canonical(smr.mulmod(a.astype(np.int64), smr.to_form(b))),
            expect,
        )


def test_cost_table_claims():
    """Table 3's shape: SMR is the cheapest row; ranges are as published."""
    total = {m: c.total_instrs for m, c in REDUCTION_COSTS.items()}
    assert total["smr"] == min(total.values())
    assert REDUCTION_COSTS["smr"].output_range == "(-q, q)"
    for method in ("barrett", "montgomery", "shoup"):
        assert REDUCTION_COSTS[method].output_range == "[0, 2q)"


def test_make_reducer_rejects_unknown():
    with pytest.raises(ParameterError):
        make_reducer("lookup-table", 97)


# -- batched (per-row modulus column) mode ---------------------------------


def _batched_operands(rng):
    a = np.stack([rng.integers(0, q, SIZE, dtype=np.uint64) for q in MODULI])
    b = np.stack([rng.integers(0, q, SIZE, dtype=np.uint64) for q in MODULI])
    expect = np.stack(
        [
            ((a[i].astype(object) * b[i].astype(object)) % q).astype(np.uint64)
            for i, q in enumerate(MODULI)
        ]
    )
    return a, b, expect


@pytest.mark.parametrize("method", ("barrett", "montgomery", "shoup", "smr"))
def test_batched_reducers_match_per_row_scalars(method, rng):
    """(L, 1) modulus columns must reproduce L scalar reducers row by row."""
    a, b, expect = _batched_operands(rng)
    red = make_reducer(method, MODULI)
    assert red.batched and red.q_ints == MODULI
    if method == "barrett":
        got = red.reduce_strict(red.mulmod(a, b))
    elif method == "montgomery":
        got = red.reduce_strict(red.mulmod(red.to_form(a), b))
    elif method == "shoup":
        got = red.reduce_strict(red.mulmod_const(a, b, red.precompute(b)))
    else:
        got = red.canonical(red.mulmod(a.astype(np.int64), red.to_form(b)))
    assert np.array_equal(got, expect)


def test_batched_reducers_broadcast_3d_stage_views(rng):
    """NTT stages view (L, N) as (L, m, t): constants must align per row."""
    a, b, expect = _batched_operands(rng)
    shape3 = (len(MODULI), 64, SIZE // 64)
    red = make_reducer("barrett", MODULI)
    got = red.reduce_strict(red.mulmod(a.reshape(shape3), b.reshape(shape3)))
    assert np.array_equal(got.reshape(a.shape), expect)
    smr = make_reducer("smr", MODULI)
    got = smr.canonical(
        smr.mulmod(
            a.reshape(shape3).astype(np.int64),
            smr.to_form(b).reshape(shape3),
        )
    )
    assert np.array_equal(got.reshape(a.shape), expect)


def test_batched_shoup_range_checks_per_row(rng):
    red = make_reducer("shoup", MODULI)
    # The smallest modulus binds: a constant valid for row 2 must be
    # rejected when it lands on row 0.
    bad = np.full((len(MODULI), 1), MODULI[0], dtype=np.uint64)
    with pytest.raises(ParameterError):
        red.precompute(bad)
    with pytest.raises(ParameterError):
        red.precompute(np.full((len(MODULI), 1), -1, dtype=np.int64))
    # Scalar constants broadcast down every row.
    w = MODULI[0] - 1
    comp = red.precompute(w)
    assert comp.shape == (len(MODULI), 1)
    a = np.stack([rng.integers(0, q, SIZE, dtype=np.uint64) for q in MODULI])
    got = red.reduce_strict(red.mulmod_const(a, w, comp))
    expect = np.stack(
        [
            ((a[i].astype(object) * w) % q).astype(np.uint64)
            for i, q in enumerate(MODULI)
        ]
    )
    assert np.array_equal(got, expect)


def test_batched_moduli_validation():
    with pytest.raises(ParameterError):
        make_reducer("barrett", [])
    with pytest.raises(ParameterError):
        make_reducer("barrett", [MODULI[0], 2**31 + 1])
    with pytest.raises(ParameterError):
        make_reducer("montgomery", [MODULI[0], 10])  # even modulus
    # (L, 1) columns are accepted as moduli specs too.
    col = np.array(MODULI, dtype=np.uint64).reshape(-1, 1)
    assert make_reducer("smr", col).q_ints == MODULI
