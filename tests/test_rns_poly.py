"""RnsPolynomial validation against exact CRT big-integer references.

Every limb-wise operation is cross-checked by reconstructing operands and
results to Python integers mod Q = prod q_i — slow but exact, which is the
point: the (num_limbs, N) limb layout must be *algebraically invisible*.
"""

import numpy as np
import pytest

from conftest import negacyclic_schoolbook
from repro.errors import LayoutError, LevelError, ParameterError
from repro.poly.rns_poly import COEFF, NTT, PolyContext
from repro.rns.primes import PrimePool, ntt_friendly_primes

N = 16  # tiny ring keeps the exact big-int references fast


@pytest.fixture(scope="module")
def ctx():
    small = PrimePool.generate(N, num_main=2, num_terminal=1, num_aux=0)
    return PolyContext.from_pool(small, num_terminal=1, num_main=2)


def test_context_properties(ctx):
    assert ctx.num_limbs == 3
    assert ctx.modulus == ctx.primes[0] * ctx.primes[1] * ctx.primes[2]
    assert ctx.moduli.shape == (3, 1)


def test_int_coeffs_round_trip(ctx):
    coeffs = list(range(-N // 2, N // 2))
    poly = ctx.from_int_coeffs(coeffs)
    assert poly.to_int_coeffs(centered=True) == coeffs
    uncentered = poly.to_int_coeffs(centered=False)
    assert uncentered == [c % ctx.modulus for c in coeffs]


def test_add_sub_negate_match_crt(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    ai = a.to_int_coeffs(centered=False)
    bi = b.to_int_coeffs(centered=False)
    big_q = ctx.modulus
    assert (a + b).to_int_coeffs(centered=False) == [
        (x + y) % big_q for x, y in zip(ai, bi)
    ]
    assert (a - b).to_int_coeffs(centered=False) == [
        (x - y) % big_q for x, y in zip(ai, bi)
    ]
    assert (-a).to_int_coeffs(centered=False) == [(-x) % big_q for x in ai]
    assert (a - a).to_int_coeffs(centered=False) == [0] * N


def test_multiply_matches_schoolbook_per_limb(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    prod = a * b
    assert prod.domain == COEFF
    for i, q in enumerate(ctx.primes):
        expect = negacyclic_schoolbook(a.limbs[i], b.limbs[i], q)
        assert np.array_equal(prod.limbs[i], expect)


def test_multiply_matches_crt_reference(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    ai = a.to_int_coeffs(centered=False)
    bi = b.to_int_coeffs(centered=False)
    big_q = ctx.modulus
    ref = [0] * N
    for i in range(N):
        for j in range(N):
            sign = 1 if i + j < N else -1
            ref[(i + j) % N] = (ref[(i + j) % N] + sign * ai[i] * bi[j]) % big_q
    assert (a * b).to_int_coeffs(centered=False) == ref


def test_ntt_domain_round_trip_and_pointwise(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    a_hat = a.to_ntt()
    assert a_hat.domain == NTT
    assert np.array_equal(a_hat.to_coeff().limbs, a.limbs)
    # NTT-domain multiply stays in NTT; equals coeff-domain multiply.
    prod_hat = a_hat.multiply(b.to_ntt())
    assert prod_hat.domain == NTT
    assert np.array_equal(prod_hat.to_coeff().limbs, (a * b).limbs)


def test_exact_rescale_is_rounded_division(ctx, rng):
    a = ctx.random(rng)
    q_last = ctx.primes[-1]
    rescaled = a.exact_rescale()
    assert rescaled.num_limbs == ctx.num_limbs - 1
    assert rescaled.ctx is ctx.drop_last()
    got = rescaled.to_int_coeffs(centered=True)
    for x, y in zip(a.to_int_coeffs(centered=True), got):
        r = x % q_last
        if r > q_last // 2:
            r -= q_last  # centered remainder, (-q_L/2, q_L/2]
        assert (x - r) // q_last == y


def test_rescale_error_is_at_most_half(ctx, rng):
    """|rescaled - x / q_L| <= 1/2: the 'exact' in exact rescaling."""
    a = ctx.random(rng)
    q_last = ctx.primes[-1]
    got = a.exact_rescale().to_int_coeffs(centered=True)
    for x, y in zip(a.to_int_coeffs(centered=True), got):
        # |y - x/q_L| <= 1/2, checked in exact integer arithmetic.
        assert 2 * abs(y * q_last - x) <= q_last


def test_domain_and_context_errors(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    with pytest.raises(LayoutError):
        a.pointwise_multiply(b)  # coeff-domain operands
    with pytest.raises(LayoutError):
        a.to_ntt().exact_rescale()
    with pytest.raises(LayoutError):
        a.to_ntt().to_int_coeffs()
    with pytest.raises(LayoutError):
        a.to_ntt().add(b)  # mixed domains
    other = PolyContext(ctx.ring_degree, ctx.primes, "shoup")
    with pytest.raises(ParameterError):
        a.add(other.random(rng))  # same primes, different method
    single = PolyContext(ctx.ring_degree, ctx.primes[:1])
    with pytest.raises(LevelError):
        single.random(rng).exact_rescale()
    with pytest.raises(LevelError):
        single.drop_last()


def test_context_validation():
    with pytest.raises(ParameterError):
        PolyContext(N, [])
    with pytest.raises(ParameterError):
        PolyContext(N, [97, 97])
    ctx2 = PolyContext(N, [ntt_friendly_primes(30, 1, N)[0]])
    with pytest.raises(LayoutError):
        ctx2.from_int_coeffs([1, 2, 3])  # wrong length


def test_shoup_backend_context_multiplies(ctx, rng):
    """The acceptance bar calls out SMR and Shoup: rerun multiply on Shoup."""
    shoup_ctx = PolyContext(ctx.ring_degree, ctx.primes, "shoup")
    a, b = shoup_ctx.random(rng), shoup_ctx.random(rng)
    prod = a * b
    for i, q in enumerate(shoup_ctx.primes):
        expect = negacyclic_schoolbook(a.limbs[i], b.limbs[i], q)
        assert np.array_equal(prod.limbs[i], expect)


def test_drop_last_is_cached(ctx):
    assert ctx.drop_last() is ctx.drop_last()
    assert ctx.drop_last().primes == ctx.primes[:-1]
    # Twiddle tables are immutable: the child reuses the parent's engines
    # instead of rebuilding them (rescale chains would be O(L^2) otherwise).
    for child_ntt, parent_ntt in zip(ctx.drop_last().ntts, ctx.ntts):
        assert child_ntt is parent_ntt
