"""RnsPolynomial validation against exact CRT big-integer references.

Every limb-wise operation is cross-checked by reconstructing operands and
results to Python integers mod Q = prod q_i — slow but exact, which is the
point: the (num_limbs, N) limb layout must be *algebraically invisible*.
"""

import numpy as np
import pytest

from conftest import negacyclic_schoolbook
from repro.errors import LayoutError, LevelError, ParameterError
from repro.poly.rns_poly import COEFF, NTT, PolyContext
from repro.rns.primes import PrimePool, ntt_friendly_primes

N = 16  # tiny ring keeps the exact big-int references fast


@pytest.fixture(scope="module")
def ctx():
    small = PrimePool.generate(N, num_main=2, num_terminal=1, num_aux=0)
    return PolyContext.from_pool(small, num_terminal=1, num_main=2)


def test_context_properties(ctx):
    assert ctx.num_limbs == 3
    assert ctx.modulus == ctx.primes[0] * ctx.primes[1] * ctx.primes[2]
    assert ctx.moduli.shape == (3, 1)


def test_int_coeffs_round_trip(ctx):
    coeffs = list(range(-N // 2, N // 2))
    poly = ctx.from_int_coeffs(coeffs)
    assert poly.to_int_coeffs(centered=True) == coeffs
    uncentered = poly.to_int_coeffs(centered=False)
    assert uncentered == [c % ctx.modulus for c in coeffs]


def test_add_sub_negate_match_crt(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    ai = a.to_int_coeffs(centered=False)
    bi = b.to_int_coeffs(centered=False)
    big_q = ctx.modulus
    assert (a + b).to_int_coeffs(centered=False) == [
        (x + y) % big_q for x, y in zip(ai, bi)
    ]
    assert (a - b).to_int_coeffs(centered=False) == [
        (x - y) % big_q for x, y in zip(ai, bi)
    ]
    assert (-a).to_int_coeffs(centered=False) == [(-x) % big_q for x in ai]
    assert (a - a).to_int_coeffs(centered=False) == [0] * N


def test_multiply_matches_schoolbook_per_limb(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    prod = a * b
    assert prod.domain == COEFF
    for i, q in enumerate(ctx.primes):
        expect = negacyclic_schoolbook(a.limbs[i], b.limbs[i], q)
        assert np.array_equal(prod.limbs[i], expect)


def test_multiply_matches_crt_reference(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    ai = a.to_int_coeffs(centered=False)
    bi = b.to_int_coeffs(centered=False)
    big_q = ctx.modulus
    ref = [0] * N
    for i in range(N):
        for j in range(N):
            sign = 1 if i + j < N else -1
            ref[(i + j) % N] = (ref[(i + j) % N] + sign * ai[i] * bi[j]) % big_q
    assert (a * b).to_int_coeffs(centered=False) == ref


def test_ntt_domain_round_trip_and_pointwise(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    a_hat = a.to_ntt()
    assert a_hat.domain == NTT
    assert np.array_equal(a_hat.to_coeff().limbs, a.limbs)
    # NTT-domain multiply stays in NTT; equals coeff-domain multiply.
    prod_hat = a_hat.multiply(b.to_ntt())
    assert prod_hat.domain == NTT
    assert np.array_equal(prod_hat.to_coeff().limbs, (a * b).limbs)


def test_exact_rescale_is_rounded_division(ctx, rng):
    a = ctx.random(rng)
    q_last = ctx.primes[-1]
    rescaled = a.exact_rescale()
    assert rescaled.num_limbs == ctx.num_limbs - 1
    assert rescaled.ctx is ctx.drop_last()
    got = rescaled.to_int_coeffs(centered=True)
    for x, y in zip(a.to_int_coeffs(centered=True), got):
        r = x % q_last
        if r > q_last // 2:
            r -= q_last  # centered remainder, (-q_L/2, q_L/2]
        assert (x - r) // q_last == y


def test_rescale_error_is_at_most_half(ctx, rng):
    """|rescaled - x / q_L| <= 1/2: the 'exact' in exact rescaling."""
    a = ctx.random(rng)
    q_last = ctx.primes[-1]
    got = a.exact_rescale().to_int_coeffs(centered=True)
    for x, y in zip(a.to_int_coeffs(centered=True), got):
        # |y - x/q_L| <= 1/2, checked in exact integer arithmetic.
        assert 2 * abs(y * q_last - x) <= q_last


def test_domain_and_context_errors(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    with pytest.raises(LayoutError):
        a.pointwise_multiply(b)  # coeff-domain operands
    with pytest.raises(LayoutError):
        a.to_ntt().exact_rescale()
    with pytest.raises(LayoutError):
        a.to_ntt().to_int_coeffs()
    with pytest.raises(LayoutError):
        a.to_ntt().add(b)  # mixed domains
    other = PolyContext(ctx.ring_degree, ctx.primes, "shoup")
    with pytest.raises(ParameterError):
        a.add(other.random(rng))  # same primes, different method
    single = PolyContext(ctx.ring_degree, ctx.primes[:1])
    with pytest.raises(LevelError):
        single.random(rng).exact_rescale()
    with pytest.raises(LevelError):
        single.drop_last()


def test_context_validation():
    with pytest.raises(ParameterError):
        PolyContext(N, [])
    with pytest.raises(ParameterError):
        PolyContext(N, [97, 97])
    ctx2 = PolyContext(N, [ntt_friendly_primes(30, 1, N)[0]])
    with pytest.raises(LayoutError):
        ctx2.from_int_coeffs([1, 2, 3])  # wrong length


def test_shoup_backend_context_multiplies(ctx, rng):
    """The acceptance bar calls out SMR and Shoup: rerun multiply on Shoup."""
    shoup_ctx = PolyContext(ctx.ring_degree, ctx.primes, "shoup")
    a, b = shoup_ctx.random(rng), shoup_ctx.random(rng)
    prod = a * b
    for i, q in enumerate(shoup_ctx.primes):
        expect = negacyclic_schoolbook(a.limbs[i], b.limbs[i], q)
        assert np.array_equal(prod.limbs[i], expect)


def test_drop_last_is_cached(ctx):
    assert ctx.drop_last() is ctx.drop_last()
    assert ctx.drop_last().primes == ctx.primes[:-1]
    # Twiddle tables are immutable: the child reuses the parent's engines
    # instead of rebuilding them (rescale chains would be O(L^2) otherwise).
    for child_ntt, parent_ntt in zip(ctx.drop_last().ntts, ctx.ntts):
        assert child_ntt is parent_ntt
    # The batched engine is shared the same way (sliced, same roots).
    assert ctx.drop_last().batch_ntt.psis == ctx.batch_ntt.psis[:-1]


# -- batched pipeline vs per-prime reference engines -----------------------


@pytest.mark.parametrize("method", ("barrett", "montgomery", "shoup", "smr"))
def test_transforms_bit_match_reference_engines(ctx, method, rng):
    """to_ntt / to_coeff / pointwise_multiply run batched but must equal a
    Python loop over the per-prime reference engines, bit for bit."""
    mctx = PolyContext(ctx.ring_degree, ctx.primes, method)
    a, b = mctx.random(rng), mctx.random(rng)
    ref_fwd = np.stack([ntt.forward(a.limbs[i]) for i, ntt in enumerate(mctx.ntts)])
    a_hat = a.to_ntt()
    assert np.array_equal(a_hat.limbs, ref_fwd)
    assert np.array_equal(a_hat.to_coeff().limbs, a.limbs)
    b_hat = b.to_ntt()
    ref_pw = np.stack(
        [
            ntt.pointwise(a_hat.limbs[i], b_hat.limbs[i])
            for i, ntt in enumerate(mctx.ntts)
        ]
    )
    assert np.array_equal(a_hat.pointwise_multiply(b_hat).limbs, ref_pw)


def test_rescale_unchanged_after_caching(ctx, rng):
    """The cached-constant, division-free rescale must reproduce the
    original per-limb pow()-per-call loop exactly."""
    for _ in range(10):
        a = ctx.random(rng)
        q_last = ctx.primes[-1]
        last = a.limbs[-1].astype(np.int64)
        centered = np.where(last > q_last // 2, last - q_last, last)
        ref = np.empty((ctx.num_limbs - 1, ctx.ring_degree), np.uint64)
        for i, q in enumerate(ctx.primes[:-1]):
            r = centered % q
            diff = a.limbs[i] + np.uint64(q) - r.astype(np.uint64)
            diff = np.where(diff >= q, diff - np.uint64(q), diff)
            inv = pow(q_last, -1, q)
            ref[i] = diff * np.uint64(inv) % np.uint64(q)
        assert np.array_equal(a.exact_rescale().limbs, ref)


def test_rescale_consts_cached_on_context(ctx):
    consts = ctx.rescale_consts
    assert consts is ctx.rescale_consts  # cached_property
    inv, inv_shoup, mu32, corr = consts
    q_last = ctx.primes[-1]
    for i, q in enumerate(ctx.primes[:-1]):
        assert int(inv[i, 0]) == pow(q_last, -1, q)
        assert int(inv_shoup[i, 0]) == (pow(q_last, -1, q) << 32) // q
        assert int(mu32[i, 0]) == (1 << 32) // q
        assert int(corr[i, 0]) == (-q_last) % q


def test_prepared_operand_is_cached_and_requires_ntt(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    with pytest.raises(LayoutError):
        b.prepared_operand()  # coefficient domain
    b_hat = b.to_ntt()
    handle = b_hat.prepared_operand()
    assert b_hat.prepared_operand() is handle  # paid once, reused
    # pointwise_multiply goes through the same cached handle.
    a_hat = a.to_ntt()
    first = a_hat.pointwise_multiply(b_hat)
    assert b_hat.prepared_operand() is handle
    assert np.array_equal(a_hat.pointwise_multiply(b_hat).limbs, first.limbs)


# -- multiply_accumulate (§4.2 key-switching shape) ------------------------


@pytest.mark.parametrize("method", ("barrett", "montgomery", "shoup", "smr"))
def test_multiply_accumulate_matches_naive_chain(ctx, method, rng):
    from repro.poly.rns_poly import RnsPolynomial

    mctx = PolyContext(ctx.ring_degree, ctx.primes, method)
    k = 6
    a = [mctx.random(rng).to_ntt() for _ in range(k)]
    b = [mctx.random(rng).to_ntt() for _ in range(k)]
    ref = a[0].pointwise_multiply(b[0])
    for i in range(1, k):
        ref = ref + a[i].pointwise_multiply(b[i])
    got = RnsPolynomial.multiply_accumulate(a, b)
    assert got.domain == NTT
    assert np.array_equal(got.limbs, ref.limbs)


def test_multiply_accumulate_raw_strategy(rng):
    """SMR's deferred-reduction strategy on terminal-sized limbs."""
    from repro.poly.rns_poly import RnsPolynomial
    from repro.rns.primes import ntt_friendly_primes as gen

    primes = [p.value for p in gen(25, 3, N)]
    sctx = PolyContext(N, primes, "smr")
    k = 8
    a = [sctx.random(rng).to_ntt() for _ in range(k)]
    b = [sctx.random(rng).to_ntt() for _ in range(k)]
    ref = a[0].pointwise_multiply(b[0])
    for i in range(1, k):
        ref = ref + a[i].pointwise_multiply(b[i])
    got = RnsPolynomial.multiply_accumulate(a, b, strategy="raw")
    assert np.array_equal(got.limbs, ref.limbs)


def test_multiply_accumulate_validation(ctx, rng):
    from repro.poly.rns_poly import RnsPolynomial

    a, b = ctx.random(rng).to_ntt(), ctx.random(rng).to_ntt()
    with pytest.raises(ParameterError):
        RnsPolynomial.multiply_accumulate([], [])
    with pytest.raises(ParameterError):
        RnsPolynomial.multiply_accumulate([a], [b, b])
    with pytest.raises(LayoutError):
        RnsPolynomial.multiply_accumulate([a], [ctx.random(rng)])  # coeff
    other = PolyContext(ctx.ring_degree, ctx.primes, "shoup")
    with pytest.raises(ParameterError):
        RnsPolynomial.multiply_accumulate([a], [other.random(rng).to_ntt()])


# -- transform twin caching (PR 3 satellite) --------------------------------
def test_to_ntt_caches_twin(ctx, rng):
    a = ctx.random(rng)
    a_hat = a.to_ntt()
    assert a.to_ntt() is a_hat  # second transform is the cached twin
    assert a_hat.to_coeff() is a  # and the link is bidirectional
    assert np.array_equal(a_hat.limbs, ctx.batch_ntt.forward(a.limbs))


def test_to_coeff_caches_twin(ctx, rng):
    from repro.poly.rns_poly import RnsPolynomial

    a_hat = RnsPolynomial(ctx, ctx.batch_ntt.forward(ctx.random(rng).limbs),
                          NTT)
    a = a_hat.to_coeff()
    assert a_hat.to_coeff() is a
    assert a.to_ntt() is a_hat


def test_same_domain_transform_is_identity(ctx, rng):
    a = ctx.random(rng)
    assert a.to_coeff() is a
    a_hat = a.to_ntt()
    assert a_hat.to_ntt() is a_hat


# -- in-place mutation must invalidate caches (PR 3 satellite) --------------
def test_inplace_ops_match_functional(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    expect_add = a.add(b)
    mut = ctx.zeros().add_(a).add_(b)
    assert np.array_equal(mut.limbs, expect_add.limbs)
    expect_sub = a.sub(b)
    mut = ctx.zeros().add_(a).sub_(b)
    assert np.array_equal(mut.limbs, expect_sub.limbs)
    expect_neg = a.negate()
    mut = ctx.zeros().add_(a).negate_()
    assert np.array_equal(mut.limbs, expect_neg.limbs)


def test_inplace_mutation_drops_prepared_handle(ctx, rng):
    """Regression: a stale prepared operand must not survive mutation.

    Before the fix, mutating the limb matrix in place left the cached
    backend-prepared handle serving the *old* values to every subsequent
    pointwise product.
    """
    a_hat = ctx.random(rng).to_ntt()
    b_hat = ctx.random(rng).to_ntt()
    _ = a_hat.pointwise_multiply(b_hat)  # fills b_hat._prepared
    assert b_hat._prepared is not None
    b_hat.negate_()
    assert b_hat._prepared is None
    got = a_hat.pointwise_multiply(b_hat)
    from repro.poly.rns_poly import RnsPolynomial

    fresh = RnsPolynomial(ctx, b_hat.limbs.copy(), NTT)
    assert np.array_equal(got.limbs, a_hat.pointwise_multiply(fresh).limbs)


def test_inplace_mutation_severs_twin_link(ctx, rng):
    a = ctx.random(rng)
    a_hat = a.to_ntt()
    a.add_(ctx.random(rng))
    # Neither side may keep serving the stale transform.
    assert a._twin is None and a_hat._twin is None
    new_hat = a.to_ntt()
    assert new_hat is not a_hat
    assert np.array_equal(new_hat.limbs, ctx.batch_ntt.forward(a.limbs))


def test_inplace_on_twin_invalidates_both_sides(ctx, rng):
    a = ctx.random(rng)
    a_hat = a.to_ntt()
    a_hat.negate_()  # mutate the cached twin, not the original
    assert a._twin is None
    assert np.array_equal(a.to_ntt().limbs, ctx.batch_ntt.forward(a.limbs))


def test_multiply_result_carries_no_twin(ctx, rng):
    """Regression: a product chain must not pin an NTT-domain copy of
    every intermediate through the twin link (memory, ref cycles)."""
    a, b = ctx.random(rng), ctx.random(rng)
    prod = a * b
    assert prod._twin is None
    # The operands keep their twins — repeat products stay cheap.
    assert a._twin is not None and b._twin is not None
    assert np.array_equal(
        prod.limbs,
        ctx.batch_ntt.inverse(a.to_ntt().pointwise_multiply(b.to_ntt()).limbs),
    )


# -- explicit LimbState (PR 4 tentpole) -------------------------------------
def test_limbstate_carries_domain_level_scale(ctx, rng):
    from repro.poly.rns_poly import LimbState

    a = ctx.random(rng)
    assert a.state.domain == COEFF and a.domain == COEFF
    assert a.state.level == ctx.num_limbs and a.level == ctx.num_limbs
    assert a.state.scale == 1.0 and a.scale == 1.0
    with pytest.raises(LayoutError):
        LimbState("frequency", 3)
    with pytest.raises(LevelError):
        LimbState(COEFF, 0)


def test_scale_propagates_through_ops(ctx, rng):
    a, b = ctx.random(rng), ctx.random(rng)
    a.state.scale = 2.0**20
    b.state.scale = 2.0**21
    assert (a + b).scale == a.scale  # linear ops keep the left scale
    assert (a - b).scale == a.scale
    assert (-a).scale == a.scale
    assert a.to_ntt().scale == a.scale  # transforms preserve it
    assert (a * b).scale == 2.0**41  # products multiply it
    from repro.poly.rns_poly import RnsPolynomial

    mac = RnsPolynomial.multiply_accumulate(
        [a.to_ntt(), a.to_ntt()], [b.to_ntt(), b.to_ntt()]
    )
    assert mac.scale == 2.0**41  # fused inner products too
    q_last = ctx.primes[-1]
    res = a.exact_rescale()
    assert res.scale == a.scale / q_last  # rescale divides by q_last
    assert res.level == a.level - 1


def test_invalidate_is_the_single_cache_drop_path(ctx, rng):
    a = ctx.random(rng)
    a_hat = a.to_ntt()
    handle = a_hat.prepared_operand()
    assert a_hat.state.prepared is handle
    assert a.state.twin is a_hat and a_hat.state.twin is a
    a_hat.state.invalidate()
    assert a_hat.state.prepared is None
    assert a_hat.state.twin is None and a.state.twin is None


def test_mismatch_reason_is_none_for_compatible(ctx):
    assert ctx.mismatch_reason(ctx) is None
    clone = PolyContext(ctx.ring_degree, ctx.primes, ctx.method)
    assert ctx.mismatch_reason(clone) is None
    assert ctx.compatible(clone)


def test_check_error_names_the_field(ctx, rng):
    a = ctx.random(rng)
    lower = ctx.drop_last().random(rng)
    with pytest.raises(ParameterError, match="level mismatch"):
        a.add(lower)
    other = PolyContext(ctx.ring_degree, ctx.primes, "barrett")
    with pytest.raises(ParameterError, match="reduction method mismatch"):
        a.add(other.random(rng))


def test_automorphism_round_trips_through_crt(ctx, rng):
    """sigma_k on the limb matrix equals sigma_k on the big integers."""
    a = ctx.random(rng)
    k = 5
    got = a.automorphism(k).to_int_coeffs(centered=True)
    src = a.to_int_coeffs(centered=True)
    n = ctx.ring_degree
    big_q = ctx.modulus
    expect = [0] * n
    for i in range(n):
        e = (i * k) % (2 * n)
        v = src[i]
        if e >= n:
            expect[e - n] = -v
        else:
            expect[e] = v
    half = big_q // 2
    expect = [((c + half) % big_q) - half for c in expect]
    assert got == expect
