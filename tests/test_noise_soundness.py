"""Property test: the noise-bits heuristic is a sound upper bound.

``Ciphertext.noise_bits`` is the engineering gauge the Level-2 plan
checker propagates statically; its verdicts (``budget-exhausted``) are
only trustworthy if the heuristic never *under*-reports.  This test
measures the true noise — the exact big-int distance between the
decryption ``c0 + c1*s`` and an independently tracked exact message
polynomial — after every operation of seeded random circuits on all
four reducer backends, and asserts ``log2 |e|_inf <= noise_bits``
throughout.

The exact message reference is carried as an integer coefficient vector
with a power-of-prime denominator (rescale divides exactly), so the
comparison involves no floats at all: encode rounding is part of the
message (inputs lift the encoded plaintext polynomial itself), and
negacyclic products / Galois automorphisms are replayed over plain
Python ints.
"""

import math
from functools import lru_cache

import numpy as np
import pytest

from repro.poly.rns_poly import PolyContext
from repro.rns.primes import PrimePool
from repro.scheme import Evaluator, KeyGenerator, Plaintext
from repro.scheme.keys import conjugation_element, galois_element

METHODS = ("barrett", "montgomery", "shoup", "smr")
N = 64
SCALE = 2.0**20


@lru_cache(maxsize=None)
def _setup(method: str):
    pool = PrimePool.generate(N, num_main=3, num_terminal=1, num_aux=4)
    ctx = PolyContext.from_pool(pool, num_terminal=1, num_main=3, method=method)
    aux = [p.value for p in pool.extension_basis(1, 3, dnum=2)]
    keygen = KeyGenerator(ctx, aux, 2, np.random.default_rng(0x5EED + N))
    ev = Evaluator.from_keygen(keygen, rotations=(1,), conjugate=True)
    return ctx, keygen, ev


# -- exact message reference --------------------------------------------


class _RefMsg:
    """Exact message polynomial: integer coefficients over ``den``."""

    def __init__(self, num, den=1):
        self.num = [int(v) for v in num]
        self.den = int(den)


def _lift(poly) -> list[int]:
    return [int(v) for v in poly.to_coeff().to_int_coeffs(centered=True)]


def _negacyclic(a, b):
    out = [0] * N
    for i, ai in enumerate(a):
        if not ai:
            continue
        for j, bj in enumerate(b):
            k = i + j
            if k < N:
                out[k] += ai * bj
            else:
                out[k - N] -= ai * bj
    return out


def _automorphism(num, k):
    out = [0] * N
    for i, c in enumerate(num):
        j = (i * k) % (2 * N)
        if j < N:
            out[j] += c
        else:
            out[j - N] -= c
    return out


def _ref_add(a, b, sign=1):
    assert a.den == b.den
    return _RefMsg(
        [x + sign * y for x, y in zip(a.num, b.num)], a.den
    )


def _ref_mul(a, b):
    return _RefMsg(_negacyclic(a.num, b.num), a.den * b.den)


def _measured_bits(ev, sk, ct, ref) -> float:
    """``log2 |c0 + c1*s - m|_inf`` — exact, no floats until the log."""
    raw = _lift(ev.decrypt(ct, sk).poly)
    err = max(
        abs(r * ref.den - m) for r, m in zip(raw, ref.num)
    )
    if err == 0:
        return float("-inf")
    return math.log2(err) - math.log2(ref.den)


# -- the property --------------------------------------------------------


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_noise_bits_upper_bounds_measured_noise(method, seed):
    ctx, keygen, ev = _setup(method)
    sk = keygen.secret
    r = np.random.default_rng(0xACC0 + seed)

    def fresh():
        pt = Plaintext.encode(ctx, r.uniform(-0.5, 0.5, N), SCALE)
        return ev.encrypt(pt, keygen.public, r), _RefMsg(_lift(pt.poly))

    x, mx = fresh()
    y, my = fresh()
    pt = Plaintext.encode(ctx, r.uniform(-0.5, 0.5, N), SCALE)
    mpt = _RefMsg(_lift(pt.poly))

    # A fixed op mix covering every noise rule: add/sub (combine),
    # rotate/conjugate (key-switch), multiply (relin), multiply_plain,
    # negate (passthrough) and rescale (divide + rounding floor).
    a = ev.add(x, y)
    ma = _ref_add(mx, my)
    b = ev.sub(x, y)
    mb = _ref_add(mx, my, sign=-1)
    rot = ev.rotate(a, 1)
    mrot = _RefMsg(_automorphism(ma.num, galois_element(1, N)), ma.den)
    conj = ev.conjugate(b)
    mconj = _RefMsg(
        _automorphism(mb.num, conjugation_element(N)), mb.den
    )
    m1 = ev.multiply(x, y)
    mm1 = _ref_mul(mx, my)
    mp1 = ev.multiply_plain(rot, pt)
    mmp1 = _ref_mul(mrot, mpt)
    s = ev.sub(m1, mp1)
    ms = _ref_add(mm1, mmp1, sign=-1)
    m2 = ev.multiply(a, conj)
    mm2 = _ref_mul(ma, mconj)
    q_last = ctx.primes[-1]
    rs1 = ev.rescale(s)
    mrs1 = _RefMsg(ms.num, ms.den * q_last)
    rs2 = ev.rescale(m2)
    mrs2 = _RefMsg(mm2.num, mm2.den * q_last)
    neg = ev.negate(rs1)
    mneg = _RefMsg([-v for v in mrs1.num], mrs1.den)
    fin = ev.add(neg, rs2)
    mfin = _ref_add(mneg, mrs2)

    stages = [
        ("fresh x", x, mx),
        ("fresh y", y, my),
        ("add", a, ma),
        ("sub", b, mb),
        ("rotate", rot, mrot),
        ("conjugate", conj, mconj),
        ("multiply", m1, mm1),
        ("multiply_plain", mp1, mmp1),
        ("sub deep", s, ms),
        ("multiply 2", m2, mm2),
        ("rescale 1", rs1, mrs1),
        ("rescale 2", rs2, mrs2),
        ("negate", neg, mneg),
        ("final add", fin, mfin),
    ]
    for label, ct, ref in stages:
        assert ct.noise_budget_bits > 0, f"{label}: circuit went too deep"
        measured = _measured_bits(ev, sk, ct, ref)
        assert measured <= ct.noise_bits, (
            f"{method} seed={seed} {label}: measured noise "
            f"{measured:.2f} bits exceeds the heuristic bound "
            f"{ct.noise_bits:.2f} — the estimate under-reports"
        )
