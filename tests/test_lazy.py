"""Lazy-reduction accumulation (§4.2): exactness and range discipline.

The bound tracker is the safety property: it must refuse the accumulation
*before* any 64-bit wraparound, for both deferral strategies.
"""

import numpy as np
import pytest

from repro.errors import AccumulatorOverflowError, ParameterError
from repro.poly.lazy import LazyAccumulator
from repro.rns.reduction import make_reducer

Q_TERMINAL = 33554467  # ~2^25: raw strategy has ~64 terms of headroom
Q_MAIN = 1073741969  # ~2^30: raw strategy has only ~2
LANES = 64


def _dot_reference(av, bv, q):
    expect = np.zeros(av.shape[1], dtype=object)
    for a, b in zip(av, bv):
        expect = (expect + a.astype(object) * b.astype(object)) % q
    return expect.astype(np.uint64)


@pytest.mark.parametrize("strategy", ("reduced", "raw"))
def test_smr_lazy_dot_is_exact(strategy, rng):
    q = Q_TERMINAL
    red = make_reducer("smr", q)
    k = 32
    av = rng.integers(0, q, (k, LANES), dtype=np.uint64)
    bv = rng.integers(0, q, (k, LANES), dtype=np.uint64)
    acc = LazyAccumulator(red, LANES, strategy=strategy)
    for a, b in zip(av, bv):
        # Montgomery-form operand cancels Alg. 2's 2^-32, as in the NTT.
        acc.accumulate_product(a.astype(np.int64), red.to_form(b))
    assert acc.terms == k
    assert np.array_equal(acc.fold(), _dot_reference(av, bv, q))


def test_unsigned_lazy_dot_is_exact(rng):
    q = Q_MAIN
    red = make_reducer("barrett", q)
    k = 16
    av = rng.integers(0, q, (k, LANES), dtype=np.uint64)
    bv = rng.integers(0, q, (k, LANES), dtype=np.uint64)
    acc = LazyAccumulator(red, LANES)
    for a, b in zip(av, bv):
        acc.accumulate_product(a, b)
    assert np.array_equal(acc.fold(), _dot_reference(av, bv, q))


def test_shoup_lazy_uses_precomputed_companions(rng):
    q = Q_MAIN
    red = make_reducer("shoup", q)
    a = rng.integers(0, q, LANES, dtype=np.uint64)
    acc = LazyAccumulator(red, LANES)
    acc.accumulate_product(a, 12345)
    acc.accumulate_product(a, q - 1)
    # A caller-supplied companion (amortized across terms) must agree
    # with the on-the-fly path.
    acc.accumulate_product(a, 12345, b_shoup=red.precompute(12345))
    expect = (a.astype(object) * (2 * 12345 + q - 1)) % q
    assert np.array_equal(acc.fold(), expect.astype(np.uint64))


def test_raw_headroom_matches_alg2_precondition():
    """floor(2^31 / q)-ish terms for raw; ~2^32 folds for reduced."""
    red = make_reducer("smr", Q_TERMINAL)
    raw = LazyAccumulator(red, 4, strategy="raw")
    assert raw.headroom == (Q_TERMINAL * 2**31 - 1) // (Q_TERMINAL - 1) ** 2
    assert 60 <= raw.headroom <= 70  # ~64 for a Pr~25 prime
    main = LazyAccumulator(make_reducer("smr", Q_MAIN), 4, strategy="raw")
    assert main.headroom in (1, 2)  # ...but only ~2^31/q for a Pr~30 prime
    reduced = LazyAccumulator(red, 4, strategy="reduced")
    assert reduced.headroom > 2**31


def test_overflow_raises_before_wraparound(rng):
    q = Q_MAIN
    red = make_reducer("smr", q)
    a = rng.integers(0, q, 4, dtype=np.uint64).astype(np.int64)
    b = red.to_form(rng.integers(0, q, 4, dtype=np.uint64))
    acc = LazyAccumulator(red, 4, strategy="raw")
    for _ in range(acc.headroom):
        acc.accumulate_product(a, b)
    snapshot_bound = acc.bound
    with pytest.raises(AccumulatorOverflowError):
        acc.accumulate_product(a, b)
    assert acc.bound == snapshot_bound, "failed accumulation must not charge"
    # After the refusal the accumulator still folds correctly.
    expect = (
        a.astype(object) * red.canonical(red.reduce(b)).astype(object)
    ) * acc.terms % q
    assert np.array_equal(acc.fold(), expect.astype(np.uint64))


def test_accumulate_value_and_reset(rng):
    q = Q_TERMINAL
    red = make_reducer("smr", q)
    acc = LazyAccumulator(red, 4)
    v = np.array([1, 2, 3, 4], dtype=np.int64)
    acc.accumulate_value(v, max_abs=4)
    acc.accumulate_value(-v, max_abs=4)
    assert np.array_equal(acc.fold(), np.zeros(4, dtype=np.uint64))
    acc.reset()
    assert acc.terms == 0 and acc.bound == 0
    assert np.array_equal(acc.fold(), np.zeros(4, dtype=np.uint64))


def test_negative_value_into_unsigned_accumulator_raises(rng):
    """astype(uint64) on a negative would wrap silently; must refuse."""
    red = make_reducer("barrett", Q_MAIN)
    acc = LazyAccumulator(red, 4)
    v = np.array([1, -2, 3, 4], dtype=np.int64)
    bound_before = acc.bound
    with pytest.raises(ParameterError):
        acc.accumulate_value(v, max_abs=4)
    # The refusal must not charge the bound tracker or touch the sum.
    assert acc.bound == bound_before and acc.terms == 0
    assert np.array_equal(acc.fold(), np.zeros(4, dtype=np.uint64))
    # Non-negative signed input is fine; unsigned input is fine.
    acc.accumulate_value(np.abs(v), max_abs=4)
    acc.accumulate_value(np.abs(v).astype(np.uint64), max_abs=4)
    assert np.array_equal(acc.fold(), 2 * np.abs(v).astype(np.uint64))
    # Signed accumulators keep accepting negatives (that is their point).
    signed = LazyAccumulator(make_reducer("smr", Q_MAIN), 4)
    signed.accumulate_value(v, max_abs=4)
    assert np.array_equal(signed.fold(), (v % Q_MAIN).astype(np.uint64))


def test_shoup_accumulation_casts_to_acc_dtype(rng):
    red = make_reducer("shoup", Q_MAIN)
    acc = LazyAccumulator(red, LANES)
    a = rng.integers(0, Q_MAIN, LANES, dtype=np.uint64)
    acc.accumulate_product(a, 7)
    assert acc.acc.dtype == np.uint64


def test_batched_reducer_accumulator(rng):
    """One LazyAccumulator spanning an (L, N) limb matrix (§4.2 batched)."""
    qs = [Q_TERMINAL, Q_MAIN]
    red = make_reducer("barrett", qs)
    k = 8
    av = [
        np.stack([rng.integers(0, q, LANES, dtype=np.uint64) for q in qs])
        for _ in range(k)
    ]
    bv = [
        np.stack([rng.integers(0, q, LANES, dtype=np.uint64) for q in qs])
        for _ in range(k)
    ]
    acc = LazyAccumulator(red, (len(qs), LANES))
    for a, b in zip(av, bv):
        acc.accumulate_product(a, b)
    got = acc.fold()
    for i, q in enumerate(qs):
        expect = _dot_reference(
            np.stack([a[i] for a in av]), np.stack([b[i] for b in bv]), q
        )
        assert np.array_equal(got[i], expect)
    # Worst-case bound tracking follows the largest limb.
    assert acc.q == max(qs)


def test_strategy_validation():
    red = make_reducer("barrett", Q_TERMINAL)
    with pytest.raises(ParameterError):
        LazyAccumulator(red, 4, strategy="raw")  # raw needs SMR
    with pytest.raises(ParameterError):
        LazyAccumulator(red, 4, strategy="eager")
    smr = make_reducer("smr", Q_TERMINAL)
    raw = LazyAccumulator(smr, 4, strategy="raw")
    with pytest.raises(ParameterError):
        raw.accumulate_value(np.zeros(4, dtype=np.int64), max_abs=1)


# -- fold_into: scratch-buffered terminal fold (PR 3) -----------------------
@pytest.mark.parametrize("strategy", ["reduced", "raw"])
def test_fold_into_matches_fold(strategy, rng):
    smr = make_reducer("smr", Q_TERMINAL)
    lanes = rng.integers(0, Q_TERMINAL, 8, dtype=np.uint64).astype(np.int64)
    build = lambda: (  # noqa: E731
        LazyAccumulator(smr, 8, strategy=strategy)
        .accumulate_product(lanes, np.int64(12345))
    )
    expect = build().fold()
    out = np.empty(8, np.uint64)
    got = build().fold_into(out)
    assert got is out
    assert np.array_equal(out, expect)


def test_fold_into_unsigned_and_validation(rng):
    red = make_reducer("barrett", Q_TERMINAL)
    values = rng.integers(0, Q_TERMINAL, 8, dtype=np.uint64)
    acc = LazyAccumulator(red, 8).accumulate_value(values, Q_TERMINAL - 1)
    expect = acc.fold()
    acc2 = LazyAccumulator(red, 8).accumulate_value(values, Q_TERMINAL - 1)
    out = np.empty(8, np.uint64)
    assert np.array_equal(acc2.fold_into(out), expect)
    with pytest.raises(ParameterError, match="buffer"):
        acc2.fold_into(np.empty(7, np.uint64))  # wrong shape
    with pytest.raises(ParameterError, match="buffer"):
        acc2.fold_into(np.empty(8, np.int64))  # wrong dtype


def test_fold_into_consumes_accumulator(rng):
    """fold_into documents destructive semantics: reset before reuse."""
    red = make_reducer("barrett", Q_TERMINAL)
    acc = LazyAccumulator(red, 4)
    acc.accumulate_value(np.full(4, 7, np.uint64), 7)
    out = np.empty(4, np.uint64)
    acc.fold_into(out)
    acc.reset()
    assert acc.terms == 0 and acc.bound == 0
    assert np.all(acc.acc == 0)


def test_fold_into_rejects_aliased_scratch(rng):
    """Regression (scratch-reuse audit): folding into a buffer that
    aliases the accumulator would read half-folded state through the
    alias — the guard refuses both full and partial overlap."""
    red = make_reducer("barrett", Q_TERMINAL)
    acc = LazyAccumulator(red, 8)
    acc.accumulate_value(rng.integers(0, Q_TERMINAL, 8, np.uint64),
                         Q_TERMINAL - 1)
    with pytest.raises(ParameterError, match="alias"):
        acc.fold_into(acc.acc)
    with pytest.raises(ParameterError, match="alias"):
        acc.fold_into(acc.acc[:])  # a view counts too
    # A distinct buffer still works after the refused calls.
    out = np.empty(8, np.uint64)
    acc.fold_into(out)


def test_relinearize_then_rescale_chain_shares_no_scratch(rng):
    """The evaluator's relinearize-then-rescale double-use: running the
    fused key switch and an exact_rescale back to back (twice) must give
    the same bits as fresh single-use pipelines — a shared or aliased
    scratch buffer between the two kernels would corrupt round two."""
    from repro.poly.basis_conv import KeySwitchKey
    from repro.poly.rns_poly import PolyContext
    from repro.rns.primes import ntt_friendly_primes

    n = 64
    t = ntt_friendly_primes(25, 1, n, kind="terminal")
    m = ntt_friendly_primes(30, 3, n, exclude={p.value for p in t})
    primes = [p.value for p in t + m]
    aux = [
        p.value
        for p in ntt_friendly_primes(30, 3, n, kind="aux",
                                     exclude=set(primes))
    ]
    ctx = PolyContext(n, primes, "smr")
    ksk = KeySwitchKey.random(ctx, aux, 2, rng)
    a = ctx.random(rng)

    def chain():
        c0, c1 = a.key_switch(ksk)
        return c0.exact_rescale(), c1.exact_rescale()

    first = chain()
    second = chain()  # same persistent switcher/rescale scratch, reused
    for f, s in zip(first, second):
        assert np.array_equal(f.limbs, s.limbs)
    # And interleaving another key switch between the rescales changes
    # nothing either (the rescale result must not live in KS scratch).
    c0, c1 = a.key_switch(ksk)
    r0 = c0.exact_rescale()
    _ = a.key_switch(ksk)
    assert np.array_equal(r0.limbs, first[0].limbs)
