"""Serving-layer tests: scheduler, admission, deadlines, breaker, errors.

Everything async runs through ``asyncio.run`` inside synchronous tests
(the environment has no pytest-asyncio), and every random draw — load
schedules, backoff jitter, fault plans — is seeded, so the suite is
deterministic.
"""

import asyncio
import math
import time

import numpy as np
import pytest

from repro import hooks
from repro.context import CkksContext
from repro.errors import (
    AdmissionError,
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFaultError,
    ParameterError,
    PlanExecutionError,
    QueueFullError,
    ServingError,
)
from repro.poly.rns_poly import data_fingerprint
from repro.serving import (
    CircuitBreaker,
    CkksServer,
    FaultInjector,
    ServingConfig,
    verify_delivered,
)
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN

SCALE_BITS = 30
SCALE = 2.0**SCALE_BITS


@pytest.fixture(scope="module")
def cc() -> CkksContext:
    """One tiny context (N=64, 32 slots) shared by the whole module."""
    return CkksContext(ring_degree=64, num_main=3, num_aux=3, dnum=2, seed=11)


def make_affine(cc):
    """y = 0.5 x + 0.25 — exercises multiply_plain/add_plain constants."""

    def build(tracer, x):
        half = cc.encoder.encode([0.5], SCALE, num_slots=1)
        prod = tracer.multiply_plain(x, half)
        bump = cc.encoder.encode([0.25], prod.scale, num_slots=1)
        return tracer.rescale(tracer.add_plain(prod, bump))

    return build


def make_square(cc):
    def build(tracer, x):
        return tracer.rescale(tracer.multiply(x, x))

    return build


def make_server(cc, *, injector=None, **overrides) -> CkksServer:
    defaults = dict(
        batch_window_s=0.01,
        default_deadline_s=5.0,
        watchdog_s=2.0,
        backoff_base_s=0.001,
        backoff_cap_s=0.005,
        breaker_cooldown_s=0.2,
        seed=3,
    )
    defaults.update(overrides)
    server = CkksServer(cc, config=ServingConfig(**defaults),
                        injector=injector)
    server.register_tenant("affine", make_affine(cc), scale_bits=SCALE_BITS)
    server.register_tenant("square", make_square(cc), scale_bits=SCALE_BITS)
    return server


def serve(server, coro):
    """start -> run coro -> drain/stop, inside one asyncio.run."""

    async def driver():
        await server.start()
        try:
            return await coro
        finally:
            await server.stop()

    return asyncio.run(asyncio.wait_for(driver(), 60.0))


# -- admission control -----------------------------------------------------

def test_register_rejects_duplicate(cc):
    server = make_server(cc)
    with pytest.raises(AdmissionError) as ei:
        server.register_tenant("affine", make_affine(cc), scale_bits=SCALE_BITS)
    assert ei.value.code == "duplicate-tenant"
    assert ei.value.tenant == "affine"


def test_register_rejects_untraceable_circuit(cc):
    """A circuit that dies at trace time is refused with trace context."""
    server = make_server(cc)

    def too_deep(tracer, x):
        y = x
        for _ in range(8):
            y = tracer.rescale(tracer.multiply(y, y))
        return y

    with pytest.raises(AdmissionError) as ei:
        server.register_tenant("deep", too_deep, scale_bits=SCALE_BITS)
    assert ei.value.code == "trace-rejected"


def test_register_rejects_statically_unsound_plan(cc):
    """A plan that traces but fails plan.analyze is refused pre-flight."""
    server = make_server(cc)

    def mismatched(tracer, x):
        # A raw (unrescaled) product added to its own input: scales
        # diverge by Delta, which the tracer tolerates within rtol but
        # static analysis flags as a hard scale-mismatch error.
        half = cc.encoder.encode([0.5], SCALE, num_slots=1)
        return tracer.add(tracer.multiply_plain(x, half), x)

    with pytest.raises(AdmissionError) as ei:
        server.register_tenant("bad", mismatched, scale_bits=SCALE_BITS)
    assert ei.value.code in ("analysis-rejected", "trace-rejected")


def test_submit_unknown_tenant(cc):
    server = make_server(cc)
    with pytest.raises(AdmissionError) as ei:
        serve(server, server.submit("nobody", 1.0))
    assert ei.value.code == "unknown-tenant"


# -- the happy path --------------------------------------------------------

def test_single_request_roundtrip(cc):
    server = make_server(cc)
    value = serve(server, server.submit("affine", 0.5))
    assert math.isclose(value.real, 0.5 * 0.5 + 0.25, abs_tol=1e-4)
    assert abs(value.imag) < 1e-4
    assert server.metrics["served"] == 1
    assert verify_delivered(server) == 0


def test_batched_requests_share_ciphertexts(cc):
    """Concurrent same-tenant queries pack into shared sparse packings."""
    server = make_server(cc)
    payloads = [round(v, 3) for v in np.linspace(-1.0, 1.0, 12)]

    async def fire():
        return await asyncio.gather(
            *(server.submit("square", v) for v in payloads)
        )

    results = serve(server, fire())
    for v, got in zip(payloads, results):
        assert math.isclose(got.real, v * v, abs_tol=1e-4)
    # 12 queries fit one 16-slot packing: far fewer batches than requests.
    assert server.metrics["batches"] < len(payloads)
    assert any(rec.slots >= 12 for rec in server.batch_log)
    assert verify_delivered(server) == 0


def test_mixed_tenants_batch_separately(cc):
    server = make_server(cc)

    async def fire():
        return await asyncio.gather(
            server.submit("affine", 0.2), server.submit("square", 0.2)
        )

    affine, square = serve(server, fire())
    assert math.isclose(affine.real, 0.35, abs_tol=1e-4)
    assert math.isclose(square.real, 0.04, abs_tol=1e-4)
    tenants = {rec.tenant for rec in server.batch_log}
    assert tenants == {"affine", "square"}


# -- deadlines, cancellation, backpressure ---------------------------------

def test_expired_request_rejected_structurally(cc):
    server = make_server(cc, batch_window_s=0.2)
    with pytest.raises(DeadlineExceededError) as ei:
        serve(server, server.submit("affine", 0.1, deadline_s=0.001))
    assert ei.value.code == "deadline-exceeded"
    assert ei.value.request_id is not None


def test_cancellation_never_strands_the_batch(cc):
    """A cancelled co-batched slot is skipped; neighbours still deliver."""
    server = make_server(cc, batch_window_s=0.05)

    async def fire():
        keeper = asyncio.ensure_future(server.submit("square", 0.3))
        victim = asyncio.ensure_future(server.submit("square", 0.7))
        await asyncio.sleep(0)  # both enqueued into the same window
        victim.cancel()
        return await keeper

    value = serve(server, fire())
    assert math.isclose(value.real, 0.09, abs_tol=1e-4)
    assert server.metrics["cancelled"] >= 1
    assert verify_delivered(server) == 0


def test_queue_full_rejects_and_sheds_by_priority(cc):
    server = make_server(cc, max_queue=2)

    async def fire():
        outcomes = {}
        # Fill the queue without letting the scheduler drain it: the
        # server isn't started yet, so submissions only enqueue.
        low = asyncio.ensure_future(
            server.submit("affine", 0.1, priority=0)
        )
        mid = asyncio.ensure_future(
            server.submit("affine", 0.2, priority=1)
        )
        await asyncio.sleep(0.01)
        # Same priority: rejected outright, nothing to shed.
        with pytest.raises(QueueFullError) as ei:
            await server.submit("affine", 0.3, priority=0)
        outcomes["reject-code"] = ei.value.code
        # Higher priority: the lowest-priority queued request is shed.
        high = asyncio.ensure_future(
            server.submit("affine", 0.4, priority=5)
        )
        await asyncio.sleep(0.01)
        await server.start()
        outcomes["low"] = await asyncio.gather(low, return_exceptions=True)
        outcomes["mid"] = await mid
        outcomes["high"] = await high
        return outcomes

    async def driver():
        try:
            return await fire()
        finally:
            await server.stop()

    outcomes = asyncio.run(asyncio.wait_for(driver(), 60.0))
    assert outcomes["reject-code"] == "queue-full"
    (low_exc,) = outcomes["low"]
    assert isinstance(low_exc, QueueFullError)
    assert low_exc.code == "load-shed"
    assert math.isclose(outcomes["mid"].real, 0.35, abs_tol=1e-4)
    assert math.isclose(outcomes["high"].real, 0.45, abs_tol=1e-4)
    assert server.metrics["shed"] == 1


# -- circuit breaker -------------------------------------------------------

def test_breaker_state_machine():
    t = {"now": 0.0}
    breaker = CircuitBreaker(3, 10.0, clock=lambda: t["now"])
    assert breaker.state == CLOSED and breaker.allow()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED  # below threshold
    breaker.record_failure()
    assert breaker.state == OPEN and not breaker.allow()
    assert breaker.retry_after_s == pytest.approx(10.0)
    t["now"] = 10.5
    assert breaker.allow()  # cooldown elapsed: half-open trial admitted
    assert breaker.state == HALF_OPEN
    breaker.record_failure()  # trial failed: re-open immediately
    assert breaker.state == OPEN and not breaker.allow()
    t["now"] = 21.0
    assert breaker.allow()
    breaker.record_success()  # trial succeeded: closed, count reset
    assert breaker.state == CLOSED and breaker.failures == 0


def test_breaker_half_open_admits_single_probe():
    """While a trial is in flight, further allow() calls are rejected;
    an unresolved trial goes stale after another cool-down."""
    t = {"now": 0.0}
    breaker = CircuitBreaker(1, 10.0, clock=lambda: t["now"])
    breaker.record_failure()
    assert breaker.state == OPEN
    t["now"] = 10.0
    assert breaker.allow()  # cooldown elapsed: the one trial
    assert breaker.state == HALF_OPEN
    assert not breaker.allow()  # a burst during the trial is rejected
    assert breaker.retry_after_s == pytest.approx(10.0)
    t["now"] = 15.0
    assert not breaker.allow()
    t["now"] = 20.0
    assert breaker.allow()  # stale trial: a fresh probe is admitted
    breaker.record_success()
    assert breaker.state == CLOSED and breaker.allow()


def test_breaker_opens_under_outage_and_resets_after_cooldown(cc):
    """A persistent tenant outage opens the breaker at the threshold;
    after cool-down a trial batch closes it again."""
    injector = FaultInjector(
        5, transient_attempts=100, outages={"square": (0, 2)}
    )
    server = make_server(
        cc, injector=injector,
        max_attempts=2, breaker_threshold=3, breaker_cooldown_s=0.15,
        batch_window_s=0.001,
    )

    async def scenario():
        outcome = {"failed": 0}
        # Three sequential batches during the outage -> breaker opens.
        for _ in range(3):
            with pytest.raises(ServingError) as ei:
                await server.submit("square", 0.5)
            assert ei.value.code == "retries-exhausted"
            outcome["failed"] += 1
        with pytest.raises(CircuitOpenError):
            await server.submit("square", 0.5)
        outcome["state-open"] = server._tenants["square"].breaker.state
        # Other tenants are unaffected by square's breaker.
        affine = await server.submit("affine", 0.5)
        assert math.isclose(affine.real, 0.5, abs_tol=1e-4)
        # After the cool-down the outage window (batches 0-2) is over:
        # the half-open trial succeeds and the breaker closes.
        await asyncio.sleep(0.2)
        value = await server.submit("square", 0.5)
        outcome["state-after"] = server._tenants["square"].breaker.state
        outcome["value"] = value
        return outcome

    outcome = serve(server, scenario())
    assert outcome["state-open"] == OPEN
    assert outcome["state-after"] == CLOSED
    assert math.isclose(outcome["value"].real, 0.25, abs_tol=1e-4)
    assert injector.injected["outage"] >= 3


# -- config validation & loop survival -------------------------------------

def test_config_rejects_non_power_of_two_batch_cap():
    """A non-power-of-two cap would fail validate_slots on every batch;
    it is rejected at configuration time instead."""
    with pytest.raises(ValueError, match="power of two"):
        ServingConfig(max_batch_slots=3)
    with pytest.raises(ValueError, match="power of two"):
        ServingConfig(max_batch_slots=0)
    assert ServingConfig(max_batch_slots=4).max_batch_slots == 4


def test_history_collections_are_bounded(cc):
    server = make_server(cc)
    assert server.batch_log.maxlen == server.config.max_recorded_batches
    assert server.latencies_s.maxlen == server.config.max_latency_samples


def test_unexpected_error_rejects_batch_and_keeps_loop_alive(cc):
    """An exception escaping the per-batch recovery machinery must
    surface as a structured internal-error rejection, not kill the
    scheduler loop and strand every later submission."""
    server = make_server(cc)
    real_encrypt = server.cc.encrypt
    boom = {"armed": True}

    def flaky_encrypt(*args, **kwargs):
        if boom["armed"]:
            boom["armed"] = False
            raise RuntimeError("encrypt exploded")
        return real_encrypt(*args, **kwargs)

    async def scenario():
        server.cc.encrypt = flaky_encrypt
        try:
            with pytest.raises(ServingError) as ei:
                await server.submit("affine", 0.5)
            assert ei.value.code == "internal-error"
            assert "RuntimeError" in str(ei.value)
            # the loop survived: the next submission is served normally
            value = await server.submit("affine", 0.5)
            assert math.isclose(value.real, 0.5, abs_tol=1e-4)
        finally:
            del server.cc.encrypt

    serve(server, scenario())
    assert server.metrics["internal_errors"] == 1
    assert server.metrics["served"] == 1


# -- step-level error context ----------------------------------------------

def test_plan_execution_error_names_step_and_tag(cc):
    build = make_affine(cc)
    tracer = cc._tracer()
    plan = tracer.compile(build(tracer, tracer.input("x", scale=SCALE)))
    ct = cc.encrypt([0.5] * 32, scale=SCALE)

    def explode(site, payload):
        if site == "rns_poly.rescale":
            raise InjectedFaultError("kaboom")

    hooks.install(explode)
    try:
        with pytest.raises(PlanExecutionError) as ei:
            plan.run(ct, tag="tenant-x/42")
    finally:
        hooks.uninstall()
    err = ei.value
    assert isinstance(err.__cause__, InjectedFaultError)
    assert err.step_index >= 0
    assert "rescale" in err.label or "multiply" in err.label
    assert err.tag == "tenant-x/42"
    assert "tenant-x/42" in str(err)


def test_input_validation_keeps_parameter_error(cc):
    """Input-step failures keep their precise ParameterError contract."""
    build = make_affine(cc)
    tracer = cc._tracer()
    plan = tracer.compile(build(tracer, tracer.input("x", scale=SCALE)))
    with pytest.raises(ParameterError, match="arrives at scale"):
        plan.run(cc.encrypt([0.5] * 32, scale=2.0**29))


# -- fingerprints ----------------------------------------------------------

def test_data_fingerprint_is_position_sensitive():
    a = np.arange(16, dtype=np.uint64).reshape(4, 4)
    assert data_fingerprint(a) == data_fingerprint(a.copy())
    swapped = a.copy()
    swapped[0, 0], swapped[0, 1] = swapped[0, 1], swapped[0, 0]
    assert data_fingerprint(swapped) != data_fingerprint(a)
    assert data_fingerprint(a[:2]) != data_fingerprint(a)


def test_ciphertext_fingerprint_detects_each_component(cc):
    ct = cc.encrypt([0.1, 0.2], scale=SCALE, num_slots=2)
    base = ct.fingerprint()
    assert base == ct.fingerprint()
    ct.c1.limbs[1, 3] ^= np.uint64(1)
    ct.c1.state.invalidate()
    assert ct.fingerprint() != base
    ct.c1.limbs[1, 3] ^= np.uint64(1)
    ct.c1.state.invalidate()
    assert ct.fingerprint() == base
    ct.state.scale *= 2.0
    assert ct.fingerprint() != base


def test_plan_fingerprint_covers_prepared_operands(cc):
    """Corrupting the backend-prepared constant array — the buffer the
    pointwise kernel actually reads — must change the plan fingerprint
    even though the source limbs are untouched."""
    build = make_affine(cc)
    tracer = cc._tracer()
    plan = tracer.compile(build(tracer, tracer.input("x", scale=SCALE)))
    base = plan.fingerprint()
    assert base == plan.fingerprint()
    corrupted = FaultInjector(0).corrupt_plan(plan)
    assert corrupted
    assert plan.fingerprint() != base


def test_rebuilt_plan_is_bit_identical(cc):
    """The rebuild path must reproduce the exact original computation."""
    server = make_server(cc)
    tenant = server._tenants["affine"]
    ct = cc.encrypt([0.3] * 4, scale=SCALE, num_slots=4)
    before = server.cc.decrypt(tenant.plan.run(ct), num_slots=4)
    fp = tenant.plan_fp
    server._rebuild_plan(tenant)
    assert tenant.plan_fp == fp
    after = server.cc.decrypt(tenant.plan.run(ct), num_slots=4)
    assert np.array_equal(before, after)


# -- lifecycle -------------------------------------------------------------

def test_server_survives_multiple_asyncio_runs(cc):
    server = make_server(cc)
    first = serve(server, server.submit("affine", 0.1))
    second = serve(server, server.submit("affine", 0.1))
    # Encryption is randomized, so only the decoded values agree.
    assert math.isclose(first.real, 0.3, abs_tol=1e-4)
    assert math.isclose(second.real, 0.3, abs_tol=1e-4)
    assert server.metrics["served"] == 2


def test_stop_drains_pending_requests(cc):
    server = make_server(cc, batch_window_s=0.05)

    async def fire():
        await server.start()
        fut = asyncio.ensure_future(server.submit("square", 0.6))
        await asyncio.sleep(0)  # enqueued, not yet batched
        await server.stop()  # must drain, not strand
        assert fut.done()
        return await fut

    value = asyncio.run(asyncio.wait_for(fire(), 60.0))
    assert math.isclose(value.real, 0.36, abs_tol=1e-4)


def test_latency_metrics_recorded(cc):
    server = make_server(cc)
    start = time.monotonic()
    serve(server, server.submit("affine", 0.0))
    wall = time.monotonic() - start
    assert len(server.latencies_s) == 1
    assert 0.0 < server.latencies_s[0] <= wall
