"""Rescaling-cycle search validation (§3.2).

Pins the paper's headline example: Δ = 2^40 over the 25-30 prime system
has the period-3 terminal-count orbit (2, 0, 4) with at most four terminal
primes, and every move obeys the exact log identity.
"""

import pytest

from repro.errors import ParameterError
from repro.rns.cycle import (
    enumerate_moves,
    find_rescaling_cycle,
)


def test_paper_delta_2_40_cycle():
    cycle = find_rescaling_cycle(40)
    assert cycle.period == 3
    assert cycle.peak_terminals == 4
    assert sorted(cycle.terminal_counts) == [0, 2, 4]
    # The orbit is (2, 0, 4) up to the base-choosing rotation.
    doubled = cycle.terminal_counts * 2
    assert any(doubled[i : i + 3] == (2, 0, 4) for i in range(3)), cycle.terminal_counts


def test_moves_satisfy_log_identity():
    cycle = find_rescaling_cycle(40)
    for move in cycle.moves:
        assert 30 * move.main_delta + 25 * move.terminal_delta == 40
    # One full period keeps terminal count fixed and consumes mains.
    assert sum(m.terminal_delta for m in cycle.moves) == 0
    assert cycle.mains_consumed_per_period > 0


def test_enumerate_moves_window_is_exact():
    """The derived main-delta window loses no moves and adds no junk."""
    moves = enumerate_moves(40, 30, 25, 6)
    assert {(m.main_delta, m.terminal_delta) for m in moves} == {
        (-2, 4),
        (3, -2),
    }
    # Brute-force over a huge window finds nothing more.
    brute = set()
    for main_delta in range(-100, 101):
        rem = 40 - 30 * main_delta
        if rem % 25 == 0 and abs(rem // 25) <= 6 and (main_delta, rem // 25) != (0, 0):
            brute.add((main_delta, rem // 25))
    assert {(m.main_delta, m.terminal_delta) for m in moves} == brute


def test_enumerate_moves_symmetric_bounds():
    """Window half-width follows terminal_bits*max_terminal/main_bits."""
    moves = enumerate_moves(0, 30, 25, 6)
    deltas = sorted(m.main_delta for m in moves)
    # log_delta=0 makes the window symmetric around 0.
    assert deltas == sorted(-d for d in deltas)
    for m in moves:
        assert 30 * m.main_delta + 25 * m.terminal_delta == 0


def test_counts_along_levels():
    cycle = find_rescaling_cycle(40)
    count = cycle.terminal_counts[0]
    for level in range(12):
        assert cycle.terminal_count_at(level) == count
        assert count >= 0
        count += cycle.moves[level % cycle.period].terminal_delta
    # main_count_at advances by mains_consumed_per_period each period.
    base = 10
    assert (
        cycle.main_count_at(cycle.period, base)
        == base + cycle.mains_consumed_per_period
    )


def test_impossible_delta_raises():
    # 41 is not representable: 30m + 25t = 41 has no integer solutions
    # (the left side is always a multiple of 5).
    with pytest.raises(ParameterError):
        find_rescaling_cycle(41)


def test_other_prime_systems_still_solve():
    """§3.2: 'similar prime systems, e.g. 24-30' for other deltas."""
    cycle = find_rescaling_cycle(42, main_bits=30, terminal_bits=24)
    assert cycle.period >= 1
    for move in cycle.moves:
        assert 30 * move.main_delta + 24 * move.terminal_delta == 42


# -- §3.2 alternative 24/30 prime system (PR 3 satellite) -------------------
def test_24_30_system_delta_2_42():
    """Δ = 2^42 needs the 24-30 system: 30m + 25t = 42 is unsolvable
    (multiples of 5 only), while 30m + 24t = 42 is (gcd 6 | 42)."""
    with pytest.raises(ParameterError):
        find_rescaling_cycle(42)  # 25/30 cannot represent it
    cycle = find_rescaling_cycle(42, main_bits=30, terminal_bits=24)
    assert cycle.period >= 1
    assert cycle.mains_consumed_per_period > 0


def test_24_30_level_accounting():
    cycle = find_rescaling_cycle(42, main_bits=30, terminal_bits=24)
    base_main = 10
    for level in range(3 * cycle.period):
        assert cycle.terminal_count_at(level) == cycle.terminal_counts[
            level % cycle.period
        ]
    full_period = cycle.main_count_at(cycle.period, base_main)
    assert full_period == base_main + cycle.mains_consumed_per_period


@pytest.mark.parametrize(
    ("log_delta", "main_bits", "terminal_bits"),
    [(40, 30, 25), (80, 30, 25), (42, 30, 24), (36, 30, 24), (54, 30, 24)],
)
def test_cycle_properties_hold(log_delta, main_bits, terminal_bits):
    """Property test: every returned cycle satisfies the exact log
    identity per move, a consistent terminal-count orbit, and the
    peak-terminal bound."""
    max_terminal = 6
    cycle = find_rescaling_cycle(
        log_delta,
        main_bits=main_bits,
        terminal_bits=terminal_bits,
        max_terminal=max_terminal,
    )
    period = cycle.period
    assert len(cycle.terminal_counts) == period
    for i, move in enumerate(cycle.moves):
        # Exact log identity: each rescale divides by exactly 2^log_delta.
        assert (
            main_bits * move.main_delta
            + terminal_bits * move.terminal_delta
            == log_delta
        )
        # Orbit consistency: the recorded counts follow the moves.
        nxt = cycle.terminal_counts[i] + move.terminal_delta
        assert nxt == cycle.terminal_counts[(i + 1) % period]
        assert 0 <= nxt <= max_terminal
    # Peak-terminal bound: never more live terminals than the search cap.
    assert 0 <= cycle.peak_terminals <= max_terminal
    # Net main consumption is positive (modulus grows with level).
    assert cycle.mains_consumed_per_period > 0
