"""Circuit compiler tests: trace -> plan -> execute.

The load-bearing property is **bit-identity**: replaying a compiled
plan must produce limb-for-limb the same ciphertexts (and float-for-
float the same scale and noise estimates) as running the recorded
program eagerly.  Seeded random programs — drawn over add/sub/negate/
plaintext ops/rotations/conjugation/multiply/rescale with level- and
scale-valid operands — are interpreted both ways across all four
reducer backends and both acceptance ring degrees.  On top of that:
plan reuse across input batches, stale-plan rejection, the unified
Plan protocol, and the compiled matvec / poly_eval entry points.
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.errors import ParameterError, TraceError
from repro.plan import Plan
from repro.poly.basis_conv import HoistedGaloisPlan
from repro.poly.rns_poly import PolyContext
from repro.rns.primes import PrimePool
from repro.scheme import (
    CircuitPlan,
    Evaluator,
    KeyGenerator,
    Plaintext,
    galois_element,
)
from repro.scheme._circuit import CircuitTracer
from repro.scheme.encoder import CanonicalEncoder
from repro.scheme.evaluator import validate_rotations
from repro.scheme._linalg import SlotLinalg

METHODS = ("barrett", "montgomery", "shoup", "smr")
SCALE = 2.0**20
DNUM = 2
ROTS = (1, 2, 3)


@lru_cache(maxsize=None)
def _pool(n: int) -> PrimePool:
    return PrimePool.generate(n, num_main=3, num_terminal=1, num_aux=4)


@lru_cache(maxsize=None)
def _setup(n: int, method: str):
    pool = _pool(n)
    ctx = PolyContext.from_pool(pool, num_terminal=1, num_main=3, method=method)
    aux = [p.value for p in pool.extension_basis(1, 3, dnum=DNUM)]
    keygen = KeyGenerator(ctx, aux, DNUM, np.random.default_rng(0xC19C + n))
    ev = Evaluator.from_keygen(keygen, rotations=ROTS, conjugate=True)
    return ctx, keygen, ev


@lru_cache(maxsize=None)
def _plaintexts(n: int, method: str) -> tuple[Plaintext, ...]:
    ctx, _, _ = _setup(n, method)
    r = np.random.default_rng(0xF1A7 + n)
    return tuple(
        Plaintext.encode(ctx, r.uniform(-1, 1, n), SCALE) for _ in range(3)
    )


def _fresh_inputs(n: str, method: str, seed: int):
    ctx, keygen, ev = _setup(n, method)
    r = np.random.default_rng(seed)
    cts = []
    for _ in range(2):
        pt = Plaintext.encode(ctx, r.uniform(-1, 1, ctx.ring_degree), SCALE)
        cts.append(ev.encrypt(pt, keygen.public, r))
    return cts


# -- seeded random program generator ------------------------------------


def _gen_ops(seed: int, ctx, num_pts: int, num_random: int = 10):
    """A random level/scale-valid op list over two inputs.

    Ops reference earlier values by index; the same list replays
    against an eager evaluator and a tracer.  A forced prefix
    guarantees every program exercises shared-source rotations, a
    relinearizing multiply and a rescale.
    """
    L = ctx.num_limbs
    r = np.random.default_rng(seed)
    meta = [(L, SCALE), (L, SCALE)]  # (level, scale) per value

    def push(level, scale):
        meta.append((level, float(scale)))

    ops = [("rot", 0, 1), ("rot", 0, 2), ("mul", 0, 1)]
    push(L, SCALE)
    push(L, SCALE)
    push(L, SCALE * SCALE)

    for _ in range(num_random):
        for kind in r.permutation(
            ["add", "sub", "neg", "rot", "conj", "mul", "mp", "rescale"]
        ):
            if kind in ("add", "sub"):
                groups: dict[tuple, list[int]] = {}
                for idx, key in enumerate(meta):
                    groups.setdefault(key, []).append(idx)
                key = tuple(groups)[int(r.integers(len(groups)))]
                i, j = (int(r.choice(groups[key])) for _ in range(2))
                ops.append((kind, i, j))
                push(*key)
            elif kind == "neg":
                i = int(r.integers(len(meta)))
                ops.append(("neg", i))
                push(*meta[i])
            elif kind in ("rot", "conj"):
                full = [i for i, (lv, _) in enumerate(meta) if lv == L]
                i = int(r.choice(full))
                if kind == "rot":
                    ops.append(("rot", i, int(r.choice(ROTS))))
                else:
                    ops.append(("conj", i))
                push(*meta[i])
            elif kind == "mul":
                full = [i for i, (lv, _) in enumerate(meta) if lv == L]
                i, j = (int(r.choice(full)) for _ in range(2))
                ops.append(("mul", i, j))
                push(L, meta[i][1] * meta[j][1])
            elif kind == "mp":
                full = [i for i, (lv, _) in enumerate(meta) if lv == L]
                i = int(r.choice(full))
                p = int(r.integers(num_pts))
                ops.append(("mp", i, p))
                push(L, meta[i][1] * SCALE)
            else:  # rescale
                deep = [i for i, (lv, _) in enumerate(meta) if lv >= 2]
                i = int(r.choice(deep))
                lv, sc = meta[i]
                ops.append(("rescale", i))
                push(lv - 1, sc / ctx.primes[lv - 1])
            break
    second = int(r.integers(len(meta) - 1))
    return ops, (len(meta) - 1, second)


def _interpret(E, ops, x, y, pts):
    vals = [x, y]
    for op in ops:
        kind = op[0]
        if kind == "add":
            vals.append(E.add(vals[op[1]], vals[op[2]]))
        elif kind == "sub":
            vals.append(E.sub(vals[op[1]], vals[op[2]]))
        elif kind == "neg":
            vals.append(E.negate(vals[op[1]]))
        elif kind == "rot":
            vals.append(E.rotate(vals[op[1]], op[2]))
        elif kind == "conj":
            vals.append(E.conjugate(vals[op[1]]))
        elif kind == "mul":
            vals.append(E.multiply(vals[op[1]], vals[op[2]]))
        elif kind == "mp":
            vals.append(E.multiply_plain(vals[op[1]], pts[op[2]]))
        elif kind == "rescale":
            vals.append(E.rescale(vals[op[1]]))
        else:  # pragma: no cover
            raise AssertionError(kind)
    return vals


def _assert_ct_equal(got, want, label=""):
    assert np.array_equal(got.c0.limbs, want.c0.limbs), f"{label} c0"
    assert np.array_equal(got.c1.limbs, want.c1.limbs), f"{label} c1"
    assert got.scale == want.scale, label
    assert got.noise_bits == want.noise_bits, label


def _compile_and_compare(n, method, seed):
    ctx, _, ev = _setup(n, method)
    pts = _plaintexts(n, method)
    ops, (o1, o2) = _gen_ops(seed, ctx, len(pts))
    ct_x, ct_y = _fresh_inputs(n, method, 0xAB0 + seed)

    eager = _interpret(ev, ops, ct_x, ct_y, pts)
    tracer = CircuitTracer(ev)
    traced = _interpret(
        tracer,
        ops,
        tracer.input("x", scale=SCALE),
        tracer.input("y", scale=SCALE),
        pts,
    )
    plan = tracer.compile({"a": traced[o1], "b": traced[o2]})
    got = plan.run(x=ct_x, y=ct_y)
    _assert_ct_equal(got["a"], eager[o1], f"seed={seed} out a")
    _assert_ct_equal(got["b"], eager[o2], f"seed={seed} out b")
    return plan


class TestRandomProgramBitIdentity:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_n1024_all_backends(self, method, seed):
        _compile_and_compare(1024, method, seed)

    @pytest.mark.parametrize("method", METHODS)
    def test_n4096_all_backends(self, method):
        _compile_and_compare(4096, method, 7)

    def test_rotate_hoisted_traces_to_shared_hoist(self):
        ctx, _, ev = _setup(1024, "smr")
        ct_x, _ = _fresh_inputs(1024, "smr", 0xB00)
        hs = ev.rotate_hoisted(ct_x, [1, 2, 3])
        eager = ev.add(ev.add(hs[1], hs[2]), hs[3])

        tracer = CircuitTracer(ev)
        x = tracer.input("x", scale=SCALE)
        ts = tracer.rotate_hoisted(x, [1, 2, 3])
        plan = tracer.compile(tracer.add(tracer.add(ts[1], ts[2]), ts[3]))
        _assert_ct_equal(plan.run(x=ct_x), eager)
        kinds = [s.kind for s in plan._steps]
        assert kinds.count("hoist") == 1  # one shared ModUp
        assert kinds.count("galois") == 3


class TestPlanReuse:
    def test_one_plan_many_batches(self):
        n, method = 1024, "shoup"
        ctx, _, ev = _setup(n, method)
        pts = _plaintexts(n, method)
        ops, (o1, o2) = _gen_ops(4, ctx, len(pts))
        tracer = CircuitTracer(ev)
        traced = _interpret(
            tracer,
            ops,
            tracer.input("x", scale=SCALE),
            tracer.input("y", scale=SCALE),
            pts,
        )
        plan = tracer.compile({"a": traced[o1], "b": traced[o2]})
        for batch in range(3):
            ct_x, ct_y = _fresh_inputs(n, method, 0x1000 + batch)
            eager = _interpret(ev, ops, ct_x, ct_y, pts)
            got = plan.run({"x": ct_x, "y": ct_y})
            _assert_ct_equal(got["a"], eager[o1], f"batch={batch}")
            _assert_ct_equal(got["b"], eager[o2], f"batch={batch}")


class TestStalePlanRejection:
    def _plan(self, n=1024, method="smr"):
        _, _, ev = _setup(n, method)
        tracer = CircuitTracer(ev)
        x = tracer.input("x", scale=SCALE)
        return ev, tracer.compile(tracer.rotate(x, 1))

    def test_wrong_level_input(self):
        ev, plan = self._plan()
        (ct_x, ct_y) = _fresh_inputs(1024, "smr", 1)
        stale = ev.rescale(ev.multiply(ct_x, ct_y))
        with pytest.raises(ParameterError, match="stale plan for input 'x'"):
            plan.run(x=stale)

    def test_wrong_context_input(self):
        _, plan = self._plan()
        foreign, _ = _fresh_inputs(4096, "smr", 1)
        with pytest.raises(ParameterError, match="stale plan for input 'x'"):
            plan.run(x=foreign)

    def test_wrong_scale_input(self):
        ctx, keygen, ev = _setup(1024, "smr")
        _, plan = self._plan()
        r = np.random.default_rng(5)
        pt = Plaintext.encode(ctx, r.uniform(-1, 1, ctx.ring_degree), 2.0**21)
        ct = ev.encrypt(pt, keygen.public, r)
        with pytest.raises(ParameterError, match="arrives at scale"):
            plan.run(x=ct)

    def test_missing_and_unexpected_inputs(self):
        _, plan = self._plan()
        ct_x, _ = _fresh_inputs(1024, "smr", 1)
        with pytest.raises(ParameterError, match="missing \\['x'\\]"):
            plan.run()
        with pytest.raises(ParameterError, match="unexpected \\['z'\\]"):
            plan.run(x=ct_x, z=ct_x)

    def test_validate_rejects_foreign_context(self):
        _, plan = self._plan()
        own_ctx, _, _ = _setup(1024, "smr")
        plan.validate(own_ctx)  # same chain: fine
        other_ctx, _, _ = _setup(4096, "smr")
        with pytest.raises(ParameterError, match="stale plan"):
            plan.validate(other_ctx)


class TestPlanProtocol:
    def test_conformance(self):
        ctx, keygen, ev = _setup(1024, "smr")
        _, plan = TestStalePlanRejection()._plan()
        assert isinstance(plan, Plan)
        assert isinstance(plan, CircuitPlan)

        switcher = ctx.key_switcher(tuple(keygen.aux), DNUM)
        ks_plan = switcher.plan_for("ntt", output_domain="coeff")
        assert isinstance(ks_plan, Plan)
        g_plan = HoistedGaloisPlan.build(
            switcher,
            [galois_element(1, 1024)],
            [keygen.rotation_key(1)],
        )
        assert isinstance(g_plan, Plan)

    def test_costs_are_positive(self):
        _, plan = TestStalePlanRejection()._plan()
        cost = plan.cost()
        assert cost.modmuls > 0 and cost.modadds > 0

    def test_circuit_cost_covers_every_step(self):
        ctx, _, ev = _setup(1024, "smr")
        pts = _plaintexts(1024, "smr")
        ops, (o1, o2) = _gen_ops(9, ctx, len(pts))
        tracer = CircuitTracer(ev)
        traced = _interpret(
            tracer,
            ops,
            tracer.input("x", scale=SCALE),
            tracer.input("y", scale=SCALE),
            pts,
        )
        plan = tracer.compile({"a": traced[o1], "b": traced[o2]})
        assert plan.cost().modmuls > 0


class TestTracer:
    def test_trace_has_no_data(self):
        _, _, ev = _setup(1024, "smr")
        tracer = CircuitTracer(ev)
        x = tracer.input("x", scale=SCALE)
        with pytest.raises(TraceError, match="no component polynomials"):
            x.c0
        with pytest.raises(TraceError, match="no noise estimate"):
            x.noise_bits

    def test_encrypt_decrypt_refused(self):
        ctx, keygen, ev = _setup(1024, "smr")
        tracer = CircuitTracer(ev)
        with pytest.raises(TraceError, match="encrypt is not traceable"):
            tracer.encrypt(None, keygen.public, np.random.default_rng(0))
        with pytest.raises(TraceError, match="decrypt is not traceable"):
            tracer.decrypt(tracer.input("x", scale=SCALE), keygen.secret)

    def test_foreign_operands_rejected(self):
        _, _, ev = _setup(1024, "smr")
        t1, t2 = CircuitTracer(ev), CircuitTracer(ev)
        x = t1.input("x", scale=SCALE)
        with pytest.raises(TraceError, match="not a traced ciphertext"):
            t2.negate(x)
        ct_x, _ = _fresh_inputs(1024, "smr", 2)
        with pytest.raises(TraceError, match="not a traced ciphertext"):
            t1.negate(ct_x)

    def test_cse_shares_identical_calls(self):
        _, _, ev = _setup(1024, "smr")
        tracer = CircuitTracer(ev)
        x = tracer.input("x", scale=SCALE)
        a = tracer.rotate(x, 1)
        b = tracer.rotate(x, 1)
        assert a.node is b.node
        # multiply is commutative: both orders hash-cons to one node
        y = tracer.input("y", scale=SCALE)
        assert tracer.multiply(x, y).node is tracer.multiply(y, x).node

    def test_duplicate_input_name_rejected(self):
        _, _, ev = _setup(1024, "smr")
        tracer = CircuitTracer(ev)
        tracer.input("x", scale=SCALE)
        with pytest.raises(ParameterError, match="duplicate circuit input"):
            tracer.input("x", scale=SCALE)


class TestRotationValidation:
    def test_zero_rotation_named(self):
        with pytest.raises(ParameterError, match="rotation 0 is the identity"):
            validate_rotations([1, 0], 8, "rotate_hoisted")

    def test_out_of_range_named(self):
        with pytest.raises(ParameterError, match="rotation 9 out of range"):
            validate_rotations([9], 8, "rotate_hoisted")

    def test_duplicate_named(self):
        with pytest.raises(ParameterError, match="duplicate rotation -7"):
            validate_rotations([1, -7], 8, "matvec")

    def test_rotate_hoisted_rejects_duplicates(self):
        _, _, ev = _setup(1024, "smr")
        ct_x, _ = _fresh_inputs(1024, "smr", 3)
        with pytest.raises(ParameterError, match="duplicate rotation"):
            ev.rotate_hoisted(ct_x, [1, 1])


class TestCompiledLinalg:
    def _lin(self, dim):
        n, method = 1024, "montgomery"
        ctx, keygen, _ = _setup(n, method)
        rots = SlotLinalg.matvec_rotations(dim)
        ev = Evaluator.from_keygen(keygen, rotations=rots)
        lin = SlotLinalg(CanonicalEncoder(ctx), ev)
        r = np.random.default_rng(0xD1A6)
        vec = r.standard_normal(dim) * 0.3
        sc = 2.0**12
        ct = ev.encrypt(
            lin.encoder.encode(vec, sc, num_slots=dim), keygen.public, r
        )
        return lin, ct, r.standard_normal((dim, dim)), sc

    def test_compiled_matvec_matches_both_eager_paths(self):
        lin, ct, mat, sc = self._lin(16)
        plan = lin.compile_matvec(mat, input_scale=sc)
        got = plan.run(ct)
        _assert_ct_equal(got, lin.matvec(ct, mat), "vs fused")
        _assert_ct_equal(got, lin.matvec_naive(ct, mat), "vs naive")
        kinds = [s.kind for s in plan._steps]
        # 4 baby rotations share one hoist; each giant realign hoists alone
        assert kinds.count("hoist") < kinds.count("galois")
        assert "mac" in kinds

    def test_compiled_poly_eval_matches_eager(self):
        lin, ct, _, sc = self._lin(16)
        coeffs = [0.5, -1.0, 0.25, 0.125]
        plan = lin.compile_poly_eval(coeffs, input_scale=sc)
        _assert_ct_equal(plan.run({"x": ct}), lin.poly_eval(ct, coeffs))


class TestCkksContext:
    def test_facade_roundtrip_and_determinism(self):
        from repro import CkksContext

        kwargs = dict(
            ring_degree=256,
            num_main=4,
            num_aux=5,
            dnum=2,
            seed=11,
            rotations=(1,),
        )
        cc1, cc2 = CkksContext(**kwargs), CkksContext(**kwargs)
        vals = [0.5] * cc1.num_slots
        ct1 = cc1.encrypt(vals, scale=2.0**20)
        ct2 = cc2.encrypt(vals, scale=2.0**20)
        assert np.array_equal(ct1.c0.limbs, ct2.c0.limbs)  # seeded wiring
        err = np.max(np.abs(cc1.decrypt(cc1.evaluator.rotate(ct1, 1)) - 0.5))
        assert err < 1e-2  # N=256 rotate: key-switch noise near 2^-9

    def test_facade_tracer_compiles(self):
        from repro import CkksContext

        cc = CkksContext(
            ring_degree=256, num_main=4, num_aux=5, dnum=2, seed=3,
            rotations=(2,),
        )
        tracer = cc._tracer()
        x = tracer.input("x", scale=2.0**20)
        plan = tracer.compile(tracer.rotate(x, 2))
        ct = cc.encrypt([0.25] * cc.num_slots, scale=2.0**20)
        _assert_ct_equal(plan.run(ct), cc.evaluator.rotate(ct, 2))
