"""Shared fixtures: prime pools are session-scoped (prime search is the
slow part of the suite) and every random stream is seeded for bit-exact
reproducibility — the suite guards bit-faithful range claims, so flaky
inputs would defeat its purpose."""

import numpy as np
import pytest

from repro.rns.primes import PrimePool


@pytest.fixture(scope="session")
def pool64() -> PrimePool:
    """A small 25-30 construction over N=64 shared by most tests."""
    return PrimePool.generate(64, num_main=4, num_terminal=2, num_aux=1)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0x5EED)


def negacyclic_schoolbook(a, b, q: int) -> np.ndarray:
    """Reference ``a * b mod (x^N + 1, q)`` via ``numpy.polymul``.

    Exact: coefficients are lifted to Python ints (object dtype) so the
    quadratic-size intermediate products never wrap.
    """
    n = len(a)
    # numpy.polymul wants highest-degree-first coefficients.
    full = np.polymul(
        np.asarray(a, dtype=object)[::-1], np.asarray(b, dtype=object)[::-1]
    )[::-1]
    out = np.zeros(n, dtype=object)
    for i, c in enumerate(full):
        if i < n:
            out[i] += c
        else:
            out[i % n] -= c  # x^N = -1: degree >= N wraps negated
    return np.array([int(x) % q for x in out], dtype=np.uint64)
