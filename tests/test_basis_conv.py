"""Basis conversion + fused key switching vs exact big-int CRT references.

Every kernel here has a bit-exactness contract, not an approximation
contract: conversion rows must equal ``X mod p_j`` of the canonical
big-int reconstruction, ModDown must equal the big-int floor division,
and the fused key-switch pipeline must equal the step-by-step composed
reference — for every Table-3 backend and both output domains.
"""

import numpy as np
import pytest

from repro.errors import (
    LayoutError,
    LevelError,
    ParameterError,
)
from repro.poly.basis_conv import (
    BasisConverter,
    KeySwitchKey,
    ModDown,
    ModUp,
)
from repro.poly.rns_poly import COEFF, NTT, PolyContext, RnsPolynomial
from repro.rns.primes import PrimePool, digit_ranges
from repro.rns.reduction import ShoupReducer

N = 64
METHODS = ("barrett", "montgomery", "shoup", "smr")


@pytest.fixture(scope="module")
def ks_pool() -> PrimePool:
    """A pool with enough aux primes for key-switching tests."""
    return PrimePool.generate(N, num_main=5, num_terminal=2, num_aux=4)


@pytest.fixture(scope="module")
def base_primes(ks_pool) -> list[int]:
    return [p.value for p in ks_pool.limb_primes(2, 3)]


@pytest.fixture(scope="module")
def aux_primes(ks_pool) -> list[int]:
    return [p.value for p in ks_pool.aux]


@pytest.fixture()
def ctx(base_primes) -> PolyContext:
    return PolyContext(N, base_primes, "smr")


def crt_lift(primes: list[int], limbs: np.ndarray) -> list[int]:
    """Canonical big-int CRT reconstruction of an (L, N) limb matrix."""
    modulus = 1
    for q in primes:
        modulus *= q
    out = []
    for j in range(limbs.shape[1]):
        x = 0
        for i, q in enumerate(primes):
            m = modulus // q
            x = (x + int(limbs[i, j]) * m * pow(m, -1, q)) % modulus
        out.append(x)
    return out


def residues(values: list[int], primes: list[int]) -> np.ndarray:
    return np.array([[v % p for v in values] for p in primes], np.uint64)


# ---------------------------------------------------------------------------
# BasisConverter
# ---------------------------------------------------------------------------


class TestBasisConverter:
    def test_matches_bigint_reference(self, base_primes, aux_primes, rng):
        conv = BasisConverter(base_primes, aux_primes, N)
        x = np.stack([rng.integers(0, q, N, dtype=np.uint64) for q in base_primes])
        got = conv.convert(x)
        expect = residues(crt_lift(base_primes, x), aux_primes)
        assert np.array_equal(got, expect)

    @pytest.mark.parametrize("offset", [0, 1, -1, 12345])
    def test_boundary_representatives_exact(self, base_primes, aux_primes, offset):
        """X near 0 and near Q exercises the exact-v guard: the float
        correction alone cannot decide these, the big-int fallback must."""
        conv = BasisConverter(base_primes, aux_primes, N)
        value = offset % conv.modulus
        x = residues([value] * N, base_primes)
        got = conv.convert(x)
        expect = np.array([[value % p] * N for p in aux_primes], dtype=np.uint64)
        assert np.array_equal(got, expect)

    def test_scale_step_is_inverse_crt_weights(self, base_primes, rng):
        conv = BasisConverter(base_primes, base_primes[:1], N)
        x = np.stack([rng.integers(0, q, N, dtype=np.uint64) for q in base_primes])
        got = conv.scale(x)
        for i, q in enumerate(base_primes):
            w = pow(conv.modulus // q, -1, q)
            assert np.array_equal(got[i], x[i] * np.uint64(w) % np.uint64(q))

    def test_single_source_limb(self, base_primes, aux_primes, rng):
        q = base_primes[0]
        conv = BasisConverter([q], aux_primes, N)
        x = rng.integers(0, q, (1, N), dtype=np.uint64)
        got = conv.convert(x)
        expect = residues([int(v) for v in x[0]], aux_primes)
        assert np.array_equal(got, expect)

    def test_convert_into_caller_buffer(self, base_primes, aux_primes, rng):
        conv = BasisConverter(base_primes, aux_primes, N)
        x = np.stack([rng.integers(0, q, N, dtype=np.uint64) for q in base_primes])
        out = np.empty((len(aux_primes), N), np.uint64)
        got = conv.convert(x, out=out)
        assert got is out
        assert np.array_equal(out, conv.convert(x))

    def test_rejects_out_of_range_input(self, base_primes, aux_primes):
        conv = BasisConverter(base_primes, aux_primes, N)
        x = np.zeros((len(base_primes), N), np.uint64)
        x[0, 3] = base_primes[0]  # == q, out of canonical range
        with pytest.raises(ParameterError, match="out of range"):
            conv.convert(x)

    def test_rejects_bad_shapes_and_bases(self, base_primes, aux_primes):
        with pytest.raises(ParameterError, match="non-empty"):
            BasisConverter([], aux_primes, N)
        with pytest.raises(ParameterError, match="distinct"):
            BasisConverter([base_primes[0]] * 2, aux_primes, N)
        conv = BasisConverter(base_primes, aux_primes, N)
        with pytest.raises(LayoutError, match="source limbs"):
            conv.convert(np.zeros((1, N), np.uint64))


class TestMulmodCross:
    def test_matches_per_pair_mulmod_const(self, base_primes, aux_primes, rng):
        red = ShoupReducer(aux_primes)
        x = np.stack([rng.integers(0, q, N, dtype=np.uint64) for q in base_primes])
        w = np.stack(
            [rng.integers(0, p, len(base_primes), dtype=np.uint64) for p in aux_primes]
        )
        w_sh = np.stack([(w[j] * (1 << 32)) // p for j, p in enumerate(aux_primes)])
        got = red.mulmod_cross(x, w, w_sh)
        for j, p in enumerate(aux_primes):
            single = ShoupReducer(p)
            for i in range(len(base_primes)):
                expect = single.mulmod_const(
                    x[i], int(w[j, i]), single.precompute(int(w[j, i]))
                )
                assert np.array_equal(got[j, i], expect)

    def test_requires_batched_reducer_and_matching_shapes(self, base_primes):
        with pytest.raises(ParameterError, match="batched"):
            ShoupReducer(base_primes[0]).mulmod_cross(
                np.zeros((2, N), np.uint64),
                np.zeros((1, 2), np.uint64),
                np.zeros((1, 2), np.uint64),
            )
        red = ShoupReducer(base_primes)
        with pytest.raises(ParameterError, match="cross product"):
            red.mulmod_cross(
                np.zeros((2, N), np.uint64),
                np.zeros((2, 3), np.uint64),
                np.zeros((2, 3), np.uint64),
            )


# ---------------------------------------------------------------------------
# ModUp / ModDown
# ---------------------------------------------------------------------------


class TestModUpDown:
    def test_mod_up_extends_exactly(self, ctx, aux_primes, rng):
        a = ctx.random(rng)
        up = a.mod_up(aux_primes)
        lift = crt_lift(ctx.primes, a.limbs)
        assert np.array_equal(up.limbs, residues(lift, up.ctx.primes))
        assert up.ctx.primes == ctx.primes + aux_primes

    def test_digit_mod_up_assembles_rows(self, ctx, aux_primes, rng):
        ext = ctx.primes + aux_primes
        lo, hi = 1, 3
        up = ModUp(ext, lo, hi, N)
        digit = np.stack([rng.integers(0, q, N, dtype=np.uint64) for q in ext[lo:hi]])
        out = np.empty((len(ext), N), np.uint64)
        up.apply(digit, out)
        lift = crt_lift(ext[lo:hi], digit)
        expect = residues(lift, ext)
        expect[lo:hi] = digit  # digit rows are verbatim copies
        assert np.array_equal(out, expect)

    def test_mod_up_requires_coeff_domain(self, ctx, aux_primes, rng):
        with pytest.raises(LayoutError, match="coefficient domain"):
            ctx.random(rng).to_ntt().mod_up(aux_primes)

    def test_mod_up_rejects_degenerate_digit(self, base_primes):
        with pytest.raises(ParameterError, match="whole extended basis"):
            ModUp(base_primes, 0, len(base_primes), N)
        with pytest.raises(ParameterError, match="digit rows"):
            ModUp(base_primes, 2, 2, N)

    def test_mod_down_is_bigint_floor_division(self, ctx, aux_primes, rng):
        a = ctx.random(rng)
        up = a.mod_up(aux_primes)
        # Perturb the extension so the P-part is non-trivial (a general
        # element of the extended basis, not an exact multiple pattern).
        noise = up.ctx.random(rng)
        mixed = up.add(noise)
        down = mixed.mod_down(len(aux_primes))
        p_mod = 1
        for p in aux_primes:
            p_mod *= p
        lift = crt_lift(mixed.ctx.primes, mixed.limbs)
        expect = residues([x // p_mod for x in lift], ctx.primes)
        assert np.array_equal(down.limbs, expect)
        assert down.ctx is ctx  # found its way back to the base context

    def test_mod_down_round_trip_recovers(self, ctx, aux_primes, rng):
        a = ctx.random(rng)
        up = a.mod_up(aux_primes)
        lift = crt_lift(ctx.primes, a.limbs)
        p_mod = 1
        for p in aux_primes:
            p_mod *= p
        # (X * P) / P == X exactly: scale by P inside the extended basis.
        scaled = residues([x * p_mod for x in lift], up.ctx.primes)
        down = RnsPolynomial(up.ctx, scaled, COEFF).mod_down(len(aux_primes))
        assert np.array_equal(down.limbs, a.limbs)

    def test_mod_down_requires_coeff_and_valid_count(self, ctx, aux_primes,
                                                     rng):
        up = ctx.random(rng).mod_up(aux_primes)
        with pytest.raises(LayoutError, match="coefficient domain"):
            up.to_ntt().mod_down(len(aux_primes))
        with pytest.raises(LevelError, match="strip"):
            up.mod_down(up.ctx.num_limbs)

    def test_mod_down_shape_validation(self, base_primes, aux_primes):
        md = ModDown(base_primes, aux_primes, N)
        with pytest.raises(LayoutError, match="extended"):
            md.apply(
                np.zeros((2, N), np.uint64),
                np.zeros((len(base_primes), N), np.uint64),
            )


# ---------------------------------------------------------------------------
# Context extension plumbing
# ---------------------------------------------------------------------------


class TestContextExtension:
    def test_extend_is_cached_and_shares_tables(self, ctx, aux_primes):
        ext = ctx.extend(aux_primes)
        assert ctx.extend(aux_primes) is ext
        assert ext.primes == ctx.primes + aux_primes
        # Prepared twiddle rows of the shared limbs are the same arrays.
        base_part = ctx.batch_ntt._fwd[0]
        ext_part = ext.batch_ntt._fwd[0]
        assert np.array_equal(ext_part[: ctx.num_limbs], base_part)

    def test_base_of_extension_returns_original(self, ctx, aux_primes):
        ext = ctx.extend(aux_primes)
        assert ext.base_of_extension(len(aux_primes)) is ctx

    def test_base_of_extension_builds_prefix_for_foreign_ctx(
        self, base_primes, aux_primes
    ):
        ctx = PolyContext(N, base_primes + aux_primes, "smr")
        base = ctx.base_of_extension(len(aux_primes))
        assert base.primes == base_primes
        assert ctx.base_of_extension(len(aux_primes)) is base  # cached

    def test_extend_rejects_empty_and_overlap(self, ctx):
        with pytest.raises(ParameterError, match="at least one"):
            ctx.extend([])
        with pytest.raises(ParameterError, match="overlap"):
            ctx.extend([ctx.primes[0]])


# ---------------------------------------------------------------------------
# Fused key switching
# ---------------------------------------------------------------------------


def composed_reference(ctx, ksk, poly):
    """Step-by-step key switch through big-int digit extension and the
    library's own (independently verified) multiply / ModDown pieces."""
    ext = ksk.ext_ctx
    acc = [None, None]
    for d, (lo, hi) in enumerate(digit_ranges(ctx.num_limbs, ksk.dnum)):
        lift = crt_lift(ctx.primes[lo:hi], poly.limbs[lo:hi])
        ext_poly = RnsPolynomial(ext, residues(lift, ext.primes), COEFF)
        a_hat = ext_poly.to_ntt()
        for half in range(2):
            term = a_hat.pointwise_multiply(ksk.pairs[d][half])
            acc[half] = term if acc[half] is None else acc[half].add(term)
    return tuple(c.to_coeff().mod_down(ksk.num_aux) for c in acc)


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("dnum", [1, 2, 5])
def test_key_switch_matches_composed_reference(
    base_primes, aux_primes, method, dnum, rng
):
    ctx = PolyContext(N, base_primes, method)
    a = ctx.random(rng)
    ksk = KeySwitchKey.random(ctx, aux_primes, dnum, rng)
    c0, c1 = a.key_switch(ksk)
    r0, r1 = composed_reference(ctx, ksk, a)
    assert np.array_equal(c0.limbs, r0.limbs)
    assert np.array_equal(c1.limbs, r1.limbs)
    assert c0.domain == COEFF and c0.ctx is ctx


@pytest.mark.parametrize("method", ("smr", "shoup"))
def test_key_switch_ntt_output_bit_matches_coeff_path(
    base_primes, aux_primes, method, rng
):
    ctx = PolyContext(N, base_primes, method)
    a = ctx.random(rng)
    ksk = KeySwitchKey.random(ctx, aux_primes, 2, rng)
    c0, c1 = a.key_switch(ksk)
    n0, n1 = a.key_switch(ksk, output_domain=NTT)
    assert n0.domain == NTT
    assert np.array_equal(n0.to_coeff().limbs, c0.limbs)
    assert np.array_equal(n1.to_coeff().limbs, c1.limbs)


def test_key_switch_accepts_ntt_input(ctx, aux_primes, rng):
    a = ctx.random(rng)
    ksk = KeySwitchKey.random(ctx, aux_primes, 2, rng)
    c0, _ = a.key_switch(ksk)
    # A *fresh* NTT-domain polynomial (no coefficient twin cached).
    a_hat = RnsPolynomial(ctx, ctx.batch_ntt.forward(a.limbs), NTT)
    k0, _ = a_hat.key_switch(ksk)
    assert np.array_equal(k0.limbs, c0.limbs)


class TestKeySwitchPlan:
    def test_coeff_to_coeff_transform_counts(self, ctx, aux_primes, rng):
        dnum = 2
        ksk = KeySwitchKey.random(ctx, aux_primes, dnum, rng)
        a = ctx.random(rng)
        plan = a.plan_key_switch(ksk)
        num_ext = ctx.num_limbs + len(aux_primes)
        assert plan.forward_rows == dnum * num_ext
        assert plan.inverse_rows == 2 * num_ext
        assert plan.input_domain == COEFF and plan.output_domain == COEFF

    def test_ntt_output_never_inverts_base_rows(self, ctx, aux_primes, rng):
        dnum = 2
        ksk = KeySwitchKey.random(ctx, aux_primes, dnum, rng)
        plan = ctx.random(rng).plan_key_switch(ksk, output_domain=NTT)
        num_aux = len(aux_primes)
        num_ext = ctx.num_limbs + num_aux
        # Inverse transforms touch only the auxiliary rows of each half.
        assert plan.inverse_rows == 2 * num_aux
        assert plan.forward_rows == dnum * num_ext + 2 * ctx.num_limbs
        assert not any(op == "intt_ext" for op, _ in plan.steps)

    def test_cached_twin_makes_input_inverse_free(self, ctx, aux_primes, rng):
        ksk = KeySwitchKey.random(ctx, aux_primes, 2, rng)
        a = ctx.random(rng)
        a_hat = a.to_ntt()  # caches the coefficient twin on a_hat
        plan = a_hat.plan_key_switch(ksk)
        assert ("reuse_coeff", 0) in plan.steps
        fresh = RnsPolynomial(ctx, ctx.batch_ntt.forward(a.limbs), NTT)
        plan_fresh = fresh.plan_key_switch(ksk)
        assert ("intt_input", ctx.num_limbs) in plan_fresh.steps
        assert (plan_fresh.inverse_rows - plan.inverse_rows == ctx.num_limbs)

    def test_plan_domain_mismatch_rejected(self, ctx, aux_primes, rng):
        ksk = KeySwitchKey.random(ctx, aux_primes, 2, rng)
        a = ctx.random(rng)
        plan = a.plan_key_switch(ksk)
        with pytest.raises(LayoutError, match="plan was built"):
            a.to_ntt().key_switch(ksk, plan=plan)

    def test_plan_from_other_switcher_rejected(self, ctx, aux_primes, rng):
        """Regression: a plan built for one (basis, dnum) must not drive
        another key's switcher — it would silently skip digit work."""
        a = ctx.random(rng)
        ksk1 = KeySwitchKey.random(ctx, aux_primes, 1, rng)
        ksk2 = KeySwitchKey.random(ctx, aux_primes, 2, rng)
        stale = a.plan_key_switch(ksk1)
        with pytest.raises(ParameterError, match="different"):
            a.key_switch(ksk2, plan=stale)
        short = KeySwitchKey.random(ctx, aux_primes[:2], 2, rng)
        with pytest.raises(ParameterError, match="different"):
            a.key_switch(short, plan=a.plan_key_switch(ksk2))

    def test_describe_mentions_domains(self, ctx, aux_primes, rng):
        ksk = KeySwitchKey.random(ctx, aux_primes, 2, rng)
        text = ctx.random(rng).plan_key_switch(ksk).describe()
        assert "coeff -> coeff" in text and "fwd rows" in text


class TestKeySwitchKeyValidation:
    def test_key_pairs_must_be_ntt_domain(self, ctx, aux_primes, rng):
        ext = ctx.extend(aux_primes)
        pair = (ext.random(rng), ext.random(rng))  # coeff domain
        with pytest.raises(LayoutError, match="NTT-domain"):
            KeySwitchKey(ext, len(aux_primes), [pair])

    def test_key_context_must_match(self, ctx, base_primes, aux_primes, rng):
        ext = ctx.extend(aux_primes)
        other = PolyContext(N, base_primes, "smr")
        pair = (other.random(rng).to_ntt(), other.random(rng).to_ntt())
        with pytest.raises(ParameterError, match="extended basis"):
            KeySwitchKey(ext, len(aux_primes), [pair])

    def test_switcher_rejects_mismatched_key(self, ctx, aux_primes, rng):
        ksk = KeySwitchKey.random(ctx, aux_primes, 2, rng)
        other = KeySwitchKey.random(ctx, aux_primes[:2], 2, rng)
        switcher = ctx.key_switcher(aux_primes, 2)
        with pytest.raises(ParameterError, match="does not match"):
            switcher.run(ctx.random(rng), other)

    def test_switcher_is_cached(self, ctx, aux_primes):
        assert ctx.key_switcher(aux_primes, 2) is ctx.key_switcher(aux_primes, 2)
        assert ctx.key_switcher(aux_primes, 1) is not ctx.key_switcher(aux_primes, 2)


# -- hoisting (PR 4): shared ModUp across key switches ----------------------
class TestHoisting:
    def test_run_hoisted_bit_matches_key_switch(self, ctx, aux_primes, rng):
        ksk = KeySwitchKey.random(ctx, aux_primes, 2, rng)
        sw = ctx.key_switcher(aux_primes, 2)
        a = ctx.random(rng)
        c0, c1 = a.key_switch(ksk)
        h0, h1 = sw.run_hoisted(sw.hoist(a), ksk)
        assert np.array_equal(c0.limbs, h0.limbs)
        assert np.array_equal(c1.limbs, h1.limbs)

    def test_hoist_tensor_reuse_across_keys(self, ctx, aux_primes, rng):
        """One hoist serves many keys: per-key results equal per-key
        hoists (nothing in run_hoisted mutates the tensor)."""
        sw = ctx.key_switcher(aux_primes, 2)
        a = ctx.random(rng)
        hoisted = sw.hoist(a)
        snapshot = hoisted.copy()
        keys = [KeySwitchKey.random(ctx, aux_primes, 2, rng) for _ in range(3)]
        shared = [sw.run_hoisted(hoisted, k) for k in keys]
        assert np.array_equal(hoisted, snapshot)
        for k, (s0, s1) in zip(keys, shared):
            f0, f1 = sw.run_hoisted(sw.hoist(a), k)
            assert np.array_equal(s0.limbs, f0.limbs)
            assert np.array_equal(s1.limbs, f1.limbs)

    def test_run_hoisted_with_permutation(self, ctx, aux_primes, rng):
        """A Galois slot permutation of the hoisted digits equals
        hoisting the *integer* automorphism of each digit."""
        from repro.poly.ntt import automorphism_tables

        k = 5
        n = ctx.ring_degree
        perm = automorphism_tables(n, k)[2]
        ksk = KeySwitchKey.random(ctx, aux_primes, 2, rng)
        sw = ctx.key_switcher(aux_primes, 2)
        a = ctx.random(rng)
        hoisted = sw.hoist(a)
        permuted = np.stack([digit[:, perm] for digit in hoisted])
        p0, p1 = sw.run_hoisted(hoisted, ksk, perm=perm)
        q0, q1 = sw.run_hoisted(permuted, ksk)
        assert np.array_equal(p0.limbs, q0.limbs)
        assert np.array_equal(p1.limbs, q1.limbs)

    def test_run_hoisted_validation(self, ctx, aux_primes, rng):
        ksk = KeySwitchKey.random(ctx, aux_primes, 2, rng)
        sw = ctx.key_switcher(aux_primes, 2)
        a = ctx.random(rng)
        hoisted = sw.hoist(a)
        with pytest.raises(LayoutError, match="hoisted digit tensor"):
            sw.run_hoisted(hoisted[:1], ksk)
        wrong = KeySwitchKey.random(ctx, aux_primes, 3, rng)
        with pytest.raises(ParameterError, match="configuration"):
            sw.run_hoisted(hoisted, wrong)
        other = PolyContext(ctx.ring_degree, ctx.primes, "barrett")
        with pytest.raises(ParameterError, match="context"):
            sw.hoist(other.random(rng))
