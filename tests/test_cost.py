"""Cost-model validation: butterfly counts and Table-3 consistency."""

import pytest

from repro.errors import ParameterError
from repro.poly.cost import MODADD_INSTRS, CostModel, compare_methods
from repro.rns.reduction import REDUCTION_COSTS


def test_butterfly_count():
    model = CostModel(256, 3, "smr")
    assert model.butterflies_per_ntt == 128 * 8  # (N/2) * log2(N)
    ntt = model.ntt()
    assert ntt.modmuls == 1024
    assert ntt.modadds == 2048  # two modadds per butterfly


def test_int32_pricing_follows_table3():
    model = CostModel(64, 2, "smr")
    ntt = model.ntt()
    per_mul = REDUCTION_COSTS["smr"].total_instrs
    assert ntt.int32_instrs == ntt.modmuls * per_mul + (ntt.modadds * MODADD_INSTRS)


def test_intt_adds_scaling_column():
    model = CostModel(64, 2, "shoup")
    assert model.intt().modmuls == model.ntt().modmuls + 64
    assert model.intt().modadds == model.ntt().modadds


def test_shoup_pays_for_companions():
    """Table 3's 'many constants' drawback shows up in the model."""
    shoup = CostModel(64, 2, "shoup")
    smr = CostModel(64, 2, "smr")
    assert shoup.ntt().twiddle_consts == 2 * smr.ntt().twiddle_consts
    assert shoup.pointwise().modmuls > smr.pointwise().modmuls


def test_poly_multiply_scales_with_limbs():
    one = CostModel(64, 1, "smr").poly_multiply()
    four = CostModel(64, 4, "smr").poly_multiply()
    assert four.modmuls == 4 * one.modmuls
    assert four.modadds == 4 * one.modadds
    # Each limb prime owns its twiddle tables: consts scale with limbs too.
    assert four.twiddle_consts == 4 * one.twiddle_consts


def test_shoup_intt_charges_scaling_companion():
    """n^-1 needs its Shoup companion, like every other stored constant."""
    shoup = CostModel(64, 2, "shoup")
    smr = CostModel(64, 2, "smr")
    assert shoup.intt().twiddle_consts - shoup.ntt().twiddle_consts == 2
    assert smr.intt().twiddle_consts - smr.ntt().twiddle_consts == 1


def test_smr_is_cheapest_end_to_end():
    """Alg. 2's Table-3 win must survive aggregation to full multiplies."""
    totals = compare_methods(4096, 25)
    assert totals["smr"] == min(totals.values())
    assert totals["smr"] < totals["barrett"]


def test_rescale_cost_counts_surviving_limbs():
    model = CostModel(64, 4, "smr")
    rescale = model.rescale()
    assert rescale.modmuls == 64 * 3
    assert rescale.modadds == 64 * 3
    assert rescale.twiddle_consts == 3
    with pytest.raises(ParameterError):
        CostModel(64, 1, "smr").rescale()


def test_table_renders_every_operation():
    model = CostModel(64, 3, "smr")
    text = model.table()
    for op in ("ntt", "intt", "pointwise", "add", "poly_multiply", "rescale"):
        assert op in text
    assert "(-q, q)" in text  # SMR's Table-3 range in the header


def test_validation():
    with pytest.raises(ParameterError):
        CostModel(60, 2, "smr")  # not a power of two
    with pytest.raises(ParameterError):
        CostModel(64, 2, "karatsuba")


def test_context_exposes_cost_model(pool64):
    from repro.poly.rns_poly import PolyContext

    ctx = PolyContext.from_pool(pool64, num_terminal=1, num_main=2)
    model = ctx.cost_model
    assert model is ctx.cost_model  # cached
    assert model.num_limbs == 3
    assert model.method == "smr"
    assert model.poly_multiply().int32_instrs > 0


def test_scaled_opcost():
    op = CostModel(64, 2, "smr").ntt()
    twice = op.scaled(2, "double-ntt")
    assert twice.name == "double-ntt"
    assert twice.modmuls == 2 * op.modmuls
    assert twice.int32_instrs == 2 * op.int32_instrs


def test_multiply_accumulate_pricing():
    from repro.poly.cost import RAW64_INSTRS

    model = CostModel(64, 3, "smr")
    lanes = 64 * 3
    k = 8
    reduced = model.multiply_accumulate(k)
    assert reduced.modmuls == (k + 1) * lanes  # products + terminal fold
    assert reduced.raw_adds64 == k * lanes  # deferred folds ride raw adds
    raw = model.multiply_accumulate(k, strategy="raw")
    assert raw.modmuls == lanes  # one deferred reduce per lane
    assert raw.raw_muls64 == k * lanes and raw.raw_adds64 == k * lanes
    # §4.2's point: deferring the reductions beats reducing every term.
    assert raw.int32_instrs < reduced.int32_instrs
    per_mul = REDUCTION_COSTS["smr"].total_instrs
    assert reduced.int32_instrs == (
        reduced.modmuls * per_mul + k * lanes * RAW64_INSTRS
    )
    # raw needs SMR; bad inputs refused.
    with pytest.raises(ParameterError):
        CostModel(64, 3, "shoup").multiply_accumulate(2, strategy="raw")
    with pytest.raises(ParameterError):
        model.multiply_accumulate(0)
    with pytest.raises(ParameterError):
        model.multiply_accumulate(2, strategy="eager")
    # scaled() carries the raw 64-bit fields along.
    twice = raw.scaled(2)
    assert twice.raw_muls64 == 2 * raw.raw_muls64
    assert twice.int32_instrs == 2 * raw.int32_instrs
    # The rendered table includes the fused op.
    assert "multiply_accumulate" in model.table()


# -- basis conversion / key switching pricing (PR 3) ------------------------
def test_basis_convert_formula():
    model = CostModel(64, 4, "smr")
    op = model.basis_convert(4, 3)
    n = 64
    # scale + matrix + v-term + terminal fold, all Shoup-priced.
    assert op.method == "shoup"
    assert op.modmuls == n * (4 + 4 * 3 + 3 + 3)
    assert op.raw_adds64 == n * (4 * 3 + 3)
    assert op.twiddle_consts == 2 * 4 + 2 * 4 * 3 + 2 * 3
    assert op.int32_instrs > 0
    with pytest.raises(ParameterError):
        model.basis_convert(0, 3)


def test_mod_up_sums_digit_conversions():
    model = CostModel(64, 4, "smr")
    whole = model.mod_up(2, dnum=1)
    split = model.mod_up(2, dnum=2)
    # One digit: a single 4 -> 2 conversion.
    assert whole.modmuls == model.basis_convert(4, 2).modmuls
    # Two digits of 2 limbs each, onto the 4-row complement.
    assert split.modmuls == 2 * model.basis_convert(2, 4).modmuls
    with pytest.raises(ParameterError):
        model.mod_up(2, dnum=5)


def test_mod_down_adds_combine_lanes():
    model = CostModel(64, 4, "smr")
    conv = model.basis_convert(2, 4)
    op = model.mod_down(2)
    lanes = 64 * 4
    assert op.modmuls == conv.modmuls + lanes
    assert op.modadds == conv.modadds + lanes
    with pytest.raises(ParameterError):
        model.mod_down(0)


def test_key_switch_composite_pricing():
    model = CostModel(256, 8, "smr")
    coeff = model.key_switch(3, dnum=2)
    ntt_out = model.key_switch(3, dnum=2, output_domain="ntt")
    # Conversion sub-kernels ride along pre-priced (Shoup chains).
    assert coeff.extra_int32 > 0
    assert coeff.extra_int32 == ntt_out.extra_int32
    # The planner's point: NTT output inverse-transforms only aux rows,
    # which is strictly cheaper than full extended inverses.
    assert ntt_out.int32_instrs < coeff.int32_instrs
    # scaled() carries the pre-priced component along.
    assert coeff.scaled(2).extra_int32 == 2 * coeff.extra_int32
    assert coeff.scaled(2).int32_instrs == 2 * coeff.int32_instrs
    with pytest.raises(ParameterError):
        model.key_switch(3, output_domain="fourier")


def test_table_renders_new_kernels():
    text = CostModel(64, 3, "smr").table()
    for op in ("basis_convert", "mod_up", "mod_down", "key_switch"):
        assert op in text


# -- automorphism + scheme-layer composite pricing (PR 4) -------------------
def test_automorphism_pricing():
    model = CostModel(256, 4, "smr")
    coeff = model.automorphism("coeff")
    ntt = model.automorphism("ntt")
    # Coeff domain: one conditional negation per lane; NTT domain: a
    # pure permutation — zero int32 arithmetic.
    assert coeff.modmuls == 0 and coeff.modadds == 256 * 4
    assert ntt.int32_instrs == 0
    with pytest.raises(ParameterError):
        model.automorphism("fourier")


def test_scheme_ks_split_sums_to_key_switch():
    """_ks_shared + _ks_finish is an accounting split of key_switch,
    field for field — not a second cost model."""
    from repro.poly.cost import _merge
    from repro.scheme.cost import SchemeCostModel

    for method in ("barrett", "montgomery", "shoup", "smr"):
        sc = SchemeCostModel(256, 6, 3, 2, method)
        ks = sc.poly.key_switch(3, dnum=2)
        split = _merge(sc._ks_shared(), sc._ks_finish())
        for field in (
            "modmuls",
            "modadds",
            "twiddle_consts",
            "raw_muls64",
            "raw_adds64",
            "extra_int32",
        ):
            assert getattr(split, field) == getattr(ks, field), (
                method,
                field,
            )


def test_hoisted_rotation_amortizes_the_shared_front():
    from repro.scheme.cost import SchemeCostModel

    sc = SchemeCostModel(1024, 4, 2, 2, "shoup")
    rotate = sc.rotate().int32_instrs
    shared = sc._ks_shared().int32_instrs
    for count in (2, 4, 8):
        hoisted = sc.hoisted_rotate(count).int32_instrs
        assert hoisted < count * rotate
        # exactly (count - 1) shared fronts cheaper
        assert hoisted == count * rotate - (count - 1) * shared
    with pytest.raises(ParameterError):
        sc.hoisted_rotate(0)


def test_hmult_composite_exceeds_its_parts():
    from repro.scheme.cost import SchemeCostModel

    sc = SchemeCostModel(256, 4, 2, 2, "smr")
    hmult = sc.hmult()
    relin = sc.relinearize()
    assert hmult.int32_instrs > relin.int32_instrs
    assert relin.int32_instrs > sc.poly.key_switch(2, dnum=2).int32_instrs
    assert sc.rescale().modmuls == 2 * sc.poly.rescale().modmuls


def test_scheme_table_renders_composites():
    from repro.scheme.cost import SchemeCostModel

    text = SchemeCostModel(64, 3, 2, 2, "smr").table()
    for op in ("relinearize", "hmult", "rotate", "hoisted_rotate"):
        assert op in text
    with pytest.raises(ParameterError):
        SchemeCostModel(64, 3, 0, 2, "smr")
    with pytest.raises(ParameterError):
        SchemeCostModel(64, 3, 2, 9, "smr")
