"""Canonical-embedding encoder tests: special FFT, orbit, precision.

The encoder's slot semantics are pinned three independent ways: the
special FFT pair must invert exactly (float tolerance), the embedding
must agree with the big-int reference evaluator's *direct* per-slot
evaluation at ``zeta^(5^j)`` (a different algorithm entirely), and the
Galois automorphism kernels from PR 4 must act on decoded slots as
``np.roll`` / ``np.conj`` — on plaintexts here, and end-to-end on
ciphertexts across all four reducer backends.  Round-trip precision is
asserted against the ``2^-(scale_bits - log2 N)`` quantization bound for
N in {1024, 4096}.
"""

import math
from functools import lru_cache

import numpy as np
import pytest

from repro.errors import LayoutError, ParameterError
from repro.poly.ntt import canonical_slot_tables, complex_root_powers
from repro.poly.rns_poly import PolyContext
from repro.rns.primes import PrimePool, ntt_friendly_primes
from repro.scheme import (
    CanonicalEncoder,
    Evaluator,
    KeyGenerator,
    Plaintext,
    ReferenceEvaluator,
    special_fft,
    special_ifft,
)

METHODS = ("barrett", "montgomery", "shoup", "smr")
SCALE = 2.0**40


def _slots(n: int, num: int | None = None, seed: int = 0xC0DE) -> np.ndarray:
    num = n // 2 if num is None else num
    r = np.random.default_rng(seed + n)
    return r.uniform(-1, 1, num) + 1j * r.uniform(-1, 1, num)


@lru_cache(maxsize=None)
def _ctx(n: int, method: str = "barrett", limbs: int = 3) -> PolyContext:
    primes = [p.value for p in ntt_friendly_primes(30, limbs, n)]
    return PolyContext(n, primes, method)


@lru_cache(maxsize=None)
def _setup(n: int, method: str):
    """(ctx, keygen, encoder) with rotation/conjugation keys, per config."""
    pool = PrimePool.generate(n, num_main=3, num_terminal=1, num_aux=4)
    ctx = PolyContext.from_pool(pool, num_terminal=1, num_main=3, method=method)
    aux = [p.value for p in pool.extension_basis(1, 3, dnum=2)]
    keygen = KeyGenerator(ctx, aux, 2, np.random.default_rng(0xFACE + n))
    return ctx, keygen, CanonicalEncoder(ctx)


# -- the transform itself --------------------------------------------------
def test_special_fft_inverts_exactly():
    n = 512
    r = np.random.default_rng(1)
    coeffs = r.normal(size=n)
    assert np.abs(special_ifft(special_fft(coeffs)) - coeffs).max() < 1e-10
    vals = r.normal(size=n) + 1j * r.normal(size=n)
    assert np.abs(special_fft(special_ifft(vals)) - vals).max() < 1e-10
    with pytest.raises(ParameterError):
        special_fft(np.zeros(48))


def test_slot_tables_enumerate_all_odd_residues():
    """Orbit of 5 plus its negation partitions the primitive roots."""
    n = 256
    slot_idx, conj_idx = canonical_slot_tables(n)
    assert len(set(slot_idx) | set(conj_idx)) == n
    assert not set(slot_idx) & set(conj_idx)
    roots = complex_root_powers(n)
    assert abs(roots[n] + 1.0) < 1e-12  # psi^N = -1: negacyclic root


def test_embed_matches_reference_direct_evaluation():
    """The special FFT against the reference's O(N) per-slot direct sum."""
    n = 256
    enc = CanonicalEncoder(_ctx(n))
    v = _slots(n)
    coeffs = enc.embed(v)
    ints = [int(round(c * SCALE)) for c in coeffs]
    ref = ReferenceEvaluator(n, coeff_bound_bits=60)
    direct = ref.slot_values(ints) / SCALE
    assert np.abs(direct - v).max() < 1e-9


def test_embed_matches_reference_spot_checks_at_4096():
    n = 4096
    enc = CanonicalEncoder(_ctx(n))
    v = _slots(n)
    coeffs = enc.embed(v)
    ints = [int(round(c * SCALE)) for c in coeffs]
    ref = ReferenceEvaluator(n, coeff_bound_bits=60)
    idx = [0, 1, 17, 512, n // 2 - 1]
    direct = ref.slot_values(ints, indices=idx) / SCALE
    assert np.abs(direct - v[idx]).max() < 1e-8


# -- round-trip precision (satellite bound) --------------------------------
@pytest.mark.parametrize("n", (1024, 4096))
def test_roundtrip_precision_bound(n):
    """encode→decode error stays under 2^-(scale_bits - log2 N).

    Each of the N coefficient roundings moves a slot value by at most
    1/(2*scale), so the worst case is (N/2)/scale — inside the bound.
    """
    enc = CanonicalEncoder(_ctx(n))
    scale_bits = 40
    v = _slots(n)
    pt = enc.encode(v, 2.0**scale_bits)
    err = np.abs(enc.decode(pt) - v).max()
    assert err < 2.0 ** -(scale_bits - math.log2(n))
    bits = enc.roundtrip_precision(v, 2.0**scale_bits)
    assert bits > scale_bits - math.log2(n)


def test_sparse_packing_replicates_and_averages():
    n = 1024
    enc = CanonicalEncoder(_ctx(n))
    for num in (1, 4, 32, n // 2):
        v = _slots(n, num)
        pt = enc.encode(v, SCALE, num_slots=num)
        assert pt.slots == num
        assert np.abs(enc.decode(pt) - v).max() < 2.0**-28
    # replication is visible at full width: every copy carries the data
    v = _slots(n, 8, seed=3)
    full = enc.decode(enc.encode(v, SCALE, num_slots=8), num_slots=n // 2)
    assert np.abs(full - np.tile(v, (n // 2) // 8)).max() < 2.0**-28


def test_big_scale_encode_uses_exact_path():
    """Scale stacks beyond int64 must lift exactly (BSGS poly_eval needs
    plaintexts at Delta^k)."""
    n = 64
    ctx = _ctx(n, limbs=5)
    enc = CanonicalEncoder(ctx)
    v = np.full(8, 1.5)
    pt = enc.encode(v, 2.0**80, num_slots=8)
    assert np.abs(enc.decode(pt) - v).max() < 2.0**-40


# -- slot-count validation (satellite fix) ---------------------------------
def test_slot_counts_must_divide_half_ring():
    n = 256
    ctx = _ctx(n)
    enc = CanonicalEncoder(ctx)
    for bad in (3, 5, 100, 0, -4, 256):
        with pytest.raises(ParameterError, match=f"slot count {bad}"):
            Plaintext.validate_slots(n, bad)
    with pytest.raises(ParameterError, match="slot count 3"):
        enc.encode(np.zeros(3), SCALE)
    with pytest.raises(ParameterError, match="slot count 6"):
        enc.encode(np.zeros(6), SCALE, num_slots=6)
    with pytest.raises(ParameterError, match="slot count 7"):
        Plaintext(ctx.zeros(), slots=7)
    # coefficient packing carries no slot count and stays unrestricted
    assert Plaintext(ctx.zeros()).slots is None


def test_encode_rejects_mismatched_and_oversized_input():
    enc = CanonicalEncoder(_ctx(256))
    with pytest.raises(LayoutError):
        enc.encode(np.zeros(8), SCALE, num_slots=16)
    with pytest.raises(ParameterError, match="exceeds Q/2"):
        enc.encode(np.full(128, 1.0), 2.0**120)
    with pytest.raises(ParameterError):
        enc.encode(np.zeros(128), -1.0)


# -- automorphisms act as slot rotations (vs the PR-4 kernels) -------------
def test_plaintext_automorphism_is_slot_roll():
    """sigma_{5^r} on RNS coefficients == np.roll on decoded slots, and
    sigma_{-1} == np.conj — the orbit ordering contract, checked through
    the cached automorphism index tables in both domains."""
    n = 256
    ctx = _ctx(n)
    enc = CanonicalEncoder(ctx)
    v = _slots(n)
    pt = enc.encode(v, SCALE)
    for r in (1, 2, 7, -3):
        k = pow(5, r % (n // 2), 2 * n)
        for domain_poly in (pt.poly, pt.poly.to_ntt()):
            rolled = domain_poly.automorphism(k)
            rolled.state.scale = SCALE
            got = enc.decode(Plaintext(rolled))
            assert np.abs(got - np.roll(v, -r)).max() < 2.0**-28, (r, k)
    conj = pt.poly.automorphism(2 * n - 1)
    conj.state.scale = SCALE
    got = enc.decode(Plaintext(conj))
    assert np.abs(got - np.conj(v)).max() < 2.0**-28


@pytest.mark.parametrize("method", METHODS)
def test_ciphertext_rotate_conjugate_match_roll_conj(method):
    """Satellite: rotate/conjugate on *ciphertexts* match numpy
    roll/conj on the decoded slots, across all four reducer backends."""
    n = 1024
    ctx, keygen, enc = _setup(n, method)
    ev = Evaluator.from_keygen(keygen, rotations=[1, 5], conjugate=True)
    v = _slots(n)
    ct = ev.encrypt(enc.encode(v, SCALE), keygen.public, np.random.default_rng(9))
    for r in (1, 5):
        got = enc.decode(ev.decrypt(ev.rotate(ct, r), keygen.secret))
        assert np.abs(got - np.roll(v, -r)).max() < 1e-4, r
    got = enc.decode(ev.decrypt(ev.conjugate(ct), keygen.secret))
    assert np.abs(got - np.conj(v)).max() < 1e-4


def test_sparse_rotation_wraps_mod_num_slots():
    n = 1024
    ctx, keygen, enc = _setup(n, "smr")
    ev = Evaluator.from_keygen(keygen, rotations=[3])
    num = 16
    v = _slots(n, num)
    ct = ev.encrypt(
        enc.encode(v, SCALE, num_slots=num),
        keygen.public,
        np.random.default_rng(11),
    )
    got = enc.decode(ev.decrypt(ev.rotate(ct, 3), keygen.secret), num_slots=num)
    assert np.abs(got - np.roll(v, -3)).max() < 1e-4


def test_decode_context_and_defaults():
    n = 256
    enc = CanonicalEncoder(_ctx(n))
    v = _slots(n, 8)
    pt = enc.encode(v, SCALE, num_slots=8)
    # decode defaults to the plaintext's recorded packing
    assert enc.decode(pt).shape == (8,)
    other = CanonicalEncoder(_ctx(512))
    with pytest.raises(ParameterError, match="ring degree"):
        other.decode(pt)
