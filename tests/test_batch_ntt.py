"""BatchNTT validation: the batched limb-matrix path must bit-match the
per-prime reference engines (acceptance bar of the batching PR).

Every method x ring-degree cell cross-checks forward / inverse /
pointwise / negacyclic multiply on randomized (L, N) inputs against a
Python loop over :class:`NegacyclicNTT` engines sharing the same roots.
Ring degrees straddle the transposed-tail-phase threshold so both the
plain and the four-step-layout stage kernels are exercised.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.poly.batch_ntt import _MIN_SPLIT_N, BatchNTT
from repro.poly.ntt import NegacyclicNTT
from repro.rns.primes import ntt_friendly_primes

METHODS = ("barrett", "montgomery", "shoup", "smr")
# Small N keeps the plain layout; large N crosses into the transposed
# tail phase (see batch_ntt._MIN_SPLIT_N).
RING_DEGREES = (16, 64, 256, 512)


def _basis(n: int) -> list[int]:
    terminal = ntt_friendly_primes(25, 1, n, kind="terminal")
    taken = {p.value for p in terminal}
    main = ntt_friendly_primes(30, 3, n, exclude=taken)
    return [p.value for p in terminal + main]


@pytest.fixture(scope="module", params=RING_DEGREES, ids=lambda n: f"N={n}")
def setup(request):
    n = request.param
    primes = _basis(n)
    engines = {
        m: [NegacyclicNTT(q, n, m) for q in primes] for m in METHODS
    }
    batches = {
        m: BatchNTT(primes, n, m, psis=[e.psi for e in engines[m]])
        for m in METHODS
    }
    return n, primes, engines, batches


def _random_limbs(primes, n, rng):
    return np.stack([rng.integers(0, q, n, dtype=np.uint64) for q in primes])


@pytest.mark.parametrize("method", METHODS)
def test_forward_inverse_bit_match_reference(setup, method, rng):
    n, primes, engines, batches = setup
    batch, engs = batches[method], engines[method]
    a = _random_limbs(primes, n, rng)
    ref = np.stack([e.forward(a[i]) for i, e in enumerate(engs)])
    got = batch.forward(a)
    assert got.dtype == np.uint64
    assert np.array_equal(got, ref), "forward must bit-match the reference"
    assert np.array_equal(batch.inverse(got), a), "round trip must be exact"
    ref_inv = np.stack([e.inverse(ref[i]) for i, e in enumerate(engs)])
    assert np.array_equal(batch.inverse(ref), ref_inv)


@pytest.mark.parametrize("method", METHODS)
def test_pointwise_and_multiply_bit_match_reference(setup, method, rng):
    n, primes, engines, batches = setup
    batch, engs = batches[method], engines[method]
    a = _random_limbs(primes, n, rng)
    b = _random_limbs(primes, n, rng)
    a_hat, b_hat = batch.forward(a), batch.forward(b)
    ref_pw = np.stack([e.pointwise(a_hat[i], b_hat[i]) for i, e in enumerate(engs)])
    assert np.array_equal(batch.pointwise(a_hat, b_hat), ref_pw)
    ref_mul = np.stack([e.negacyclic_multiply(a[i], b[i]) for i, e in enumerate(engs)])
    assert np.array_equal(batch.negacyclic_multiply(a, b), ref_mul)


@pytest.mark.parametrize("method", METHODS)
def test_prepared_operand_path_matches_oneshot(setup, method, rng):
    n, primes, engines, batches = setup
    batch = batches[method]
    a_hat = batch.forward(_random_limbs(primes, n, rng))
    b_hat = batch.forward(_random_limbs(primes, n, rng))
    prepared = batch.prepare_operand(b_hat)
    expect = batch.pointwise(a_hat, b_hat)
    # Reusing the handle across products must give identical results.
    for _ in range(3):
        assert np.array_equal(batch.pointwise_prepared(a_hat, prepared), expect)


@pytest.mark.parametrize("method", METHODS)
def test_take_shares_tables_and_matches(setup, method, rng):
    n, primes, engines, batches = setup
    batch, engs = batches[method], engines[method]
    a = _random_limbs(primes, n, rng)
    sub = batch.take(2)
    assert sub.primes == primes[:2]
    ref = np.stack([engs[i].forward(a[i]) for i in range(2)])
    assert np.array_equal(sub.forward(a[:2]), ref)
    assert batch.take(batch.num_limbs) is batch
    with pytest.raises(ParameterError):
        batch.take(0)
    with pytest.raises(ParameterError):
        batch.take(batch.num_limbs + 1)


def test_default_roots_match_per_prime_engines(rng):
    """Without explicit psis both paths pick the same root deterministically."""
    n = 64
    primes = _basis(n)
    batch = BatchNTT(primes, n, "smr")
    engines = [NegacyclicNTT(q, n, "smr") for q in primes]
    assert batch.psis == [e.psi for e in engines]
    a = _random_limbs(primes, n, rng)
    ref = np.stack([e.forward(a[i]) for i, e in enumerate(engines)])
    assert np.array_equal(batch.forward(a), ref)


def test_transposed_phase_threshold_covered():
    """The parametrized degrees must cover both layout regimes."""
    assert any(n < _MIN_SPLIT_N for n in RING_DEGREES)
    assert any(n >= _MIN_SPLIT_N for n in RING_DEGREES)


def test_shape_and_parameter_validation(rng):
    n = 16
    primes = _basis(n)
    batch = BatchNTT(primes, n, "smr")
    a = _random_limbs(primes, n, rng)
    with pytest.raises(ParameterError):
        batch.forward(a[:, : n // 2])  # wrong N
    with pytest.raises(ParameterError):
        batch.forward(a[:2])  # wrong L
    with pytest.raises(ParameterError):
        batch.pointwise(batch.forward(a), a[:2])
    with pytest.raises(ParameterError):
        BatchNTT([], n)
    with pytest.raises(ParameterError):
        BatchNTT(primes, 24)  # not a power of two
    with pytest.raises(ParameterError):
        BatchNTT([101], n)  # 101 != 1 mod 2N
    with pytest.raises(ParameterError):
        BatchNTT(primes, n, psis=[2] * len(primes))  # not primitive roots
    with pytest.raises(ParameterError):
        BatchNTT(primes, n, psis=[3])  # wrong count


def test_rejects_out_of_range_coefficients():
    n = 16
    primes = _basis(n)
    batch = BatchNTT(primes, n, "shoup")
    bad = np.zeros((len(primes), n), dtype=np.uint64)
    bad[0, 0] = primes[0]  # q itself is not canonical
    with pytest.raises(ParameterError):
        batch.forward(bad)


# -- row windows + extended bases share tables (PR 3) -----------------------
def test_take_rows_window_bit_matches_fresh_engine(rng):
    n = 64
    primes = _basis(n)
    batch = BatchNTT(primes, n, "shoup")
    window = batch.take_rows(1, 3)
    assert window.primes == primes[1:3]
    fresh = BatchNTT(primes[1:3], n, "shoup", psis=batch.psis[1:3])
    x = _random_limbs(primes[1:3], n, rng)
    assert np.array_equal(window.forward(x), fresh.forward(x))
    assert np.array_equal(window.inverse(x), fresh.inverse(x))
    # Prepared rows are views into the parent tables, not copies.
    assert window._fwd[0].base is batch._fwd[0]


def test_take_rows_validation():
    n = 16
    batch = BatchNTT(_basis(n), n, "smr")
    assert batch.take_rows(0, batch.num_limbs) is batch
    with pytest.raises(ParameterError):
        batch.take_rows(2, 2)
    with pytest.raises(ParameterError):
        batch.take_rows(0, batch.num_limbs + 1)


@pytest.mark.parametrize("method", METHODS)
def test_extend_bit_matches_fresh_combined_engine(method, rng):
    n = 64
    primes = _basis(n)
    extra = [
        p.value
        for p in ntt_friendly_primes(
            29, 2, n, exclude=set(primes), kind="aux"
        )
    ]
    base = BatchNTT(primes, n, method)
    ext = base.extend(extra)
    fresh = BatchNTT(primes + extra, n, method, psis=ext.psis)
    x = _random_limbs(primes + extra, n, rng)
    assert np.array_equal(ext.forward(x), fresh.forward(x))
    assert np.array_equal(ext.inverse(x), fresh.inverse(x))
    # The shared rows reuse the base tables bit-for-bit.
    assert np.array_equal(ext._fwd[0][: len(primes)], base._fwd[0])


def test_extend_rejects_overlap():
    n = 16
    primes = _basis(n)
    batch = BatchNTT(primes, n, "smr")
    with pytest.raises(ParameterError, match="overlap"):
        batch.extend([primes[0]])


def test_transform_out_buffers(rng):
    n = 64
    primes = _basis(n)
    batch = BatchNTT(primes, n, "smr")
    x = _random_limbs(primes, n, rng)
    expect = batch.forward(x)
    out = np.empty_like(x)
    got = batch.forward(x, out=out)
    assert got is out and np.array_equal(out, expect)
    # out may alias the input (enter() copies before any write).
    buf = x.copy()
    batch.forward(buf, out=buf)
    assert np.array_equal(buf, expect)
    inv = np.empty_like(x)
    assert np.array_equal(batch.inverse(expect, out=inv), batch.inverse(expect))
