"""Seeded fault-injection tests: recovery against real induced failures.

Each test forces a specific fault kind (via ``FaultInjector(forced=...)``)
on known request ids and asserts the matching detection + recovery path:
the fault actually fires inside real kernels/queues — bits genuinely
flip, kernels genuinely raise, executions genuinely stall — and the
delivered results are still verified bit-exactly against a clean replay.
"""

import asyncio
import math

import numpy as np
import pytest

from repro.context import CkksContext
from repro.errors import ServingError
from repro.serving import (
    CkksServer,
    FaultInjector,
    ServingConfig,
    verify_delivered,
)
from repro.serving.loadgen import draw_specs, run_load
from repro.serving.soak import build_server, make_builds, soak

SCALE_BITS = 30
SCALE = 2.0**SCALE_BITS


@pytest.fixture(scope="module")
def cc() -> CkksContext:
    return CkksContext(ring_degree=64, num_main=3, num_aux=3, dnum=2, seed=23)


def make_server(cc, injector, **overrides) -> CkksServer:
    defaults = dict(
        batch_window_s=0.02,
        default_deadline_s=8.0,
        watchdog_s=0.4,
        max_attempts=4,
        backoff_base_s=0.001,
        backoff_cap_s=0.005,
        breaker_cooldown_s=0.2,
        seed=5,
    )
    defaults.update(overrides)
    server = CkksServer(cc, config=ServingConfig(**defaults),
                        injector=injector)
    builds = make_builds(cc)
    server.register_tenant("affine", builds["affine"], scale_bits=SCALE_BITS)
    server.register_tenant("square", builds["square"], scale_bits=SCALE_BITS)
    return server


def serve(server, coro):
    async def driver():
        await server.start()
        try:
            return await coro
        finally:
            await server.stop()

    return asyncio.run(asyncio.wait_for(driver(), 60.0))


def gather_batch(server, tenant, payloads):
    """Submit all payloads concurrently (one batch window), gather results."""

    async def fire():
        return await asyncio.gather(
            *(server.submit(tenant, v) for v in payloads),
            return_exceptions=True,
        )

    return serve(server, fire())


def test_fault_draws_are_deterministic():
    a = FaultInjector(42, rate=0.3)
    b = FaultInjector(42, rate=0.3)
    assert [a.draw(i) for i in range(200)] == [b.draw(i) for i in range(200)]
    c = FaultInjector(43, rate=0.3)
    assert [a.draw(i) for i in range(200)] != [c.draw(i) for i in range(200)]


def test_corrupted_payload_fails_alone_others_deliver(cc):
    """Satellite (a): the corrupted co-batched request is rejected with a
    structured error while every other slot returns a correct result."""
    injector = FaultInjector(1, forced={1: "corrupt-payload"})
    server = make_server(cc, injector)
    payloads = [0.1, 0.2, 0.3, 0.4]  # request ids 0..3, one shared batch
    results = gather_batch(server, "square", payloads)
    assert isinstance(results[1], ServingError)
    assert results[1].code == "corrupted-payload"
    assert results[1].request_id == 1
    for v, got in [(p, r) for i, (p, r) in
                   enumerate(zip(payloads, results)) if i != 1]:
        assert math.isclose(got.real, v * v, abs_tol=1e-4), (v, got)
    assert server.faults_detected["corrupted-payload"] == 1
    assert injector.injected["corrupt-payload"] == 1
    assert verify_delivered(server) == 0


def test_retry_recovers_after_transient_kernel_faults(cc):
    """Satellite (b): N transient kernel faults, then success via backoff."""
    injector = FaultInjector(
        2, forced={0: "kernel-error"}, transient_attempts=2
    )
    server = make_server(cc, injector)
    value = serve(server, server.submit("affine", 0.6))
    assert math.isclose(value.real, 0.5 * 0.6 + 0.25, abs_tol=1e-4)
    # Two attempts faulted inside batch_ntt.forward, the third delivered.
    assert injector.injected["kernel-error"] == 2
    assert server.faults_detected["kernel-fault"] == 2
    assert server.metrics["retries"] == 2
    assert server.metrics["served"] == 1
    assert verify_delivered(server) == 0


def test_bitflip_ct_detected_and_retried(cc):
    """A bit flipped mid-execution in the input ciphertext is caught by
    the fingerprint re-check; the tainted result is discarded."""
    injector = FaultInjector(3, forced={0: "bitflip-ct"})
    server = make_server(cc, injector)
    value = serve(server, server.submit("square", 0.8))
    assert math.isclose(value.real, 0.64, abs_tol=1e-4)
    assert injector.injected["bitflip-ct"] == 1
    assert server.faults_detected["input-corruption"] == 1
    assert server.metrics["retries"] == 1
    assert verify_delivered(server) == 0


def test_corrupt_plan_detected_and_rebuilt(cc):
    """A corrupted prepared constant is caught pre-dispatch by the plan
    fingerprint; the plan is rebuilt from the tenant recipe."""
    injector = FaultInjector(4)
    server = make_server(cc, injector)
    tenant = server._tenants["affine"]
    assert injector.corrupt_plan(tenant.plan)
    value = serve(server, server.submit("affine", -0.2))
    assert math.isclose(value.real, 0.5 * -0.2 + 0.25, abs_tol=1e-4)
    assert server.faults_detected["plan-corruption"] == 1
    assert server.metrics["plan_rebuilds"] == 1
    assert verify_delivered(server) == 0


def test_stall_trips_watchdog_then_recovers(cc):
    """An injected stall blows the per-attempt watchdog; the batch is
    retried on a rebuilt plan and still delivers correctly."""
    injector = FaultInjector(5, forced={0: "stall"}, stall_s=0.8)
    server = make_server(cc, injector, watchdog_s=0.3)
    value = serve(server, server.submit("square", 0.5))
    assert math.isclose(value.real, 0.25, abs_tol=1e-4)
    assert injector.injected["stall"] == 1
    assert server.metrics["watchdog_fires"] == 1
    assert server.metrics["plan_rebuilds"] == 1
    assert verify_delivered(server) == 0


def test_noise_exhaustion_guard_retries(cc):
    """A noise-budget-exhausted result is never delivered; the retry
    (fault gone) succeeds."""
    injector = FaultInjector(6, forced={0: "noise"})
    server = make_server(cc, injector)
    value = serve(server, server.submit("affine", 0.9))
    assert math.isclose(value.real, 0.5 * 0.9 + 0.25, abs_tol=1e-4)
    assert server.faults_detected["budget-exhausted"] == 1
    assert server.metrics["retries"] == 1
    assert verify_delivered(server) == 0


def test_persistent_fault_exhausts_retries_structurally(cc):
    """A fault outliving every attempt yields a structured rejection
    naming the last observed cause — never a hang or a bare exception."""
    injector = FaultInjector(
        7, forced={0: "kernel-error"}, transient_attempts=99
    )
    server = make_server(cc, injector, max_attempts=3)
    with pytest.raises(ServingError) as ei:
        serve(server, server.submit("square", 0.5))
    assert ei.value.code == "retries-exhausted"
    assert "kernel-fault" in str(ei.value)
    assert injector.injected["kernel-error"] == 3
    assert server._tenants["square"].breaker.failures == 1


def test_mini_soak_under_mixed_faults(cc):
    """A seeded mixed-fault load: every request resolves, every delivered
    value bit-matches its replay and approximates its reference."""
    injector = FaultInjector(8, rate=0.2, stall_s=0.6)
    server = make_server(cc, injector, watchdog_s=0.3, max_queue=64)
    specs = draw_specs(
        tenants=["affine", "square"], requests=40, seed=8,
        spread_s=0.4, deadline_s=8.0,
    )
    report = serve(server, run_load(server, specs))
    assert report.unstructured == 0
    assert report.delivered + sum(report.rejected.values()) == 40
    assert verify_delivered(server) == 0
    refs = {"affine": lambda v: 0.5 * v + 0.25, "square": lambda v: v * v}
    for index, spec in enumerate(specs):
        value = report.results[index]
        if isinstance(value, complex):
            assert abs(value.real - refs[spec.tenant](spec.value)) < 1e-2
    assert sum(injector.injected.values()) > 0


def test_soak_entrypoint_smoke():
    """The CLI soak path end to end, scaled down (the 1000-request run
    is CI's serving-soak job)."""
    summary = soak(requests=25, seed=7, rate=0.12, spread_s=0.4,
                   timeout_s=120.0)
    assert summary["ok"], summary["failures"]
    assert summary["wrong_answers_bitmatch"] == 0
    assert summary["wrong_answers_reference"] == 0
    assert summary["unstructured_failures"] == 0
    assert summary["admission_rejection_code"] in (
        "trace-rejected", "analysis-rejected"
    )


def test_build_server_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultInjector(0, kinds=("gamma-ray",))
    with pytest.raises(ValueError):
        FaultInjector(0, rate=1.5)
    assert isinstance(build_server(seed=0, rate=0.0), CkksServer)


def test_injector_rng_never_fires_at_rate_zero():
    injector = FaultInjector(9, rate=0.0)
    assert all(injector.draw(i) is None for i in range(100))
    assert not injector.planned
    assert np.all([injector.injected[k] == 0 for k in injector.injected])
