"""Sanitizer-checked execution: flag plumbing, bit-identity, and trips.

Checked mode (``REPRO_CHECKED=1`` / ``PolyContext(checked=True)``)
asserts the Level-1 analyzer's statically derived per-stage bounds
inside the real kernels at runtime.  Three properties matter:

* the flag reaches every kernel a context constructs (NTT engines,
  accumulators, converters) without call-site changes;
* instrumented execution is bit-identical to plain execution — the
  asserts observe, they never transform;
* a genuine invariant violation trips a :class:`SanitizerError` naming
  the kernel, stage and offending coefficient, and an over-full lazy
  accumulator reports its statically safe headroom before any wrap.
"""

import numpy as np
import pytest

from repro.analysis import checked_mode
from repro.analysis.sanitizer import assert_fold_sound, assert_within
from repro.errors import AccumulatorOverflowError, SanitizerError
from repro.poly.lazy import LazyAccumulator
from repro.poly.rns_poly import PolyContext, RnsPolynomial
from repro.rns.primes import PrimePool
from repro.rns.reduction import SignedMontgomeryReducer, make_reducer

N = 64


@pytest.fixture(scope="module")
def pool() -> PrimePool:
    return PrimePool.generate(N, num_main=3, num_terminal=1, num_aux=2)


class TestFlagResolution:
    def test_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKED", "1")
        assert checked_mode(False) is False
        monkeypatch.delenv("REPRO_CHECKED")
        assert checked_mode(True) is True

    @pytest.mark.parametrize("value", ["", "0", "false", "OFF", "no"])
    def test_falsy_env_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECKED", value)
        assert checked_mode() is False

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_truthy_env_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECKED", value)
        assert checked_mode() is True

    def test_env_reaches_constructors(self, monkeypatch, pool):
        monkeypatch.setenv("REPRO_CHECKED", "1")
        ctx = PolyContext.from_pool(pool, num_terminal=1, num_main=2)
        assert ctx.checked
        assert ctx.batch_ntt.checked
        acc = LazyAccumulator(make_reducer("smr", ctx.primes), (3, N))
        assert acc.checked


class TestContextPropagation:
    def test_checked_propagates_to_children(self, pool):
        ctx = PolyContext.from_pool(
            pool, num_terminal=1, num_main=2, checked=True
        )
        assert ctx.checked and ctx.batch_ntt.checked
        child = ctx.drop_last()
        assert child.checked and child.batch_ntt.checked

    def test_certificate_is_cached_and_validated(self, pool):
        ctx = PolyContext.from_pool(
            pool, num_terminal=1, num_main=2, checked=True
        )
        cert = ctx.range_certificate()
        assert cert is ctx.range_certificate()  # computed once
        assert cert.ok  # checked construction validated it eagerly
        assert cert.stage_bounds == tuple(q - 1 for q in ctx.primes)

    @pytest.mark.parametrize("method", ("barrett", "smr"))
    def test_checked_execution_is_bit_identical(self, pool, method):
        plain = PolyContext.from_pool(
            pool, num_terminal=1, num_main=2, method=method, checked=False
        )
        checked = PolyContext.from_pool(
            pool, num_terminal=1, num_main=2, method=method, checked=True
        )
        r = np.random.default_rng(0xC0DE)
        limbs = np.stack(
            [r.integers(0, q, N, dtype=np.uint64) for q in plain.primes]
        )
        a = RnsPolynomial(plain, limbs.copy())
        b = RnsPolynomial(checked, limbs.copy())
        assert np.array_equal(
            plain.batch_ntt.forward(limbs.copy()),
            checked.batch_ntt.forward(limbs.copy()),
        )
        assert np.array_equal(
            a.multiply(a).limbs, b.multiply(b).limbs
        )
        assert np.array_equal(
            a.multiply(a).exact_rescale().limbs,
            b.multiply(b).exact_rescale().limbs,
        )


class TestSanitizerTrips:
    def test_assert_within_names_the_violation(self):
        values = np.array([[1, 2], [3, 99]], dtype=np.uint64)
        with pytest.raises(SanitizerError) as e:
            assert_within(
                values, np.uint64(50), kernel="barrett NTT", stage="stage 2"
            )
        msg = str(e.value)
        assert "barrett NTT" in msg and "stage 2" in msg
        assert "99" in msg and "row 1" in msg
        # In-bounds data passes silently.
        assert_within(values, np.uint64(99), kernel="k", stage="s") is None

    def test_assert_fold_sound_trip(self):
        acc = np.array([[5, 2**40]], dtype=np.uint64)
        with pytest.raises(SanitizerError, match="unsound"):
            assert_fold_sound(
                acc, 2**39, kernel="LazyAccumulator.fold", signed=False
            )
        assert_fold_sound(acc, 2**40, kernel="k", signed=False)

    def test_corrupted_accumulator_trips_on_fold(self, pool):
        # The bound tracker says one product was charged; the data says
        # something much larger got in.  Checked fold must catch the
        # disagreement instead of silently folding garbage.
        qs = [p.value for p in pool.limb_primes(1, 2)]
        acc = LazyAccumulator(
            SignedMontgomeryReducer(qs), (len(qs), N), checked=True
        )
        r = np.random.default_rng(7)
        a = np.stack([r.integers(0, q, N, dtype=np.uint64) for q in qs])
        acc.accumulate_product(a, a)
        acc.acc[0, 0] = np.int64(2**62)  # corrupt behind the tracker
        with pytest.raises(SanitizerError, match="static bound tracking"):
            acc.fold()

    def test_ntt_entry_contract_precedes_stage_asserts(self, pool):
        # Out-of-range inputs never reach a butterfly: the kernel's own
        # entry range check refuses them (the analyzer's base case).
        from repro.errors import ParameterError

        ctx = PolyContext.from_pool(
            pool, num_terminal=1, num_main=2, method="barrett", checked=True
        )
        bad = np.full(
            (ctx.num_limbs, N), 4 * max(ctx.primes), dtype=np.uint64
        )
        with pytest.raises(ParameterError, match="out of range"):
            ctx.batch_ntt.forward(bad)

    def test_stage_asserts_run_inside_the_transform(self, pool):
        # The reducers are range-correct by construction, so a genuine
        # mid-transform violation cannot be provoked from outside; to
        # prove the per-stage asserts actually execute in the hot loop,
        # tighten the certified bound below what honest butterflies
        # produce and watch the first stage trip.
        ctx = PolyContext.from_pool(
            pool, num_terminal=1, num_main=2, method="barrett", checked=True
        )
        kernel = ctx.batch_ntt._kernel
        kernel._bound_col = np.full_like(kernel._bound_col, 2)
        r = np.random.default_rng(3)
        a = np.stack(
            [r.integers(0, q, N, dtype=np.uint64) for q in ctx.primes]
        )
        with pytest.raises(SanitizerError, match="forward stage"):
            ctx.batch_ntt.forward(a)


class TestOverflowHeadroomMessage:
    def test_raw_overflow_reports_safe_headroom(self, pool):
        # Satellite: the overflow error must carry the statically
        # computed safe headroom and the offending magnitude/limb.
        qs = [p.value for p in pool.limb_primes(1, 2)]
        acc = LazyAccumulator(
            SignedMontgomeryReducer(qs), (len(qs), N), strategy="raw"
        )
        r = np.random.default_rng(11)
        a = np.stack([r.integers(0, q, N, dtype=np.uint64) for q in qs])
        with pytest.raises(AccumulatorOverflowError) as e:
            for _ in range(acc.headroom + 1):
                acc.accumulate_product(a, a)
        msg = str(e.value)
        assert "statically safe headroom" in msg
        assert "fold first" in msg
        assert "limb" in msg  # names the offending limb/coefficient

    def test_negative_value_into_unsigned_is_refused_up_front(self, pool):
        from repro.errors import ParameterError

        q = pool.limb_primes(1, 2)[0].value
        acc = LazyAccumulator(make_reducer("barrett", [q]), (1, N))
        with pytest.raises(ParameterError, match="wrap it silently"):
            acc.accumulate_value(np.full((1, N), -3, dtype=np.int64), 3)
