"""Slot-wise workload layer tests: BSGS matvec and polynomial evaluation.

The fast paths must be *bit-identical* to their naive per-diagonal /
per-monomial compositions (the benchmark's acceptance bar, pinned here
at test scale), decode to the plaintext-side oracle within slot
precision, and be priced coherently by :class:`SchemeCostModel` (the
fused composite strictly cheaper, >= 2x at the benchmark's matvec
shape).
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.errors import KeyError_, ParameterError
from repro.poly.rns_poly import PolyContext
from repro.rns.primes import PrimePool
from repro.scheme import (
    CanonicalEncoder,
    Evaluator,
    KeyGenerator,
    ReferenceEvaluator,
    SchemeCostModel,
    bsgs_split,
)
from repro.scheme._linalg import SlotLinalg

METHODS = ("barrett", "montgomery", "shoup", "smr")
SCALE = 2.0**30
DIM = 16


@lru_cache(maxsize=None)
def _pool(n: int) -> PrimePool:
    return PrimePool.generate(n, num_main=3, num_terminal=1, num_aux=4)


@lru_cache(maxsize=None)
def _setup(n: int, method: str):
    """(ctx, keygen, encoder, linalg-with-matvec-keys) per config."""
    pool = _pool(n)
    ctx = PolyContext.from_pool(pool, num_terminal=1, num_main=3, method=method)
    aux = [p.value for p in pool.extension_basis(1, 3, dnum=2)]
    keygen = KeyGenerator(ctx, aux, 2, np.random.default_rng(0xB5B5 + n))
    ev = Evaluator.from_keygen(keygen, rotations=SlotLinalg.matvec_rotations(DIM))
    enc = CanonicalEncoder(ctx)
    return ctx, keygen, enc, SlotLinalg(enc, ev)


def _data(n: int, dim: int = DIM, seed: int = 0xD1CE):
    r = np.random.default_rng(seed + n)
    z = r.uniform(-1, 1, dim) + 1j * r.uniform(-1, 1, dim)
    m = r.uniform(-1, 1, (dim, dim))
    return z, m


def _encrypt(lin, keygen, z, scale=SCALE, seed=5):
    pt = lin.encoder.encode(z, scale, num_slots=len(z))
    return lin.ev.encrypt(pt, keygen.public, np.random.default_rng(seed))


def test_bsgs_split_covers_and_balances():
    for count in (1, 2, 3, 15, 16, 17, 64, 100):
        bs, gs = bsgs_split(count)
        assert bs * gs >= count
        assert (bs - 1) * gs < count or bs == 1
    assert bsgs_split(16) == (4, 4)
    with pytest.raises(ParameterError):
        bsgs_split(0)


def test_matvec_rotations_names_the_key_set():
    assert SlotLinalg.matvec_rotations(16) == [1, 2, 3, 4, 8, 12]
    assert SlotLinalg.matvec_rotations(16, baby_steps=8) == [1, 2, 3, 4, 5, 6, 7, 8]
    assert SlotLinalg.matvec_rotations(1) == []


# -- matvec ----------------------------------------------------------------
@pytest.mark.parametrize("method", METHODS)
def test_matvec_bit_identical_to_naive_and_correct(method):
    """The acceptance-bar identity at test scale, all four backends."""
    n = 256
    ctx, keygen, enc, lin = _setup(n, method)
    z, m = _data(n)
    ct = _encrypt(lin, keygen, z)
    fast = lin.matvec(ct, m)
    naive = lin.matvec_naive(ct, m)
    assert np.array_equal(fast.c0.limbs, naive.c0.limbs)
    assert np.array_equal(fast.c1.limbs, naive.c1.limbs)
    assert fast.scale == naive.scale
    assert fast.noise_bits == pytest.approx(naive.noise_bits)
    out = lin.ev.rescale(fast)
    got = enc.decode(lin.ev.decrypt(out, keygen.secret), num_slots=DIM)
    ref = ReferenceEvaluator(n, coeff_bound_bits=40)
    assert np.abs(got - ref.matvec_slots(m, z)).max() < 1e-4


def test_matvec_complex_matrix_and_uneven_split():
    n = 256
    ctx, keygen, enc, lin = _setup(n, "smr")
    r = np.random.default_rng(2)
    z, _ = _data(n)
    m = r.uniform(-1, 1, (DIM, DIM)) + 1j * r.uniform(-1, 1, (DIM, DIM))
    ct = _encrypt(lin, keygen, z)
    # baby_steps=8 needs keys {1..7, 8}: generate on the fly
    ev = Evaluator.from_keygen(
        keygen, rotations=SlotLinalg.matvec_rotations(DIM, baby_steps=8)
    )
    lin8 = SlotLinalg(enc, ev)
    fast = lin8.matvec(ct, m, baby_steps=8)
    naive = lin8.matvec_naive(ct, m, baby_steps=8)
    assert np.array_equal(fast.c0.limbs, naive.c0.limbs)
    got = enc.decode(lin8.ev.decrypt(fast, keygen.secret), num_slots=DIM)
    assert np.abs(got - m @ z).max() < 1e-3


def test_matvec_identity_matrix_is_identity():
    n = 256
    ctx, keygen, enc, lin = _setup(n, "shoup")
    z, _ = _data(n)
    ct = _encrypt(lin, keygen, z)
    out = lin.matvec(ct, np.eye(DIM))
    got = enc.decode(lin.ev.decrypt(out, keygen.secret), num_slots=DIM)
    assert np.abs(got - z).max() < 1e-4


def test_matvec_validation_and_missing_keys():
    n = 256
    ctx, keygen, enc, lin = _setup(n, "smr")
    z, m = _data(n)
    ct = _encrypt(lin, keygen, z)
    with pytest.raises(ParameterError, match="square"):
        lin.matvec(ct, np.zeros((4, 8)))
    with pytest.raises(ParameterError, match="slot count 3"):
        lin.matvec(ct, np.zeros((3, 3)))
    bare = SlotLinalg(enc, Evaluator(ctx))
    with pytest.raises(KeyError_, match="no Galois key"):
        bare.matvec_naive(ct, m)
    other = PolyContext(ctx.ring_degree, ctx.primes, "barrett")
    with pytest.raises(ParameterError, match="method mismatch"):
        SlotLinalg(CanonicalEncoder(other), lin.ev)


# -- element-wise vector ops -----------------------------------------------
def test_multiply_and_add_vector():
    n = 256
    ctx, keygen, enc, lin = _setup(n, "montgomery")
    z, _ = _data(n)
    w = _data(n, seed=0xF00)[0].real
    ct = _encrypt(lin, keygen, z)
    prod = lin.multiply_vector(ct, w)
    assert prod.scale == SCALE * SCALE
    got = enc.decode(lin.ev.decrypt(prod, keygen.secret), num_slots=DIM)
    assert np.abs(got - z * w).max() < 1e-4
    summed = lin.add_vector(ct, w)
    got = enc.decode(lin.ev.decrypt(summed, keygen.secret), num_slots=DIM)
    assert np.abs(got - (z + w)).max() < 1e-5


# -- polynomial evaluation -------------------------------------------------
@pytest.mark.parametrize("method", METHODS)
def test_poly_eval_bit_identical_and_correct(method):
    n = 256
    ctx, keygen, enc, lin = _setup(n, method)
    z, _ = _data(n)
    scale = 2.0**24  # stack of 4 fits the 4-limb Q
    ct = _encrypt(lin, keygen, z, scale=scale)
    coeffs = [0.5, -1.0, 0.25, 0.125]
    fast = lin.poly_eval(ct, coeffs)
    naive = lin.poly_eval_naive(ct, coeffs)
    assert np.array_equal(fast.c0.limbs, naive.c0.limbs)
    assert np.array_equal(fast.c1.limbs, naive.c1.limbs)
    got = enc.decode(lin.ev.decrypt(fast, keygen.secret), num_slots=DIM)
    expect = sum(c * z**k for k, c in enumerate(coeffs))
    assert np.abs(got - expect).max() < 1e-3
    assert fast.level == ctx.num_limbs  # scale stacking: no level spent


def test_poly_eval_sparse_coefficients_and_tail_constant():
    """Zero coefficients are skipped identically on both paths, and a
    lone constant term folds in through add_plain at the end."""
    n = 256
    ctx, keygen, enc, lin = _setup(n, "smr")
    z, _ = _data(n)
    scale = 2.0**24
    ct = _encrypt(lin, keygen, z, scale=scale)
    coeffs = [2.0, 0.0, 0.0, -0.5]  # only x^0 and x^3
    fast = lin.poly_eval(ct, coeffs)
    naive = lin.poly_eval_naive(ct, coeffs)
    assert np.array_equal(fast.c0.limbs, naive.c0.limbs)
    got = enc.decode(lin.ev.decrypt(fast, keygen.secret), num_slots=DIM)
    assert np.abs(got - (2.0 - 0.5 * z**3)).max() < 1e-3
    # trailing zeros are stripped before the split
    same = lin.poly_eval(ct, coeffs + [0.0, 0.0])
    assert np.array_equal(same.c0.limbs, fast.c0.limbs)


def test_poly_eval_linear_and_errors():
    n = 256
    ctx, keygen, enc, lin = _setup(n, "smr")
    z, _ = _data(n)
    ct = _encrypt(lin, keygen, z, scale=2.0**24)
    lin_ct = lin.poly_eval(ct, [1.0, 3.0])
    got = enc.decode(lin.ev.decrypt(lin_ct, keygen.secret), num_slots=DIM)
    assert np.abs(got - (1.0 + 3.0 * z)).max() < 1e-3
    with pytest.raises(ParameterError, match="degree >= 1"):
        lin.poly_eval(ct, [4.0])
    with pytest.raises(ParameterError, match="degree >= 1"):
        lin.poly_eval(ct, [1.0, 0.0, 0.0])
    with pytest.raises(ParameterError, match="scale budget"):
        big = _encrypt(lin, keygen, z, scale=2.0**30)
        lin.poly_eval(big, [0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])


# -- cost model ------------------------------------------------------------
def test_cost_matvec_fused_beats_naive_by_2x_at_bench_shape():
    sc = SchemeCostModel(4096, 12, 4, 3, "shoup")
    for dim in (16, 64):
        fast = sc.matvec(dim).int32_instrs
        naive = sc.matvec_naive(dim).int32_instrs
        assert fast < naive
        if dim == 64:
            assert naive >= 2 * fast  # the benchmark acceptance shape
    assert sc.matvec(16, baby_steps=8).int32_instrs != sc.matvec(16).int32_instrs


def test_cost_poly_eval_caching_never_loses():
    sc = SchemeCostModel(1024, 8, 3, 2, "smr")
    for deg in (1, 2, 3, 7, 15):
        fast = sc.poly_eval(deg).int32_instrs
        naive = sc.poly_eval_naive(deg).int32_instrs
        assert fast <= naive
    assert sc.poly_eval_naive(7).int32_instrs > sc.poly_eval(7).int32_instrs


def test_cost_poly_eval_schedule_matches_implementation():
    """The model walks the implementation's exact op sequence —
    (hmults, plaintext mults, ciphertext adds) pinned against
    instrumented SlotLinalg runs, including the bare-giant case
    (degree 6: the last block holds only c6, which rides
    multiply_plain(x^6, const), not an hmult)."""
    sc = SchemeCostModel(256, 4, 2, 2, "smr")
    n = 256
    ctx, keygen, enc, lin = _setup(n, "smr")
    z, _ = _data(n)
    for deg, expect_fast, expect_naive in (
        (3, (2, 2, 1), (2, 2, 1)),
        (6, (4, 5, 4), (10, 5, 4)),  # the bare-giant shape
        (7, (5, 5, 4), (11, 5, 4)),
    ):
        bs, gs = bsgs_split(deg + 1)
        assert sc._poly_eval_schedule(deg + 1, bs, gs, True) == expect_fast
        assert sc._poly_eval_schedule(deg + 1, bs, gs, False) == expect_naive
        ct = _encrypt(lin, keygen, z, scale=2.0**9)
        coeffs = [0.1 * (k + 1) for k in range(deg + 1)]
        counts = [0, 0, 0]
        ev = lin.ev
        originals = (ev.multiply, ev.multiply_plain, ev.add)

        def count(i, fn):
            def wrapped(*a, **kw):
                counts[i] += 1
                return fn(*a, **kw)

            return wrapped

        ev.multiply, ev.multiply_plain, ev.add = (
            count(i, f) for i, f in enumerate(originals)
        )
        try:
            lin.poly_eval(ct, coeffs)
        finally:
            ev.multiply, ev.multiply_plain, ev.add = originals
        assert tuple(counts) == expect_fast, deg


def test_cost_multiply_plain_and_table():
    sc = SchemeCostModel(256, 4, 2, 2, "smr")
    assert sc.multiply_plain().int32_instrs < sc.hmult().int32_instrs
    text = sc.table()
    for op in ("multiply_plain", "matvec", "matvec_naive", "poly_eval"):
        assert op in text
    with pytest.raises(ParameterError):
        sc.matvec(0)
    with pytest.raises(ParameterError):
        sc.poly_eval(0)
    with pytest.raises(ParameterError):
        sc.matvec(16, baby_steps=0)
