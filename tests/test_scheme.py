"""End-to-end scheme-layer tests: keygen -> encrypt -> evaluate -> decrypt.

The acceptance chain — encrypt, HMult + relinearize, rotate, rescale,
decrypt — is cross-checked against the exact big-int/CRT
:class:`ReferenceEvaluator` (itself anchored against an O(N^2)
schoolbook big-int multiply at small N) for N in {1024, 4096} and all
four reducer backends.  Hoisted rotation is asserted *bit-identical* to
independent rotations, and the whole pipeline is asserted reproducible
bit-for-bit from a single seed.
"""

import math
from functools import lru_cache

import numpy as np
import pytest

from repro.errors import (
    KeyError_,
    LayoutError,
    LevelError,
    ParameterError,
    ScaleMismatchError,
)
from repro.poly.rns_poly import PolyContext
from repro.rns.primes import PrimePool
from repro.scheme import (
    Ciphertext,
    Evaluator,
    KeyGenerator,
    Plaintext,
    ReferenceEvaluator,
    conjugation_element,
    galois_element,
)

METHODS = ("barrett", "montgomery", "shoup", "smr")
SCALE = 2.0**30
DNUM = 2

#: |decoded - reference| ceiling for the noisy pipeline: the estimated
#: noise after the acceptance chain sits near 2^-17 of the final scale,
#: so 1e-3 leaves two decimal orders of safety margin.
E2E_TOL = 1e-3


@lru_cache(maxsize=None)
def _pool(n: int) -> PrimePool:
    return PrimePool.generate(n, num_main=3, num_terminal=1, num_aux=4)


@lru_cache(maxsize=None)
def _setup(n: int, method: str):
    """(ctx, keygen) per configuration, built once per session."""
    pool = _pool(n)
    ctx = PolyContext.from_pool(pool, num_terminal=1, num_main=3, method=method)
    aux = [p.value for p in pool.extension_basis(1, 3, dnum=DNUM)]
    keygen = KeyGenerator(ctx, aux, DNUM, np.random.default_rng(0xCAFE + n))
    return ctx, keygen


@lru_cache(maxsize=None)
def _reference(n: int) -> ReferenceEvaluator:
    # Products of two scale-2^30 encodings wrap-add at most N terms:
    # |coeff| < N * 2^60 <= 2^72; pad to 76 bits.
    return ReferenceEvaluator(n, coeff_bound_bits=76)


def _messages(n: int) -> tuple[np.ndarray, np.ndarray]:
    r = np.random.default_rng(0x5EED + n)
    return r.uniform(-1, 1, n), r.uniform(-1, 1, n)


def _encrypt_two(ctx, keygen, seed=0xE7C):
    v1, v2 = _messages(ctx.ring_degree)
    ev = Evaluator.from_keygen(keygen, rotations=[3])
    rng = np.random.default_rng(seed)
    ct1 = ev.encrypt(Plaintext.encode(ctx, v1, SCALE), keygen.public, rng)
    ct2 = ev.encrypt(Plaintext.encode(ctx, v2, SCALE), keygen.public, rng)
    return ev, ct1, ct2, v1, v2


# -- the reference evaluator is itself anchored at small N ------------------
def test_reference_evaluator_matches_schoolbook():
    n = 64
    r = np.random.default_rng(3)
    a = [int(x) for x in r.integers(-(2**30), 2**30, n)]
    b = [int(x) for x in r.integers(-(2**30), 2**30, n)]
    ref = ReferenceEvaluator(n, coeff_bound_bits=76)
    # O(N^2) schoolbook in exact Python ints.
    expect = [0] * n
    for i in range(n):
        for j in range(n):
            if i + j < n:
                expect[(i + j) % n] += a[i] * b[j]
            else:
                expect[(i + j) % n] -= a[i] * b[j]
    assert ref.multiply(a, b) == expect
    # rescale: round-to-nearest division, exactly.
    q = 12289
    got = ref.rescale(expect, q)
    for x, y in zip(expect, got):
        assert 2 * abs(y * q - x) <= q
    with pytest.raises(ParameterError):
        ref.multiply([2**75] + [0] * (n - 1), [2**10] + [0] * (n - 1))


def test_reference_automorphism_is_signed_permutation():
    n = 64
    ref = ReferenceEvaluator(n, coeff_bound_bits=40)
    a = list(range(1, n + 1))
    k = 5
    got = ref.automorphism(a, k)
    for i in range(n):
        e = (i * k) % (2 * n)
        if e >= n:
            assert got[e - n] == -a[i]
        else:
            assert got[e] == a[i]


# -- fresh encryption ------------------------------------------------------
@pytest.mark.parametrize("method", METHODS)
def test_encrypt_decrypt_roundtrip(method):
    n = 256
    ctx, keygen = _setup(n, method)
    ev, ct1, _, v1, _ = _encrypt_two(ctx, keygen)
    decoded = ev.decrypt(ct1, keygen.secret).decode()
    # Encoding quantizes to 1/SCALE; noise adds ~2^-20 on top.
    assert np.abs(decoded - v1).max() < 1e-6
    assert ct1.level == ctx.num_limbs
    assert ct1.scale == SCALE
    assert ct1.noise_budget_bits > 80


# -- the acceptance chain --------------------------------------------------
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("n", (1024, 4096))
def test_end_to_end_multiply_rotate_rescale_decrypt(n, method):
    """encrypt -> HMult+relin -> rotate -> rescale -> decrypt recovers the
    plaintext product, vs the exact big-int/CRT reference evaluator."""
    ctx, keygen = _setup(n, method)
    ev, ct1, ct2, v1, v2 = _encrypt_two(ctx, keygen)

    prod = ev.multiply(ct1, ct2)
    assert prod.scale == SCALE * SCALE
    rot = ev.rotate(prod, 3)
    res = ev.rescale(rot)
    assert res.level == ctx.num_limbs - 1
    q_last = ctx.primes[-1]
    assert res.scale == pytest.approx(SCALE * SCALE / q_last)
    decoded = ev.decrypt(res, keygen.secret).decode()

    ref = _reference(n)
    m1 = [round(v * SCALE) for v in v1]
    m2 = [round(v * SCALE) for v in v2]
    expect = ref.automorphism(ref.multiply(m1, m2), galois_element(3, n))
    expect = np.array(expect, dtype=np.float64) / (SCALE * SCALE)
    assert np.abs(decoded - expect).max() < E2E_TOL


def test_noise_budget_decreases_along_the_chain():
    n = 256
    ctx, keygen = _setup(n, "smr")
    ev, ct1, ct2, _, _ = _encrypt_two(ctx, keygen)
    prod = ev.multiply(ct1, ct2)
    rot = ev.rotate(prod, 3)
    assert prod.noise_budget_bits < ct1.noise_budget_bits
    assert rot.noise_budget_bits <= prod.noise_budget_bits
    assert rot.noise_budget_bits > 0  # still decryptable, with room


# -- hoisted rotations -----------------------------------------------------
@pytest.mark.parametrize("method", ("barrett", "smr"))
def test_hoisted_rotation_bit_identical_to_independent(method):
    n = 1024
    rotations = [1, 2, 3, 5, 7]
    ctx, keygen = _setup(n, method)
    ev = Evaluator.from_keygen(keygen, rotations=rotations)
    rng = np.random.default_rng(11)
    v1, _ = _messages(n)
    ct = ev.encrypt(Plaintext.encode(ctx, v1, SCALE), keygen.public, rng)
    hoisted = ev.rotate_hoisted(ct, rotations)
    assert set(hoisted) == set(rotations)
    for r in rotations:
        independent = ev.rotate(ct, r)
        assert np.array_equal(hoisted[r].c0.limbs, independent.c0.limbs), r
        assert np.array_equal(hoisted[r].c1.limbs, independent.c1.limbs), r
        assert hoisted[r].scale == independent.scale


def test_rotation_matches_reference_permutation():
    n = 256
    ctx, keygen = _setup(n, "shoup")
    ev, ct1, _, v1, _ = _encrypt_two(ctx, keygen)
    rot = ev.rotate(ct1, 3)
    decoded = ev.decrypt(rot, keygen.secret).decode()
    ref = _reference(n)
    m1 = [round(v * SCALE) for v in v1]
    expect = np.array(
        ref.automorphism(m1, galois_element(3, n)), dtype=np.float64
    ) / SCALE
    assert np.abs(decoded - expect).max() < E2E_TOL


def test_conjugate_matches_reference():
    n = 256
    ctx, keygen = _setup(n, "smr")
    ev = Evaluator.from_keygen(keygen, conjugate=True)
    rng = np.random.default_rng(13)
    v1, _ = _messages(n)
    ct = ev.encrypt(Plaintext.encode(ctx, v1, SCALE), keygen.public, rng)
    conj = ev.conjugate(ct)
    decoded = ev.decrypt(conj, keygen.secret).decode()
    ref = _reference(n)
    m1 = [round(v * SCALE) for v in v1]
    expect = np.array(
        ref.automorphism(m1, conjugation_element(n)), dtype=np.float64
    ) / SCALE
    assert np.abs(decoded - expect).max() < E2E_TOL


# -- linear / plaintext ops ------------------------------------------------
def test_add_sub_plain_ops_match_reference():
    n = 256
    ctx, keygen = _setup(n, "montgomery")
    ev, ct1, ct2, v1, v2 = _encrypt_two(ctx, keygen)
    sk = keygen.secret
    got = ev.decrypt(ev.add(ct1, ct2), sk).decode()
    assert np.abs(got - (v1 + v2)).max() < 1e-5
    got = ev.decrypt(ev.sub(ct1, ct2), sk).decode()
    assert np.abs(got - (v1 - v2)).max() < 1e-5
    got = ev.decrypt(ev.negate(ct1), sk).decode()
    assert np.abs(got + v1).max() < 1e-5
    pt = Plaintext.encode(ctx, v2, SCALE)
    got = ev.decrypt(ev.add_plain(ct1, pt), sk).decode()
    assert np.abs(got - (v1 + v2)).max() < 1e-5
    prod = ev.multiply_plain(ct1, pt)
    assert prod.scale == SCALE * SCALE
    got = ev.decrypt(prod, sk).decode()
    ref = _reference(n)
    m1 = [round(v * SCALE) for v in v1]
    m2 = [round(v * SCALE) for v in v2]
    expect = np.array(ref.multiply(m1, m2), np.float64) / (SCALE * SCALE)
    assert np.abs(got - expect).max() < E2E_TOL


# -- determinism (seeded rng plumbing) -------------------------------------
def test_pipeline_is_bit_reproducible_from_one_seed():
    """Same seeds => bit-identical keys, ciphertexts, and results."""
    n = 256
    pool = _pool(n)
    aux = [p.value for p in pool.extension_basis(1, 3, dnum=DNUM)]

    def run():
        ctx = PolyContext.from_pool(
            pool, num_terminal=1, num_main=3, method="smr"
        )
        keygen = KeyGenerator(ctx, aux, DNUM, np.random.default_rng(99))
        ev = Evaluator.from_keygen(keygen, rotations=[2])
        rng = np.random.default_rng(100)
        v1, v2 = _messages(n)
        ct1 = ev.encrypt(Plaintext.encode(ctx, v1, SCALE), keygen.public, rng)
        ct2 = ev.encrypt(Plaintext.encode(ctx, v2, SCALE), keygen.public, rng)
        out = ev.rescale(ev.rotate(ev.multiply(ct1, ct2), 2))
        return keygen, ct1, out

    kg_a, ct_a, out_a = run()
    kg_b, ct_b, out_b = run()
    assert np.array_equal(kg_a.secret.coeffs, kg_b.secret.coeffs)
    assert np.array_equal(kg_a.public.b.limbs, kg_b.public.b.limbs)
    for pa, pb in zip(
        kg_a.relinearization_key().pairs, kg_b.relinearization_key().pairs
    ):
        assert np.array_equal(pa[0].limbs, pb[0].limbs)
        assert np.array_equal(pa[1].limbs, pb[1].limbs)
    assert np.array_equal(ct_a.c0.limbs, ct_b.c0.limbs)
    assert np.array_equal(out_a.c0.limbs, out_b.c0.limbs)
    assert np.array_equal(out_a.c1.limbs, out_b.c1.limbs)


# -- state tracking and error surfaces -------------------------------------
def test_level_and_scale_errors_name_the_problem():
    n = 256
    ctx, keygen = _setup(n, "smr")
    ev, ct1, ct2, _, _ = _encrypt_two(ctx, keygen)
    prod = ev.multiply(ct1, ct2)
    low = ev.rescale(prod)
    with pytest.raises(LevelError, match="level mismatch"):
        ev.add(low, ct1)
    with pytest.raises(ScaleMismatchError, match="scale mismatch"):
        ev.add(prod, ct1)
    # Below the keygen level the evaluator derives keys from its key
    # source; an evaluator holding only top-level keys still fails with
    # an error naming the level gap.
    assert ev.rotate(low, 3).level == low.level
    keyless = Evaluator(
        ctx, relin_key=ev.relin_key, galois_keys=ev.galois_keys
    )
    with pytest.raises(KeyError_, match="below the keygen level"):
        keyless.rotate(low, 3)
    with pytest.raises(KeyError_, match="below the keygen level"):
        keyless.multiply(low, low)
    bare = Evaluator(ctx)
    with pytest.raises(KeyError_, match="relinearization"):
        bare.multiply(ct1, ct2)
    with pytest.raises(KeyError_, match="no Galois key"):
        bare.rotate(ct1, 1)
    with pytest.raises(LevelError):
        single = ev.rescale(ev.rescale(ev.rescale(ct1)))
        ev.rescale(single)


def test_context_mismatch_errors_name_the_field(rng):
    n = 256
    ctx, _ = _setup(n, "smr")
    other_method = PolyContext(ctx.ring_degree, ctx.primes, "shoup")
    with pytest.raises(ParameterError, match="reduction method mismatch"):
        ctx.random(rng).add(other_method.random(rng))
    dropped = ctx.drop_last()
    with pytest.raises(ParameterError, match="level mismatch"):
        ctx.random(rng).add(dropped.random(rng))
    small_pool = _pool(64)
    small = PolyContext.from_pool(
        small_pool, num_terminal=1, num_main=2, method="smr"
    )
    with pytest.raises(ParameterError, match="ring degree mismatch"):
        ctx.random(rng).add(small.random(rng))
    scrambled = PolyContext(
        ctx.ring_degree, list(reversed(ctx.primes)), "smr"
    )
    with pytest.raises(ParameterError, match="limb basis mismatch"):
        ctx.random(rng).add(scrambled.random(rng))


def test_ciphertext_state_is_authoritative():
    n = 256
    ctx, keygen = _setup(n, "smr")
    ev, ct1, _, _, _ = _encrypt_two(ctx, keygen)
    assert ct1.state.domain == ct1.c0.domain
    assert ct1.state.level == ctx.num_limbs
    # The ciphertext state is authoritative and borrowed components are
    # never mutated: rewrapping at a different scale must not disturb
    # the original ciphertext's (or the components') metadata.
    before = (ct1.c0.scale, ct1.c1.scale)
    rewrapped = Ciphertext(ct1.c0, ct1.c1, scale=ct1.scale * 7.0)
    assert rewrapped.scale == ct1.scale * 7.0
    assert (ct1.c0.scale, ct1.c1.scale) == before
    assert ct1.scale == SCALE
    with pytest.raises(LayoutError, match="domains differ"):
        Ciphertext(ct1.c0, ct1.c1.to_ntt(), scale=SCALE)
    with pytest.raises(ParameterError):
        Ciphertext(ct1.c0, ct1.c1, scale=-1.0)


def test_encode_rejects_oversized_values():
    n = 256
    ctx, _ = _setup(n, "smr")
    with pytest.raises(LayoutError):
        Plaintext.encode(ctx, np.ones(n + 1), SCALE)
    with pytest.raises(ParameterError, match="exceeds Q/2"):
        Plaintext.encode(ctx, [2.0**90], SCALE)
    with pytest.raises(ParameterError):
        Plaintext.encode(ctx, [1.0], -2.0)


def test_encode_decode_roundtrip_quantizes_at_scale():
    n = 256
    ctx, _ = _setup(n, "smr")
    v = np.random.default_rng(5).uniform(-3, 3, n)
    pt = Plaintext.encode(ctx, v, SCALE)
    assert pt.scale == SCALE
    back = pt.decode()
    assert np.abs(back - v).max() <= 0.5 / SCALE + 1e-12


def test_galois_element_group_facts():
    n = 256
    assert galois_element(0, n) == 1
    k1 = galois_element(1, n)
    assert galois_element(2, n) == (k1 * k1) % (2 * n)
    # rotation by r then by -r is the identity element
    assert (galois_element(1, n) * galois_element(-1, n)) % (2 * n) == 1
    assert conjugation_element(n) == 2 * n - 1
    assert math.gcd(k1, 2 * n) == 1
