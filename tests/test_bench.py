"""Benchmark-harness unit tests: the --baseline regression gate.

The timing loops themselves are exercised by CI's bench-smoke job; here
the pure comparison logic is pinned — cell matching, the >25% median
threshold, and tolerance of baselines recorded before medians existed.
"""

import importlib.util
import sys
from pathlib import Path

_BENCH = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_poly.py"
_spec = importlib.util.spec_from_file_location("bench_poly", _BENCH)
bench_poly = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_poly", bench_poly)
_spec.loader.exec_module(bench_poly)


def _cell(op="ntt_forward", n=1024, limbs=4, method="smr", med=1.0):
    return {
        "op": op,
        "n": n,
        "limbs": limbs,
        "method": method,
        "batched_s": med * 0.9,
        "batched_med_s": med,
        "looped_s": med * 4,
        "looped_med_s": med * 5,
    }


def test_no_regression_within_threshold():
    baseline = {"results": [_cell(med=1.0)]}
    results = [_cell(med=1.2)]  # +20% < 25% threshold
    assert bench_poly.compare_to_baseline(results, baseline) == []


def test_regression_beyond_threshold_reported():
    baseline = {"results": [_cell(med=1.0), _cell(op="rescale", med=0.5)]}
    results = [_cell(med=1.3), _cell(op="rescale", med=0.55)]
    regressions = bench_poly.compare_to_baseline(results, baseline)
    assert len(regressions) == 1
    assert "ntt_forward" in regressions[0]
    assert "+30%" in regressions[0]


def test_unrecorded_cells_are_skipped():
    """New kernels and removed cells are not regressions."""
    baseline = {"results": [_cell(op="old_kernel", med=0.001)]}
    results = [_cell(op="key_switch", med=9.9)]
    assert bench_poly.compare_to_baseline(results, baseline) == []


def test_premedian_baselines_are_skipped():
    old_style = _cell(med=0.0001)
    del old_style["batched_med_s"]  # recorded before medians existed
    baseline = {"results": [old_style]}
    results = [_cell(med=5.0)]
    assert bench_poly.compare_to_baseline(results, baseline) == []


def test_threshold_is_configurable():
    baseline = {"results": [_cell(med=1.0)]}
    results = [_cell(med=1.2)]
    assert bench_poly.compare_to_baseline(results, baseline, threshold=0.1)


def test_faster_cells_never_flag():
    baseline = {"results": [_cell(med=1.0)]}
    results = [_cell(med=0.2)]
    assert bench_poly.compare_to_baseline(results, baseline) == []
