"""Benchmark-harness unit tests: the --baseline regression gate.

The timing loops themselves are exercised by CI's bench-smoke job; here
the pure comparison logic is pinned — cell matching, the noise floor,
the whole-run drift normalization, the >25% threshold, and tolerance of
baselines recorded before medians existed.
"""

import importlib.util
import sys
from pathlib import Path

_BENCH = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_poly.py"
_spec = importlib.util.spec_from_file_location("bench_poly", _BENCH)
bench_poly = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_poly", bench_poly)
_spec.loader.exec_module(bench_poly)


def _cell(op="ntt_forward", n=1024, limbs=4, method="smr", med=1.0):
    return {
        "op": op,
        "n": n,
        "limbs": limbs,
        "method": method,
        "batched_s": med * 0.9,
        "batched_med_s": med,
        "looped_s": med * 4,
        "looped_med_s": med * 5,
    }


def _anchor(med=1.0):
    """A stable reference cell the drift normalization anchors on."""
    return _cell(op="key_switch", med=med)


def test_no_regression_within_threshold():
    baseline = {"results": [_cell(med=1.0), _anchor(1.0)]}
    results = [_cell(med=1.2), _anchor(1.0)]  # +20% < 25% after drift
    assert bench_poly.compare_to_baseline(results, baseline) == []


def test_regression_beyond_threshold_reported():
    baseline = {"results": [_cell(med=1.0), _anchor(4.0)]}
    results = [_cell(med=2.0), _anchor(4.0)]  # 2x against a stable anchor
    regressions = bench_poly.compare_to_baseline(results, baseline)
    assert len(regressions) == 1
    assert "ntt_forward" in regressions[0]
    assert "drift" in regressions[0]


def test_whole_machine_drift_does_not_flag():
    """A uniformly slower host (throttled CI runner) is machine drift,
    not a code regression — every cell scales, nothing flags."""
    baseline = {"results": [_cell(med=1.0), _anchor(4.0)]}
    results = [_cell(med=1.6), _anchor(6.4)]  # everything 1.6x slower
    assert bench_poly.compare_to_baseline(results, baseline) == []
    # ...and a real regression still shows through on top of drift
    results = [_cell(med=3.2), _anchor(6.4)]  # drifted 1.6x AND 2x worse
    regressions = bench_poly.compare_to_baseline(results, baseline)
    assert len(regressions) == 1 and "ntt_forward" in regressions[0]


def test_sub_floor_cells_are_not_gated():
    """Sub-millisecond cells are too noisy to gate individually; they
    are excluded by the MIN_GATED_MEDIAN_S floor (their kernels are
    still covered through the composite cells)."""
    tiny = bench_poly.MIN_GATED_MEDIAN_S / 10
    baseline = {"results": [_cell(op="rescale", med=tiny), _anchor(1.0)]}
    results = [_cell(op="rescale", med=tiny * 50), _anchor(1.0)]
    assert bench_poly.compare_to_baseline(results, baseline) == []
    assert bench_poly.matched_cells(results, baseline) == [
        ("key_switch", 1024, 4, "smr", "numpy")
    ]


def test_unrecorded_cells_are_skipped():
    """New kernels and removed cells are not regressions."""
    baseline = {"results": [_cell(op="old_kernel", med=1.0)]}
    results = [_cell(op="key_switch", med=9.9)]
    assert bench_poly.compare_to_baseline(results, baseline) == []


def test_premedian_baselines_are_skipped():
    old_style = _cell(med=1.0)
    del old_style["batched_med_s"]  # recorded before medians existed
    baseline = {"results": [old_style]}
    results = [_cell(med=5.0)]
    assert bench_poly.compare_to_baseline(results, baseline) == []


def test_threshold_is_configurable():
    baseline = {"results": [_cell(med=1.0), _anchor(4.0)]}
    results = [_cell(med=1.2), _anchor(4.0)]
    assert bench_poly.compare_to_baseline(results, baseline, threshold=0.1)
    assert not bench_poly.compare_to_baseline(results, baseline, threshold=0.3)


def test_faster_cells_never_flag():
    baseline = {"results": [_cell(med=1.0), _anchor(4.0)]}
    results = [_cell(med=0.2), _anchor(4.0)]
    assert bench_poly.compare_to_baseline(results, baseline) == []


def test_matched_cells_counts_the_gated_set():
    baseline = {"results": [_cell(), _cell(op="rescale")]}
    results = [_cell(), _cell(op="matvec")]  # matvec not recorded yet
    matched = bench_poly.matched_cells(results, baseline)
    # Cell keys carry the backend tier; cells recorded before the tier
    # column existed read back as the numpy tier.
    assert matched == [("ntt_forward", 1024, 4, "smr", "numpy")]


def test_serving_cells_use_the_wider_threshold():
    """The asyncio batch windows ride event-loop timers whose
    quantization jitter exceeds the kernel threshold; serving cells
    gate at SERVING_THRESHOLD instead, still catching >2x blowups."""
    baseline = {"results": [_cell(op="serving", med=1.0), _anchor(10.0)]}
    jitter = [_cell(op="serving", med=1.4), _anchor(10.0)]  # +35% norm'd
    assert bench_poly.compare_to_baseline(jitter, baseline) == []
    # ...but the same +35% on a kernel cell still flags:
    kernel = [_cell(med=1.4), _anchor(10.0)]
    kernel_base = {"results": [_cell(med=1.0), _anchor(10.0)]}
    assert len(bench_poly.compare_to_baseline(kernel, kernel_base)) == 1
    blowup = [_cell(op="serving", med=2.5), _anchor(10.0)]
    assert len(bench_poly.compare_to_baseline(blowup, baseline)) == 1


def test_non_numpy_tiers_are_never_gated():
    """Compiled/sharded timings depend on the runner's toolchain and
    core count — their cells are recorded but must never turn CI red,
    even when both sides carry the same tier cell with a huge slowdown."""
    tier_base = dict(_cell(med=1.0), backend="compiled")
    tier_now = dict(_cell(med=50.0), backend="compiled")
    baseline = {"results": [tier_base, _anchor(1.0)]}
    results = [tier_now, _anchor(1.0)]
    assert bench_poly.compare_to_baseline(results, baseline) == []
    assert bench_poly.matched_cells(results, baseline) == [
        ("key_switch", 1024, 4, "smr", "numpy")
    ]


def test_vacuous_gate_matches_nothing():
    """A baseline recording none of the produced cells gates nothing —
    the CLI refuses to pass in that state (exit 1), so a grid rename
    cannot silently disarm the CI regression job."""
    baseline = {"results": [_cell(op="renamed_kernel")]}
    results = [_cell(op="matvec")]
    assert bench_poly.matched_cells(results, baseline) == []
    premedian = _cell()
    del premedian["batched_med_s"]
    assert bench_poly.matched_cells([_cell()], {"results": [premedian]}) == []


def test_full_recording_grid_includes_the_smoke_cells():
    """CI's `--smoke --baseline BENCH_poly.json` gate only bites if the
    committed full-grid baseline records the smoke cells."""
    for cfg in bench_poly.SMOKE_GRID:
        assert cfg not in bench_poly.FULL_GRID  # no double timing
    # main() composes the recording grid as SMOKE + FULL; pin the shape
    # here so a refactor cannot quietly drop the smoke cells again.
    assert bench_poly.SMOKE_GRID[0] == (256, 4)
