"""Backend dispatch: precedence, cross-tier bit-identity, degradation.

The PR 9 contract has four load-bearing claims, each tested here:

* tier selection follows constructor arg > ``REPRO_BACKEND`` > numpy,
  children inherit their parent's tier, and unknown names fail loudly;
* every *available* tier is bit-identical to the numpy reference on the
  full parity grid (four reducers x N in {1024, 4096} x L in {4, 12}:
  NTT round-trip, multiply, ModUp, ModDown, hybrid key switch);
* degradation is graceful and loud exactly once — a missing toolchain
  warns a single :class:`BackendFallbackWarning` (not per call) and
  runs on numpy; a worker crash raises :class:`ShardCrashError` once,
  then the same context recovers on numpy with correct results;
* no resource leaks: every shared-memory segment is released after
  ``close_backends()`` and after plain interpreter exit (atexit), and
  a crash tears the pool's segments down with it.
"""

import glob
import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.errors import ParameterError, SanitizerError, ShardCrashError
from repro.poly.backends import (
    BACKEND_TIERS,
    BackendFallbackWarning,
    close_backends,
    resolve_backend,
)
from repro.poly.backends import compiled, sharded
from repro.poly.basis_conv import KeySwitchKey
from repro.poly.rns_poly import PolyContext, RnsPolynomial
from repro.rns.primes import PrimePool

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _shm_residue(pid: int | None = None) -> list[str]:
    """Live segments for one owning process (default: this one).

    Scoped by pid so a concurrently running pool in another process
    (or a CI matrix job) cannot fail an unrelated leak check."""
    owner = os.getpid() if pid is None else pid
    return glob.glob(f"/dev/shm/repro_shard_{owner}_*")


def _available_tiers() -> list[str]:
    tiers = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", BackendFallbackWarning)
        if compiled.get_lib() is not None:
            tiers.append("compiled")
        if sharded.get_pool() is not None:
            tiers.append("sharded")
    return tiers


TIERS = _available_tiers()


# -- precedence and plumbing ----------------------------------------------
class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "numpy"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        assert resolve_backend(None) == "compiled"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        assert resolve_backend("sharded") == "sharded"

    @pytest.mark.parametrize("bad", ["cuda", "looped", ""])
    def test_unknown_tier_rejected(self, bad):
        with pytest.raises(ParameterError, match="backend"):
            resolve_backend(bad)

    def test_tier_names_normalize(self):
        assert resolve_backend(" COMPILED ") == "compiled"

    def test_env_unknown_tier_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        with pytest.raises(ParameterError, match="backend"):
            resolve_backend(None)

    def test_tier_names_are_closed(self):
        assert set(BACKEND_TIERS) == {"numpy", "sharded", "compiled"}

    def test_context_override_beats_env(self, pool64, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sharded")
        ctx = PolyContext.from_pool(
            pool64, num_terminal=1, num_main=2, backend="numpy"
        )
        assert ctx.backend == "numpy"
        assert ctx.batch_ntt.backend_tier == "numpy"

    def test_children_inherit_tier(self, pool64, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        ctx = PolyContext.from_pool(
            pool64, num_terminal=1, num_main=3, backend="compiled"
        )
        assert ctx.drop_last().backend == "compiled"
        aux = [p.value for p in pool64.aux]
        assert ctx.extend(aux).backend == "compiled"

    def test_serving_config_validates_tier(self):
        from repro.serving.scheduler import ServingConfig

        with pytest.raises(ParameterError, match="backend"):
            ServingConfig(backend="bogus")

    def test_serving_config_mismatch_rejected(self):
        from repro.context import CkksContext
        from repro.serving.scheduler import CkksServer, ServingConfig

        cc = CkksContext(
            ring_degree=64, num_main=3, num_aux=3, dnum=2, seed=0,
            backend="numpy",
        )
        with pytest.raises(ValueError, match="backend"):
            CkksServer(cc, config=ServingConfig(backend="compiled"))


# -- cross-tier parity grid -----------------------------------------------
_GRID = [(1024, 4), (1024, 12), (4096, 4), (4096, 12)]
_METHODS = ("barrett", "montgomery", "shoup", "smr")


@pytest.fixture(scope="module")
def parity_pools():
    cache = {}

    def get(n, num_limbs):
        if (n, num_limbs) not in cache:
            cache[(n, num_limbs)] = PrimePool.generate(
                n,
                main_bits=30,
                terminal_bits=25,
                num_main=num_limbs - 1,
                num_terminal=1,
                num_aux=4,
            )
        return cache[(n, num_limbs)]

    return get


@pytest.mark.skipif(not TIERS, reason="no non-numpy tier available")
@pytest.mark.parametrize("method", _METHODS)
@pytest.mark.parametrize("n,num_limbs", _GRID)
def test_tier_parity(parity_pools, method, n, num_limbs):
    """Every available tier bit-matches numpy on every kernel family."""
    pool = parity_pools(n, num_limbs)
    dnum = 2 if num_limbs <= 6 else 3
    aux = [int(p) for p in pool.extension_basis(1, num_limbs - 1, dnum=dnum)]

    def build(tier):
        rng = np.random.default_rng(0xBACE)
        ctx = PolyContext.from_pool(
            pool,
            num_terminal=1,
            num_main=num_limbs - 1,
            method=method,
            backend=tier,
        )
        a = ctx.random(rng)
        b = ctx.random(rng)
        ksk = KeySwitchKey.random(ctx, aux, dnum, rng)
        return ctx, a, b, ksk

    ctx_n, a_n, b_n, ksk_n = build("numpy")
    hat_n = ctx_n.batch_ntt.forward(a_n.limbs)
    round_n = ctx_n.batch_ntt.inverse(hat_n)
    mul_n = RnsPolynomial(ctx_n, a_n.limbs).multiply(
        RnsPolynomial(ctx_n, b_n.limbs)
    )
    up_n = a_n.mod_up(aux)
    down_n = up_n.mod_down(len(aux))
    ks_n = a_n.key_switch(ksk_n)

    for tier in TIERS:
        ctx_t, a_t, b_t, ksk_t = build(tier)
        assert np.array_equal(a_n.limbs, a_t.limbs)
        hat_t = ctx_t.batch_ntt.forward(a_t.limbs)
        assert np.array_equal(hat_n, hat_t), f"{tier} forward diverges"
        assert np.array_equal(round_n, ctx_t.batch_ntt.inverse(hat_t)), (
            f"{tier} inverse diverges"
        )
        mul_t = RnsPolynomial(ctx_t, a_t.limbs).multiply(
            RnsPolynomial(ctx_t, b_t.limbs)
        )
        assert np.array_equal(mul_n.limbs, mul_t.limbs), (
            f"{tier} multiply diverges"
        )
        up_t = a_t.mod_up(aux)
        assert np.array_equal(up_n.limbs, up_t.limbs), (
            f"{tier} mod_up diverges"
        )
        assert np.array_equal(
            down_n.limbs, up_t.mod_down(len(aux)).limbs
        ), f"{tier} mod_down diverges"
        ks_t = a_t.key_switch(ksk_t)
        for half_n, half_t in zip(ks_n, ks_t):
            assert np.array_equal(half_n.limbs, half_t.limbs), (
                f"{tier} key_switch diverges"
            )


@pytest.mark.skipif("compiled" not in TIERS, reason="no C toolchain")
def test_compiled_checked_mode_trips_like_numpy(pool64):
    """The C kernels assert the same live certified bound column the
    numpy kernels do — tightening it below honest butterfly output must
    trip a SanitizerError from inside the compiled transform."""
    ctx = PolyContext.from_pool(
        pool64, num_terminal=1, num_main=2, method="shoup", checked=True,
        backend="compiled",
    )
    kernel = ctx.batch_ntt._kernel
    kernel._bound_col = np.full_like(kernel._bound_col, 2)
    rng = np.random.default_rng(3)
    a = np.stack(
        [rng.integers(0, q, 64, dtype=np.uint64) for q in ctx.primes]
    )
    with pytest.raises(SanitizerError, match="forward stage"):
        ctx.batch_ntt.forward(a)


# -- graceful degradation -------------------------------------------------
class TestCompiledDegradation:
    def test_no_toolchain_warns_once_and_runs_numpy(
        self, pool64, rng, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("CC", "/nonexistent-compiler")
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        compiled._reset()
        try:
            ref_ctx = PolyContext.from_pool(
                pool64, num_terminal=1, num_main=2, backend="numpy"
            )
            ctx = PolyContext.from_pool(
                pool64, num_terminal=1, num_main=2, backend="compiled"
            )
            a = ctx.random(rng)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                got = ctx.batch_ntt.forward(a.limbs)
                ctx.batch_ntt.forward(a.limbs)
                ctx.batch_ntt.inverse(got)
            fallbacks = [
                w for w in caught
                if issubclass(w.category, BackendFallbackWarning)
            ]
            assert len(fallbacks) == 1, (
                "degradation must warn exactly once, "
                f"got {len(fallbacks)}"
            )
            assert "compiled backend unavailable" in str(
                fallbacks[0].message
            )
            assert np.array_equal(
                got, ref_ctx.batch_ntt.forward(a.limbs)
            ), "fallback path must still be the numpy reference"
        finally:
            compiled._reset()


@pytest.mark.skipif("sharded" not in TIERS, reason="sharded tier down")
class TestShardedDegradation:
    def test_worker_crash_names_error_then_recovers_on_numpy(
        self, pool64, rng, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHARD_MIN", "1")
        sharded._reset()
        try:
            ref_ctx = PolyContext.from_pool(
                pool64, num_terminal=1, num_main=3, backend="numpy"
            )
            ctx = PolyContext.from_pool(
                pool64, num_terminal=1, num_main=3, backend="sharded"
            )
            a = ctx.random(rng)
            expect = ref_ctx.batch_ntt.forward(a.limbs)
            assert np.array_equal(ctx.batch_ntt.forward(a.limbs), expect)

            pool = sharded.get_pool()
            assert pool is not None and pool.procs
            for proc in pool.procs:
                proc.kill()
            for proc in pool.procs:
                proc.wait(timeout=30)
            with pytest.raises(ShardCrashError, match="worker died"):
                ctx.batch_ntt.forward(a.limbs)
            # crash teardown must not leak segments
            assert _shm_residue() == []
            # the tier is latched down; the same context keeps working
            # on the numpy path with identical bits
            assert np.array_equal(ctx.batch_ntt.forward(a.limbs), expect)
        finally:
            sharded._reset()

    def test_close_releases_all_segments(self, pool64, rng, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_MIN", "1")
        sharded._reset()
        try:
            ctx = PolyContext.from_pool(
                pool64, num_terminal=1, num_main=3, backend="sharded"
            )
            a = ctx.random(rng)
            ctx.batch_ntt.forward(a.limbs)
            assert _shm_residue() != [], "expected live segments mid-run"
            close_backends()
            assert _shm_residue() == []
            # clean close is not a crash: the tier may come back
            assert np.array_equal(
                ctx.batch_ntt.forward(a.limbs),
                PolyContext.from_pool(
                    pool64, num_terminal=1, num_main=3, backend="numpy"
                ).batch_ntt.forward(a.limbs),
            )
        finally:
            sharded._reset()

    def test_interpreter_exit_releases_segments(self):
        """A process that never calls close_pool must still leave no
        segments behind — atexit owns the cleanup."""
        script = (
            "import numpy as np\n"
            "from repro.rns.primes import PrimePool\n"
            "from repro.poly.rns_poly import PolyContext\n"
            "pool = PrimePool.generate(64, num_main=4, num_terminal=2,"
            " num_aux=1)\n"
            "ctx = PolyContext.from_pool(pool, num_terminal=1, num_main=3,"
            " backend='sharded')\n"
            "a = ctx.random(np.random.default_rng(0))\n"
            "ctx.batch_ntt.forward(a.limbs)\n"
            "import glob, os\n"
            "print('pid:', os.getpid())\n"
            "print('segments while live:',"
            " len(glob.glob(f'/dev/shm/repro_shard_{os.getpid()}_*')))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC
        env["REPRO_SHARD_MIN"] = "1"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        child_pid = int(
            next(
                line.split(":", 1)[1]
                for line in proc.stdout.splitlines()
                if line.startswith("pid:")
            )
        )
        assert "segments while live: " in proc.stdout
        leaked = _shm_residue(child_pid)
        assert leaked == [], f"interpreter exit leaked segments: {leaked}"
