"""Level-2 plan checker tests: accept compiled plans, reject hand-built ones.

Two load-bearing properties:

1. **Completeness on real plans** — every plan the compiler produces
   from the suite's seeded random DAGs and the linalg entry points must
   come back error-free, and the checker's per-output (level, scale,
   noise) prediction must equal what ``plan.run`` tags onto the actual
   ciphertexts *float-for-float* (the checker replays the executor's
   own formulas, so any divergence is a checker bug).
2. **Soundness on bad plans** — statically-doomed circuits (noise
   budget exhaustion, drifted-scale adds, dead hoists, malformed step
   lists) are rejected with a diagnostic naming the offending step.
"""

import math

import numpy as np
import pytest

import test_circuit as tc
from repro.analysis import check_plan
from repro.errors import StaticAnalysisError
from repro.scheme import Plaintext
from repro.scheme._circuit import CircuitTracer
from repro.scheme._circuit import _Step

N = 1024
METHOD = "smr"


def _codes(diags):
    return [d.code for d in diags]


def _dag_plan(seed, method=METHOD):
    ctx, _, ev = tc._setup(N, method)
    pts = tc._plaintexts(N, method)
    ops, (o1, o2) = tc._gen_ops(seed, ctx, len(pts))
    tracer = CircuitTracer(ev)
    traced = tc._interpret(
        tracer,
        ops,
        tracer.input("x", scale=tc.SCALE),
        tracer.input("y", scale=tc.SCALE),
        pts,
    )
    return tracer.compile({"a": traced[o1], "b": traced[o2]})


class _HandPlan:
    """Bare-bones plan stand-in: the checker only reads these attrs.

    The compiler can never emit the malformed step lists the soundness
    tests need (the tracer validates scales/levels at trace time), so
    they are assembled by hand against a real :class:`PolyContext`.
    """

    def __init__(self, ctx, steps, inputs, outputs, n_slots, sigma=3.2):
        self.ctx = ctx
        self._sigma = sigma
        self._steps = steps
        self._inputs = inputs  # [(name, slot, scale)]
        self._outputs = outputs  # {name: slot}
        self._n_slots = n_slots

    def _ks_bits(self, ksk):
        return math.log2(self._sigma * ksk.dnum * self.ctx.ring_degree)


class TestAcceptsCompiledPlans:
    @pytest.mark.parametrize("seed", [0, 1, 2, 4, 9])
    def test_random_dag_plans_are_error_free(self, seed):
        report = _dag_plan(seed).analyze()
        assert report.ok, report.describe()
        assert set(report.output_states) == {"a", "b"}

    @pytest.mark.parametrize("method", ["barrett", "montgomery", "shoup"])
    def test_other_backends_accepted(self, method):
        report = _dag_plan(2, method).analyze()
        assert report.ok, report.describe()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_output_state_prediction_is_float_exact(self, seed):
        plan = _dag_plan(seed)
        report = check_plan(plan)
        ct_x, ct_y = tc._fresh_inputs(N, METHOD, 0xEC0 + seed)
        got = plan.run(x=ct_x, y=ct_y)
        for name, st in report.output_states.items():
            ct = got[name]
            assert st.level == ct.level
            assert st.scale == ct.scale
            assert st.noise_bits == ct.noise_bits
            # modulus log2 is summed per limb here, multiplied there:
            # equal only to float rounding.
            assert st.budget_bits == pytest.approx(
                ct.noise_budget_bits, rel=1e-12
            )

    def test_hoisted_rotation_plan_accepted(self):
        ctx, _, ev = tc._setup(N, METHOD)
        tracer = CircuitTracer(ev)
        x = tracer.input("x", scale=tc.SCALE)
        ts = tracer.rotate_hoisted(x, [1, 2, 3])
        plan = tracer.compile(
            tracer.add(tracer.add(ts[1], ts[2]), ts[3])
        )
        report = plan.analyze()
        assert report.ok, report.describe()
        # The single shared hoist has three Galois consumers: silence.
        assert "dead-hoist" not in _codes(report.warnings)

    def test_describe_lists_outputs(self):
        report = _dag_plan(0).analyze()
        text = report.describe()
        assert "plan check:" in text
        assert "output 'a':" in text
        assert "output 'b':" in text


class TestRejectsDoomedPlans:
    def test_budget_exhaustion_names_the_node(self):
        # Three chained 2^30-scale plaintext multiplies push the noise
        # estimate past log2(Q_4) - 1 ~ 114 bits with no data in sight.
        ctx, _, ev = tc._setup(N, METHOD)
        r = np.random.default_rng(0xDEAD)
        pt = Plaintext.encode(
            ctx, r.uniform(-1, 1, ctx.ring_degree), 2.0**30
        )
        tracer = CircuitTracer(ev)
        x = tracer.input("x", scale=2.0**30)
        for _ in range(3):
            x = tracer.multiply_plain(x, pt)
        report = tracer.compile(x).analyze()
        assert not report.ok
        errs = [e for e in report.errors if e.code == "budget-exhausted"]
        # Frontier-limited: downstream steps of an exhausted value do
        # not re-report.
        assert len(errs) == 1
        assert "multiply_plain" in errs[0].where  # node provenance label
        assert "cannot decrypt" in errs[0].detail
        with pytest.raises(StaticAnalysisError, match="plan rejected"):
            report.raise_if_failed()

    def test_drifted_rescale_chain_feeds_a_mismatched_add(self):
        # Hand-built scale-drift shape: rescaling a 2^20-scale value by
        # a ~2^30 prime lands near 2^-10; adding it to a 2^20-scale
        # operand is the error the tracer would have refused to record.
        ctx, _, _ = tc._setup(N, METHOD)
        steps = [
            _Step("input", dst=0, payload=("x", 2.0**20), level=4),
            _Step("input", dst=1, payload=("y", 2.0**20), level=3),
            _Step("rescale", dst=2, srcs=(0,), level=3),
            _Step("add", dst=3, srcs=(2, 1), level=3, label="n3:add"),
        ]
        plan = _HandPlan(
            ctx,
            steps,
            inputs=[("x", 0, 2.0**20), ("y", 1, 2.0**20)],
            outputs={"out": 3},
            n_slots=4,
        )
        report = check_plan(plan)
        assert _codes(report.errors) == ["scale-mismatch"]
        assert "step 3" in report.errors[0].where
        assert "n3:add" in report.errors[0].where
        # The drifted rescale itself is flagged three ways over.
        warn = _codes(report.warnings)
        assert "scale-drift" in warn
        assert "scale-underflow" in warn
        assert "wasteful-rescale" in warn

    def test_key_level_mismatch_and_operand_levels(self):
        ctx, _, ev = tc._setup(N, METHOD)
        steps = [
            _Step("input", dst=0, payload=("x", 2.0**20), level=4),
            _Step("input", dst=1, payload=("y", 2.0**20), level=4),
            # Step claims level 3; the relin key covers the 4-limb basis.
            _Step(
                "multiply",
                dst=2,
                srcs=(0, 1),
                payload=(ev.relin_key, None, None),
                level=3,
            ),
        ]
        plan = _HandPlan(
            ctx,
            steps,
            inputs=[("x", 0, 2.0**20), ("y", 1, 2.0**20)],
            outputs={"out": 2},
            n_slots=3,
        )
        report = check_plan(plan)
        assert "level-mismatch" in _codes(report.errors)
        assert "key-level-mismatch" in _codes(report.errors)

    def test_dead_hoist_is_flagged(self):
        ctx, _, _ = tc._setup(N, METHOD)
        steps = [
            _Step("input", dst=0, payload=("x", 2.0**20), level=4),
            _Step("hoist", dst=-1, srcs=(0,), payload=(0, None), level=4),
        ]
        plan = _HandPlan(
            ctx, steps, [("x", 0, 2.0**20)], {"out": 0}, n_slots=1
        )
        report = check_plan(plan)
        assert report.ok  # wasteful, not fatal
        assert "dead-hoist" in _codes(report.warnings)

    def test_undefined_register_is_invalid(self):
        ctx, _, _ = tc._setup(N, METHOD)
        steps = [
            _Step("input", dst=0, payload=("x", 2.0**20), level=4),
            _Step("add", dst=1, srcs=(0, 5), level=4),
        ]
        plan = _HandPlan(
            ctx, steps, [("x", 0, 2.0**20)], {"out": 1}, n_slots=2
        )
        report = check_plan(plan)
        assert _codes(report.errors) == ["invalid-step"]
        assert "r5" in report.errors[0].detail
        assert report.output_states == {}  # the output never got a state

    def test_unknown_step_kind_is_invalid(self):
        ctx, _, _ = tc._setup(N, METHOD)
        steps = [
            _Step("input", dst=0, payload=("x", 2.0**20), level=4),
            _Step("frobnicate", dst=1, srcs=(0,), level=4),
        ]
        plan = _HandPlan(
            ctx, steps, [("x", 0, 2.0**20)], {"out": 1}, n_slots=2
        )
        report = check_plan(plan)
        assert _codes(report.errors) == ["invalid-step"]
        assert "frobnicate" in report.errors[0].detail

    def test_rescale_at_the_basis_floor(self):
        ctx, _, _ = tc._setup(N, METHOD)
        steps = [
            _Step("input", dst=0, payload=("x", 2.0**20), level=1),
            _Step("rescale", dst=1, srcs=(0,), level=0),
        ]
        plan = _HandPlan(
            ctx, steps, [("x", 0, 2.0**20)], {"out": 1}, n_slots=2
        )
        report = check_plan(plan)
        assert "level-mismatch" in _codes(report.errors)
        assert "no limb left to drop" in report.errors[0].detail


class TestLintWarnings:
    def test_wasteful_rescale_on_a_fresh_input(self):
        ctx, _, ev = tc._setup(N, METHOD)
        tracer = CircuitTracer(ev)
        plan = tracer.compile(
            tracer.rescale(tracer.input("x", scale=tc.SCALE))
        )
        report = plan.analyze()
        assert report.ok  # legal, just pointless
        assert "wasteful-rescale" in _codes(report.warnings)

    def test_drift_tolerance_is_tunable(self):
        ctx, _, ev = tc._setup(N, METHOD)
        tracer = CircuitTracer(ev)
        plan = tracer.compile(
            tracer.rescale(tracer.input("x", scale=tc.SCALE))
        )
        tight = plan.analyze(drift_warn_bits=1.0)
        loose = plan.analyze(drift_warn_bits=100.0)
        assert "scale-drift" in _codes(tight.warnings)
        assert "scale-drift" not in _codes(loose.warnings)

    def test_redundant_ntt_roundtrip_on_hand_scheduled_add(self):
        # The planner keeps adds in the NTT domain whenever every
        # consumer accepts it (_keeps_ntt); a hand schedule that does
        # not is flagged for paying a transform pair for nothing.
        ctx, _, _ = tc._setup(N, METHOD)
        steps = [
            _Step("input", dst=0, payload=("x", 2.0**20), level=4),
            _Step("input", dst=1, payload=("y", 2.0**20), level=4),
            _Step("add", dst=2, srcs=(0, 1), level=4, emit_ntt=False),
            _Step("negate", dst=3, srcs=(2,), level=4),
        ]
        plan = _HandPlan(
            ctx,
            steps,
            [("x", 0, 2.0**20), ("y", 1, 2.0**20)],
            {"out": 3},
            n_slots=4,
        )
        report = check_plan(plan)
        assert report.ok
        assert "redundant-ntt-roundtrip" in _codes(report.warnings)
        # The compiler's own schedule of the same circuit is silent.
        tracer = CircuitTracer(tc._setup(N, METHOD)[2])
        x = tracer.input("x", scale=tc.SCALE)
        y = tracer.input("y", scale=tc.SCALE)
        compiled = tracer.compile(tracer.negate(tracer.add(x, y)))
        assert "redundant-ntt-roundtrip" not in _codes(
            compiled.analyze().warnings
        )
