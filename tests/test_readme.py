"""Execute the README's "Encrypted inference" walkthrough verbatim.

The section promises a model -> compile -> serve path that a reader can
paste and run; this test extracts its fenced python block straight out
of ``README.md`` and ``exec``s it, so the docs cannot drift from the
public API they advertise.
"""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _section(text: str, heading: str) -> str:
    start = text.index(f"## {heading}")
    rest = text[start + 3 :]
    end = rest.find("\n## ")
    return rest if end < 0 else rest[:end]


def test_encrypted_inference_walkthrough_runs_verbatim():
    section = _section(README.read_text(), "Encrypted inference")
    blocks = _FENCE.findall(section)
    assert blocks, "the Encrypted inference section lost its code block"
    namespace: dict = {"__name__": "readme_walkthrough"}
    for block in blocks:
        exec(compile(block, str(README), "exec"), namespace)  # noqa: S102
    # the walkthrough's own asserts are the real gate; spot-check that
    # it actually got to the end with a served score in hand
    assert "scores" in namespace
