"""Level-1 static range analysis: family certificates + bug fixtures.

The acceptance grid — all four reducer backends at ``N in {1024, 4096} x
L in {4, 12}`` — must come back fully proved, and the historical bug
shapes from the early PRs (Shoup ``w >= q`` precompute, negative values
entering an unsigned accumulator, per-row vs worst-case-limb raw-bound
divergence) must each be detected with their own diagnostic when
replayed as analyzer inputs.
"""

from functools import lru_cache

import pytest

from repro.analysis import (
    Interval,
    analyze_accumulation,
    analyze_conversion,
    analyze_shoup_precompute,
    certify_kernels,
    safe_headroom,
)
from repro.analysis.intervals import UINT64_MAX, lazy_fold
from repro.errors import ParameterError, StaticAnalysisError
from repro.rns.primes import PrimePool

METHODS = ("barrett", "montgomery", "shoup", "smr")
GRID = [(1024, 4), (1024, 12), (4096, 4), (4096, 12)]


@lru_cache(maxsize=None)
def _family(n: int, num_limbs: int) -> tuple[int, ...]:
    pool = PrimePool.generate(
        n, num_main=num_limbs - 1, num_terminal=1, num_aux=4
    )
    return tuple(p.value for p in pool.limb_primes(1, num_limbs - 1))


class TestFamilyCertificates:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("n,num_limbs", GRID)
    def test_acceptance_grid_proves(self, method, n, num_limbs):
        primes = _family(n, num_limbs)
        cert = certify_kernels(n, primes, method)
        assert cert.ok, cert.describe()
        assert all(o.proved for o in cert.obligations)
        assert cert.raise_if_failed() is cert
        assert "proved" in cert.describe()
        # The per-stage invariant the sanitizer asserts at runtime:
        # canonical [0, q) for the uint32 kernels, 2q-lazy for Barrett.
        factor = 2 if method == "barrett" else 1
        assert cert.stage_bounds == tuple(
            factor * q - 1 for q in primes
        )

    @pytest.mark.parametrize("method", METHODS)
    def test_accumulation_headroom_facts(self, method):
        cert = certify_kernels(1024, _family(1024, 4), method)
        # §4.2: the reduced strategy defers ~2^32 folds on every backend.
        assert cert.reduced_headroom >= 2**32
        if method == "smr":
            # Raw deferral is SMR-only and its binding largest-q row
            # still admits at least one unreduced product.
            assert cert.raw_headroom is not None
            assert cert.raw_headroom >= 1
        else:
            assert cert.raw_headroom is None

    def test_oversized_modulus_refuted(self):
        cert = certify_kernels(1024, [2**33 - 9], "shoup")
        assert not cert.ok
        assert cert.diagnostics[0].code == "modulus-within-31-bits"
        with pytest.raises(StaticAnalysisError, match="range analysis"):
            cert.raise_if_failed()
        assert "FAILED" in cert.describe()

    def test_unknown_method_rejected(self):
        with pytest.raises(ParameterError, match="unknown reduction"):
            certify_kernels(1024, [97], "karatsuba")

    def test_empty_primes_rejected(self):
        with pytest.raises(ParameterError, match="at least one limb"):
            certify_kernels(1024, [], "smr")


class TestHistoricalBugFixtures:
    """The PR-1/2 bug shapes, re-introduced as analyzer inputs."""

    def test_shoup_companion_overflow(self):
        # PR-1 shape: precomputing a companion for w >= q silently
        # truncates w' past 32 bits inside mulmod_const.
        q = _family(1024, 4)[0]
        diags = analyze_shoup_precompute(q, [1, q - 1, q, q + 5])
        assert [d.code for d in diags] == ["shoup-companion-overflow"] * 2
        assert "bits > 32" in diags[0].detail
        assert f"w must lie in [0, {q})" in diags[0].detail
        assert analyze_shoup_precompute(q, q - 1) == []

    def test_shoup_modulus_out_of_range(self):
        diags = analyze_shoup_precompute(2**31 + 11, 5)
        assert diags[0].code == "modulus-out-of-range"

    def test_negative_value_into_unsigned_accumulator(self):
        # PR-2 shape: a signed correction term accumulated into a
        # uint64 accumulator wraps into a huge residue with no error.
        q = _family(1024, 4)[0]
        diags = analyze_accumulation(
            [q],
            strategy="reduced",
            signed=False,
            terms=[("product",), ("value", -3, 5)],
        )
        assert [d.code for d in diags] == ["unsigned-wrap"]
        assert "wrap" in diags[0].detail
        # The same range is fine once the accumulator is signed.
        assert (
            analyze_accumulation(
                [q],
                strategy="reduced",
                signed=True,
                terms=[("product",), ("value", -3, 5)],
            )
            == []
        )

    def test_raw_bound_divergence_across_limb_rows(self):
        # PR-2 shape: raw-strategy headroom differs per limb row
        # (~q*2^31/(q-1)^2 terms, decreasing in q).  A term count that
        # fits the small terminal prime's own bound but overflows the
        # binding 30-bit main row must be flagged as divergence, not as
        # a plain overflow.
        primes = _family(1024, 4)
        q_term, q_main = min(primes), max(primes)
        fits_small = (q_term * 2**31 - 1) // ((q_term - 1) ** 2)
        fits_big = (q_main * 2**31 - 1) // ((q_main - 1) ** 2)
        assert fits_big < fits_small  # the trap exists for this family
        diags = analyze_accumulation(
            [q_term, q_main],
            strategy="raw",
            terms=[("product",)] * (fits_big + 1),
        )
        assert [d.code for d in diags] == ["raw-bound-divergence"]
        assert f"q={q_term}" in diags[0].detail
        assert f"q={q_main}" in diags[0].detail
        assert "per-row tracking would miss this" in diags[0].detail
        # One term fewer is sound on every row.
        assert (
            analyze_accumulation(
                [q_term, q_main],
                strategy="raw",
                terms=[("product",)] * fits_big,
            )
            == []
        )

    def test_plain_overflow_reports_safe_headroom(self):
        q = _family(1024, 4)[0]
        # Fill the accumulator to within one fold of uint64, then one
        # more worst-case product overflows it.
        diags = analyze_accumulation(
            [q],
            strategy="reduced",
            terms=[("value", 0, UINT64_MAX - q), ("product",)],
        )
        assert [d.code for d in diags] == ["accumulator-overflow"]
        assert "safe headroom" in diags[0].detail

    def test_raw_strategy_rejects_value_terms(self):
        q = _family(1024, 4)[0]
        diags = analyze_accumulation(
            [q], strategy="raw", terms=[("value", 0, 5)]
        )
        assert [d.code for d in diags] == ["raw-value-term"]

    def test_conversion_pass_is_clean_for_real_bases(self):
        pool = PrimePool.generate(
            1024, num_main=3, num_terminal=1, num_aux=4
        )
        base = [p.value for p in pool.limb_primes(1, 3)]
        aux = [p.value for p in pool.extension_basis(1, 3, dnum=2)]
        assert analyze_conversion(base, aux) == []
        assert analyze_conversion(aux, base) == []

    def test_conversion_rejects_empty_basis(self):
        with pytest.raises(ParameterError, match="non-empty"):
            analyze_conversion([], [97])


class TestIntervalDomain:
    def test_arithmetic_is_exact_on_corners(self):
        a = Interval(-3, 5)
        b = Interval(2, 4)
        assert a + b == Interval(-1, 9)
        assert a - b == Interval(-7, 3)
        assert a * b == Interval(-12, 20)
        assert -a == Interval(-5, 3)
        assert Interval(7, 21) >> 2 == Interval(1, 5)
        with pytest.raises(ValueError, match="empty interval"):
            Interval(4, 2)

    def test_lazy_fold_models_wrap_select(self):
        # Below q: untouched.  Above: one conditional subtract, and the
        # result can exceed q-1 only through the unfolded upper corner.
        assert lazy_fold(Interval(0, 96), 97) == Interval(0, 96)
        assert lazy_fold(Interval(0, 150), 97) == Interval(0, 96)
        assert lazy_fold(Interval(0, 300), 97) == Interval(0, 203)
        with pytest.raises(ValueError):
            lazy_fold(Interval(-1, 5), 97)

    def test_safe_headroom(self):
        assert safe_headroom(100, 40, 30) == 2
        assert safe_headroom(100, 100, 30) == 0
        assert safe_headroom(100, 120, 30) == 0
