"""NTT round-trip and negacyclic-convolution validation (acceptance bar).

For N in {16, 64, 256} over freshly generated PrimePool limbs, and for the
SMR and Shoup backends (plus Barrett/Montgomery for completeness):
forward/inverse must be exact inverses, and NTT-domain multiply must equal
the schoolbook negacyclic convolution computed with ``numpy.polymul`` over
exact Python integers.
"""

import numpy as np
import pytest

from conftest import negacyclic_schoolbook
from repro.errors import ParameterError
from repro.poly.ntt import NegacyclicNTT, bit_reverse_permutation
from repro.rns.primes import PrimePool

RING_DEGREES = (16, 64, 256)
METHODS = ("smr", "shoup", "barrett", "montgomery")


@pytest.fixture(scope="module", params=RING_DEGREES, ids=lambda n: f"N={n}")
def fresh_pool(request) -> PrimePool:
    """A freshly generated pool per ring degree (main + terminal limbs)."""
    return PrimePool.generate(request.param, num_main=2, num_terminal=1, num_aux=0)


@pytest.mark.parametrize("method", METHODS)
def test_round_trip(fresh_pool, method, rng):
    n = fresh_pool.ring_degree
    for prime in fresh_pool.limb_primes(1, 2):
        ntt = NegacyclicNTT(prime, n, method)
        a = rng.integers(0, prime.value, n, dtype=np.uint64)
        a_hat = ntt.forward(a)
        assert a_hat.dtype == np.uint64
        assert int(a_hat.max()) < prime.value, "outputs must be canonical"
        assert np.array_equal(ntt.inverse(a_hat), a)


@pytest.mark.parametrize("method", METHODS)
def test_negacyclic_multiply_matches_schoolbook(fresh_pool, method, rng):
    n = fresh_pool.ring_degree
    for prime in fresh_pool.limb_primes(1, 2):
        q = prime.value
        ntt = NegacyclicNTT(prime, n, method)
        a = rng.integers(0, q, n, dtype=np.uint64)
        b = rng.integers(0, q, n, dtype=np.uint64)
        expect = negacyclic_schoolbook(a, b, q)
        assert np.array_equal(ntt.negacyclic_multiply(a, b), expect)


@pytest.mark.parametrize("method", ("smr", "shoup"))
def test_pointwise_is_commutative_and_canonical(fresh_pool, method, rng):
    n = fresh_pool.ring_degree
    prime = fresh_pool.main[0]
    ntt = NegacyclicNTT(prime, n, method)
    a_hat = ntt.forward(rng.integers(0, prime.value, n, dtype=np.uint64))
    b_hat = ntt.forward(rng.integers(0, prime.value, n, dtype=np.uint64))
    ab = ntt.pointwise(a_hat, b_hat)
    ba = ntt.pointwise(b_hat, a_hat)
    assert np.array_equal(ab, ba)
    assert int(ab.max()) < prime.value


@pytest.mark.parametrize("method", METHODS)
def test_prepared_operand_path_matches_pointwise(fresh_pool, method, rng):
    """prepare_operand + pointwise_prepared must equal one-shot pointwise,
    and reusing the handle must not change results (the per-call
    precompute this path amortizes: Shoup companions / to_form passes)."""
    n = fresh_pool.ring_degree
    prime = fresh_pool.main[0]
    ntt = NegacyclicNTT(prime, n, method)
    a_hat = ntt.forward(rng.integers(0, prime.value, n, dtype=np.uint64))
    b_hat = ntt.forward(rng.integers(0, prime.value, n, dtype=np.uint64))
    expect = ntt.pointwise(a_hat, b_hat)
    prepared = ntt.prepare_operand(b_hat)
    for _ in range(3):
        assert np.array_equal(ntt.pointwise_prepared(a_hat, prepared), expect)
    with pytest.raises(ParameterError):
        ntt.prepare_operand(b_hat[:1])
    with pytest.raises(ParameterError):
        ntt.pointwise_prepared(a_hat[:1], prepared)


def test_backends_agree(fresh_pool, rng):
    """All four backends compute the identical transform bit-for-bit."""
    n = fresh_pool.ring_degree
    q = fresh_pool.main[0].value
    a = rng.integers(0, q, n, dtype=np.uint64)
    outs = [NegacyclicNTT(q, n, method).forward(a.copy()) for method in METHODS]
    for other in outs[1:]:
        assert np.array_equal(outs[0], other)


def test_multiply_by_x_rotates_negacyclically(fresh_pool):
    """a(x) * x is a rotation with sign flip at the wrap: x^N = -1."""
    n = fresh_pool.ring_degree
    q = fresh_pool.main[0].value
    ntt = NegacyclicNTT(q, n, "smr")
    a = np.arange(1, n + 1, dtype=np.uint64)
    x_poly = np.zeros(n, dtype=np.uint64)
    x_poly[1] = 1
    got = ntt.negacyclic_multiply(a, x_poly)
    expect = np.roll(a, 1)
    expect[0] = (q - a[-1]) % q  # wrapped coefficient comes back negated
    assert np.array_equal(got, expect)


def test_bit_reverse_permutation_involution():
    for n in (2, 8, 64):
        p = bit_reverse_permutation(n)
        assert np.array_equal(p[p], np.arange(n))
    with pytest.raises(ParameterError):
        bit_reverse_permutation(12)


def test_rejects_bad_parameters(fresh_pool):
    q = fresh_pool.main[0].value
    with pytest.raises(ParameterError):
        NegacyclicNTT(q, 24, "smr")  # not a power of two
    with pytest.raises(ParameterError):
        NegacyclicNTT(97, 64, "smr")  # 97 != 1 mod 128
    with pytest.raises(ParameterError):
        NegacyclicNTT(q, fresh_pool.ring_degree, "avx512")
    with pytest.raises(ParameterError):
        NegacyclicNTT(q, fresh_pool.ring_degree, "smr", psi=2)


def test_pointwise_rejects_mismatched_shapes(fresh_pool, rng):
    """Silent broadcasting would corrupt ring products; must raise instead."""
    n = fresh_pool.ring_degree
    q = fresh_pool.main[0].value
    ntt = NegacyclicNTT(q, n, "smr")
    a_hat = ntt.forward(rng.integers(0, q, n, dtype=np.uint64))
    with pytest.raises(ParameterError):
        ntt.pointwise(a_hat, a_hat[:1])
    with pytest.raises(ParameterError):
        ntt.pointwise(a_hat[: n // 2], a_hat[: n // 2])


def test_rejects_out_of_range_coefficients(fresh_pool):
    n = fresh_pool.ring_degree
    q = fresh_pool.main[0].value
    ntt = NegacyclicNTT(q, n, "smr")
    bad = np.full(n, q, dtype=np.uint64)  # q itself is not canonical
    with pytest.raises(ParameterError):
        ntt.forward(bad)
