"""Galois automorphism algebra: composition, inverses, domain equality.

The automorphism group of ``Z[X]/(X^N + 1)`` is ``(Z/2N)^*`` acting by
``sigma_k: X -> X^k``; these tests pin the group laws on the cached
index-permutation kernels — composition ``sigma_j . sigma_k =
sigma_{jk mod 2N}``, inverse orbits, and the commuting square
``NTT(sigma(a)) == sigma_ntt(NTT(a))`` bit-for-bit across all four
reducer backends (the NTT-domain action is a pure slot permutation, so
there is no arithmetic to disagree on — the test proves the *index*
algebra).
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.poly.ntt import automorphism_tables
from repro.poly.rns_poly import NTT, PolyContext
from repro.rns.primes import PrimePool

N = 64
METHODS = ("barrett", "montgomery", "shoup", "smr")


@pytest.fixture(scope="module")
def pool():
    return PrimePool.generate(N, num_main=2, num_terminal=1, num_aux=0)


@pytest.fixture(scope="module")
def ctx(pool):
    return PolyContext.from_pool(pool, num_terminal=1, num_main=2)


def _naive_sigma(limbs: np.ndarray, primes, k: int) -> np.ndarray:
    """Reference sigma_k straight from the definition X^i -> X^(ik)."""
    n = limbs.shape[1]
    out = np.zeros_like(limbs)
    for i in range(n):
        e = (i * k) % (2 * n)
        for row, q in enumerate(primes):
            v = int(limbs[row, i])
            if e >= n:
                out[row, e - n] = (q - v) % q
            else:
                out[row, e] = v
    return out


def test_coeff_automorphism_matches_definition(ctx, rng):
    a = ctx.random(rng)
    for k in (3, 5, 25, 2 * N - 1, 2 * N + 3):
        got = a.automorphism(k)
        assert got.domain == a.domain
        expect = _naive_sigma(a.limbs, ctx.primes, k % (2 * N))
        assert np.array_equal(got.limbs, expect)


def test_automorphism_rejects_even_elements(ctx, rng):
    a = ctx.random(rng)
    with pytest.raises(ParameterError):
        a.automorphism(2)
    with pytest.raises(ParameterError):
        automorphism_tables(N, 0)
    with pytest.raises(ParameterError):
        automorphism_tables(12, 5)  # N not a power of two


def test_tables_are_cached_and_read_only():
    t1 = automorphism_tables(N, 5)
    t2 = automorphism_tables(N, 5 + 2 * N)  # reduced mod 2N first
    assert all(a is b for a, b in zip(t1, t2))
    for arr in t1:
        assert not arr.flags.writeable


@pytest.mark.parametrize("method", METHODS)
def test_coeff_vs_ntt_domain_bit_equality(ctx, method, rng):
    """NTT(sigma_coeff(a)) == sigma_ntt(NTT(a)) for every backend."""
    mctx = PolyContext(ctx.ring_degree, ctx.primes, method)
    a = mctx.random(rng)
    for k in (3, 5, 2 * N - 1, 77):
        via_coeff = a.automorphism(k).to_ntt()
        via_ntt = a.to_ntt().automorphism(k)
        assert via_ntt.domain == NTT
        assert np.array_equal(via_coeff.limbs, via_ntt.limbs), (method, k)
        # ...and back down: the coeff-domain images agree too.
        assert np.array_equal(via_ntt.to_coeff().limbs, a.automorphism(k).limbs)


@pytest.mark.parametrize("domain", ("coeff", "ntt"))
def test_composition_law(ctx, domain, rng):
    """sigma_j(sigma_k(a)) == sigma_{jk mod 2N}(a) in both domains."""
    a = ctx.random(rng)
    if domain == "ntt":
        a = a.to_ntt()
    for j, k in ((3, 5), (5, 25), (2 * N - 1, 5), (7, 2 * N - 1)):
        lhs = a.automorphism(k).automorphism(j)
        rhs = a.automorphism((j * k) % (2 * N))
        assert np.array_equal(lhs.limbs, rhs.limbs), (domain, j, k)


@pytest.mark.parametrize("domain", ("coeff", "ntt"))
def test_inverse_orbits(ctx, domain, rng):
    """sigma_k . sigma_{k^-1} = id, and the rotation generator's orbit
    closes after exactly ord(5) = N/2 steps (not before)."""
    a = ctx.random(rng)
    if domain == "ntt":
        a = a.to_ntt()
    for k in (3, 5, 77, 2 * N - 1):
        k_inv = pow(k, -1, 2 * N)
        assert np.array_equal(a.automorphism(k).automorphism(k_inv).limbs, a.limbs)
    cur = a
    for step in range(1, N // 2):
        cur = cur.automorphism(5)
        assert not np.array_equal(cur.limbs, a.limbs), step
    cur = cur.automorphism(5)
    assert np.array_equal(cur.limbs, a.limbs)


def test_automorphism_commutes_with_ring_ops(ctx, rng):
    """sigma is a ring homomorphism: sigma(a+b) = sigma(a)+sigma(b) and
    sigma(a*b) = sigma(a)*sigma(b) (checked through the NTT pipeline)."""
    a, b = ctx.random(rng), ctx.random(rng)
    for k in (5, 2 * N - 1):
        assert np.array_equal(
            (a + b).automorphism(k).limbs,
            (a.automorphism(k) + b.automorphism(k)).limbs,
        )
        assert np.array_equal(
            (a * b).automorphism(k).limbs,
            (a.automorphism(k) * b.automorphism(k)).limbs,
        )


def test_automorphism_preserves_state(ctx, rng):
    a = ctx.random(rng)
    a.state.scale = 2.0**20
    rot = a.automorphism(5)
    assert rot.scale == a.scale
    assert rot.level == a.level
    assert rot.state.twin is None and rot.state.prepared is None


def test_ntt_action_is_pure_permutation():
    """Every NTT slot appears exactly once — no signs, no collisions."""
    for k in (3, 5, 127):
        _, _, perm = automorphism_tables(N, k)
        assert sorted(perm.tolist()) == list(range(N))
