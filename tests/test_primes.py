"""PrimePool validation: NTT-friendliness, disjointness, scale divergence.

The < 0.1-bit scale-divergence bound (§3.2) is the property that makes the
fixed prime lists usable as an RNS basis: products of consecutive primes
track powers of 2^k closely enough that rescaling stays near-exact.
"""

import pytest

from repro.errors import PrimeSearchError
from repro.rns.primes import (
    is_prime,
    ntt_friendly_primes,
    primitive_root_of_unity,
)


def test_pool_disjoint_and_ntt_friendly(pool64):
    pool64.assert_disjoint()
    for prime in pool64.all_primes:
        assert is_prime(prime.value)
        assert prime.value % (2 * pool64.ring_degree) == 1, "Eq. 3"
        assert prime.value < 2**31, "32-bit datapath bound"


def test_pool_kinds_and_order(pool64):
    assert [p.kind for p in pool64.main] == ["main"] * len(pool64.main)
    assert [p.index for p in pool64.main] == list(range(len(pool64.main)))
    assert [p.index for p in pool64.terminal] == list(
        range(len(pool64.terminal))
    )
    # limb order: terminals first, then mains (fixed-list prefix rule)
    limbs = pool64.limb_primes(2, 3)
    assert limbs == pool64.terminal[:2] + pool64.main[:3]
    with pytest.raises(PrimeSearchError):
        pool64.limb_primes(len(pool64.terminal) + 1, 0)


def test_scale_divergence_below_tenth_bit(pool64):
    """|log2(prod of first i mains) - 30*i| < 0.1 for every prefix."""
    log_acc = 0.0
    for i, prime in enumerate(pool64.main, start=1):
        log_acc += prime.log2
        assert abs(log_acc - 30 * i) < 0.1, (
            f"prefix {i} diverges by {log_acc - 30 * i:.4f} bits"
        )
    log_acc = 0.0
    for i, prime in enumerate(pool64.terminal, start=1):
        log_acc += prime.log2
        assert abs(log_acc - 25 * i) < 0.1


def test_alternating_sides_balance():
    """Consecutive picks straddle 2^k: deviations alternate in sign."""
    primes = ntt_friendly_primes(28, 6, 64)
    deviations = [p.value - 2**28 for p in primes]
    signs = [1 if d > 0 else -1 for d in deviations]
    assert signs == [(-1) ** i * signs[0] for i in range(len(signs))]


def test_exclusion_respected(pool64):
    taken = {p.value for p in pool64.main}
    fresh = ntt_friendly_primes(
        30, len(pool64.main), pool64.ring_degree, exclude=taken
    )
    assert not taken & {p.value for p in fresh}


def test_bad_ring_degree_raises():
    with pytest.raises(PrimeSearchError):
        ntt_friendly_primes(30, 1, 96)


def test_exhausted_window_raises():
    # A 0.0-distance window around 2^30 contains no candidates at all.
    with pytest.raises(PrimeSearchError):
        ntt_friendly_primes(30, 40, 2**20, max_distance=0.0)


def test_primitive_root_properties(pool64):
    n = pool64.ring_degree
    for prime in pool64.limb_primes(1, 1):
        psi = prime.root_of_unity(2 * n)
        q = prime.value
        assert pow(psi, n, q) == q - 1, "psi^N = -1 (negacyclic requirement)"
        assert pow(psi, 2 * n, q) == 1
        with pytest.raises(PrimeSearchError):
            primitive_root_of_unity(2 * (q - 1), q)  # order exceeds q - 1


def test_prime_log2_and_repr(pool64):
    prime = pool64.main[0]
    assert abs(prime.log2 - 30) < 0.5
    assert repr(prime).startswith("m0:")
    assert int(prime) == prime.value
