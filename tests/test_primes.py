"""PrimePool validation: NTT-friendliness, disjointness, scale divergence.

The < 0.1-bit scale-divergence bound (§3.2) is the property that makes the
fixed prime lists usable as an RNS basis: products of consecutive primes
track powers of 2^k closely enough that rescaling stays near-exact.
"""

import pytest

from repro.errors import PrimeSearchError
from repro.rns.primes import (
    PrimePool,
    is_prime,
    ntt_friendly_primes,
    primitive_root_of_unity,
)


def test_pool_disjoint_and_ntt_friendly(pool64):
    pool64.assert_disjoint()
    for prime in pool64.all_primes:
        assert is_prime(prime.value)
        assert prime.value % (2 * pool64.ring_degree) == 1, "Eq. 3"
        assert prime.value < 2**31, "32-bit datapath bound"


def test_pool_kinds_and_order(pool64):
    assert [p.kind for p in pool64.main] == ["main"] * len(pool64.main)
    assert [p.index for p in pool64.main] == list(range(len(pool64.main)))
    assert [p.index for p in pool64.terminal] == list(range(len(pool64.terminal)))
    # limb order: terminals first, then mains (fixed-list prefix rule)
    limbs = pool64.limb_primes(2, 3)
    assert limbs == pool64.terminal[:2] + pool64.main[:3]
    with pytest.raises(PrimeSearchError):
        pool64.limb_primes(len(pool64.terminal) + 1, 0)


def test_scale_divergence_below_tenth_bit(pool64):
    """|log2(prod of first i mains) - 30*i| < 0.1 for every prefix."""
    log_acc = 0.0
    for i, prime in enumerate(pool64.main, start=1):
        log_acc += prime.log2
        assert abs(log_acc - 30 * i) < 0.1, (
            f"prefix {i} diverges by {log_acc - 30 * i:.4f} bits"
        )
    log_acc = 0.0
    for i, prime in enumerate(pool64.terminal, start=1):
        log_acc += prime.log2
        assert abs(log_acc - 25 * i) < 0.1


def test_alternating_sides_balance():
    """Consecutive picks straddle 2^k: deviations alternate in sign."""
    primes = ntt_friendly_primes(28, 6, 64)
    deviations = [p.value - 2**28 for p in primes]
    signs = [1 if d > 0 else -1 for d in deviations]
    assert signs == [(-1) ** i * signs[0] for i in range(len(signs))]


def test_exclusion_respected(pool64):
    taken = {p.value for p in pool64.main}
    fresh = ntt_friendly_primes(30, len(pool64.main), pool64.ring_degree, exclude=taken)
    assert not taken & {p.value for p in fresh}


def test_bad_ring_degree_raises():
    with pytest.raises(PrimeSearchError):
        ntt_friendly_primes(30, 1, 96)


def test_exhausted_window_raises():
    # A 0.0-distance window around 2^30 contains no candidates at all.
    with pytest.raises(PrimeSearchError):
        ntt_friendly_primes(30, 40, 2**20, max_distance=0.0)


def test_primitive_root_properties(pool64):
    n = pool64.ring_degree
    for prime in pool64.limb_primes(1, 1):
        psi = prime.root_of_unity(2 * n)
        q = prime.value
        assert pow(psi, n, q) == q - 1, "psi^N = -1 (negacyclic requirement)"
        assert pow(psi, 2 * n, q) == 1
        with pytest.raises(PrimeSearchError):
            primitive_root_of_unity(2 * (q - 1), q)  # order exceeds q - 1


def test_prime_log2_and_repr(pool64):
    prime = pool64.main[0]
    assert abs(prime.log2 - 30) < 0.5
    assert repr(prime).startswith("m0:")
    assert int(prime) == prime.value


# -- key-switching digit partition + aux basis (PR 3 satellite) -------------
def test_digit_ranges_partition():
    from repro.rns.primes import digit_ranges

    assert digit_ranges(12, 3) == [(0, 4), (4, 8), (8, 12)]
    assert digit_ranges(5, 2) == [(0, 3), (3, 5)]  # last digit shorter
    assert digit_ranges(4, 1) == [(0, 4)]
    assert digit_ranges(3, 3) == [(0, 1), (1, 2), (2, 3)]
    ranges = digit_ranges(11, 4)
    assert ranges[0][0] == 0 and ranges[-1][1] == 11
    assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))


def test_digit_ranges_validation():
    from repro.errors import ParameterError
    from repro.rns.primes import digit_ranges

    with pytest.raises(ParameterError):
        digit_ranges(4, 0)
    with pytest.raises(ParameterError):
        digit_ranges(4, 5)


def test_extension_basis_covers_largest_digit():
    from repro.rns.primes import digit_ranges

    pool = PrimePool.generate(64, num_main=4, num_terminal=2, num_aux=6)
    for dnum in (1, 2, 3):
        aux = pool.extension_basis(2, 4, dnum=dnum)
        limbs = pool.limb_primes(2, 4)
        max_digit = 1
        for lo, hi in digit_ranges(len(limbs), dnum):
            prod = 1
            for p in limbs[lo:hi]:
                prod *= p.value
            max_digit = max(max_digit, prod)
        p_prod = 1
        for p in aux:
            p_prod *= p.value
        assert p_prod > max_digit, "P must dominate the largest digit"
        # Minimality: the shortest covering prefix is chosen.
        if len(aux) > 1:
            assert (p_prod // aux[-1].value) <= max_digit
        # Always a prefix of the pool's fixed aux list.
        assert aux == pool.aux[: len(aux)]


def test_extension_basis_exhausted_aux_raises(pool64):
    # pool64 holds a single aux prime: nowhere near a 5-limb digit.
    with pytest.raises(PrimeSearchError, match="cannot cover"):
        pool64.extension_basis(2, 3, dnum=1)
