#!/usr/bin/env python
"""Benchmark harness: batched limb-matrix vs per-prime looped hot paths.

Times the three polynomial-layer hot paths the paper's limb-parallel
pitch lives or dies on — forward NTT, full negacyclic multiply, and exact
rescale — in two implementations each:

* ``batched``: the :class:`~repro.poly.batch_ntt.BatchNTT` /
  vectorized-rescale pipeline ``RnsPolynomial`` runs in production, one
  NumPy pass per stage over the whole ``(L, N)`` limb matrix;
* ``looped``: the per-prime reference path — a Python loop over
  per-limb :class:`~repro.poly.ntt.NegacyclicNTT` engines (and, for
  rescale, the pre-caching per-limb loop that recomputed
  ``pow(q_last, -1, q)`` on every call).

Every cell is cross-checked for bit-equality before it is timed, the
grid spans ``N in {1024, 4096} x L in {4, 12}`` across all four Table-3
reducer backends, and the results land in ``BENCH_poly.json`` at the
repository root (the start of the perf trajectory the ROADMAP asks for).

Usage:
    python benchmarks/bench_poly.py            # full grid, ~a minute
    python benchmarks/bench_poly.py --smoke    # tiny grid for CI
    python benchmarks/bench_poly.py --out PATH # write elsewhere
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.poly.rns_poly import PolyContext  # noqa: E402
from repro.rns.primes import ntt_friendly_primes  # noqa: E402

METHODS = ("barrett", "montgomery", "shoup", "smr")
FULL_GRID = [(1024, 4), (1024, 12), (4096, 4), (4096, 12)]
SMOKE_GRID = [(256, 4)]


def _limbs_for(n: int, num_limbs: int) -> list[int]:
    """A 25-30-style basis: one terminal limb, mains for the rest."""
    terminal = ntt_friendly_primes(25, 1, n, kind="terminal")
    taken = {p.value for p in terminal}
    main = ntt_friendly_primes(
        30, num_limbs - 1, n, exclude=taken, kind="main"
    )
    return [p.value for p in terminal + main]


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time — the least-noise estimator for
    short, deterministic kernels."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- looped reference implementations (the pre-batching code paths) --------
def _looped_forward(ctx: PolyContext, limbs: np.ndarray) -> np.ndarray:
    out = np.empty_like(limbs)
    for i, ntt in enumerate(ctx.ntts):
        out[i] = ntt.forward(limbs[i])
    return out


def _looped_multiply(
    ctx: PolyContext, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    out = np.empty_like(a)
    for i, ntt in enumerate(ctx.ntts):
        out[i] = ntt.inverse(ntt.pointwise(ntt.forward(a[i]), ntt.forward(b[i])))
    return out


def _looped_rescale(ctx: PolyContext, limbs: np.ndarray) -> np.ndarray:
    q_last = ctx.primes[-1]
    last = limbs[-1].astype(np.int64)
    centered = np.where(last > q_last // 2, last - q_last, last)
    out = np.empty((ctx.num_limbs - 1, ctx.ring_degree), np.uint64)
    for i, q in enumerate(ctx.primes[:-1]):
        r = centered % q
        diff = limbs[i] + np.uint64(q) - r.astype(np.uint64)
        diff = np.where(diff >= q, diff - np.uint64(q), diff)
        inv = pow(q_last, -1, q)  # the per-call recompute being fixed
        out[i] = diff * np.uint64(inv) % np.uint64(q)
    return out


def bench_config(
    n: int, num_limbs: int, method: str, repeats: int, rng
) -> list[dict]:
    ctx = PolyContext(n, _limbs_for(n, num_limbs), method)
    a = ctx.random(rng)
    b = ctx.random(rng)
    batch = ctx.batch_ntt

    cells = []

    # forward NTT ----------------------------------------------------------
    looped = _looped_forward(ctx, a.limbs)
    batched = batch.forward(a.limbs)
    assert np.array_equal(looped, batched), "NTT paths disagree"
    cells.append(
        {
            "op": "ntt_forward",
            "batched_s": _time(lambda: batch.forward(a.limbs), repeats),
            "looped_s": _time(lambda: _looped_forward(ctx, a.limbs), repeats),
        }
    )

    # full negacyclic multiply --------------------------------------------
    looped = _looped_multiply(ctx, a.limbs, b.limbs)
    assert np.array_equal(looped, (a * b).limbs), "multiply paths disagree"
    cells.append(
        {
            "op": "multiply",
            "batched_s": _time(lambda: a * b, repeats),
            "looped_s": _time(
                lambda: _looped_multiply(ctx, a.limbs, b.limbs), repeats
            ),
        }
    )

    # exact rescale --------------------------------------------------------
    looped = _looped_rescale(ctx, a.limbs)
    assert np.array_equal(looped, a.exact_rescale().limbs), (
        "rescale paths disagree"
    )
    cells.append(
        {
            "op": "rescale",
            "batched_s": _time(lambda: a.exact_rescale(), repeats),
            "looped_s": _time(lambda: _looped_rescale(ctx, a.limbs), repeats),
        }
    )

    for cell in cells:
        cell.update(
            n=n,
            limbs=num_limbs,
            method=method,
            speedup=round(cell["looped_s"] / cell["batched_s"], 2),
        )
    return cells


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid + fewer repeats (CI-speed sanity run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=_REPO_ROOT / "BENCH_poly.json",
        help="output JSON path (default: repo-root BENCH_poly.json)",
    )
    args = parser.parse_args(argv)

    grid = SMOKE_GRID if args.smoke else FULL_GRID
    repeats = 3 if args.smoke else 5
    rng = np.random.default_rng(0xBE7C4)

    results = []
    for n, num_limbs in grid:
        for method in METHODS:
            cells = bench_config(n, num_limbs, method, repeats, rng)
            results.extend(cells)
            for cell in cells:
                print(
                    f"N={n:<5} L={num_limbs:<3} {method:<11} "
                    f"{cell['op']:<12} batched {cell['batched_s']*1e3:8.3f} ms"
                    f"  looped {cell['looped_s']*1e3:8.3f} ms"
                    f"  speedup {cell['speedup']:6.2f}x"
                )

    payload = {
        "meta": {
            "bench": "bench_poly",
            "smoke": args.smoke,
            "repeats": repeats,
            "timing": "best-of-repeats wall seconds",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {len(results)} cells to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
