#!/usr/bin/env python
"""Benchmark harness: batched limb-matrix vs per-prime looped hot paths.

Times the polynomial-layer hot paths the paper's limb-parallel pitch
lives or dies on — forward NTT, full negacyclic multiply, exact rescale,
fast basis conversion (ModUp / ModDown), the fused hybrid key switch,
the scheme-layer composites HMult(+relinearize), rotate, and hoisted
multi-rotation (PR 4), and the slot-workload composites BSGS matvec and
BSGS polynomial evaluation (PR 5) — in two implementations each:

* ``batched``: the :class:`~repro.poly.batch_ntt.BatchNTT` /
  :class:`~repro.poly.basis_conv.BasisConverter` pipeline
  ``RnsPolynomial`` runs in production: one vectorized NumPy pass per
  stage over the whole limb matrix, every per-prime constant
  precomputed and cached;
* ``looped``: the per-prime reference path — Python loops over per-limb
  :class:`~repro.poly.ntt.NegacyclicNTT` engines and per-(i, j)
  conversion rows, with the per-call constant recomputes the cached
  pipeline eliminated.

Every cell is cross-checked for bit-equality before it is timed (the
conversion cells additionally against an exact big-int CRT reference;
the ``hoisted_rotate`` cell against per-index independent rotations —
the shared-ModUp fast path must be bit-identical, not just close),
the grid spans ``N in {1024, 4096} x L in {4, 12}`` across all four
Table-3 reducer backends, and the results land in ``BENCH_poly.json``
at the repository root.  Cells record best-of and median-of-repeats
times; ``--baseline`` re-runs the grid and exits non-zero when any
previously-recorded cell's batched median regresses by more than 25%.

Since PR 9 the grid also spans execution *backends*: every tier named
by ``--backends`` (default ``numpy,compiled``; ``sharded`` opt-in) gets
its own cells for the dispatch-sensitive kernels (forward NTT, multiply,
ModUp / ModDown, key switch), each asserted bit-identical against a
numpy-tier context built from the same seed *before* it is timed, and
annotated with a roofline estimate: the compulsory bytes-moved lower
bound at the measured STREAM-style copy bandwidth (``roofline_s``) and
the fraction of the measured time it explains (``roofline_frac``).

Usage:
    python benchmarks/bench_poly.py                       # full grid
    python benchmarks/bench_poly.py --smoke               # tiny CI grid
    python benchmarks/bench_poly.py --out PATH            # write elsewhere
    python benchmarks/bench_poly.py --backends numpy,compiled,sharded
    python benchmarks/bench_poly.py --methods shoup,smr   # reducer subset
    python benchmarks/bench_poly.py --baseline BENCH_poly.json
                                                          # regression gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.context import CkksContext  # noqa: E402
from repro.poly.basis_conv import KeySwitchKey  # noqa: E402
from repro.poly.ntt import automorphism_tables  # noqa: E402
from repro.poly.rns_poly import PolyContext, RnsPolynomial  # noqa: E402
from repro.rns.primes import digit_ranges, ntt_friendly_primes  # noqa: E402
from repro.scheme import (  # noqa: E402
    CanonicalEncoder,
    Ciphertext,
    Evaluator,
    KeyGenerator,
    galois_element,
)
from repro.scheme._circuit import CircuitTracer  # noqa: E402
from repro.scheme._linalg import SlotLinalg  # noqa: E402
from repro.serving import (  # noqa: E402
    CkksServer,
    ServingConfig,
    verify_delivered,
)

METHODS = ("barrett", "montgomery", "shoup", "smr")
BACKENDS = ("numpy", "sharded", "compiled")
#: dispatch-sensitive kernel cells the non-numpy tiers re-run
TIER_OPS = ("ntt_forward", "multiply", "mod_up", "mod_down", "key_switch")
FULL_GRID = [(1024, 4), (1024, 12), (4096, 4), (4096, 12)]
SMOKE_GRID = [(256, 4)]

#: regression gate for --baseline mode: any previously-recorded cell
#: whose batched median slows down by more than this factor fails the run
REGRESSION_THRESHOLD = 0.25

#: the serving cells time the asyncio batch scheduler, whose batch
#: windows sit on event-loop timers — quantization jitter swings their
#: ~8 ms smoke medians past the kernel threshold run to run, so they
#: get a wider one (a real scheduler regression shows up well past 2x)
SERVING_THRESHOLD = 0.5

#: cells whose *baseline* batched median sits under this floor are too
#: noisy to gate individually — sub-millisecond kernels swing +-40% run
#: to run on shared runners.  Their code is still gated: every floored
#: kernel executes inside the composite cells (key_switch, hmult,
#: rotate, matvec, poly_eval, circuit) that clear the floor.
MIN_GATED_MEDIAN_S = 5e-3


def _limbs_for(n: int, num_limbs: int) -> list[int]:
    """A 25-30-style basis: one terminal limb, mains for the rest."""
    terminal = ntt_friendly_primes(25, 1, n, kind="terminal")
    taken = {p.value for p in terminal}
    main = ntt_friendly_primes(
        30, num_limbs - 1, n, exclude=taken, kind="main"
    )
    return [p.value for p in terminal + main]


def _aux_for(primes: list[int], n: int, dnum: int) -> list[int]:
    """Auxiliary P-part primes covering the largest key-switch digit."""
    max_digit = 1
    for lo, hi in digit_ranges(len(primes), dnum):
        prod = 1
        for q in primes[lo:hi]:
            prod *= q
        max_digit = max(max_digit, prod)
    count = 1
    while True:
        aux = [
            p.value
            for p in ntt_friendly_primes(
                30, count, n, kind="aux", exclude=set(primes)
            )
        ]
        prod = 1
        for p in aux:
            prod *= p
        if prod > max_digit:
            return aux
        count += 1


def _time(fn, repeats: int) -> tuple[float, float]:
    """(best, median) wall time over ``repeats`` runs.

    Best-of is the least-noise estimator for short deterministic
    kernels (used for the printed speedups); the median is the
    noise-tolerant one the --baseline regression gate compares.
    """
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times), statistics.median(times)


# -- looped reference implementations (the pre-batching code paths) --------
def _looped_forward(ctx: PolyContext, limbs: np.ndarray) -> np.ndarray:
    out = np.empty_like(limbs)
    for i, ntt in enumerate(ctx.ntts):
        out[i] = ntt.forward(limbs[i])
    return out


def _looped_multiply(ctx: PolyContext, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.empty_like(a)
    for i, ntt in enumerate(ctx.ntts):
        out[i] = ntt.inverse(ntt.pointwise(ntt.forward(a[i]), ntt.forward(b[i])))
    return out


def _looped_rescale(ctx: PolyContext, limbs: np.ndarray) -> np.ndarray:
    q_last = ctx.primes[-1]
    last = limbs[-1].astype(np.int64)
    centered = np.where(last > q_last // 2, last - q_last, last)
    out = np.empty((ctx.num_limbs - 1, ctx.ring_degree), np.uint64)
    for i, q in enumerate(ctx.primes[:-1]):
        r = centered % q
        diff = limbs[i] + np.uint64(q) - r.astype(np.uint64)
        diff = np.where(diff >= q, diff - np.uint64(q), diff)
        inv = pow(q_last, -1, q)  # the per-call recompute being fixed
        out[i] = diff * np.uint64(inv) % np.uint64(q)
    return out


def _v_floor(x_hat: np.ndarray, src: list[int], q_hat: list[int],
             modulus: int) -> np.ndarray:
    """The conversion correction ``v`` — same float path and exact
    boundary guard as ``BasisConverter._v_term`` so the looped and
    batched conversions are bit-identical by construction."""
    inv_q = 1.0 / np.array(src, dtype=np.float64).reshape(-1, 1)
    s = np.sum(x_hat * inv_q, axis=0)
    dist = np.abs(s - np.rint(s))
    v = np.floor(s).astype(np.uint64)
    for j in np.nonzero(dist < 2.0**-30)[0]:
        exact = sum(int(x_hat[i, j]) * q_hat[i] for i in range(len(src)))
        v[j] = exact // modulus
    return v


def _looped_convert(src: list[int], dst: list[int], x: np.ndarray) -> np.ndarray:
    """Per-(i, j) fast basis extension with per-call constant recomputes."""
    modulus = 1
    for q in src:
        modulus *= q
    q_hat = [modulus // q for q in src]
    x_hat = np.empty_like(x)
    for i, q in enumerate(src):
        w = pow(q_hat[i], -1, q)  # recomputed per call, like pre-PR2 rescale
        x_hat[i] = x[i] * np.uint64(w) % np.uint64(q)
    v = _v_floor(x_hat, src, q_hat, modulus)
    out = np.empty((len(dst), x.shape[1]), np.uint64)
    for j, p in enumerate(dst):
        acc = np.zeros(x.shape[1], np.uint64)
        for i in range(len(src)):
            acc += x_hat[i] * np.uint64(q_hat[i] % p) % np.uint64(p)
        acc += v * np.uint64((-modulus) % p) % np.uint64(p)
        out[j] = acc % np.uint64(p)
    return out


def _looped_mod_up(primes: list[int], aux: list[int], limbs: np.ndarray) -> np.ndarray:
    return np.concatenate([limbs, _looped_convert(primes, aux, limbs)])


def _looped_mod_down(
    primes: list[int], aux: list[int], x_ext: np.ndarray
) -> np.ndarray:
    num_base = len(primes)
    conv = _looped_convert(aux, primes, x_ext[num_base:])
    p_mod = 1
    for p in aux:
        p_mod *= p
    out = np.empty((num_base, x_ext.shape[1]), np.uint64)
    for i, q in enumerate(primes):
        pinv = pow(p_mod, -1, q)  # per-call recompute
        diff = (x_ext[i] + np.uint64(q) - conv[i]) % np.uint64(q)
        out[i] = diff * np.uint64(pinv) % np.uint64(q)
    return out


def _looped_key_switch(
    ctx: PolyContext, ksk: KeySwitchKey, limbs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Naive composition: per-digit looped ModUp + per-prime looped NTT
    multiply-accumulate + looped ModDown."""
    ext_ctx = ksk.ext_ctx
    primes, aux = ctx.primes, ksk.aux_primes
    halves = []
    for half in range(2):
        acc = np.zeros((ext_ctx.num_limbs, ctx.ring_degree), np.uint64)
        for d, (lo, hi) in enumerate(digit_ranges(ctx.num_limbs, ksk.dnum)):
            digit_primes = primes[lo:hi]
            others = primes[:lo] + primes[hi:] + aux
            conv = _looped_convert(digit_primes, others, limbs[lo:hi])
            ext = np.empty((ext_ctx.num_limbs, ctx.ring_degree), np.uint64)
            ext[:lo] = conv[:lo]
            ext[lo:hi] = limbs[lo:hi]
            ext[hi:] = conv[lo:]
            key = ksk.pairs[d][half]
            for i, ntt in enumerate(ext_ctx.ntts):
                prod = ntt.pointwise(ntt.forward(ext[i]), key.limbs[i])
                s = acc[i] + prod
                q = np.uint64(ext_ctx.primes[i])
                acc[i] = np.where(s >= q, s - q, s)
        for i, ntt in enumerate(ext_ctx.ntts):
            acc[i] = ntt.inverse(acc[i])
        halves.append(_looped_mod_down(primes, aux, acc))
    return halves[0], halves[1]


def _looped_hmult(
    ctx: PolyContext, rlk: KeySwitchKey, a0, a1, b0, b1
) -> tuple[np.ndarray, np.ndarray]:
    """Naive HMult+relinearize: four per-prime looped multiplies for the
    tensor, the looped key switch for the degree-2 part, modular adds."""
    q = ctx.moduli
    t0 = _looped_multiply(ctx, a0, b0)
    x = _looped_multiply(ctx, a0, b1)
    y = _looped_multiply(ctx, a1, b0)
    s = x + y
    t1 = np.where(s >= q, s - q, s)
    t2 = _looped_multiply(ctx, a1, b1)
    d0, d1 = _looped_key_switch(ctx, rlk, t2)
    s = t0 + d0
    c0 = np.where(s >= q, s - q, s)
    s = t1 + d1
    c1 = np.where(s >= q, s - q, s)
    return c0, c1


def _looped_rotate(
    ctx: PolyContext, gk: KeySwitchKey, k: int, c0, c1
) -> tuple[np.ndarray, np.ndarray]:
    """Per-prime hoisted-schedule rotation: looped ModUp + per-prime
    forward per digit, the NTT-domain Galois slot permutation, per-prime
    MAC / inverse, looped ModDown, then the coeff-domain sigma on c0."""
    n = ctx.ring_degree
    src, neg, perm = automorphism_tables(n, k)
    ext_ctx = gk.ext_ctx
    primes, aux = ctx.primes, gk.aux_primes
    ext_digits = []
    for lo, hi in digit_ranges(ctx.num_limbs, gk.dnum):
        digit_primes = primes[lo:hi]
        others = primes[:lo] + primes[hi:] + aux
        conv = _looped_convert(digit_primes, others, c1[lo:hi])
        ext = np.empty((ext_ctx.num_limbs, n), np.uint64)
        ext[:lo] = conv[:lo]
        ext[lo:hi] = c1[lo:hi]
        ext[hi:] = conv[lo:]
        hat = np.empty_like(ext)
        for i, ntt in enumerate(ext_ctx.ntts):
            hat[i] = ntt.forward(ext[i])
        ext_digits.append(hat[:, perm])
    halves = []
    for half in range(2):
        acc = np.zeros((ext_ctx.num_limbs, n), np.uint64)
        for d, hat in enumerate(ext_digits):
            key = gk.pairs[d][half]
            for i, ntt in enumerate(ext_ctx.ntts):
                prod = ntt.pointwise(hat[i], key.limbs[i])
                s = acc[i] + prod
                q = np.uint64(ext_ctx.primes[i])
                acc[i] = np.where(s >= q, s - q, s)
        for i, ntt in enumerate(ext_ctx.ntts):
            acc[i] = ntt.inverse(acc[i])
        halves.append(_looped_mod_down(primes, aux, acc))
    d0, d1 = halves
    rc0 = np.empty_like(c0)
    for i, q in enumerate(primes):
        row = c0[i][src]
        rc0[i] = np.where(neg & (row != 0), np.uint64(q) - row, row)
    qcol = ctx.moduli
    s = rc0 + d0
    return np.where(s >= qcol, s - qcol, s), d1


def _bench_serving(
    n: int, num_limbs: int, method: str, dnum: int, repeats: int,
    backend: str | None = None,
) -> list[dict]:
    """The ``serving`` cell: batched scheduler vs per-request replay.

    Delivered values are verified before timing — approximately against
    the unbatched per-request path (independent encryptions cannot
    bit-match) and bit-exactly against a clean replay of each recorded
    batch (:func:`repro.serving.loadgen.verify_delivered`).  The cell
    carries two extra fields, ``p99_s`` and ``requests_per_s``, for the
    serving-soak CI job.
    """
    cc = CkksContext(
        ring_degree=n,
        num_main=num_limbs - 1,
        num_aux=3 if num_limbs <= 6 else 5,
        dnum=dnum,
        seed=0xC0FFEE,
        method=method,
        backend=backend,
    )
    scale = 2.0**30

    def tenant(tracer, x):
        half = cc.encoder.encode([0.5], scale, num_slots=1)
        prod = tracer.multiply_plain(x, half)
        bump = cc.encoder.encode([0.25], prod.scale, num_slots=1)
        return tracer.rescale(tracer.add_plain(prod, bump))

    server = CkksServer(cc, config=ServingConfig(
        batch_window_s=0.001,
        default_deadline_s=60.0,
        watchdog_s=60.0,
        seed=0,
        backend=backend,
    ))
    server.register_tenant("affine", tenant, scale_bits=30)
    k = 32
    payloads = [round(float(v), 3) for v in np.linspace(-1.0, 1.0, k)]

    def served_batch():
        async def drive():
            await server.start()
            try:
                return await asyncio.gather(
                    *(server.submit("affine", v) for v in payloads)
                )
            finally:
                await server.stop()

        return asyncio.run(drive())

    plan = server._tenants["affine"].plan

    def unbatched():
        out = []
        for v in payloads:
            ct = cc.encrypt([v], scale=scale, num_slots=1)
            out.append(complex(cc.decrypt(plan.run(ct), num_slots=1)[0]))
        return out

    got = served_batch()
    ref = unbatched()
    for v, g, r in zip(payloads, got, ref):
        assert abs(g - r) < 1e-4, (
            f"serving deviates from the unbatched reference at {v}: {g} vs {r}"
        )
        assert abs(g.real - (0.5 * v + 0.25)) < 1e-4, (
            f"serving result wrong at {v}: {g}"
        )
    assert verify_delivered(server) == 0, "served slots fail bit-match replay"
    server.batch_log.clear()
    server.latencies_s.clear()
    best_b, med_b = _time(served_batch, repeats)
    best_l, med_l = _time(unbatched, repeats)
    lat = sorted(server.latencies_s)
    p99 = lat[min(len(lat) - 1, int(len(lat) * 0.99))] if lat else 0.0
    return [{
        "op": "serving",
        "batched_s": best_b,
        "batched_med_s": med_b,
        "looped_s": best_l,
        "looped_med_s": med_l,
        "p99_s": p99,
        "requests_per_s": round(k / med_b, 2),
    }]



def _bench_ml(method: str, repeats: int) -> list[dict]:
    """The ``ml_inference`` cell: compiled-once model vs per-query compile.

    "batched" replays the model's single compiled :class:`CircuitPlan`
    per encrypted row (hoists/fusion/encodings captured once at compile
    time); "looped" re-traces and re-compiles the same model recipe for
    every query before running it — the cost the single-entry API
    amortizes away.  The rebuilt plan is asserted bit-identical to the
    compiled one on a shared ciphertext before timing, and the encrypted
    labels must agree with the plaintext twin's.
    """
    from repro.ml import agreement, load_iris_split, logistic_regression

    cc = CkksContext(
        ring_degree=256, num_main=10, num_aux=7, dnum=2, seed=0xC0FFEE,
        method=method, rotations=(1, 2),
    )
    split = load_iris_split(seed=0)
    y = (split.y_train == 2).astype(np.int64)
    model = logistic_regression(cc, split.x_train, y, degree=3)
    rows = split.x_test[:8]

    def compiled_infer():
        return model.predict_encrypted(rows)

    def per_query_compile():
        out = np.empty((rows.shape[0], model.dim))
        for i, row in enumerate(rows):
            tracer = cc._tracer()
            plan = tracer.compile(
                model.build(tracer, tracer.input("x", scale=model.scale))
            )
            ct = cc.encrypt(row, scale=model.scale, num_slots=model.dim)
            out[i] = cc.decrypt(plan.run(ct), num_slots=model.dim).real
        return out

    ct = cc.encrypt(rows[0], scale=model.scale, num_slots=model.dim)
    tracer = cc._tracer()
    rebuilt = tracer.compile(
        model.build(tracer, tracer.input("x", scale=model.scale))
    )
    a, b = model.plan.run(ct), rebuilt.run(ct)
    assert np.array_equal(a.c0.limbs, b.c0.limbs), "rebuilt ml c0 differs"
    assert np.array_equal(a.c1.limbs, b.c1.limbs), "rebuilt ml c1 differs"
    enc = model.classify(compiled_infer())
    plain = model.classify(model.predict_plain(rows))
    assert agreement(enc, plain) >= 0.98, "ml cell fails the agreement gate"

    best_b, med_b = _time(compiled_infer, repeats)
    best_l, med_l = _time(per_query_compile, repeats)
    return [{
        "op": "ml_inference",
        "batched_s": best_b,
        "batched_med_s": med_b,
        "looped_s": best_l,
        "looped_med_s": med_l,
        "n": 256,
        "limbs": 11,
        "method": method,
        "speedup": round(best_l / best_b, 2),
        "rows": int(rows.shape[0]),
        "model": "logreg-deg3",
    }]


def _tier_available(tier: str) -> bool:
    """Whether a non-numpy tier can actually run here (toolchain / pool)."""
    if tier == "numpy":
        return True
    if tier == "compiled":
        from repro.poly.backends.compiled import get_lib

        return get_lib() is not None
    if tier == "sharded":
        from repro.poly.backends.sharded import get_pool

        return get_pool() is not None
    return False


def _limb_arrays(result) -> list[np.ndarray]:
    """Normalize a kernel result (poly, array, or tuple of either) to
    its limb matrices for bit-comparison."""
    items = result if isinstance(result, tuple) else (result,)
    return [np.asarray(getattr(x, "limbs", x)) for x in items]


def bench_backend_config(
    n: int, num_limbs: int, method: str, tier: str, repeats: int, seed: int
) -> list[dict]:
    """Timed cells for one non-numpy execution tier.

    Two contexts are built from the same seed — one on the tier under
    test, one on the numpy reference tier — so inputs, key material and
    therefore every output must be bit-identical; each cell asserts that
    equality *before* it is timed.  Cells carry ``backend`` and (once
    the numpy grid has run) ``speedup_vs_numpy``.
    """
    limb_list = _limbs_for(n, num_limbs)
    dnum = 2 if num_limbs <= 6 else 3
    aux = _aux_for(limb_list, n, dnum)

    def build(backend):
        rng = np.random.default_rng(seed)
        ctx = PolyContext(n, limb_list, method, backend=backend)
        a = ctx.random(rng)
        b = ctx.random(rng)
        ksk = KeySwitchKey.random(ctx, aux, dnum, rng)
        return ctx, a, b, ksk

    ctx_n, a_n, b_n, ksk_n = build("numpy")
    ctx_t, a_t, b_t, ksk_t = build(tier)
    assert np.array_equal(a_n.limbs, a_t.limbs), "seeded inputs diverged"

    cells = []

    def cell(op, tier_fn, ref_fn):
        for got, ref in zip(_limb_arrays(tier_fn()), _limb_arrays(ref_fn())):
            assert np.array_equal(got, ref), (
                f"{tier} tier diverges from numpy on {op} "
                f"(N={n}, L={num_limbs}, {method})"
            )
        best, med = _time(tier_fn, repeats)
        cells.append({
            "op": op,
            "backend": tier,
            "batched_s": best,
            "batched_med_s": med,
            "n": n,
            "limbs": num_limbs,
            "method": method,
        })

    cell(
        "ntt_forward",
        lambda: ctx_t.batch_ntt.forward(a_t.limbs),
        lambda: ctx_n.batch_ntt.forward(a_n.limbs),
    )
    cell(
        "multiply",
        lambda: RnsPolynomial(ctx_t, a_t.limbs).multiply(
            RnsPolynomial(ctx_t, b_t.limbs)
        ),
        lambda: RnsPolynomial(ctx_n, a_n.limbs).multiply(
            RnsPolynomial(ctx_n, b_n.limbs)
        ),
    )
    cell(
        "mod_up",
        lambda: a_t.mod_up(aux),
        lambda: a_n.mod_up(aux),
    )
    up_t = a_t.mod_up(aux)
    up_n = a_n.mod_up(aux)
    cell(
        "mod_down",
        lambda: up_t.mod_down(len(aux)),
        lambda: up_n.mod_down(len(aux)),
    )
    cell(
        "key_switch",
        lambda: a_t.key_switch(ksk_t),
        lambda: a_n.key_switch(ksk_n),
    )
    return cells


def _measure_copy_bandwidth() -> float:
    """STREAM-style copy bandwidth in bytes/s (read + write counted).

    One 64 MiB ``np.copyto`` — far over every cache — timed best-of-5;
    this is the sustainable-transfer denominator the roofline estimates
    divide by.
    """
    src = np.ones(1 << 23, np.uint64)
    dst = np.empty_like(src)
    np.copyto(dst, src)
    best, _ = _time(lambda: np.copyto(dst, src), 5)
    return 2 * src.nbytes / best


#: ops with a bytes-moved model; composites (key_switch, hmult, ...) are
#: dominated by these and carry no annotation of their own
_ROOFLINE_OPS = ("ntt_forward", "multiply", "mod_up", "mod_down")


def _roofline_s(op: str, n: int, L: int, K: int, method: str,
                copy_bw: float) -> float | None:
    """Optimistic bytes-moved lower bound for one kernel cell, in seconds.

    Counts only *compulsory* traffic — operands in, results out, twiddle
    tables once — at the measured copy bandwidth; per-stage state
    revisits are assumed cache-resident (a 4096-coefficient row is
    16-32 KiB) and compute is assumed free.  ``measured / roofline``
    therefore reads as "how far above the pure memory bound this tier
    runs": large means compute-bound, near 1 means memory-bound.
    """
    word = 8
    # twiddles: value + Shoup companion for shoup, one 64-bit word else
    tw = 12 if method == "shoup" else 8
    ntt = L * n * (2 * word + tw)
    models = {
        "ntt_forward": ntt,
        # two forwards + pointwise (two reads + prepared twin + write)
        # + one inverse
        "multiply": 4 * ntt + 4 * L * n * word,
        # x in, (L + K) rows out, conversion matrix is O(L*K) and free
        "mod_up": (2 * L + K) * n * word,
        "mod_down": (2 * (L + K)) * n * word,
    }
    bytes_moved = models.get(op)
    return None if bytes_moved is None else bytes_moved / copy_bw


def bench_config(n: int, num_limbs: int, method: str, repeats: int, rng) -> list[dict]:
    ctx = PolyContext(n, _limbs_for(n, num_limbs), method)
    a = ctx.random(rng)
    b = ctx.random(rng)
    batch = ctx.batch_ntt

    cells = []

    def cell(op: str, batched_fn, looped_fn) -> None:
        best_b, med_b = _time(batched_fn, repeats)
        best_l, med_l = _time(looped_fn, repeats)
        cells.append(
            {
                "op": op,
                "batched_s": best_b,
                "batched_med_s": med_b,
                "looped_s": best_l,
                "looped_med_s": med_l,
            }
        )

    # forward NTT ----------------------------------------------------------
    looped = _looped_forward(ctx, a.limbs)
    batched = batch.forward(a.limbs)
    assert np.array_equal(looped, batched), "NTT paths disagree"
    cell(
        "ntt_forward",
        lambda: batch.forward(a.limbs),
        lambda: _looped_forward(ctx, a.limbs),
    )

    # full negacyclic multiply --------------------------------------------
    # Fresh wrappers per call: the twin/prepared caches would otherwise
    # turn iterations 2..k into pure pointwise passes.
    def fused_multiply():
        return RnsPolynomial(ctx, a.limbs).multiply(RnsPolynomial(ctx, b.limbs))

    looped = _looped_multiply(ctx, a.limbs, b.limbs)
    assert np.array_equal(looped, fused_multiply().limbs), (
        "multiply paths disagree"
    )
    cell(
        "multiply",
        fused_multiply,
        lambda: _looped_multiply(ctx, a.limbs, b.limbs),
    )

    # exact rescale --------------------------------------------------------
    looped = _looped_rescale(ctx, a.limbs)
    assert np.array_equal(looped, a.exact_rescale().limbs), (
        "rescale paths disagree"
    )
    cell(
        "rescale",
        lambda: a.exact_rescale(),
        lambda: _looped_rescale(ctx, a.limbs),
    )

    # basis conversion: ModUp / ModDown -----------------------------------
    dnum = 2 if num_limbs <= 6 else 3
    aux = _aux_for(ctx.primes, n, dnum)
    ext_ctx = ctx.extend(aux)

    up = a.mod_up(aux)
    looped_up = _looped_mod_up(ctx.primes, aux, a.limbs)
    assert np.array_equal(up.limbs, looped_up), "mod_up paths disagree"
    # Exact big-int CRT reference: row j must be X mod p_j exactly.
    coeffs = a.to_int_coeffs(centered=False)
    expect = np.array(
        [[x % p for x in coeffs] for p in ext_ctx.primes], dtype=np.uint64
    )
    assert np.array_equal(up.limbs, expect), "mod_up != big-int reference"
    cell(
        "mod_up",
        lambda: a.mod_up(aux),
        lambda: _looped_mod_up(ctx.primes, aux, a.limbs),
    )

    down = up.mod_down(len(aux))
    looped_down = _looped_mod_down(ctx.primes, aux, up.limbs)
    assert np.array_equal(down.limbs, looped_down), "mod_down paths disagree"
    p_mod = 1
    for p in aux:
        p_mod *= p
    up_coeffs = up.to_int_coeffs(centered=False)
    expect = np.array(
        [[(x // p_mod) % q for x in up_coeffs] for q in ctx.primes],
        dtype=np.uint64,
    )
    assert np.array_equal(down.limbs, expect), "mod_down != big-int reference"
    cell(
        "mod_down",
        lambda: up.mod_down(len(aux)),
        lambda: _looped_mod_down(ctx.primes, aux, up.limbs),
    )

    # fused hybrid key switch ---------------------------------------------
    ksk = KeySwitchKey.random(ctx, aux, dnum, rng)
    c0, c1 = a.key_switch(ksk)
    l0, l1 = _looped_key_switch(ctx, ksk, a.limbs)
    assert np.array_equal(c0.limbs, l0) and np.array_equal(c1.limbs, l1), (
        "key_switch paths disagree"
    )
    cell(
        "key_switch",
        lambda: a.key_switch(ksk),
        lambda: _looped_key_switch(ctx, ksk, a.limbs),
    )

    # scheme-layer composites: HMult(+relin), rotate, hoisted rotations --
    rotations = (1, 2, 3, 5)
    keygen = KeyGenerator(ctx, aux, dnum, rng)
    ev = Evaluator.from_keygen(keygen, rotations=rotations)
    a0l, a1l = a.limbs, b.limbs
    b0l, b1l = ctx.random(rng).limbs, ctx.random(rng).limbs

    def fresh_ct(l0, l1):
        # Fresh wrappers per call, like the multiply cell: the twin and
        # prepared caches would otherwise hide the transforms.
        return Ciphertext(RnsPolynomial(ctx, l0), RnsPolynomial(ctx, l1), scale=1.0)

    def fused_hmult():
        return ev.multiply(fresh_ct(a0l, a1l), fresh_ct(b0l, b1l))

    rlk = keygen.relinearization_key()
    got = fused_hmult()
    lc0, lc1 = _looped_hmult(ctx, rlk, a0l, a1l, b0l, b1l)
    assert np.array_equal(got.c0.limbs, lc0), "hmult c0 paths disagree"
    assert np.array_equal(got.c1.limbs, lc1), "hmult c1 paths disagree"
    cell(
        "hmult",
        fused_hmult,
        lambda: _looped_hmult(ctx, rlk, a0l, a1l, b0l, b1l),
    )

    k3 = galois_element(3, n)
    gk3 = keygen.galois_key(k3)

    def fused_rotate():
        return ev.rotate(fresh_ct(a0l, a1l), 3)

    got = fused_rotate()
    lc0, lc1 = _looped_rotate(ctx, gk3, k3, a0l, a1l)
    assert np.array_equal(got.c0.limbs, lc0), "rotate c0 paths disagree"
    assert np.array_equal(got.c1.limbs, lc1), "rotate c1 paths disagree"
    cell(
        "rotate",
        fused_rotate,
        lambda: _looped_rotate(ctx, gk3, k3, a0l, a1l),
    )

    # Hoisted multi-rotation: "batched" shares one ModUp + extended NTT
    # across all indices; the reference is the same evaluator rotating
    # per index independently.  Bit-identity asserted before timing is
    # the acceptance bar: the fast path may not drift semantically.
    def hoisted():
        return ev.rotate_hoisted(fresh_ct(a0l, a1l), rotations)

    def independent():
        ct = fresh_ct(a0l, a1l)
        return [ev.rotate(ct, r) for r in rotations]

    shared = hoisted()
    per_index = independent()
    for r, ind in zip(rotations, per_index):
        assert np.array_equal(shared[r].c0.limbs, ind.c0.limbs), (
            "hoisted rotation c0 differs from independent"
        )
        assert np.array_equal(shared[r].c1.limbs, ind.c1.limbs), (
            "hoisted rotation c1 differs from independent"
        )
    cell("hoisted_rotate", hoisted, independent)

    # slot workloads: BSGS matvec + BSGS polynomial evaluation ------------
    # "batched" is the fused path (one hoisted ModUp for the baby front,
    # NTT-domain MAC inner sums / cached power tree); "looped" is the
    # naive composition of the same formula (an independent rotation +
    # plaintext multiply + accumulate per diagonal; every power re-derived
    # per monomial).  The two are bit-identical by construction — asserted
    # before timing, like every other cell.
    dim = 64 if n >= 1024 else 16
    encoder = CanonicalEncoder(ctx)
    lin = SlotLinalg(
        encoder,
        Evaluator.from_keygen(keygen, rotations=SlotLinalg.matvec_rotations(dim)),
    )
    mat_rng = np.random.default_rng(0xA17)
    matrix = mat_rng.uniform(-1, 1, (dim, dim))
    mv_scale = 2.0**30

    def fresh_scaled(l0, l1, scale):
        return Ciphertext(RnsPolynomial(ctx, l0), RnsPolynomial(ctx, l1), scale=scale)

    def fused_matvec():
        return lin.matvec(fresh_scaled(a0l, a1l, mv_scale), matrix)

    def naive_matvec():
        return lin.matvec_naive(fresh_scaled(a0l, a1l, mv_scale), matrix)

    got = fused_matvec()
    ref = naive_matvec()
    assert np.array_equal(got.c0.limbs, ref.c0.limbs), "matvec c0 differs"
    assert np.array_equal(got.c1.limbs, ref.c1.limbs), "matvec c1 differs"
    cell("matvec", fused_matvec, naive_matvec)

    # The scale stack Delta^(bs*gs) must clear Q, so the degree and scale
    # follow the limb budget: deg 7 at L >= 12, deg 3 on shallow bases.
    if num_limbs >= 12:
        pe_scale, pe_coeffs = 2.0**30, [0.3, -0.7, 0.2, 0.11, -0.05, 0.01, 0.02, -0.015]
    else:
        pe_scale, pe_coeffs = 2.0**24, [0.5, -1.0, 0.25, 0.125]

    def fused_poly_eval():
        return lin.poly_eval(fresh_scaled(a0l, a1l, pe_scale), pe_coeffs)

    def naive_poly_eval():
        return lin.poly_eval_naive(fresh_scaled(a0l, a1l, pe_scale), pe_coeffs)

    got = fused_poly_eval()
    ref = naive_poly_eval()
    assert np.array_equal(got.c0.limbs, ref.c0.limbs), "poly_eval c0 differs"
    assert np.array_equal(got.c1.limbs, ref.c1.limbs), "poly_eval c1 differs"
    cell("poly_eval", fused_poly_eval, naive_poly_eval)

    # compiled circuit: matvec -> poly_eval -> rescale ---------------------
    # "batched" replays a CircuitPlan compiled once for the whole
    # pipeline (hoists shared at plan time, diagonal/constant encodings
    # and key-switch schedules captured, NTT-domain persistence across op
    # boundaries); "looped" eagerly composes the already-fused per-op
    # fast paths — each call re-plans, re-encodes and re-allocates.  The
    # rescale sits last because key switching runs at the keygen level.
    # The scale stack Delta^(bs*gs) with Delta = circ_scale^2 must clear
    # Q, hence the shallow-basis drop to 2^12.
    circ_scale = 2.0**30 if num_limbs >= 12 else 2.0**12
    circ_coeffs = [0.5, -1.0, 0.25, 0.125]

    def eager_circuit():
        ct = fresh_scaled(a0l, a1l, circ_scale)
        return lin.ev.rescale(
            lin.poly_eval(lin.matvec(ct, matrix), circ_coeffs)
        )

    tracer = CircuitTracer(lin.ev)
    traced_lin = SlotLinalg(encoder, tracer)
    x = tracer.input("x", scale=circ_scale)
    circuit_plan = tracer.compile(
        tracer.rescale(
            traced_lin.poly_eval(
                traced_lin.matvec_naive(x, matrix), circ_coeffs
            )
        )
    )

    def compiled_circuit():
        return circuit_plan.run(fresh_scaled(a0l, a1l, circ_scale))

    got = compiled_circuit()
    ref = eager_circuit()
    assert np.array_equal(got.c0.limbs, ref.c0.limbs), "circuit c0 differs"
    assert np.array_equal(got.c1.limbs, ref.c1.limbs), "circuit c1 differs"
    cell("circuit", compiled_circuit, eager_circuit)

    # multi-tenant serving: shared-ciphertext batch scheduling -------------
    # "batched" drives k single-slot queries through the asyncio serving
    # layer, which packs them into one sparse-packed ciphertext and runs
    # the tenant's compiled plan once per batch (queue + scheduler +
    # integrity-check overhead included); "looped" is the unbatched
    # alternative — one encrypt / plan replay / decrypt per query.
    # Capped at N <= 1024: the larger rings' serving numbers are
    # dominated by the same kernels the other cells already gate.
    if n <= 1024:
        cells.extend(
            _bench_serving(n, num_limbs, method, dnum, repeats)
        )

    for c in cells:
        c.update(
            n=n,
            limbs=num_limbs,
            method=method,
            speedup=round(c["looped_s"] / c["batched_s"], 2),
        )
    return cells


def _cell_key(c: dict) -> tuple:
    return (
        c["op"], c["n"], c["limbs"], c["method"], c.get("backend", "numpy")
    )


def _gated_pairs(
    results: list[dict], baseline: dict
) -> list[tuple[dict, dict]]:
    """(current, baseline) cell pairs the gate compares.

    A cell is gated when the baseline recorded the same
    ``(op, n, limbs, method, backend)`` with a median at or above the
    :data:`MIN_GATED_MEDIAN_S` noise floor.  Only the numpy tier is
    gated (``meta.gating_backend``): compiled/sharded timings depend on
    the runner's toolchain and core count, so their cells are recorded
    for inspection but never turn CI red.
    """
    recorded = {_cell_key(c): c for c in baseline.get("results", [])}
    pairs = []
    for c in results:
        if c.get("backend", "numpy") != "numpy":
            continue
        base = recorded.get(_cell_key(c))
        if (
            base is not None
            and base.get("batched_med_s", 0.0) >= MIN_GATED_MEDIAN_S
        ):
            pairs.append((c, base))
    return pairs


def matched_cells(results: list[dict], baseline: dict) -> list[tuple]:
    """Keys of result cells the baseline actually gates.

    The caller should treat an *empty* match set as a failure: a gate
    that compares nothing is vacuously green, which is exactly the
    silent failure mode a CI regression job exists to prevent.
    """
    return [_cell_key(c) for c, _ in _gated_pairs(results, baseline)]


def compare_to_baseline(
    results: list[dict],
    baseline: dict,
    threshold: float = REGRESSION_THRESHOLD,
) -> list[str]:
    """Machine-normalized regressions of batched medians vs a baseline.

    Raw wall-clock comparison across runs is dominated by host speed —
    a throttled CI runner (or a faster one) would turn every cell red
    (or green) regardless of the code, so each cell's batched median is
    first normalized by the *total* batched median of the gated cell
    set in its own run.  Whole-machine drift cancels exactly; a
    regression in one cell barely moves the total and stands out.  The
    trade-off is explicit: a change that slows every gated cell by the
    same factor is indistinguishable from machine drift and passes —
    CI hardware cannot catch uniform slowdowns without calibration.

    Cells are matched on ``(op, n, limbs, method, backend)`` with only
    the numpy tier gated; unmatched cells, baselines recorded before
    medians existed, and cells under the
    :data:`MIN_GATED_MEDIAN_S` noise floor are skipped — use
    :func:`matched_cells` to detect a gate that matches nothing at all.
    Returns one message per cell whose normalized median slowed by more
    than ``threshold``, naming the cell.
    """
    pairs = _gated_pairs(results, baseline)
    if not pairs:
        return []
    tot_new = sum(c["batched_med_s"] for c, _ in pairs)
    tot_old = sum(b["batched_med_s"] for _, b in pairs)
    drift = tot_new / tot_old
    regressions = []
    for c, base in pairs:
        old, new = base["batched_med_s"], c["batched_med_s"]
        ratio = (new / tot_new) / (old / tot_old)
        cell_threshold = threshold
        if c["op"] == "serving":
            cell_threshold = max(threshold, SERVING_THRESHOLD)
        if ratio > 1 + cell_threshold:
            regressions.append(
                f"{c['op']} N={c['n']} L={c['limbs']} {c['method']}: "
                f"batched median {new*1e3:.3f} ms vs baseline "
                f"{old*1e3:.3f} ms (+{(ratio - 1)*100:.0f}% after "
                f"dividing out the {drift:.2f}x whole-run drift)"
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid + fewer repeats (CI-speed sanity run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=_REPO_ROOT / "BENCH_poly.json",
        help="output JSON path (default: repo-root BENCH_poly.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed BENCH_poly.json to compare against; exits "
        "non-zero on a >25%% batched-median regression in any "
        "previously-recorded cell",
    )
    parser.add_argument(
        "--methods",
        type=str,
        default=",".join(METHODS),
        help="comma-separated reducer subset (default: all four)",
    )
    parser.add_argument(
        "--backend",
        "--backends",
        dest="backends",
        type=str,
        default="numpy,compiled",
        help="comma-separated execution tiers to bench (canonical "
        "spelling: --backend, matching the soak CLI and CkksContext); "
        "unavailable tiers are skipped with a warning "
        "(default: numpy,compiled)",
    )
    args = parser.parse_args(argv)

    methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
    for m in methods:
        if m not in METHODS:
            parser.error(f"unknown method {m!r} (choose from {METHODS})")
    backends = tuple(
        b.strip() for b in args.backends.split(",") if b.strip()
    )
    for b in backends:
        if b not in BACKENDS:
            parser.error(f"unknown backend {b!r} (choose from {BACKENDS})")
    tiers = []
    skipped = []
    for b in backends:
        if b == "numpy" or _tier_available(b):
            tiers.append(b)
        else:
            skipped.append(b)
            print(
                f"WARNING: backend tier {b!r} unavailable on this host "
                "(no toolchain / worker pool) — skipping its cells"
            )

    # Full recording runs cover the smoke grid too: the committed
    # BENCH_poly.json must contain the (256, 4) cells or CI's
    # `--smoke --baseline` job would match nothing and gate nothing.
    grid = SMOKE_GRID if args.smoke else SMOKE_GRID + FULL_GRID
    repeats = 3 if args.smoke else 5
    if args.baseline is not None:
        # The regression gate compares medians; a median of 3 is barely
        # noise-tolerant on shared CI machines, so comparisons run more
        # repeats than a plain recording pass.
        repeats = max(repeats, 9)
    rng = np.random.default_rng(0xBE7C4)

    results = []
    for n, num_limbs in grid:
        for method in methods:
            if "numpy" in tiers:
                cells = bench_config(n, num_limbs, method, repeats, rng)
                # one encrypted-inference cell per method, attached to
                # the smoke point so `--smoke --baseline` gates it too
                # (its own context is deeper: N=256 with 11 limbs)
                if (n, num_limbs) == (256, 4):
                    cells.extend(_bench_ml(method, repeats))
                results.extend(cells)
                for cell in cells:
                    print(
                        f"N={n:<5} L={num_limbs:<3} {method:<11} "
                        f"{cell['op']:<12} batched "
                        f"{cell['batched_s']*1e3:8.3f} ms"
                        f"  looped {cell['looped_s']*1e3:8.3f} ms"
                        f"  speedup {cell['speedup']:6.2f}x"
                    )
            for tier in tiers:
                if tier == "numpy":
                    continue
                cells = bench_backend_config(
                    n, num_limbs, method, tier, repeats, seed=0xD15BA7C4
                )
                # one serving cell per method at the deep 1024 point: the
                # full scheduler path (encrypt, plan replay, decrypt)
                # running on the tier under test
                if n <= 1024 and num_limbs >= 12:
                    dnum = 2 if num_limbs <= 6 else 3
                    serving = _bench_serving(
                        n, num_limbs, method, dnum, repeats, backend=tier
                    )
                    for c in serving:
                        c.update(n=n, limbs=num_limbs, method=method,
                                 backend=tier)
                    cells.extend(serving)
                results.extend(cells)
                for cell in cells:
                    print(
                        f"N={n:<5} L={num_limbs:<3} {method:<11} "
                        f"{cell['op']:<12} {tier:<8} "
                        f"{cell['batched_s']*1e3:8.3f} ms"
                    )

    # -- cross-tier annotations: speedup_vs_numpy + roofline --------------
    copy_bw = _measure_copy_bandwidth()
    numpy_meds = {
        (c["op"], c["n"], c["limbs"], c["method"]): c["batched_med_s"]
        for c in results
        if c.get("backend", "numpy") == "numpy"
    }
    aux_counts: dict[tuple, int] = {}
    for c in results:
        if c.get("backend", "numpy") != "numpy":
            base = numpy_meds.get((c["op"], c["n"], c["limbs"], c["method"]))
            if base is not None:
                c["speedup_vs_numpy"] = round(base / c["batched_med_s"], 2)
        if c["op"] in _ROOFLINE_OPS:
            gk = (c["n"], c["limbs"])
            if gk not in aux_counts:
                dnum = 2 if c["limbs"] <= 6 else 3
                aux_counts[gk] = len(
                    _aux_for(_limbs_for(*gk), c["n"], dnum)
                )
            rf = _roofline_s(
                c["op"], c["n"], c["limbs"], aux_counts[gk], c["method"],
                copy_bw,
            )
            if rf is not None:
                c["roofline_s"] = rf
                c["roofline_frac"] = round(rf / c["batched_s"], 3)

    payload = {
        "meta": {
            "bench": "bench_poly",
            "smoke": args.smoke,
            "repeats": repeats,
            "timing": "best-of and median-of-repeats wall seconds",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "methods": list(methods),
            "backends": tiers,
            "backends_skipped": skipped,
            "cpu_count": os.cpu_count(),
            "copy_bw_gbs": round(copy_bw / 1e9, 2),
            "roofline": "roofline_s = compulsory bytes moved / copy "
            "bandwidth; roofline_frac = roofline_s / batched_s (near 1 "
            "= memory-bound)",
            "gating_backend": "numpy",
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {len(results)} cells to {args.out}")

    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        matched = matched_cells(results, baseline)
        if not matched:
            print(
                f"\nbaseline gate is VACUOUS: {args.baseline} records none "
                "of the cells this run produced — refusing to pass a gate "
                "that compares nothing (re-record the baseline)"
            )
            return 1
        regressions = compare_to_baseline(results, baseline)
        if regressions:
            print(
                f"\n{len(regressions)} regression(s) vs {args.baseline} "
                f"(>{REGRESSION_THRESHOLD:.0%} on the batched median; "
                f"{len(matched)} cells gated):"
            )
            for line in regressions:
                print(f"  REGRESSION {line}")
            return 1
        print(
            f"\nno regressions vs {args.baseline} "
            f"({len(matched)} cells gated)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
