"""Analyzer CLI: ``python -m repro.analysis``.

Runs the two static layers over the acceptance surface and exits
non-zero on any gated violation:

1. **Parameter families** — Level-1 kernel range certificates
   (:func:`repro.analysis.certify_kernels`) for every
   ``(N, L, method)`` cell of the acceptance grid.  Gated: a single
   failed proof obligation fails the run.
2. **Bench circuits** — the benchmark harness's compiled workloads
   (BSGS matvec, BSGS polynomial evaluation, hoisted rotations, and the
   matvec -> poly_eval -> rescale composite) are re-traced, compiled and
   passed through the Level-2 plan checker
   (:func:`repro.analysis.check_plan`).  Gated: any error-severity
   diagnostic fails the run.
3. **Seeded random DAGs** — the test suite's program generator
   (``tests/test_circuit.py``) replayed through the checker.  These
   programs deliberately abuse scales, so they are report-only by
   default; ``--strict-dags`` promotes their errors into the gate.

Usage::

    python -m repro.analysis                     # full acceptance gate
    python -m repro.analysis --families-only     # Level 1 grid only
    python -m repro.analysis --ring-degrees 1024 --levels 4
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path

from repro.analysis.ranges import certify_kernels

METHODS = ("barrett", "montgomery", "shoup", "smr")


def _family_primes(n: int, num_limbs: int) -> list[int]:
    from repro.rns.primes import PrimePool

    pool = PrimePool.generate(
        n, num_main=num_limbs - 1, num_terminal=1, num_aux=4
    )
    return [p.value for p in pool.limb_primes(1, num_limbs - 1)]


def run_families(degrees, levels, methods, verbose=False) -> int:
    failures = 0
    for n in degrees:
        for num_limbs in levels:
            primes = _family_primes(n, num_limbs)
            for method in methods:
                cert = certify_kernels(n, primes, method)
                status = "proved" if cert.ok else "FAILED"
                print(
                    f"[level-1] N={n} L={num_limbs} {method:<10} "
                    f"{status}: {len(cert.obligations)} obligations, "
                    f"{len(cert.diagnostics)} violation(s)"
                )
                if verbose or not cert.ok:
                    for d in cert.diagnostics:
                        print(f"    {d}")
                if not cert.ok:
                    failures += 1
    return failures


def _bench_plans(n: int, method: str):
    """(name, plan) pairs mirroring the benchmark's compiled workloads."""
    import numpy as np

    from repro.poly.rns_poly import PolyContext
    from repro.rns.primes import PrimePool
    from repro.scheme import Evaluator, KeyGenerator
    from repro.scheme._circuit import CircuitTracer
    from repro.scheme._linalg import SlotLinalg
    from repro.scheme.encoder import CanonicalEncoder

    dim, dnum = 16, 2
    pool = PrimePool.generate(n, num_main=3, num_terminal=1, num_aux=4)
    ctx = PolyContext.from_pool(
        pool, num_terminal=1, num_main=3, method=method
    )
    aux = [p.value for p in pool.extension_basis(1, 3, dnum=dnum)]
    keygen = KeyGenerator(ctx, aux, dnum, np.random.default_rng(0xBE9C))
    rots = SlotLinalg.matvec_rotations(dim)
    ev = Evaluator.from_keygen(keygen, rotations=rots)
    encoder = CanonicalEncoder(ctx)
    lin = SlotLinalg(encoder, ev)
    r = np.random.default_rng(0xD1A6)
    matrix = r.standard_normal((dim, dim))
    coeffs = [0.5, -1.0, 0.25, 0.125]

    # Scales follow the benchmark harness's shallow-basis choices: the
    # scale stack Delta^(bs*gs) must clear Q at L=4.
    plans = [
        ("matvec", lin.compile_matvec(matrix, input_scale=2.0**30)),
        (
            "poly_eval",
            lin.compile_poly_eval(coeffs, input_scale=2.0**24),
        ),
    ]

    tracer = CircuitTracer(ev)
    x = tracer.input("x", scale=2.0**30)
    rotated = tracer.rotate_hoisted(x, [1, 2, 3])
    plans.append(
        (
            "hoisted_rotations",
            tracer.compile(
                tracer.add(tracer.add(rotated[1], rotated[2]), rotated[3])
            ),
        )
    )

    # The benchmark times this composite at 2^12; the checker proves
    # that shape exhausts the noise budget at its final multiply (the
    # L=4 basis leaves no room for an intermediate rescale), so the
    # gated variant runs one scale rung lower where the budget clears.
    tracer2 = CircuitTracer(ev)
    traced_lin = SlotLinalg(encoder, tracer2)
    y = tracer2.input("x", scale=2.0**10)
    composite = tracer2.compile(
        tracer2.rescale(
            traced_lin.poly_eval(
                traced_lin.matvec_naive(y, matrix), coeffs
            )
        )
    )
    plans.append(("matvec_poly_eval_rescale", composite))
    return plans


def run_circuits(n: int, methods, verbose=False) -> int:
    failures = 0
    for method in methods:
        for name, plan in _bench_plans(n, method):
            report = plan.analyze()
            status = "ok" if report.ok else "REJECTED"
            print(
                f"[level-2] N={n} {method:<10} {name:<26} {status}: "
                f"{len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s), "
                f"{report.num_steps} step(s)"
            )
            for d in report.errors:
                print(f"    {d}")
            if verbose:
                for d in report.warnings:
                    print(f"    {d}")
            if not report.ok:
                failures += 1
    return failures


def _load_test_circuit():
    # src/repro/analysis/__main__.py -> repo root is parents[3]
    path = Path(__file__).resolve().parents[3] / "tests" / "test_circuit.py"
    if not path.exists():
        return None
    spec = importlib.util.spec_from_file_location("_tc_dags", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules["_tc_dags"] = mod
    spec.loader.exec_module(mod)
    return mod


def run_dags(seeds, method: str, strict: bool, verbose=False) -> int:
    tc = _load_test_circuit()
    if tc is None:
        print("[dags] tests/test_circuit.py not found; skipping")
        return 0
    failures = 0
    n = 1024
    ctx, _, ev = tc._setup(n, method)
    pts = tc._plaintexts(n, method)
    for seed in seeds:
        ops, (o1, o2) = tc._gen_ops(seed, ctx, len(pts))
        tracer = tc.CircuitTracer(ev)
        traced = tc._interpret(
            tracer,
            ops,
            tracer.input("x", scale=tc.SCALE),
            tracer.input("y", scale=tc.SCALE),
            pts,
        )
        plan = tracer.compile({"a": traced[o1], "b": traced[o2]})
        report = plan.analyze()
        print(
            f"[dags]    N={n} {method} seed={seed}: "
            f"{len(report.errors)} error(s), "
            f"{len(report.warnings)} warning(s), "
            f"{report.num_steps} step(s)"
        )
        for d in report.errors:
            print(f"    {d}")
        if verbose:
            for d in report.warnings:
                print(f"    {d}")
        if strict and not report.ok:
            failures += 1
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static overflow & noise-budget analyzer",
    )
    ap.add_argument(
        "--ring-degrees", type=int, nargs="+", default=[1024, 4096]
    )
    ap.add_argument("--levels", type=int, nargs="+", default=[4, 12])
    ap.add_argument("--methods", nargs="+", default=list(METHODS))
    ap.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2, 4, 7, 9]
    )
    ap.add_argument("--families-only", action="store_true")
    ap.add_argument("--skip-circuits", action="store_true")
    ap.add_argument("--skip-dags", action="store_true")
    ap.add_argument(
        "--strict-dags",
        action="store_true",
        help="gate on random-DAG errors too (they abuse scales on "
        "purpose, so this is off by default)",
    )
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    failures = run_families(
        args.ring_degrees, args.levels, args.methods, args.verbose
    )
    if not args.families_only:
        if not args.skip_circuits:
            failures += run_circuits(1024, args.methods, args.verbose)
        if not args.skip_dags:
            failures += run_dags(
                args.seeds, "smr", args.strict_dags, args.verbose
            )
    if failures:
        print(f"analysis gate: {failures} failing item(s)")
        return 1
    print("analysis gate: all certificates proved, all plans accepted")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
