"""Static overflow & noise-budget analysis for the kernel stack.

Two abstract-interpretation levels plus a runtime sanitizer:

* **Level 1 — kernel range analysis** (:mod:`repro.analysis.ranges`):
  exact-interval dataflow over the reducer algebra and the batched NTT
  stage kernels, producing an ahead-of-time
  :class:`~repro.analysis.ranges.KernelCertificate` (cached on
  :class:`~repro.poly.rns_poly.PolyContext` via ``range_certificate()``)
  that proves uint32/uint64 non-overflow and the 2q-lazy invariant for a
  parameter family — or pinpoints the first violating op.
* **Level 2 — plan checking** (:mod:`repro.analysis.plan_check`):
  a static pass over traced :class:`~repro.scheme._circuit.CircuitPlan`
  DAGs propagating level/scale/noise-budget lattices per node; flags
  budget exhaustion and scale overflow as errors, and scale drift, dead
  Galois hoists, redundant NTT round trips and level-wasting rescale
  placement as warnings — before anything executes.
* **Sanitizer mode** (:mod:`repro.analysis.sanitizer`):
  ``REPRO_CHECKED=1`` / ``PolyContext(checked=True)`` instruments the
  real kernels to assert the statically derived per-stage bounds at
  runtime, UBSan-style.

``check_plan`` / ``PlanReport`` are exported lazily because the plan
checker imports the scheme layer, which itself imports this package's
sanitizer — the eager names below only depend on numpy and the errors
module.
"""

from __future__ import annotations

from repro.analysis.intervals import Diagnostic, Interval, Obligation
from repro.analysis.ranges import (
    KernelCertificate,
    analyze_accumulation,
    analyze_conversion,
    analyze_shoup_precompute,
    certify_kernels,
    safe_headroom,
)
from repro.analysis.sanitizer import checked_mode

__all__ = [
    "Diagnostic",
    "Interval",
    "KernelCertificate",
    "Obligation",
    "PlanReport",
    "analyze_accumulation",
    "analyze_conversion",
    "analyze_shoup_precompute",
    "certify_kernels",
    "check_plan",
    "checked_mode",
    "safe_headroom",
]


def __getattr__(name: str):
    if name in ("check_plan", "PlanReport"):
        from repro.analysis import plan_check

        return getattr(plan_check, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
