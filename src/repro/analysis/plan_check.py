"""Level-2 static checker: lattice propagation over compiled circuit plans.

:func:`check_plan` walks a :class:`~repro.scheme._circuit.CircuitPlan`'s
step list *without executing it*, propagating a per-register abstract
state — live level, scale, and the heuristic ``log2 |noise|`` estimate —
using the **same float formulas, in the same order**, as the plan
executor (:meth:`CircuitPlan._run_step` / :meth:`_apply_rescales`).
The noise/scale prediction is therefore bit-for-bit the value
``plan.run`` would tag onto each ciphertext; the test suite pins that
identity, which is what makes the static verdicts trustworthy.

On top of the faithful propagation the checker flags:

Errors (``report.ok`` is False; the plan should not be run):

* ``budget-exhausted`` — predicted noise reaches ``log2 Q_l - 1``: the
  decrypted message is statically known to be garbage.  Data-independent
  (the noise heuristic depends only on scales and circuit shape), so
  this verdict needs no inputs.
* ``scale-mismatch`` — add/sub/add_plain operands whose scales differ
  beyond the evaluator's ``SCALE_RTOL``; the eager path would have
  raised :class:`~repro.errors.ScaleMismatchError` at trace time, so
  this only fires on hand-built or corrupted step lists — including the
  add that a drifted rescale chain eventually feeds.
* ``key-level-mismatch`` — a multiply/galois step whose switching key
  was generated for a different limb basis than the step's level; the
  executor would raise mid-run, the checker names it up front.
* ``mac-overflow`` — a fused MAC with more terms than the reduced-
  strategy accumulator headroom at that level.
* ``invalid-step`` / ``level-mismatch`` — malformed register references
  or operand levels; robustness against hand-assembled plans.

Warnings (suspicious but not statically fatal):

* ``scale-overflow`` — scale exceeds the level modulus.  Any slot of
  magnitude >= 1 wraps; kept a warning because the message payload is
  data the checker cannot see.
* ``scale-underflow`` — scale dropped below 1: every slot's integer
  image rounds to nothing; almost always an over-rescaled circuit.
* ``scale-drift`` — a rescale chain lands more than
  ``drift_warn_bits`` away from the plan's working scale (the rescale
  cycle keeps primes within ~1 bit of the scale rung, so persistent
  drift means the prime schedule and the scale schedule disagree).
* ``wasteful-rescale`` — a rescale applied to a value that has seen no
  scale-raising op (multiply / multiply_plain / mac) since the previous
  rescale or input: the limb drop buys nothing and costs a level.
* ``dead-hoist`` — a hoisted ModUp tensor no Galois step consumes.
* ``redundant-ntt-roundtrip`` — a step materializes coefficient-domain
  components although every consumer accepts (and will re-transform to)
  the NTT domain; mirrors the planner's ``_keeps_ntt`` rule, so
  planner-produced plans never trip it — firing means the schedule
  pays an inverse/forward transform pair for nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.intervals import UINT64_MAX, Diagnostic
from repro.errors import StaticAnalysisError

#: step kinds that accept an NTT-domain operand without forcing an
#: inverse transform (mirror of the planner's _NTT_OK_CONSUMERS)
_NTT_OK = frozenset({"add", "sub", "negate", "multiply", "multiply_plain"})

#: step kinds that raise the scale (a following rescale is "earned")
_SCALE_RAISING = frozenset({"multiply", "multiply_plain", "mac"})


def _combine_bits(a: float, b: float) -> float:
    """``log2(2^a + 2^b)`` — identical to the evaluator's helper."""
    hi, lo = (a, b) if a >= b else (b, a)
    return hi + math.log2(1.0 + 2.0 ** (lo - hi))


@dataclass(frozen=True)
class NodeState:
    """Abstract state of one plan register after its producing step."""

    level: int
    scale: float
    noise_bits: float
    #: ``log2 Q_level - 1 - noise_bits`` — the remaining noise budget
    budget_bits: float
    #: producing step index + label, for diagnostics
    step: int = 0
    label: str = ""
    #: a scale-raising op happened since the last rescale/input
    raised: bool = field(default=False, compare=False)
    #: downstream of a node that already reported budget exhaustion
    exhausted: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class PlanReport:
    """Outcome of one :func:`check_plan` pass."""

    num_steps: int
    errors: tuple[Diagnostic, ...]
    warnings: tuple[Diagnostic, ...]
    #: abstract state per plan output name — scale/noise are bit-exact
    #: predictions of what ``plan.run`` will tag onto the ciphertexts
    output_states: dict[str, NodeState]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        """Raise :class:`StaticAnalysisError` naming the first error."""
        if self.errors:
            first = self.errors[0]
            more = len(self.errors) - 1
            suffix = f" (+{more} more)" if more else ""
            raise StaticAnalysisError(f"plan rejected: {first}{suffix}")

    def describe(self) -> str:
        """Human-readable report: verdict, then one line per finding."""
        lines = [
            f"plan check: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) over {self.num_steps} step(s)"
        ]
        lines.extend(str(d) for d in self.errors)
        lines.extend(str(d) for d in self.warnings)
        for name, st in sorted(self.output_states.items()):
            lines.append(
                f"output {name!r}: level {st.level}, "
                f"scale 2^{math.log2(st.scale):.3f}, "
                f"noise {st.noise_bits:.2f} bits, "
                f"budget {st.budget_bits:.2f} bits"
            )
        return "\n".join(lines)


def _level_chain(ctx) -> dict[int, tuple[int, ...]]:
    """``{level: primes}`` for every level reachable by dropping limbs."""
    chain = {}
    c = ctx
    while True:
        chain[c.num_limbs] = tuple(c.primes)
        if c.num_limbs == 1:
            break
        c = c.drop_last()
    return chain


class _Checker:
    def __init__(self, plan, drift_warn_bits: float):
        self.plan = plan
        self.drift = float(drift_warn_bits)
        self.chain = _level_chain(plan.ctx)
        self.log_q = {
            lvl: sum(math.log2(q) for q in primes)
            for lvl, primes in self.chain.items()
        }
        n = plan.ctx.ring_degree
        self.half_n = 0.5 * math.log2(n)
        self.fresh = math.log2(8.0 * plan._sigma * math.sqrt(2.0 * n))
        self.errors: list[Diagnostic] = []
        self.warnings: list[Diagnostic] = []
        self.states: list[NodeState | None] = [None] * plan._n_slots
        self.working_scale = max(
            (scale for _, _, scale in plan._inputs), default=1.0
        )

    # -- reporting helpers -------------------------------------------------
    def _where(self, i, step) -> str:
        label = getattr(step, "label", "") or step.kind
        reg = f"->r{step.dst}" if step.dst >= 0 else ""
        return f"step {i} ({label}{reg})"

    def error(self, code, i, step, detail) -> None:
        self.errors.append(
            Diagnostic("error", code, self._where(i, step), detail)
        )

    def warn(self, code, i, step, detail) -> None:
        self.warnings.append(
            Diagnostic("warning", code, self._where(i, step), detail)
        )

    # -- state helpers -----------------------------------------------------
    def _src(self, i, step, slot) -> NodeState | None:
        if not (0 <= slot < len(self.states)) or self.states[slot] is None:
            self.error(
                "invalid-step", i, step,
                f"reads register r{slot} before any step defines it",
            )
            return None
        return self.states[slot]

    def _budget(self, level: int, noise: float) -> float:
        return self.log_q[level] - 1.0 - noise

    def _ks_bits(self, ksk) -> float:
        return self.plan._ks_bits(ksk)

    def _check_key(self, i, step, ksk, what) -> None:
        expected = self.chain.get(step.level)
        if tuple(ksk.base_primes) != expected:
            self.error(
                "key-level-mismatch", i, step,
                f"{what} key was generated for a "
                f"{len(ksk.base_primes)}-limb basis but the step runs at "
                f"level {step.level}; key switching there would fail",
            )

    def _check_scales(self, i, step, sa, sb, op) -> None:
        # Mirrors Evaluator._check_scales (SCALE_RTOL) without importing
        # the evaluator at module scope.
        if not math.isclose(sa, sb, rel_tol=1e-9):
            self.error(
                "scale-mismatch", i, step,
                f"{op} operands at scales 2^{math.log2(sa):.3f} and "
                f"2^{math.log2(sb):.3f}; the eager evaluator would refuse "
                "this pair — rescale/re-encode to a common scale",
            )

    def _finish(
        self, i, step, level, scale, noise, raised, src_exhausted
    ) -> None:
        """Apply fused rescales (executor-identical) and store the state."""
        if step.rescales:
            scale_before = scale
            for _ in range(step.rescales):
                q_last = self.chain[level][-1]
                noise = max(noise - math.log2(q_last), self.half_n + 1.0)
                scale = scale / q_last
                level -= 1
            self._rescale_quality(
                i, step, scale_before, scale, raised
            )
            raised = False
        budget = self._budget(level, noise)
        exhausted = src_exhausted
        if budget <= 0.0 and not exhausted:
            self.error(
                "budget-exhausted", i, step,
                f"predicted noise {noise:.2f} bits >= "
                f"log2(Q_{level}) - 1 = {self.log_q[level] - 1.0:.2f}: "
                "the result cannot decrypt correctly",
            )
            exhausted = True
        if (
            math.log2(scale) >= self.log_q[level]
            and not (src_exhausted and budget <= 0.0)
        ):
            self.warn(
                "scale-overflow", i, step,
                f"scale 2^{math.log2(scale):.1f} exceeds the level-"
                f"{level} modulus ({self.log_q[level]:.1f} bits): any "
                "slot of magnitude >= 1 wraps",
            )
        self.states[step.dst] = NodeState(
            level=level,
            scale=scale,
            noise_bits=noise,
            budget_bits=budget,
            step=i,
            label=getattr(step, "label", "") or step.kind,
            raised=raised,
            exhausted=exhausted,
        )

    def _rescale_quality(self, i, step, before, after, raised) -> None:
        """Drift / waste / underflow checks for one rescale chain."""
        if not raised:
            self.warn(
                "wasteful-rescale", i, step,
                "rescale applied to a value with no multiply since the "
                "previous rescale/input: drops a level for nothing",
            )
        if after < 1.0:
            self.warn(
                "scale-underflow", i, step,
                f"rescale leaves scale 2^{math.log2(after):.2f} < 1: "
                "the encoded image rounds away",
            )
        drift = abs(math.log2(after) - math.log2(self.working_scale))
        if drift > self.drift:
            self.warn(
                "scale-drift", i, step,
                f"rescale lands {drift:.2f} bits from the working scale "
                f"2^{math.log2(self.working_scale):.1f} (tolerance "
                f"{self.drift:.1f}): the prime schedule and scale "
                "schedule disagree",
            )

    # -- main walk ---------------------------------------------------------
    def run(self) -> PlanReport:
        plan = self.plan
        steps = plan._steps
        hoist_groups: dict[int, int] = {}  # gidx -> step index
        hoist_uses: dict[int, int] = {}
        consumers: dict[int, list] = {}
        for step in steps:
            for s in step.srcs:
                consumers.setdefault(s, []).append(step)

        for i, step in enumerate(steps):
            kind = step.kind
            if kind == "input":
                name, scale = step.payload
                self.states[step.dst] = NodeState(
                    level=step.level,
                    scale=scale,
                    noise_bits=self.fresh,
                    budget_bits=self._budget(step.level, self.fresh),
                    step=i,
                    label=getattr(step, "label", "") or f"input:{name}",
                )
            elif kind in ("add", "sub"):
                a = self._src(i, step, step.srcs[0])
                b = self._src(i, step, step.srcs[1])
                if a is None or b is None:
                    continue
                if a.level != b.level or a.level != step.level:
                    self.error(
                        "level-mismatch", i, step,
                        f"{kind} operands at levels {a.level} and "
                        f"{b.level} (step declares {step.level})",
                    )
                self._check_scales(i, step, a.scale, b.scale, kind)
                self._finish(
                    i, step, step.level, a.scale,
                    _combine_bits(a.noise_bits, b.noise_bits),
                    a.raised or b.raised,
                    a.exhausted or b.exhausted,
                )
            elif kind == "negate":
                ct = self._src(i, step, step.srcs[0])
                if ct is None:
                    continue
                self._finish(
                    i, step, step.level, ct.scale, ct.noise_bits,
                    ct.raised, ct.exhausted,
                )
            elif kind == "add_plain":
                ct = self._src(i, step, step.srcs[0])
                if ct is None:
                    continue
                pt = step.payload
                self._check_scales(i, step, ct.scale, pt.scale, kind)
                self._finish(
                    i, step, step.level, ct.scale, ct.noise_bits,
                    ct.raised, ct.exhausted,
                )
            elif kind == "multiply_plain":
                ct = self._src(i, step, step.srcs[0])
                if ct is None:
                    continue
                pt = step.payload[0]
                noise = ct.noise_bits + math.log2(pt.scale) + self.half_n
                self._finish(
                    i, step, step.level, ct.scale * pt.scale, noise,
                    True, ct.exhausted,
                )
            elif kind == "mac":
                pts = step.payload[0]
                cts = [self._src(i, step, s) for s in step.srcs]
                if any(ct is None for ct in cts):
                    continue
                self._check_mac_headroom(i, step, len(cts))
                noise = None
                for ct, pt in zip(cts, pts):
                    bits = (
                        ct.noise_bits + math.log2(pt.scale) + self.half_n
                    )
                    noise = (
                        bits if noise is None
                        else _combine_bits(noise, bits)
                    )
                self._finish(
                    i, step, step.level,
                    cts[0].scale * pts[0].scale, noise,
                    True, any(ct.exhausted for ct in cts),
                )
            elif kind == "multiply":
                a = self._src(i, step, step.srcs[0])
                b = self._src(i, step, step.srcs[1])
                if a is None or b is None:
                    continue
                if a.level != b.level or a.level != step.level:
                    self.error(
                        "level-mismatch", i, step,
                        f"multiply operands at levels {a.level} and "
                        f"{b.level} (step declares {step.level})",
                    )
                relin = step.payload[0]
                self._check_key(i, step, relin, "relinearization")
                noise = _combine_bits(
                    _combine_bits(
                        a.noise_bits + math.log2(b.scale),
                        b.noise_bits + math.log2(a.scale),
                    )
                    + self.half_n,
                    self._ks_bits(relin),
                )
                self._finish(
                    i, step, step.level, a.scale * b.scale, noise,
                    True, a.exhausted or b.exhausted,
                )
            elif kind == "hoist":
                gidx = step.payload[0]
                hoist_groups[gidx] = i
                hoist_uses.setdefault(gidx, 0)
                self._src(i, step, step.srcs[0])
            elif kind == "galois":
                ct = self._src(i, step, step.srcs[0])
                if ct is None:
                    continue
                ksk, gidx = step.payload[1], step.payload[3]
                hoist_uses[gidx] = hoist_uses.get(gidx, 0) + 1
                self._check_key(i, step, ksk, "Galois")
                noise = _combine_bits(ct.noise_bits, self._ks_bits(ksk))
                self._finish(
                    i, step, step.level, ct.scale, noise,
                    ct.raised, ct.exhausted,
                )
            elif kind == "rescale":
                ct = self._src(i, step, step.srcs[0])
                if ct is None:
                    continue
                if ct.level < 2:
                    self.error(
                        "level-mismatch", i, step,
                        f"rescale of a level-{ct.level} value: no limb "
                        "left to drop",
                    )
                    continue
                q_last = self.chain[ct.level][-1]
                noise = max(
                    ct.noise_bits - math.log2(q_last),
                    self.half_n + 1.0,
                )
                scale = ct.scale / q_last
                self._rescale_quality(
                    i, step, ct.scale, scale, ct.raised
                )
                budget = self._budget(ct.level - 1, noise)
                exhausted = ct.exhausted
                if budget <= 0.0 and not exhausted:
                    self.error(
                        "budget-exhausted", i, step,
                        f"predicted noise {noise:.2f} bits >= "
                        f"log2(Q_{ct.level - 1}) - 1 = "
                        f"{self.log_q[ct.level - 1] - 1.0:.2f}: the "
                        "result cannot decrypt correctly",
                    )
                    exhausted = True
                self.states[step.dst] = NodeState(
                    level=ct.level - 1,
                    scale=scale,
                    noise_bits=noise,
                    budget_bits=budget,
                    step=i,
                    label=getattr(step, "label", "") or "rescale",
                    raised=False,
                    exhausted=exhausted,
                )
            else:
                self.error(
                    "invalid-step", i, step, f"unknown step kind {kind!r}"
                )

            self._check_ntt_roundtrip(i, step, consumers)

        for gidx, at in hoist_groups.items():
            if not hoist_uses.get(gidx):
                step = steps[at]
                self.warn(
                    "dead-hoist", at, step,
                    f"hoisted ModUp tensor (group {gidx}) is never "
                    "consumed by a Galois step",
                )

        outputs = {}
        for name, slot in self.plan._outputs.items():
            st = self.states[slot]
            if st is not None:
                outputs[name] = st
        return PlanReport(
            num_steps=len(steps),
            errors=tuple(self.errors),
            warnings=tuple(self.warnings),
            output_states=outputs,
        )

    def _check_mac_headroom(self, i, step, terms) -> None:
        qmax = max(self.chain[step.level])
        capacity = UINT64_MAX // (2 * qmax - 1)
        if terms > capacity:
            self.error(
                "mac-overflow", i, step,
                f"{terms} MAC terms exceed the reduced-strategy "
                f"accumulator headroom of {capacity} at level "
                f"{step.level} (q_max={qmax})",
            )

    def _check_ntt_roundtrip(self, i, step, consumers) -> None:
        """Planner's _keeps_ntt rule, replayed as a lint."""
        if step.dst < 0 or step.emit_ntt or step.rescales:
            return
        if step.kind not in (
            "add", "sub", "negate", "multiply_plain", "mac"
        ):
            return
        if step.dst in self.plan._outputs.values():
            return
        users = consumers.get(step.dst, ())
        if users and all(u.kind in _NTT_OK for u in users):
            self.warn(
                "redundant-ntt-roundtrip", i, step,
                f"{step.kind} materializes coefficient-domain components "
                "although every consumer accepts the NTT domain: the "
                "schedule pays an inverse/forward transform pair for "
                "nothing",
            )


def check_plan(plan, *, drift_warn_bits: float = 2.0) -> PlanReport:
    """Statically analyze a compiled :class:`CircuitPlan`.

    Propagates (level, scale, noise) through the step list with the
    executor's exact formulas and reports budget exhaustion, scale
    pathologies, dead hoists and redundant transform round trips —
    see the module docstring for the full catalogue.  ``plan.analyze()``
    is sugar for this function.

    Args:
        plan: a compiled :class:`~repro.scheme._circuit.CircuitPlan`.
        drift_warn_bits: tolerated distance (bits) between a rescale
            chain's landing scale and the plan's working scale before a
            ``scale-drift`` warning fires.
    """
    return _Checker(plan, drift_warn_bits).run()
