"""Level-1 kernel range analysis: interval dataflow over the reducer algebra.

For a parameter family ``(primes, N, backend)`` this pass symbolically
propagates worst-case coefficient ranges through the batched NTT stage
kernels (:mod:`repro.poly.batch_ntt`), the reducer primitives
(``mullo32`` / ``mulhi32`` / ``mulmod`` / ``mulmod_cross``), the
branch-free ``min(s, s - q)`` folds, the ``exact_rescale`` constant
chain, and the :class:`~repro.poly.lazy.LazyAccumulator` accumulate/fold
discipline — and either *proves* uint32/uint64 non-overflow plus the
2q-lazy invariant, or reports the first violating op with the offending
range.

The proof structure is induction on a per-limb *stage invariant* rather
than fixpoint iteration: the analyzer establishes the entry base case
(inputs are range-checked canonical residues), then shows one
Cooley-Tukey stage body and one Gentleman-Sande stage body each map the
invariant to itself using the limb's *exact* precomputed constants
(Barrett's ``mu`` halves, Shoup companions, Montgomery ``-q^-1``).  The
transposed tail phase reuses the same per-limb constants as repeated
rows (:class:`~repro.poly.batch_ntt._KernelBase` builds ``cT`` via
``np.repeat``), so per-limb soundness covers both layouts.  Reducer
output ranges that interval arithmetic alone cannot reproduce (Barrett's
``[0, 3q)`` residual, Alg. 2's ``(-q, q)``) enter as named *axioms*
whose preconditions the analyzer discharges exactly — they are the
:data:`~repro.rns.reduction.REDUCER_CONTRACTS`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.intervals import (
    INT64_MAX,
    UINT32_MAX,
    UINT64_MAX,
    Diagnostic,
    Interval,
    Obligation,
    lazy_fold,
)
from repro.errors import ParameterError, StaticAnalysisError
from repro.rns.reduction import REDUCER_CONTRACTS


def safe_headroom(limit: int, bound: int, per_term: int) -> int:
    """Worst-case terms that still fit before ``bound`` exceeds ``limit``."""
    return max(0, limit - bound) // per_term


class _Prover:
    """Collects named proof obligations; a failed check becomes an error."""

    def __init__(self, where: str) -> None:
        self.where = where
        self.obligations: list[Obligation] = []
        self.diagnostics: list[Diagnostic] = []

    def check(self, name: str, cond: bool, detail: str = "") -> bool:
        ok = bool(cond)
        self.obligations.append(Obligation(f"{self.where}: {name}", ok, detail))
        if not ok:
            self.diagnostics.append(
                Diagnostic("error", name, self.where, detail)
            )
        return ok

    def fold(self, name: str, x: Interval, sub: int, carrier_hi: int) -> Interval:
        """Abstract ``min(s, s - sub)`` with its soundness obligation: the
        pre-fold value is non-negative and fits the carrier (the unsigned
        wrap-select is then exact for any such input).  Whether the folded
        range actually reaches its target is a separate, explicit
        ``within`` obligation at each use site — ``exact_rescale``'s
        32-bit Barrett residual legitimately needs two folds."""
        self.check(
            f"{name}-fits-carrier",
            0 <= x.lo and x.hi <= carrier_hi,
            f"pre-fold value in {x}, carrier max {carrier_hi}",
        )
        return lazy_fold(x, sub)


# -- per-backend stage-kernel transfer functions ----------------------------
#
# Each function takes one limb modulus q and a prover, walks the kernel's
# _mul / _bfly / _gs op sequences on intervals, discharges every carrier
# and axiom obligation, and returns the inclusive per-limb stage-state
# bound it proved invariant (q - 1 canonical, 2q - 1 Barrett-lazy).


def _shoup_mul(q: int, p: _Prover, v: Interval) -> Interval:
    w = Interval(0, q - 1)  # canonical twiddles; precompute() enforced w < q
    w_sh = Interval(0, ((q - 1) << 32) // q)  # exact companion maximum
    prod = v * w_sh
    p.check("mul-v*w'-fits-uint64", prod.fits("uint64"), f"v*w' in {prod}")
    hi = prod >> 32
    p.check("mul-hi-fits-uint32", hi.fits("uint32"), f"mulhi32 in {hi}")
    # Shoup's lemma: a < 2^32 and w in [0, q) => (a*w - hi*q) mod 2^32
    # lands in [0, 2q); the wrapping uint32 subtraction is exact mod 2^32.
    p.check(
        "mul-lemma-precondition",
        v.hi <= UINT32_MAX and w.hi <= q - 1,
        f"a in {v}, w in {w}",
    )
    r = Interval(0, 2 * q - 2)
    return p.fold("mul", r, q, UINT32_MAX)


def _montgomery_mul(q: int, p: _Prover, v: Interval) -> Interval:
    tw = Interval(0, q - 1)  # Montgomery-form twiddles, strict-reduced
    prod = v * tw
    p.check("mul-product-fits-uint64", prod.fits("uint64"), f"v*tw in {prod}")
    m = Interval(0, UINT32_MAX)  # mullo32 wraps by construction
    mq = m * Interval.point(q)
    total = prod + mq
    p.check(
        "mul-p-plus-mq-fits-uint64",
        total.fits("uint64"),
        f"p + m*q in {total}",
    )
    # No axiom needed: the exact interval already bounds t below 2q.
    t = total >> 32
    p.check("mul-t-below-2q", t.hi <= 2 * q - 1, f"t in {t}")
    p.check("mul-t-fits-uint32", t.fits("uint32"), f"t in {t}")
    return p.fold("mul", t, q, UINT32_MAX)


def _smr_mul(q: int, p: _Prover, v: Interval) -> Interval:
    tw = Interval(-(q - 1), q - 1)  # signed Montgomery-form twiddles
    prod = v * tw
    p.check("mul-product-fits-int64", prod.fits("int64"), f"v*tw in {prod}")
    # Alg. 2's precondition |x| < q * 2^31, discharged exactly.
    p.check(
        "mul-alg2-precondition",
        prod.abs_max() <= q * 2**31 - 1,
        f"|v*tw| <= {prod.abs_max()} vs q*2^31 = {q * 2**31}",
    )
    z = Interval(-(2**31), 2**31 - 1)  # signed mullo32 wraps by construction
    zq = z * Interval.point(q)
    p.check("mul-z*q-fits-int64", zq.fits("int64"), f"z*q in {zq}")
    # Alg. 2's axiom: t = x_hi - mulhi32(z, q) lands in (-q, q).
    t = Interval(-(q - 1), q - 1)
    folded = t + Interval(0, q)  # branch-free sign mask adds q when t < 0
    canon = Interval(0, q - 1)
    p.check(
        "mul-canonicalized",
        canon.hi <= UINT32_MAX and t.lo + q >= 0 and t.hi <= q - 1,
        f"t in {t} folds into {canon}",
    )
    del folded
    return canon


def _barrett_mul(q: int, p: _Prover, v: Interval) -> Interval:
    tw = Interval(0, q - 1)
    x = v * tw
    p.check("mul-product-fits-uint64", x.fits("uint64"), f"v*tw in {x}")
    mu = (1 << 64) // q  # the limb's exact Barrett constant
    mu_hi, mu_lo = mu >> 32, mu & UINT32_MAX
    x_hi = x >> 32
    x_lo = Interval(0, min(x.hi, UINT32_MAX))
    t1 = x_lo * Interval.point(mu_hi)
    p.check("mul-xlo*muhi-fits-uint64", t1.fits("uint64"), f"in {t1}")
    t2 = x_lo * Interval.point(mu_lo)
    p.check("mul-xlo*mulo-fits-uint64", t2.fits("uint64"), f"in {t2}")
    t3 = x_hi * Interval.point(mu_lo)
    p.check("mul-xhi*mulo-fits-uint64", t3.fits("uint64"), f"in {t3}")
    mid = t1 + (t2 >> 32) + t3
    p.check("mul-mid-fits-uint64", mid.fits("uint64"), f"mid in {mid}")
    t4 = x_hi * Interval.point(mu_hi)
    q_hat = t4 + (mid >> 32)
    p.check("mul-qhat-fits-uint64", q_hat.fits("uint64"), f"q_hat in {q_hat}")
    qq = q_hat * Interval.point(q)
    p.check("mul-qhat*q-fits-uint64", qq.fits("uint64"), f"q_hat*q in {qq}")
    # Barrett's axiom (REDUCER_CONTRACTS["barrett"]): for any x < 2^64 the
    # residual r = x - q_hat*q of this exact half-word chain lies in
    # [0, 3q).  Precondition x < 2^64 was discharged above.
    r = Interval(0, 3 * q - 1)
    return p.fold("mul", r, 2 * q, UINT64_MAX)


def _canon32_stage(q: int, p: _Prover, mul) -> int:
    state = Interval(0, q - 1)  # entry base case: range-checked canonical
    p.check("state-fits-uint32", state.fits("uint32"), f"state in {state}")
    # CT butterfly: (u, t) -> (u + t, u + q - t), both folded once.
    t = mul(q, p, state)
    p.check("ct-twiddle-product-canonical", t.within(0, q - 1), f"t in {t}")
    yu = p.fold("ct-sum", state + t, q, UINT32_MAX)
    yv = p.fold("ct-diff", state + Interval.point(q) - t, q, UINT32_MAX)
    new_state = yu.union(yv)
    p.check(
        "ct-invariant-preserved",
        new_state.within(0, q - 1),
        f"stage output in {new_state}",
    )
    # GS butterfly: (u, v) -> (u + v, (u - v) * w), folds then a multiply.
    gu = p.fold("gs-sum", state + state, q, UINT32_MAX)
    diff = p.fold("gs-diff", state + Interval.point(q) - state, q, UINT32_MAX)
    gv = mul(q, p, diff)
    gs_state = gu.union(gv)
    p.check(
        "gs-invariant-preserved",
        gs_state.within(0, q - 1),
        f"stage output in {gs_state}",
    )
    # Final n^-1 scale is one more _mul over invariant state: covered by
    # the CT twiddle-product obligation above.  Exit is a plain copy.
    return q - 1


def _barrett_stage(q: int, p: _Prover) -> int:
    inv = 2 * q - 1  # the 2q-lazy Harvey invariant, inclusive
    state = Interval(0, inv)
    p.check(
        "enter-below-invariant",
        Interval(0, q - 1).within(0, inv),
        "entry residues are canonical",
    )
    t = _barrett_mul(q, p, state)
    p.check("ct-twiddle-product-lazy", t.within(0, inv), f"t in {t}")
    yu = p.fold("ct-sum", state + t, 2 * q, UINT64_MAX)
    yv = p.fold("ct-diff", state + Interval.point(2 * q) - t, 2 * q, UINT64_MAX)
    new_state = yu.union(yv)
    p.check(
        "ct-invariant-preserved",
        new_state.within(0, inv),
        f"stage output in {new_state}",
    )
    gu = p.fold("gs-sum", state + state, 2 * q, UINT64_MAX)
    diff = p.fold(
        "gs-diff", state + Interval.point(2 * q) - state, 2 * q, UINT64_MAX
    )
    gv = _barrett_mul(q, p, diff)
    gs_state = gu.union(gv)
    p.check(
        "gs-invariant-preserved",
        gs_state.within(0, inv),
        f"stage output in {gs_state}",
    )
    # Exit folds [0, 2q) -> [0, q) with one subtract of q.
    exit_out = p.fold("exit", state, q, UINT64_MAX)
    p.check("exit-canonical", exit_out.within(0, q - 1), f"exit in {exit_out}")
    return inv


def _analyze_limb(method: str, q: int, p: _Prover) -> int:
    p.check("modulus-within-31-bits", 2 < q < 2**31, f"q = {q}")
    if method == "barrett":
        return _barrett_stage(q, p)
    mul = {
        "shoup": _shoup_mul,
        "montgomery": _montgomery_mul,
        "smr": _smr_mul,
    }[method]
    return _canon32_stage(q, p, mul)


def _analyze_rescale_limb(q: int, q_last: int, p: _Prover) -> None:
    """The ``exact_rescale`` constant chain for one surviving limb."""
    # Centered lift of the dropped limb: (-(q_last - q_last//2 - 1), q_last//2].
    centered = Interval(q_last // 2 - q_last + 1, q_last // 2)
    t0 = Interval.point(q_last) - centered
    p.check("lift-fits-uint32", t0.fits("uint32"), f"q_last - centered in {t0}")
    mu32 = (1 << 32) // q  # the limb's exact 32-bit Barrett constant
    prod = t0 * Interval.point(mu32)
    p.check("lift*mu32-fits-uint64", prod.fits("uint64"), f"in {prod}")
    hi_q = (prod >> 32) * Interval.point(q)
    p.check("hi*q-fits-uint64", hi_q.fits("uint64"), f"in {hi_q}")
    # 32-bit Barrett axiom: for t0 < 2^32 the residual lies in [0, 3q).
    r = Interval(0, 3 * q - 1)
    r = p.fold("barrett32-first", r, q, UINT64_MAX)
    r = p.fold("barrett32-second", r, q, UINT64_MAX)
    p.check("barrett32-canonical", r.within(0, q - 1), f"in {r}")
    # + corr (= -q_last mod q), one fold; + the surviving limb, one fold.
    r = p.fold("corr-sum", r + Interval(0, q - 1), q, UINT64_MAX)
    r = p.fold("limb-sum", r + Interval(0, q - 1), q, UINT64_MAX)
    p.check("diff-canonical", r.within(0, q - 1), f"in {r}")
    # Shoup multiply by the cached q_last^-1 (a constant < q).
    out = _shoup_mul(q, p, r)
    p.check("rescale-output-canonical", out.within(0, q - 1), f"in {out}")


@dataclass(frozen=True)
class KernelCertificate:
    """Ahead-of-time non-overflow certificate for one parameter family.

    ``stage_bounds[i]`` is the proved inclusive per-stage state bound of
    limb ``i`` in the batched NTT (``q_i - 1`` for the canonical-uint32
    kernels, ``2*q_i - 1`` for Barrett's 2q-lazy kernel) — the very
    bounds checked-mode execution asserts at runtime.  ``obligations``
    lists every discharged (or failed) proof step; ``diagnostics`` holds
    the failures, first violating op first.
    """

    ring_degree: int
    primes: tuple[int, ...]
    method: str
    stage_bounds: tuple[int, ...]
    reduced_headroom: int
    raw_headroom: int | None
    obligations: tuple[Obligation, ...]
    diagnostics: tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def raise_if_failed(self) -> KernelCertificate:
        if self.diagnostics:
            first = self.diagnostics[0]
            raise StaticAnalysisError(
                f"range analysis failed for method={self.method!r} "
                f"N={self.ring_degree} L={len(self.primes)}: {first}"
                + (
                    f" (+{len(self.diagnostics) - 1} more)"
                    if len(self.diagnostics) > 1
                    else ""
                )
            )
        return self

    def describe(self) -> str:
        status = "proved" if self.ok else "FAILED"
        lines = [
            f"{self.method} N={self.ring_degree} L={len(self.primes)}: "
            f"{status} ({sum(o.proved for o in self.obligations)}/"
            f"{len(self.obligations)} obligations)",
            f"  stage bounds: {list(self.stage_bounds)}",
            f"  reduced-strategy headroom: {self.reduced_headroom} terms",
        ]
        if self.raw_headroom is not None:
            lines.append(
                f"  raw-strategy headroom: {self.raw_headroom} terms"
            )
        lines.extend(f"  {d}" for d in self.diagnostics)
        return "\n".join(lines)


def certify_kernels(
    ring_degree: int, primes, method: str
) -> KernelCertificate:
    """Prove (or refute) non-overflow for one ``(N, primes, backend)``.

    Walks every limb through the backend's stage-kernel op sequence on
    exact intervals, the ``exact_rescale`` chain for every surviving
    limb, and the lazy-accumulation headroom bounds.  Never raises on an
    unprovable family — the failures come back as the certificate's
    ``diagnostics`` (``raise_if_failed`` converts them).
    """
    qs = [int(q) for q in primes]
    if method not in REDUCER_CONTRACTS:
        raise ParameterError(f"unknown reduction method {method!r}")
    if not qs:
        raise ParameterError("range analysis needs at least one limb prime")
    obligations: list[Obligation] = []
    diagnostics: list[Diagnostic] = []
    stage_bounds: list[int] = []
    for i, q in enumerate(qs):
        p = _Prover(f"{method} NTT limb {i} (q={q})")
        stage_bounds.append(_analyze_limb(method, q, p))
        obligations.extend(p.obligations)
        diagnostics.extend(p.diagnostics)
    if len(qs) >= 2:
        q_last = qs[-1]
        for i, q in enumerate(qs[:-1]):
            p = _Prover(f"exact_rescale limb {i} (q={q}, q_last={q_last})")
            _analyze_rescale_limb(q, q_last, p)
            obligations.extend(p.obligations)
            diagnostics.extend(p.diagnostics)
    # Lazy-accumulation headroom (§4.2): how many worst-case terms a fresh
    # accumulator admits before AccumulatorOverflowError must fire.
    contract = REDUCER_CONTRACTS[method]
    q_max = max(qs)
    if contract.signed:
        limit, per_term = INT64_MAX, q_max - 1
    else:
        limit, per_term = UINT64_MAX, 2 * q_max - 1
    reduced_headroom = limit // per_term
    p = _Prover(f"{method} lazy accumulation (q_max={q_max})")
    p.check(
        "reduced-headroom-exceeds-2^32",
        reduced_headroom >= 2**32,
        f"{reduced_headroom} worst-case terms fit a fresh accumulator",
    )
    raw_headroom = None
    if method == "smr":
        raw_headroom = (q_max * 2**31 - 1) // ((q_max - 1) ** 2)
        p.check(
            "raw-headroom-at-least-one-term",
            raw_headroom >= 1,
            f"binding limb q={q_max} admits {raw_headroom} raw products",
        )
    obligations.extend(p.obligations)
    diagnostics.extend(p.diagnostics)
    return KernelCertificate(
        ring_degree=int(ring_degree),
        primes=tuple(qs),
        method=method,
        stage_bounds=tuple(stage_bounds),
        reduced_headroom=reduced_headroom,
        raw_headroom=raw_headroom,
        obligations=tuple(obligations),
        diagnostics=tuple(diagnostics),
    )


# -- fixture entry points (the historical-bug shapes as analyzer inputs) ----


def analyze_shoup_precompute(q: int, w) -> list[Diagnostic]:
    """Check Shoup companion precomputation for constant(s) ``w`` mod ``q``.

    The PR-1 bug shape: a ``w >= q`` precompute yields a companion wider
    than 32 bits that ``mulmod_const`` silently truncates, producing
    wrong residues with no error.  Detected here as
    ``shoup-companion-overflow`` before any companion is built.
    """
    q = int(q)
    diags: list[Diagnostic] = []
    if not 2 < q < 2**31:
        diags.append(
            Diagnostic(
                "error", "modulus-out-of-range", f"q={q}",
                "Shoup modulus must lie in (2, 2^31)",
            )
        )
        return diags
    ws = w if isinstance(w, (list, tuple)) else [w]
    for i, wi in enumerate(ws):
        wi = int(wi)
        if 0 <= wi < q:
            continue
        companion = (wi << 32) // q if wi >= 0 else -((-wi << 32) // q)
        diags.append(
            Diagnostic(
                "error",
                "shoup-companion-overflow",
                f"w[{i}]={wi} (q={q})",
                f"w' = floor(w*2^32/q) = {companion} needs "
                f"{abs(companion).bit_length()} bits > 32; mulmod_const "
                "would truncate it and return wrong residues silently "
                f"(w must lie in [0, {q}))",
            )
        )
    return diags


def analyze_accumulation(
    moduli,
    *,
    strategy: str = "reduced",
    signed: bool | None = None,
    terms=(),
) -> list[Diagnostic]:
    """Abstractly replay a LazyAccumulator accumulate/fold chain.

    ``terms`` is a sequence of ``("product",)`` entries (one worst-case
    reduced/raw product) and ``("value", lo, hi)`` entries (pre-reduced
    values with a declared range).  Detects the PR-1/2 bug shapes:

    * ``unsigned-wrap`` — a possibly-negative value entering an unsigned
      accumulator, where the uint64 cast would wrap silently;
    * ``raw-bound-divergence`` — a raw-strategy term count that fits the
      most permissive (smallest-q) limb row's own bound but overflows
      the binding (largest-q) row, the per-row vs worst-case-limb trap;
    * ``accumulator-overflow`` — a genuine overflow of every row, with
      the statically safe headroom in the diagnostic.
    """
    if strategy not in ("reduced", "raw"):
        raise ParameterError(f"unknown lazy strategy {strategy!r}")
    qs = sorted(
        int(q) for q in (moduli if isinstance(moduli, (list, tuple)) else [moduli])
    )
    if not qs:
        raise ParameterError("accumulation analysis needs >= 1 modulus")
    q_min, q_max = qs[0], qs[-1]
    if signed is None:
        signed = strategy == "raw"
    if strategy == "raw":
        limit, per_term = q_max * 2**31 - 1, (q_max - 1) ** 2
        permissive_limit = q_min * 2**31 - 1
        permissive_per_term = (q_min - 1) ** 2
    elif signed:
        limit, per_term = INT64_MAX, q_max - 1
        permissive_limit, permissive_per_term = limit, per_term
    else:
        limit, per_term = UINT64_MAX, 2 * q_max - 1
        permissive_limit, permissive_per_term = limit, per_term
    diags: list[Diagnostic] = []
    bound = permissive_bound = 0
    for k, term in enumerate(terms):
        kind = term[0]
        if kind == "value":
            if strategy == "raw":
                diags.append(
                    Diagnostic(
                        "error", "raw-value-term", f"term {k}",
                        "raw accumulators take products only; pre-reduced "
                        "values belong to the 'reduced' strategy",
                    )
                )
                break
            lo, hi = int(term[1]), int(term[2])
            if lo < 0 and not signed:
                diags.append(
                    Diagnostic(
                        "error", "unsigned-wrap", f"term {k}",
                        f"value range [{lo}, {hi}] admits negatives but the "
                        "accumulator is unsigned: the uint64 cast would "
                        "wrap them into huge residues silently",
                    )
                )
                break
            amount = p_amount = max(abs(lo), abs(hi))
        else:
            amount, p_amount = per_term, permissive_per_term
        if bound + amount > limit:
            headroom = safe_headroom(limit, bound, per_term)
            if (
                strategy == "raw"
                and permissive_bound + p_amount <= permissive_limit
            ):
                diags.append(
                    Diagnostic(
                        "error", "raw-bound-divergence", f"term {k}",
                        f"term {k} fits the most permissive row "
                        f"(q={q_min}: bound {permissive_bound + p_amount} <= "
                        f"{permissive_limit}) but overflows the binding "
                        f"largest-q row (q={q_max}: bound {bound + amount} > "
                        f"{limit}); per-row tracking would miss this — "
                        f"safe headroom was {headroom} term(s)",
                    )
                )
            else:
                diags.append(
                    Diagnostic(
                        "error", "accumulator-overflow", f"term {k}",
                        f"bound {bound + amount} > {limit} (q={q_max}, "
                        f"strategy {strategy!r}); statically safe headroom "
                        f"at the prior bound was {headroom} term(s)",
                    )
                )
            break
        bound += amount
        permissive_bound += p_amount
    return diags


def analyze_conversion(src_primes, dst_primes) -> list[Diagnostic]:
    """Range obligations of one fast-basis-conversion pass.

    Checks the ``mulmod_cross`` product tensor fits uint64 per output
    row, and that the deferred row-sum accumulation (``L_in`` lazy terms
    per lane plus the v-correction term) stays below the uint64 fold
    bound :class:`~repro.poly.basis_conv.BasisConverter` charges.
    """
    src = [int(q) for q in src_primes]
    dst = [int(q) for q in dst_primes]
    if not src or not dst:
        raise ParameterError("conversion analysis needs non-empty bases")
    diags: list[Diagnostic] = []
    x_max = max(src) - 1  # scale step outputs canonical source residues
    for j, q in enumerate(dst):
        p = _Prover(f"mulmod_cross row {j} (p={q})")
        _shoup_mul(q, p, Interval(0, x_max))
        diags.extend(p.diagnostics)
    row_bound = len(src) * (2 * max(dst) - 1)
    total = row_bound + (2 * max(dst) - 1)  # + the v-correction term
    if total > UINT64_MAX:
        diags.append(
            Diagnostic(
                "error", "accumulator-overflow", "conversion row sum",
                f"L_in={len(src)} cross terms plus the v term bound the "
                f"lane sum by {total} > {UINT64_MAX}",
            )
        )
    return diags
