"""Checked-execution ("sanitizer") support for the kernel stack.

``REPRO_CHECKED=1`` (or ``PolyContext(checked=True)``) instruments the
real kernels to assert, UBSan-style, the per-stage bounds the Level-1
analyzer derives statically: every NTT stage checks its state against the
kernel's stage invariant, every lazy-accumulator fold checks the observed
magnitude against the tracked worst-case bound, and canonical-range
producers (basis conversion, ModDown, exact rescale) check their outputs
are genuinely canonical.  A violation raises
:class:`~repro.errors.SanitizerError` naming the kernel, stage, limb and
coefficient — so the analyzer and the implementation police each other.

The flag is read from the environment *at construction time* of each
kernel, so ``REPRO_CHECKED=1 pytest`` instruments everything without any
call-site changes; ``PolyContext(checked=...)`` overrides per context.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import SanitizerError

_FALSY = {"", "0", "false", "off", "no"}


def checked_mode(override: bool | None = None) -> bool:
    """Resolve the checked-execution flag.

    An explicit ``override`` wins; otherwise ``REPRO_CHECKED`` decides
    (any value except ``""``/``"0"``/``"false"``/``"off"``/``"no"``,
    case-insensitively, enables it).
    """
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_CHECKED", "").strip().lower() not in _FALSY


def assert_within(
    values: np.ndarray,
    upper,
    *,
    lower=0,
    kernel: str,
    stage: str,
) -> None:
    """Assert ``lower <= values <= upper`` elementwise (inclusive bounds).

    ``upper``/``lower`` broadcast against ``values`` (per-limb bound
    columns in the plain layout, repeated rows in the transposed layout).
    On violation raises :class:`SanitizerError` naming the kernel, the
    stage, and the first offending (limb, coefficient) with its value and
    bound — the runtime mirror of the analyzer's first-violation report.
    """
    bad = values > upper
    if lower is not None:
        bad |= values < np.asarray(lower, dtype=values.dtype)
    if not bad.any():
        return
    idx = np.unravel_index(int(np.argmax(bad)), values.shape)
    bound = np.broadcast_to(np.asarray(upper), values.shape)[idx]
    lo = (
        int(np.broadcast_to(np.asarray(lower), values.shape)[idx])
        if lower is not None
        else "-inf"
    )
    raise SanitizerError(
        f"checked mode: {kernel} {stage} produced {int(values[idx])} "
        f"outside [{lo}, {int(bound)}] at row {idx[0]}, "
        f"coefficient index {idx[1:] if len(idx) > 2 else idx[-1]}"
    )


def assert_fold_sound(
    acc: np.ndarray,
    bound: int,
    *,
    kernel: str,
    signed: bool,
) -> None:
    """Assert an accumulator's observed magnitude respects its tracked bound.

    Called just before a lazy fold: the worst-case bound the
    :class:`~repro.poly.lazy.LazyAccumulator` charged statically must
    dominate the real data, otherwise the static certificate and the
    runtime disagree — exactly the cross-check sanitizer mode exists for.
    """
    observed = int(np.abs(acc.astype(np.int64)).max()) if signed else int(acc.max())
    if observed <= bound:
        return
    flat = np.abs(acc.astype(np.int64)) if signed else acc
    idx = np.unravel_index(int(np.argmax(flat)), acc.shape)
    raise SanitizerError(
        f"checked mode: {kernel} accumulator holds |{int(acc[idx])}| > "
        f"tracked worst-case bound {bound} at limb {idx[0]}, "
        f"coefficient {idx[-1]} — static bound tracking is unsound here"
    )
