"""Exact integer interval domain for the kernel range analyzer.

The abstract domain is the classic closed-interval lattice over exact
Python integers: every abstract value is an inclusive ``[lo, hi]`` pair,
and every transfer function (add, sub, mul, shift) is exact — no widening
is ever needed because the analyzed kernels are loop-free per stage and
the stage loop is discharged by induction on a stage invariant, not by
fixpoint iteration.  Exactness matters: Barrett's ``mu`` constants sit
within a few ulps of carrier boundaries, and a conservative power-of-two
approximation would fail to prove real kernels safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

UINT32_MAX = 2**32 - 1
UINT64_MAX = 2**64 - 1
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

#: Carrier ranges the fit-checks prove values stay inside.
CARRIERS = {
    "uint32": (0, UINT32_MAX),
    "uint64": (0, UINT64_MAX),
    "int64": (INT64_MIN, INT64_MAX),
}


@dataclass(frozen=True)
class Interval:
    """Inclusive integer interval ``[lo, hi]`` with exact transfer ops."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @staticmethod
    def point(v: int) -> Interval:
        return Interval(v, v)

    def __add__(self, other: Interval | int) -> Interval:
        other = _coerce(other)
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: Interval | int) -> Interval:
        other = _coerce(other)
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: Interval | int) -> Interval:
        other = _coerce(other)
        corners = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval(min(corners), max(corners))

    def __neg__(self) -> Interval:
        return Interval(-self.hi, -self.lo)

    def __rshift__(self, bits: int) -> Interval:
        # Python's >> is an arithmetic (floor) shift on negative ints,
        # matching int64 behaviour; monotone, so endpoints suffice.
        return Interval(self.lo >> bits, self.hi >> bits)

    def union(self, other: Interval) -> Interval:
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def abs_max(self) -> int:
        return max(abs(self.lo), abs(self.hi))

    def within(self, lo: int, hi: int) -> bool:
        return lo <= self.lo and self.hi <= hi

    def fits(self, carrier: str) -> bool:
        """Does every value of the interval fit the named carrier type?"""
        lo, hi = CARRIERS[carrier]
        return self.within(lo, hi)

    def __str__(self) -> str:  # compact diagnostics: [0, 2^35.1]
        return f"[{self.lo}, {self.hi}]"


def _coerce(v: Interval | int) -> Interval:
    return v if isinstance(v, Interval) else Interval.point(v)


def mulhi32_interval(x: Interval) -> Interval:
    """Abstract ``mulhi32`` applied to a full 64-bit product interval."""
    return x >> 32


def lazy_fold(x: Interval, q: int) -> Interval:
    """Abstract branch-free fold ``min(s, s - q)`` (unsigned wrap select).

    Sound only when the input is non-negative and strictly below ``q +
    2^32`` for a uint32 carrier (or ``q + 2^64`` for uint64) — callers
    prove the carrier fit separately; here the fold just needs ``x.hi <
    2q`` to land in ``[0, q)`` and ``x.hi < 3q`` to land in ``[0, 2q)``
    etc.  Returns the folded interval ``[0, max(q - 1, x.hi - q)]`` when
    a single conditional subtract can apply, widened to the input's own
    bound when the input may already be below ``q``.
    """
    if x.lo < 0:
        raise ValueError(f"lazy fold needs a non-negative input, got {x}")
    if x.hi < q:  # fold is the identity
        return x
    return Interval(0, max(q - 1, x.hi - q))


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding: an unproved obligation or a code smell.

    ``severity`` is ``"error"`` (the invariant is violated or cannot be
    proved — executing would risk silent corruption) or ``"warning"``
    (legal but wasteful or suspicious).  ``code`` is a stable
    machine-matchable slug; ``where`` names the op / node / limb the
    finding anchors to; ``detail`` is the human-readable explanation
    with the offending ranges.
    """

    severity: str
    code: str
    where: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code} @ {self.where}: {self.detail}"


@dataclass
class Obligation:
    """A named proof obligation and whether it was discharged."""

    name: str
    proved: bool
    detail: str = field(default="")

    def __str__(self) -> str:
        mark = "proved" if self.proved else "FAILED"
        tail = f" ({self.detail})" if self.detail else ""
        return f"{mark}: {self.name}{tail}"
