"""Deprecated import path: the module moved to ``repro.scheme._circuit``.

:class:`~repro.scheme._circuit.CircuitTracer` is internal as of the
PR 10 API redesign — user programs compile circuits through
:meth:`repro.context.CkksContext.compile`, which owns the tracer.  This
shim keeps the old path importable for one release, warning once per
name; :class:`~repro.scheme._circuit.CircuitPlan` and
:class:`~repro.scheme._circuit.TracedCiphertext` stay silent re-exports
(plans and traced handles are what the public API returns and passes to
user build functions).
"""

from __future__ import annotations

from repro._compat import warn_once
from repro.scheme import _circuit
from repro.scheme._circuit import (  # noqa: F401  (still public)
    CircuitPlan,
    TracedCiphertext,
)

_DEPRECATED = {
    "CircuitTracer": "CkksContext.compile(build)",
}


def __getattr__(name: str):
    try:
        value = getattr(_circuit, name)
    except AttributeError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    if name in _DEPRECATED:
        warn_once(f"repro.scheme.circuit.{name}", _DEPRECATED[name])
    return value
