"""Slot-wise linear-algebra workloads over encrypted SIMD vectors.

The paper-shaped workload layer on top of the canonical-embedding
encoder and the homomorphic evaluator: element-wise plaintext-vector
products, the Halevi–Shoup diagonal matrix-vector product in
baby-step/giant-step form, and BSGS (Paterson–Stockmeyer) polynomial
evaluation of encrypted inputs.

Scheduling — the parts that are not textbook:

* ``matvec`` factors the ``dim`` diagonals as ``d = g*bs + b`` and
  computes ``sum_g rot_{g*bs}( sum_b diag'_{g,b} ⊙ rot_b(ct) )``.  The
  fast path pays **one** shared ModUp for the whole baby front
  (:meth:`Evaluator.rotate_hoisted`), reuses the rotated ciphertexts
  across every giant step, and fuses each giant step's inner sum through
  one NTT-domain :meth:`RnsPolynomial.multiply_accumulate` per component
  (one inverse transform per giant step instead of one per diagonal); a
  giant step then costs exactly one more key switch.  The naive
  composition (:meth:`matvec_naive`) evaluates the *same* formula one
  diagonal at a time — an independent rotation, a plaintext multiply and
  an accumulate per diagonal.  Because hoisted rotations are
  bit-identical to independent ones and the NTT is linear over each
  limb's modular ring, the two paths produce **bit-identical**
  ciphertexts — the benchmark asserts this before timing, so the fast
  path cannot drift semantically.
* ``poly_eval`` evaluates ``p(x) = sum_k c_k x^k`` slot-wise with the
  baby/giant power split and *scale stacking*: no rescaling happens, so
  every product stays at the *input's* level (which may itself sit
  below keygen — plaintext operands are encoded and scale budgets
  checked against the operand's live basis) and ``x^k`` carries scale
  ``Delta^k``.  The scalar
  coefficients absorb the imbalance — ``c_{g*bs+b}`` is encoded at
  ``Delta^(bs*gs - g*bs - b)`` so every giant-step term lands at the
  common output scale ``Delta^(bs*gs)`` (the encoder's exact big-int
  path handles the huge constants).  The scale budget
  ``bs*gs*log2(Delta)`` must fit under ``log2(Q) - 1``; a
  :class:`ParameterError` names the shortfall otherwise.  The fast path
  computes each power of ``x`` once through a balanced halving tree; the
  naive composition re-derives the *same* tree for every monomial, so
  the two stay bit-identical while the fast path wins on reuse.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.poly.rns_poly import COEFF, RnsPolynomial
from repro.scheme.ciphertext import Ciphertext, Plaintext
from repro.scheme.encoder import CanonicalEncoder
from repro.scheme.evaluator import Evaluator, _combine_bits, validate_rotations


def bsgs_split(count: int) -> tuple[int, int]:
    """Balanced ``(baby, giant)`` split with ``baby * giant >= count``."""
    if count < 1:
        raise ParameterError(f"BSGS needs a positive term count, got {count}")
    baby = math.isqrt(count)
    if baby * baby < count:
        baby += 1
    giant = -(-count // baby)
    return baby, giant


class SlotLinalg:
    """Slot-wise workloads bound to one (encoder, evaluator) pair.

    Args:
        encoder: the canonical-embedding encoder (fixes the ring and the
            slot orbit).
        evaluator: the homomorphic evaluator; needs Galois keys for the
            rotation indices :meth:`matvec_rotations` reports before
            :meth:`matvec` can run.
    """

    def __init__(self, encoder: CanonicalEncoder, evaluator: Evaluator):
        reason = encoder.ctx.mismatch_reason(evaluator.ctx)
        if reason is not None:
            raise ParameterError(f"encoder vs evaluator context: {reason}")
        self.encoder = encoder
        self.ev = evaluator
        self.ctx = evaluator.ctx
        # Per-level encoder cache: plaintext operands are encoded at the
        # *operand's* live basis so every workload keeps working after
        # rescales (the embedding tables are shared per ring degree, so
        # a lower-level encoder costs only the limb-lift bookkeeping).
        self._encoders = {tuple(self.ctx.primes): encoder}

    def _encoder_for(self, ctx) -> CanonicalEncoder:
        key = tuple(ctx.primes)
        enc = self._encoders.get(key)
        if enc is None:
            enc = CanonicalEncoder(ctx)
            self._encoders[key] = enc
        return enc

    # -- element-wise vector ops -------------------------------------------
    def multiply_vector(
        self, ct: Ciphertext, vector, *, scale: float | None = None
    ) -> Ciphertext:
        """Slot-wise product with a plaintext vector.

        The vector's length is its slot count (it must divide ``N/2``);
        the plaintext is encoded at ``scale`` (default: the ciphertext's
        own scale, so one rescale restores the level-entry scale).
        """
        vector = np.asarray(vector, dtype=np.complex128).ravel()
        pt = self._encoder_for(ct.ctx).encode(
            vector,
            ct.scale if scale is None else scale,
            num_slots=vector.size,
        )
        return self.ev.multiply_plain(ct, pt)

    def add_vector(self, ct: Ciphertext, vector) -> Ciphertext:
        """Slot-wise sum with a plaintext vector (encoded at ct's scale)."""
        vector = np.asarray(vector, dtype=np.complex128).ravel()
        pt = self._encoder_for(ct.ctx).encode(
            vector, ct.scale, num_slots=vector.size
        )
        return self.ev.add_plain(ct, pt)

    # -- BSGS diagonal matrix-vector product -------------------------------
    @staticmethod
    def matvec_rotations(dim: int, *, baby_steps: int | None = None) -> list[int]:
        """Rotation indices a ``dim``-slot matvec needs Galois keys for."""
        bs, gs = (
            bsgs_split(dim)
            if baby_steps is None
            else (baby_steps, -(-dim // baby_steps))
        )
        return list(range(1, bs)) + [g * bs for g in range(1, gs)]

    def _check_matrix(self, matrix) -> tuple[np.ndarray, int]:
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ParameterError(
                f"matvec needs a square matrix, got shape {matrix.shape}"
            )
        dim = Plaintext.validate_slots(self.encoder.n, matrix.shape[0])
        return matrix, dim

    def matvec(
        self,
        ct: Ciphertext,
        matrix,
        *,
        baby_steps: int | None = None,
        scale: float | None = None,
    ) -> Ciphertext:
        """BSGS diagonal matvec: hoisted baby front + fused inner MACs.

        Decodes to ``matrix @ slots`` at scale ``ct.scale * pt_scale``.
        Bit-identical to :meth:`matvec_naive` by construction.
        """
        matrix, dim = self._check_matrix(matrix)
        bs = bsgs_split(dim)[0] if baby_steps is None else int(baby_steps)
        babies: dict[int, Ciphertext] = {0: ct}
        if bs > 1:
            babies.update(self.ev.rotate_hoisted(ct, list(range(1, bs))))
        return self._matvec(ct, matrix, dim, bs, scale, babies.__getitem__, fused=True)

    def matvec_naive(
        self,
        ct: Ciphertext,
        matrix,
        *,
        baby_steps: int | None = None,
        scale: float | None = None,
    ) -> Ciphertext:
        """The per-diagonal composition: one independent rotation, one
        plaintext multiply and one accumulate per matrix diagonal
        (the reference the benchmark times the fast path against)."""
        matrix, dim = self._check_matrix(matrix)
        bs = bsgs_split(dim)[0] if baby_steps is None else int(baby_steps)

        def baby(b: int) -> Ciphertext:
            return ct if b == 0 else self.ev.rotate(ct, b)

        return self._matvec(ct, matrix, dim, bs, scale, baby, fused=False)

    # -- compiled circuits --------------------------------------------------
    def _trace(self):
        """A tracer twin of this helper: same encoder, recording evaluator."""
        from repro.scheme._circuit import CircuitTracer

        tracer = CircuitTracer(self.ev)
        return tracer, SlotLinalg(self.encoder, tracer)

    def compile_matvec(
        self,
        matrix,
        *,
        input_scale: float,
        baby_steps: int | None = None,
        scale: float | None = None,
    ):
        """Compile the BSGS matvec into a reusable :class:`CircuitPlan`.

        Traces the per-diagonal composition (:meth:`matvec_naive`) and
        lets the planner rediscover the fast path — the hoisted baby
        front and the fused inner MACs fall out of the generic hoist
        grouping and MAC-fusion passes — so the plan is bit-identical to
        both eager variants while also capturing every diagonal encoding
        and key-switch schedule ahead of time.  ``plan.run(ct)`` then
        applies the matrix to any ciphertext arriving at ``input_scale``.
        """
        tracer, traced_lin = self._trace()
        x = tracer.input("x", scale=input_scale)
        out = traced_lin.matvec_naive(
            x, matrix, baby_steps=baby_steps, scale=scale
        )
        return tracer.compile(out)

    def compile_poly_eval(
        self,
        coeffs: Sequence[float],
        *,
        input_scale: float,
        baby_steps: int | None = None,
    ):
        """Compile BSGS polynomial evaluation into a :class:`CircuitPlan`.

        The tracer's hash-consing plays the role of the eager power
        cache — every power of ``x`` traces to one node no matter how
        many terms use it — and the scale-stacked constant encodings are
        captured (and NTT-prepared) once at compile time.
        """
        tracer, traced_lin = self._trace()
        x = tracer.input("x", scale=input_scale)
        out = traced_lin.poly_eval(x, coeffs, baby_steps=baby_steps)
        return tracer.compile(out)

    def _matvec(
        self,
        ct: Ciphertext,
        matrix: np.ndarray,
        dim: int,
        bs: int,
        scale: float | None,
        baby: Callable[[int], Ciphertext],
        *,
        fused: bool,
    ) -> Ciphertext:
        if bs < 1:
            raise ParameterError(f"baby-step count must be >= 1, got {bs}")
        validate_rotations(
            self.matvec_rotations(dim, baby_steps=bs), dim, "matvec"
        )
        pt_scale = ct.scale if scale is None else float(scale)
        encoder = self._encoder_for(ct.ctx)
        gs = -(-dim // bs)
        n = self.ctx.ring_degree
        acc: Ciphertext | None = None
        for g in range(gs):
            terms: list[tuple[Ciphertext, Plaintext]] = []
            for b in range(bs):
                d = g * bs + b
                if d >= dim:
                    break
                # rot_{-g*bs} of diagonal d, so the giant rotation at the
                # end of the group realigns every product at once.
                diag = matrix[np.arange(dim), (np.arange(dim) + d) % dim]
                pt = encoder.encode(np.roll(diag, g * bs), pt_scale, num_slots=dim)
                terms.append((baby(b), pt))
            if not terms:
                continue
            if fused and len(terms) > 1:
                inner = self._fused_inner(terms, n)
            else:
                inner = None
                for baby_ct, pt in terms:
                    t = self.ev.multiply_plain(baby_ct, pt)
                    inner = t if inner is None else self.ev.add(inner, t)
            if g:
                inner = self.ev.rotate(inner, g * bs)
            acc = inner if acc is None else self.ev.add(acc, inner)
        assert acc is not None  # dim >= 1 guarantees at least one term
        return acc

    def _fused_inner(
        self, terms: Sequence[tuple[Ciphertext, Plaintext]], n: int
    ) -> Ciphertext:
        """One giant step's inner sum as two fused NTT-domain MACs.

        ``sum_b pt_b ⊙ baby_b`` per component through a single
        :meth:`RnsPolynomial.multiply_accumulate` and **one** inverse
        transform, instead of an inverse per diagonal.  Exactly equal to
        the multiply-then-add chain because every step is the same
        modular arithmetic — the NTT is linear over each limb's ring and
        the lazy accumulator folds to the same canonical residues.
        """
        pts = [pt.poly.to_ntt() for _, pt in terms]
        c0 = RnsPolynomial.multiply_accumulate(
            [baby.c0.to_ntt() for baby, _ in terms], pts
        ).to_coeff()
        c1 = RnsPolynomial.multiply_accumulate(
            [baby.c1.to_ntt() for baby, _ in terms], pts
        ).to_coeff()
        noise = None
        for baby, pt in terms:  # mirrors multiply_plain's estimate
            bits = baby.noise_bits + math.log2(pt.scale) + 0.5 * math.log2(n)
            noise = bits if noise is None else _combine_bits(noise, bits)
        return Ciphertext(
            c0,
            c1,
            scale=terms[0][0].scale * terms[0][1].scale,
            noise_bits=noise,
        )

    # -- BSGS polynomial evaluation ----------------------------------------
    def poly_eval(
        self,
        ct: Ciphertext,
        coeffs: Sequence[float],
        *,
        baby_steps: int | None = None,
    ) -> Ciphertext:
        """``p(ct)`` slot-wise, with cached baby/giant powers."""
        return self._poly_eval(ct, coeffs, baby_steps, cached=True)

    def poly_eval_naive(
        self,
        ct: Ciphertext,
        coeffs: Sequence[float],
        *,
        baby_steps: int | None = None,
    ) -> Ciphertext:
        """The per-monomial composition: every power of ``x`` re-derived
        through the same balanced tree for every term it appears in."""
        return self._poly_eval(ct, coeffs, baby_steps, cached=False)

    def _poly_eval(
        self,
        ct: Ciphertext,
        coeffs: Sequence[float],
        baby_steps: int | None,
        *,
        cached: bool,
    ) -> Ciphertext:
        coeffs = [float(c) for c in coeffs]
        while coeffs and coeffs[-1] == 0.0:
            coeffs.pop()
        if len(coeffs) < 2 or not any(coeffs[1:]):
            raise ParameterError(
                "poly_eval needs a nonzero coefficient of degree >= 1 "
                "(plain constants need no ciphertext)"
            )
        bs, gs = (
            bsgs_split(len(coeffs))
            if baby_steps is None
            else (int(baby_steps), -(-len(coeffs) // int(baby_steps)))
        )
        self._check_scale_budget(ct, coeffs, bs * gs)
        power = self._power_tree(ct, cached=cached)
        sc = ct.scale
        lvl_ctx = ct.ctx  # poly_eval never rescales: one level throughout
        acc: Ciphertext | None = None
        tail = 0.0  # the degree-0 coefficient, folded in at the end
        for g in range(gs):
            inner: Ciphertext | None = None
            for b in range(1, bs):
                k = g * bs + b
                if k >= len(coeffs):
                    break
                if coeffs[k] == 0.0:
                    continue
                pt = self._encode_constant(
                    coeffs[k], sc ** (bs * gs - g * bs - b), lvl_ctx
                )
                t = self.ev.multiply_plain(power(b), pt)
                inner = t if inner is None else self.ev.add(inner, t)
            c0 = coeffs[g * bs] if g * bs < len(coeffs) else 0.0
            if inner is not None:
                if c0:
                    inner = self.ev.add_plain(
                        inner, self._encode_constant(c0, inner.scale, lvl_ctx)
                    )
                term = inner if g == 0 else self.ev.multiply(power(g * bs), inner)
            elif c0 and g:
                term = self.ev.multiply_plain(
                    power(g * bs),
                    self._encode_constant(c0, sc ** (bs * gs - g * bs), lvl_ctx),
                )
            else:
                tail += c0
                continue
            acc = term if acc is None else self.ev.add(acc, term)
        assert acc is not None  # a degree >= 1 coefficient exists
        if tail:
            acc = self.ev.add_plain(
                acc, self._encode_constant(tail, acc.scale, lvl_ctx)
            )
        return acc

    def _power_tree(
        self, ct: Ciphertext, *, cached: bool
    ) -> Callable[[int], Ciphertext]:
        """``x^k`` through a balanced halving tree, optionally cached.

        Both variants walk the *same* tree (``x^k = x^(k - k//2) *
        x^(k//2)``), so cached and uncached evaluation stay
        bit-identical; caching only removes the recomputation.
        """
        cache: dict[int, Ciphertext] = {1: ct}

        def power(k: int) -> Ciphertext:
            if k in cache:
                return cache[k]
            half = k // 2
            v = self.ev.multiply(power(k - half), power(half))
            if cached:
                cache[k] = v
            return v

        return power

    def _check_scale_budget(
        self, ct: Ciphertext, coeffs: Sequence[float], stack: int
    ) -> None:
        """Refuse scale stacks that cannot fit under ``Q/2``."""
        if ct.scale <= 1.0:
            raise ParameterError(
                f"poly_eval needs a scale > 1 to stack, got {ct.scale}"
            )
        need = stack * math.log2(ct.scale) + math.log2(
            max(1.0, sum(abs(c) for c in coeffs))
        )
        if need > 960:
            raise ParameterError(
                f"poly_eval scale stack needs ~{need:.0f} bits, beyond "
                "float64 scale tracking; lower the degree or the scale"
            )
        # Budget against the *operand's* live modulus: after rescales the
        # stack must fit the remaining limbs, not the keygen-level Q.
        have = math.log2(ct.ctx.modulus) - 1
        if need + 8 > have:  # ~8 bits of noise/rounding headroom
            raise ParameterError(
                f"poly_eval scale budget: Delta^{stack} plus coefficient "
                f"mass needs ~{need:.0f}+8 bits but log2(Q/2) at level "
                f"{ct.level} is only {have:.0f}; lower the degree, the "
                "scale, or baby_steps"
            )

    def _encode_constant(
        self, c: float, scale: float, ctx=None
    ) -> Plaintext:
        """Exact slot-constant plaintext: one scaled coefficient at X^0.

        A constant slot vector is a constant polynomial, so the encoding
        is ``round(c * scale)`` at coefficient 0 — built directly (and
        exactly, through Python ints when the scale stack exceeds int64)
        rather than through the float FFT, whose rounding dust would be
        amplified by the huge stacked scales.  ``ctx`` selects the live
        basis (default: the keygen level).
        """
        if scale <= 0 or not math.isfinite(scale):
            raise ParameterError(f"constant scale must be > 0, got {scale}")
        ctx = self.ctx if ctx is None else ctx
        ci = int(round(c * scale))
        if 2 * abs(ci) >= ctx.modulus:
            raise ParameterError(
                f"constant {c} at scale 2^{math.log2(scale):.1f} exceeds Q/2"
            )
        limbs = np.zeros((ctx.num_limbs, ctx.ring_degree), dtype=np.uint64)
        limbs[:, 0] = [ci % q for q in ctx.primes]
        poly = RnsPolynomial(ctx, limbs, COEFF, scale=float(scale))
        return Plaintext(poly, slots=self.encoder.slots)
