"""Exact big-int / CRT reference evaluator for the scheme layer.

The end-to-end scheme tests need the *exact* integer plaintext the
homomorphic pipeline should approach — the negacyclic product of the
encoded polynomials, automorphed and rescaled — computed through a code
path independent of the batched limb pipeline under test.  Schoolbook
big-int multiplication is O(N^2) Python-int work and intractable at
N = 4096, so this evaluator runs CRT over an *own* prime basis wide
enough to hold the exact product, using only the per-prime reference
:class:`~repro.poly.ntt.NegacyclicNTT` engines (Barrett backend — the
textbook reducer), and reconstructs with centered big-int CRT.  The test
suite anchors it against the O(N^2) schoolbook at small N, then trusts
it at scale.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ParameterError
from repro.poly.ntt import NegacyclicNTT, automorphism_tables
from repro.rns.primes import ntt_friendly_primes


class ReferenceEvaluator:
    """Exact arithmetic on integer coefficient vectors mod ``X^N + 1``.

    Args:
        ring_degree: N.
        coeff_bound_bits: products are exact as long as every output
            coefficient magnitude stays below ``2**coeff_bound_bits``;
            the CRT basis is sized to cover twice that.
    """

    def __init__(self, ring_degree: int, coeff_bound_bits: int) -> None:
        self.n = int(ring_degree)
        self.bound = 1 << int(coeff_bound_bits)
        count = (coeff_bound_bits + 1) // 29 + 1
        self.primes = [
            p.value for p in ntt_friendly_primes(30, count, self.n)
        ]
        self.engines = [
            NegacyclicNTT(q, self.n, "barrett") for q in self.primes
        ]
        self.modulus = math.prod(self.primes)
        if self.modulus <= 2 * self.bound:
            raise ParameterError(
                "reference basis does not cover the coefficient bound"
            )

    def _check(self, coeffs, what: str) -> list[int]:
        coeffs = [int(c) for c in coeffs]
        if len(coeffs) != self.n:
            raise ParameterError(
                f"{what}: expected {self.n} coefficients, got {len(coeffs)}"
            )
        worst = max((abs(c) for c in coeffs), default=0)
        if worst >= self.bound:
            raise ParameterError(
                f"{what}: coefficient magnitude {worst} exceeds the "
                f"reference bound {self.bound}"
            )
        return coeffs

    def multiply(self, a, b) -> list[int]:
        """Exact ``a * b mod (X^N + 1)`` over the integers.

        Per reference prime: lift-to-residues, forward, pointwise,
        inverse; then centered CRT reconstruction.  Exact whenever
        ``N * max|a| * max|b|`` stays below the coefficient bound.
        """
        a = self._check(a, "multiply lhs")
        b = self._check(b, "multiply rhs")
        amax = max((abs(c) for c in a), default=0)
        bmax = max((abs(c) for c in b), default=0)
        if self.n * amax * bmax >= self.bound:
            raise ParameterError(
                f"product bound N*|a|*|b| = {self.n * amax * bmax} exceeds "
                f"the reference coefficient bound {self.bound}"
            )
        rows = []
        for q, eng in zip(self.primes, self.engines):
            ra = np.array([c % q for c in a], dtype=np.uint64)
            rb = np.array([c % q for c in b], dtype=np.uint64)
            rows.append(eng.negacyclic_multiply(ra, rb))
        return self._crt_centered(rows)

    def automorphism(self, a, k: int) -> list[int]:
        """``sigma_k`` on integer coefficients: signed index permutation."""
        a = self._check(a, "automorphism")
        src, neg, _ = automorphism_tables(self.n, k)
        return [
            -a[src[j]] if neg[j] else a[src[j]] for j in range(self.n)
        ]

    def rescale(self, a, divisor: int) -> list[int]:
        """Round-to-nearest exact division, matching ``exact_rescale``.

        ``(c - [c]_divisor) / divisor`` with the centered remainder in
        ``(-divisor/2, divisor/2]`` — the same convention the pipeline's
        inverse-CRT rescale implements, stated on plain integers.
        """
        a = self._check(a, "rescale")
        out = []
        for c in a:
            r = c % divisor
            if r > divisor // 2:
                r -= divisor
            out.append((c - r) // divisor)
        return out

    def _crt_centered(self, rows) -> list[int]:
        big = self.modulus
        acc = [0] * self.n
        for q, row in zip(self.primes, rows):
            m_i = big // q
            lift = m_i * pow(m_i, -1, q)
            for j in range(self.n):
                acc[j] = (acc[j] + int(row[j]) * lift) % big
        half = big // 2
        return [c - big if c > half else c for c in acc]
