"""Exact big-int / CRT reference evaluator for the scheme layer.

The end-to-end scheme tests need the *exact* integer plaintext the
homomorphic pipeline should approach — the negacyclic product of the
encoded polynomials, automorphed and rescaled — computed through a code
path independent of the batched limb pipeline under test.  Schoolbook
big-int multiplication is O(N^2) Python-int work and intractable at
N = 4096, so this evaluator runs CRT over an *own* prime basis wide
enough to hold the exact product, using only the per-prime reference
:class:`~repro.poly.ntt.NegacyclicNTT` engines (Barrett backend — the
textbook reducer), and reconstructs with centered big-int CRT.  The test
suite anchors it against the O(N^2) schoolbook at small N, then trusts
it at scale.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ParameterError
from repro.poly.ntt import (
    NegacyclicNTT,
    automorphism_tables,
    complex_root_powers,
)
from repro.rns.primes import ntt_friendly_primes


class ReferenceEvaluator:
    """Exact arithmetic on integer coefficient vectors mod ``X^N + 1``.

    Args:
        ring_degree: N.
        coeff_bound_bits: products are exact as long as every output
            coefficient magnitude stays below ``2**coeff_bound_bits``;
            the CRT basis is sized to cover twice that.
    """

    def __init__(self, ring_degree: int, coeff_bound_bits: int) -> None:
        self.n = int(ring_degree)
        self.bound = 1 << int(coeff_bound_bits)
        count = (coeff_bound_bits + 1) // 29 + 1
        self.primes = [p.value for p in ntt_friendly_primes(30, count, self.n)]
        self.engines = [
            NegacyclicNTT(q, self.n, "barrett") for q in self.primes
        ]
        self.modulus = math.prod(self.primes)
        if self.modulus <= 2 * self.bound:
            raise ParameterError(
                "reference basis does not cover the coefficient bound"
            )

    def _check(self, coeffs, what: str) -> list[int]:
        coeffs = [int(c) for c in coeffs]
        if len(coeffs) != self.n:
            raise ParameterError(
                f"{what}: expected {self.n} coefficients, got {len(coeffs)}"
            )
        worst = max((abs(c) for c in coeffs), default=0)
        if worst >= self.bound:
            raise ParameterError(
                f"{what}: coefficient magnitude {worst} exceeds the "
                f"reference bound {self.bound}"
            )
        return coeffs

    def multiply(self, a, b) -> list[int]:
        """Exact ``a * b mod (X^N + 1)`` over the integers.

        Per reference prime: lift-to-residues, forward, pointwise,
        inverse; then centered CRT reconstruction.  Exact whenever
        ``N * max|a| * max|b|`` stays below the coefficient bound.
        """
        a = self._check(a, "multiply lhs")
        b = self._check(b, "multiply rhs")
        amax = max((abs(c) for c in a), default=0)
        bmax = max((abs(c) for c in b), default=0)
        if self.n * amax * bmax >= self.bound:
            raise ParameterError(
                f"product bound N*|a|*|b| = {self.n * amax * bmax} exceeds "
                f"the reference coefficient bound {self.bound}"
            )
        rows = []
        for q, eng in zip(self.primes, self.engines):
            ra = np.array([c % q for c in a], dtype=np.uint64)
            rb = np.array([c % q for c in b], dtype=np.uint64)
            rows.append(eng.negacyclic_multiply(ra, rb))
        return self._crt_centered(rows)

    def automorphism(self, a, k: int) -> list[int]:
        """``sigma_k`` on integer coefficients: signed index permutation."""
        a = self._check(a, "automorphism")
        src, neg, _ = automorphism_tables(self.n, k)
        return [-a[src[j]] if neg[j] else a[src[j]] for j in range(self.n)]

    def slot_values(self, a, *, indices=None) -> np.ndarray:
        """Canonical-embedding slots of integer coefficients, directly.

        Slot semantics for the exact reference path: slot ``j`` is the
        evaluation ``sum_i a_i * zeta^(i * 5^j mod 2N)`` at the complex
        primitive ``2N``-th root ``zeta = exp(i*pi/N)``, orbit-ordered
        by powers of 5 exactly like the SIMD encoder — but computed as a
        *direct* inner product against the exact-index root table, fully
        independent of the encoder's special-FFT butterfly network, so
        the two can cross-check each other.  ``indices`` restricts the
        evaluation to selected orbit positions (the direct sum is
        ``O(N)`` per slot, so spot checks at large ``N`` stay cheap).
        """
        a = self._check(a, "slot_values")
        roots = complex_root_powers(self.n)
        coeffs = np.array([float(c) for c in a], dtype=np.float64)
        if indices is None:
            indices = range(self.n // 2)
        i = np.arange(self.n, dtype=np.int64)
        out = np.empty(len(indices), dtype=np.complex128)
        for pos, j in enumerate(indices):
            e = pow(5, int(j), 2 * self.n)
            out[pos] = np.dot(coeffs, roots[(i * e) % (2 * self.n)])
        return out

    def matvec_slots(self, matrix, slots) -> np.ndarray:
        """Plaintext-side expected slots of a matrix-vector workload.

        The slot-domain oracle the linalg tests compare decrypted BSGS
        results against: plain ``M @ z`` in float, stated here so the
        reference evaluator owns all expected-value computation.
        """
        matrix = np.asarray(matrix, dtype=np.complex128)
        slots = np.asarray(slots, dtype=np.complex128).ravel()
        if matrix.shape != (slots.size, slots.size):
            raise ParameterError(
                f"matrix {matrix.shape} does not act on {slots.size} slots"
            )
        return matrix @ slots

    def rescale(self, a, divisor: int) -> list[int]:
        """Round-to-nearest exact division, matching ``exact_rescale``.

        ``(c - [c]_divisor) / divisor`` with the centered remainder in
        ``(-divisor/2, divisor/2]`` — the same convention the pipeline's
        inverse-CRT rescale implements, stated on plain integers.
        """
        a = self._check(a, "rescale")
        out = []
        for c in a:
            r = c % divisor
            if r > divisor // 2:
                r -= divisor
            out.append((c - r) // divisor)
        return out

    def _crt_centered(self, rows) -> list[int]:
        big = self.modulus
        acc = [0] * self.n
        for q, row in zip(self.primes, rows):
            m_i = big // q
            lift = m_i * pow(m_i, -1, q)
            for j in range(self.n):
                acc[j] = (acc[j] + int(row[j]) * lift) % big
        half = big // 2
        return [c - big if c > half else c for c in acc]
