"""Op-level composite pricing for the scheme layer.

Prices HMult / relinearize / rotate / hoisted rotation as field-wise
sums of the already-priced Table-3 polynomial kernels
(:class:`~repro.poly.cost.CostModel`), so benchmark output and workload
budgets map onto the paper's op-level accounting without re-deriving any
kernel cost.

The key-switch cost is split at the hoisting boundary:

* ``_ks_shared`` — ModUp of every digit plus the ``dnum`` extended-basis
  forward NTTs.  Input-only work: a hoisted rotation pays it *once*.
* ``_ks_finish`` — the two-half MAC through the lazy accumulators, the
  terminal folds, the two extended inverse NTTs and the two ModDowns.
  Per-output work: every rotation index pays it.

``_ks_shared + _ks_finish`` equals the monolithic
``CostModel.key_switch`` field-for-field (the test suite pins this), so
the split is an accounting view, not a second cost model.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError
from repro.poly.cost import CostModel, OpCost, _merge
from repro.rns.primes import digit_ranges


class SchemeCostModel:
    """Composite op pricing for one ``(N, L, K, dnum, method)`` choice.

    Args:
        ring_degree: N.
        num_limbs: live limbs L of the ciphertext level.
        num_aux: auxiliary P-part limbs K.
        dnum: hybrid key-switching digit count.
        method: NTT reducer backend (prices the method-priced parts; the
            conversion sub-kernels always run Shoup chains and ride in
            ``extra_int32``, following the polynomial layer).
    """

    def __init__(
        self,
        ring_degree: int,
        num_limbs: int,
        num_aux: int,
        dnum: int,
        method: str,
    ) -> None:
        if num_aux < 1:
            raise ParameterError(f"num_aux must be >= 1, got {num_aux}")
        digit_ranges(num_limbs, dnum)  # validates dnum
        self.poly = CostModel(ring_degree, num_limbs, method)
        self.num_aux = int(num_aux)
        self.dnum = int(dnum)
        self.ext = num_limbs + self.num_aux

    # -- key-switch halves (the hoisting boundary) -------------------------
    def ks_shared(self) -> OpCost:
        """ModUp + ``dnum`` extended forward NTTs (paid once per input)."""
        fwd = self.poly.ntt()
        up = self.poly.mod_up(self.num_aux, dnum=self.dnum)
        return OpCost(
            "ks_shared",
            self.poly.method,
            modmuls=self.dnum * self.ext * fwd.modmuls,
            modadds=self.dnum * self.ext * fwd.modadds,
            twiddle_consts=self.ext * fwd.twiddle_consts + up.twiddle_consts,
            extra_int32=up.int32_instrs,
        )

    def ks_finish(self) -> OpCost:
        """MAC + folds + extended inverses + ModDowns (paid per output)."""
        inv = self.poly.intt()
        down = self.poly.mod_down(self.num_aux)
        lanes = self.poly.n * self.ext
        return OpCost(
            "ks_finish",
            self.poly.method,
            modmuls=2 * (self.dnum + 1) * lanes + 2 * self.ext * inv.modmuls,
            modadds=2 * self.ext * inv.modadds,
            twiddle_consts=self.ext * inv.twiddle_consts
            + down.twiddle_consts,
            raw_adds64=2 * self.dnum * lanes,
            extra_int32=2 * down.int32_instrs,
        )

    # The halves started life as private accounting helpers; the circuit
    # compiler prices hoisting with them, so they are public now.  The
    # underscore spellings remain as aliases.
    _ks_shared = ks_shared
    _ks_finish = ks_finish

    # -- composite ops -----------------------------------------------------
    def relinearize(self) -> OpCost:
        """Key switch of the degree-2 tensor component + 2 component adds.

        The input arrives NTT-domain from the tensor, so the plan's
        ``intt_input`` step (one L-row inverse) rides in front.
        """
        cost = self.poly.intt().scaled(self.poly.num_limbs, "relinearize")
        cost = _merge(cost, self._ks_shared())
        cost = _merge(cost, self._ks_finish())
        cost = _merge(cost, self.poly.add())
        return _merge(cost, self.poly.add())

    def hmult(self) -> OpCost:
        """Ciphertext multiply fused with relinearization.

        Four L-row forward NTTs, the three-component tensor (two plain
        pointwise products plus the fused two-term MAC for the cross
        component), two L-row inverse NTTs for the degree-0/1 outputs,
        then :meth:`relinearize`.
        """
        limbs = self.poly.num_limbs
        cost = self.poly.ntt().scaled(4 * limbs, "hmult")
        cost = _merge(cost, self.poly.pointwise().scaled(2 * limbs))
        cost = _merge(cost, self.poly.multiply_accumulate(2))
        cost = _merge(cost, self.poly.intt().scaled(2 * limbs))
        return _merge(cost, self.relinearize())

    def rescale(self) -> OpCost:
        """Exact rescale of both ciphertext components."""
        return self.poly.rescale().scaled(2, "rescale_ct")

    def rotate(self) -> OpCost:
        """One hoisted-schedule rotation: key switch + ``sigma_k`` + add.

        The Galois action costs one coefficient-domain pass on ``c0``
        (conditional negations) and a *free* NTT-domain permutation of
        the hoisted digits.
        """
        cost = OpCost("rotate", self.poly.method, 0, 0)
        cost = _merge(cost, self._ks_shared())
        cost = _merge(cost, self._ks_finish())
        cost = _merge(cost, self.poly.automorphism("coeff"))
        cost = _merge(cost, self.poly.automorphism("ntt"))
        return _merge(cost, self.poly.add())

    def hoisted_rotate(self, count: int) -> OpCost:
        """``count`` rotations of one ciphertext sharing a single ModUp.

        The shared front (:meth:`_ks_shared`) is paid once; every index
        pays the per-output tail, the Galois passes and the add.  For
        ``count >= 2`` this is strictly cheaper than ``count``
        independent :meth:`rotate` calls by ``(count - 1)`` shared
        fronts — the benchmark's wall-clock claim, stated in int32
        instructions.
        """
        if count < 1:
            raise ParameterError(
                f"hoisted_rotate needs >= 1 rotation, got {count}"
            )
        per = _merge(
            _merge(self._ks_finish(), self.poly.automorphism("coeff")),
            _merge(self.poly.automorphism("ntt"), self.poly.add()),
        )
        return _merge(
            self._ks_shared().scaled(1, "hoisted_rotate"),
            per.scaled(count),
        )

    # -- slot-workload composites (the linalg layer) -----------------------
    def multiply_plain(self) -> OpCost:
        """Plaintext multiply of both components, plaintext transform shared.

        ``ct.c0 * pt`` and ``ct.c1 * pt``: three L-row forward NTTs (the
        plaintext's transform is twin-cached after the first component),
        two pointwise passes, two inverses.
        """
        limbs = self.poly.num_limbs
        cost = self.poly.ntt().scaled(3 * limbs, "multiply_plain")
        cost = _merge(cost, self.poly.pointwise().scaled(2 * limbs))
        return _merge(cost, self.poly.intt().scaled(2 * limbs))

    @staticmethod
    def _bsgs(count: int, baby_steps: int | None) -> tuple[int, int]:
        if count < 1:
            raise ParameterError(f"BSGS needs >= 1 term, got {count}")
        if baby_steps is None:
            bs = math.isqrt(count)
            if bs * bs < count:
                bs += 1
        else:
            bs = int(baby_steps)
            if bs < 1:
                raise ParameterError(f"baby_steps must be >= 1, got {bs}")
        return bs, -(-count // bs)

    def matvec(self, dim: int, *, baby_steps: int | None = None) -> OpCost:
        """BSGS diagonal matvec: the fused slot-workload composite.

        One hoisted baby front (``bs - 1`` indices sharing a ModUp), the
        baby components' forward transforms paid once and reused across
        every giant step, a fused two-component MAC plus one inverse pair
        per giant step, the ``dim`` per-diagonal plaintext transforms,
        ``gs - 1`` giant rotations and the final component adds — all
        priced from the existing hoisted-rotate / MAC / NTT entries.
        """
        bs, gs = self._bsgs(dim, baby_steps)
        limbs = self.poly.num_limbs
        cost = OpCost("matvec", self.poly.method, 0, 0)
        if bs > 1:
            cost = _merge(cost, self.hoisted_rotate(bs - 1))
        cost = _merge(cost, self.poly.ntt().scaled((dim + 2 * bs) * limbs))
        for g in range(gs):
            terms = min(bs, dim - g * bs)
            cost = _merge(cost, self.poly.multiply_accumulate(terms).scaled(2))
        cost = _merge(cost, self.poly.intt().scaled(2 * gs * limbs))
        if gs > 1:
            cost = _merge(cost, self.rotate().scaled(gs - 1))
            cost = _merge(cost, self.poly.add().scaled(2 * (gs - 1)))
        return cost

    def matvec_naive(self, dim: int, *, baby_steps: int | None = None) -> OpCost:
        """The per-diagonal composition the benchmark compares against.

        One independent rotation per off-baseline diagonal (``dim - gs``
        of them — nothing is hoisted, nothing reused), a full
        :meth:`multiply_plain` per diagonal, per-term component adds, and
        the same ``gs - 1`` giant rotations.
        """
        bs, gs = self._bsgs(dim, baby_steps)
        cost = self.rotate().scaled(dim - gs, "matvec_naive")
        cost = _merge(cost, self.multiply_plain().scaled(dim))
        cost = _merge(cost, self.poly.add().scaled(2 * (dim - gs)))
        if gs > 1:
            cost = _merge(cost, self.rotate().scaled(gs - 1))
            cost = _merge(cost, self.poly.add().scaled(2 * (gs - 1)))
        return cost

    def _poly_eval_schedule(
        self, count: int, bs: int, gs: int, cached: bool
    ) -> tuple[int, int, int]:
        """``(hmults, plain_mults, ct_adds)`` of the BSGS schedule.

        Walks the same balanced halving power tree as the implementation
        (``x^k = x^(k - k//2) * x^(k//2)``) over the same call sequence
        — including the bare-giant case, where a block with an empty
        inner sum rides ``multiply_plain(x^(g*bs), const)`` instead of a
        ciphertext product.  ``cached`` counts each power once (the fast
        path); uncached recounts the whole subtree per use (the naive
        composition).  Assumes every coefficient is nonzero.
        """
        have = {1}
        hmults = 0

        def power(k: int) -> None:
            nonlocal hmults
            if k in have if cached else k == 1:
                return
            power(k - k // 2)
            power(k // 2)
            hmults += 1
            if cached:
                have.add(k)

        plain = 0
        adds = 0
        groups = 0
        for g in range(gs):
            inner_terms = 0
            for b in range(1, bs):
                if g * bs + b >= count:
                    break
                power(b)
                plain += 1  # multiply_plain(x^b, c_k)
                inner_terms += 1
            if inner_terms:
                adds += inner_terms - 1
                if g:
                    power(g * bs)
                    hmults += 1  # x^(g*bs) * inner
                groups += 1
            elif g and g * bs < count:
                # bare giant block: multiply_plain(x^(g*bs), const)
                power(g * bs)
                plain += 1
                groups += 1
            # a bare g == 0 block is the tail constant: add_plain only
        adds += max(0, groups - 1)
        return hmults, plain, adds

    def _poly_eval(
        self, degree: int, baby_steps: int | None, *, cached: bool
    ) -> OpCost:
        if degree < 1:
            raise ParameterError(
                f"poly_eval needs degree >= 1, got {degree}"
            )
        count = degree + 1
        bs, gs = self._bsgs(count, baby_steps)
        hmults, plain, adds = self._poly_eval_schedule(count, bs, gs, cached)
        name = "poly_eval" if cached else "poly_eval_naive"
        cost = self.hmult().scaled(hmults, name)
        cost = _merge(cost, self.multiply_plain().scaled(plain))
        if adds:
            cost = _merge(cost, self.poly.add().scaled(2 * adds))
        return cost

    def poly_eval(self, degree: int, *, baby_steps: int | None = None) -> OpCost:
        """BSGS (Paterson–Stockmeyer) polynomial evaluation, powers cached.

        ``hmult``-priced ciphertext products for the shared power tree
        and the giant-step combinations, ``multiply_plain`` per baby
        term, component adds for the accumulations.
        """
        return self._poly_eval(degree, baby_steps, cached=True)

    def poly_eval_naive(self, degree: int, *, baby_steps: int | None = None) -> OpCost:
        """Per-monomial power recomputation of the same evaluation tree."""
        return self._poly_eval(degree, baby_steps, cached=False)

    def operations(self) -> list[OpCost]:
        return [
            self.relinearize(),
            self.hmult(),
            self.rescale(),
            self.rotate(),
            self.hoisted_rotate(4),
            self.multiply_plain(),
            self.matvec(16),
            self.matvec_naive(16),
            self.poly_eval(7),
            self.poly_eval_naive(7),
        ]

    def table(self) -> str:
        """Render the composite op set, Table-3 style."""
        header = (
            f"N={self.poly.n}, limbs={self.poly.num_limbs}, "
            f"aux={self.num_aux}, dnum={self.dnum}, "
            f"method={self.poly.method}"
        )
        rows = [
            header,
            f"{'op':<20}{'modmul':>12}{'modadd':>12}{'raw64':>12}"
            f"{'int32':>14}",
        ]
        for op in self.operations():
            rows.append(
                f"{op.name:<20}{op.modmuls:>12}{op.modadds:>12}"
                f"{op.raw_muls64 + op.raw_adds64:>12}{op.int32_instrs:>14}"
            )
        return "\n".join(rows)
