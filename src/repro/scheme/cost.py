"""Op-level composite pricing for the scheme layer.

Prices HMult / relinearize / rotate / hoisted rotation as field-wise
sums of the already-priced Table-3 polynomial kernels
(:class:`~repro.poly.cost.CostModel`), so benchmark output and workload
budgets map onto the paper's op-level accounting without re-deriving any
kernel cost.

The key-switch cost is split at the hoisting boundary:

* ``_ks_shared`` — ModUp of every digit plus the ``dnum`` extended-basis
  forward NTTs.  Input-only work: a hoisted rotation pays it *once*.
* ``_ks_finish`` — the two-half MAC through the lazy accumulators, the
  terminal folds, the two extended inverse NTTs and the two ModDowns.
  Per-output work: every rotation index pays it.

``_ks_shared + _ks_finish`` equals the monolithic
``CostModel.key_switch`` field-for-field (the test suite pins this), so
the split is an accounting view, not a second cost model.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.poly.cost import CostModel, OpCost, _merge
from repro.rns.primes import digit_ranges


class SchemeCostModel:
    """Composite op pricing for one ``(N, L, K, dnum, method)`` choice.

    Args:
        ring_degree: N.
        num_limbs: live limbs L of the ciphertext level.
        num_aux: auxiliary P-part limbs K.
        dnum: hybrid key-switching digit count.
        method: NTT reducer backend (prices the method-priced parts; the
            conversion sub-kernels always run Shoup chains and ride in
            ``extra_int32``, following the polynomial layer).
    """

    def __init__(
        self,
        ring_degree: int,
        num_limbs: int,
        num_aux: int,
        dnum: int,
        method: str,
    ) -> None:
        if num_aux < 1:
            raise ParameterError(f"num_aux must be >= 1, got {num_aux}")
        digit_ranges(num_limbs, dnum)  # validates dnum
        self.poly = CostModel(ring_degree, num_limbs, method)
        self.num_aux = int(num_aux)
        self.dnum = int(dnum)
        self.ext = num_limbs + self.num_aux

    # -- key-switch halves (the hoisting boundary) -------------------------
    def _ks_shared(self) -> OpCost:
        """ModUp + ``dnum`` extended forward NTTs (paid once per input)."""
        fwd = self.poly.ntt()
        up = self.poly.mod_up(self.num_aux, dnum=self.dnum)
        return OpCost(
            "ks_shared",
            self.poly.method,
            modmuls=self.dnum * self.ext * fwd.modmuls,
            modadds=self.dnum * self.ext * fwd.modadds,
            twiddle_consts=self.ext * fwd.twiddle_consts + up.twiddle_consts,
            extra_int32=up.int32_instrs,
        )

    def _ks_finish(self) -> OpCost:
        """MAC + folds + extended inverses + ModDowns (paid per output)."""
        inv = self.poly.intt()
        down = self.poly.mod_down(self.num_aux)
        lanes = self.poly.n * self.ext
        return OpCost(
            "ks_finish",
            self.poly.method,
            modmuls=2 * (self.dnum + 1) * lanes + 2 * self.ext * inv.modmuls,
            modadds=2 * self.ext * inv.modadds,
            twiddle_consts=self.ext * inv.twiddle_consts
            + down.twiddle_consts,
            raw_adds64=2 * self.dnum * lanes,
            extra_int32=2 * down.int32_instrs,
        )

    # -- composite ops -----------------------------------------------------
    def relinearize(self) -> OpCost:
        """Key switch of the degree-2 tensor component + 2 component adds.

        The input arrives NTT-domain from the tensor, so the plan's
        ``intt_input`` step (one L-row inverse) rides in front.
        """
        cost = self.poly.intt().scaled(self.poly.num_limbs, "relinearize")
        cost = _merge(cost, self._ks_shared())
        cost = _merge(cost, self._ks_finish())
        cost = _merge(cost, self.poly.add())
        return _merge(cost, self.poly.add())

    def hmult(self) -> OpCost:
        """Ciphertext multiply fused with relinearization.

        Four L-row forward NTTs, the three-component tensor (two plain
        pointwise products plus the fused two-term MAC for the cross
        component), two L-row inverse NTTs for the degree-0/1 outputs,
        then :meth:`relinearize`.
        """
        limbs = self.poly.num_limbs
        cost = self.poly.ntt().scaled(4 * limbs, "hmult")
        cost = _merge(cost, self.poly.pointwise().scaled(2 * limbs))
        cost = _merge(cost, self.poly.multiply_accumulate(2))
        cost = _merge(cost, self.poly.intt().scaled(2 * limbs))
        return _merge(cost, self.relinearize())

    def rescale(self) -> OpCost:
        """Exact rescale of both ciphertext components."""
        return self.poly.rescale().scaled(2, "rescale_ct")

    def rotate(self) -> OpCost:
        """One hoisted-schedule rotation: key switch + ``sigma_k`` + add.

        The Galois action costs one coefficient-domain pass on ``c0``
        (conditional negations) and a *free* NTT-domain permutation of
        the hoisted digits.
        """
        cost = OpCost("rotate", self.poly.method, 0, 0)
        cost = _merge(cost, self._ks_shared())
        cost = _merge(cost, self._ks_finish())
        cost = _merge(cost, self.poly.automorphism("coeff"))
        cost = _merge(cost, self.poly.automorphism("ntt"))
        return _merge(cost, self.poly.add())

    def hoisted_rotate(self, count: int) -> OpCost:
        """``count`` rotations of one ciphertext sharing a single ModUp.

        The shared front (:meth:`_ks_shared`) is paid once; every index
        pays the per-output tail, the Galois passes and the add.  For
        ``count >= 2`` this is strictly cheaper than ``count``
        independent :meth:`rotate` calls by ``(count - 1)`` shared
        fronts — the benchmark's wall-clock claim, stated in int32
        instructions.
        """
        if count < 1:
            raise ParameterError(
                f"hoisted_rotate needs >= 1 rotation, got {count}"
            )
        per = _merge(
            _merge(self._ks_finish(), self.poly.automorphism("coeff")),
            _merge(self.poly.automorphism("ntt"), self.poly.add()),
        )
        return _merge(
            self._ks_shared().scaled(1, "hoisted_rotate"),
            per.scaled(count),
        )

    def operations(self) -> list[OpCost]:
        return [
            self.relinearize(),
            self.hmult(),
            self.rescale(),
            self.rotate(),
            self.hoisted_rotate(4),
        ]

    def table(self) -> str:
        """Render the composite op set, Table-3 style."""
        header = (
            f"N={self.poly.n}, limbs={self.poly.num_limbs}, "
            f"aux={self.num_aux}, dnum={self.dnum}, "
            f"method={self.poly.method}"
        )
        rows = [
            header,
            f"{'op':<20}{'modmul':>12}{'modadd':>12}{'raw64':>12}"
            f"{'int32':>14}",
        ]
        for op in self.operations():
            rows.append(
                f"{op.name:<20}{op.modmuls:>12}{op.modadds:>12}"
                f"{op.raw_muls64 + op.raw_adds64:>12}{op.int32_instrs:>14}"
            )
        return "\n".join(rows)
