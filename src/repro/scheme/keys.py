"""Key material for the RLWE scheme layer: seeded samplers and keygen.

Everything the evaluator consumes is generated here from one
``numpy.random.Generator``: the ternary secret, the RLWE public key, the
relinearization key (a hybrid key-switching key for ``s^2``) and Galois
keys (one per automorphism element, for ``sigma_k(s)``).  Determinism is
a contract — every sampler takes the generator explicitly and draws from
it in a fixed order, so a whole keygen + encryption pipeline replays
bit-identically from a single seed (the test suite pins this).

Key-switching keys ride the existing hybrid pipeline
(:class:`~repro.poly.basis_conv.KeySwitcher`): for digit ``d`` of the
live basis with digit modulus ``D_d``, the pair is

    ``(b_d, a_d)  with  b_d = -a_d * s + e_d + P * g_d * s'  (mod QP)``

where ``g_d = (Q / D_d) * [(Q / D_d)^-1]_{D_d}`` is the CRT
interpolation basis (``1 mod D_d``, ``0`` mod every other digit) and
``s'`` is the source secret (``s^2`` for relinearization,
``sigma_k(s)`` for a Galois key).  The executor's ModUp digits ``x_d``
then satisfy ``sum_d x_d * (b_d + a_d s) = P * s' * c + sum_d x_d e_d``
mod ``QP``, which ModDown's division by ``P`` turns into the switched
ciphertext half plus small noise.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import LayoutError, ParameterError
from repro.poly.basis_conv import KeySwitchKey
from repro.poly.ntt import automorphism_tables
from repro.poly.rns_poly import COEFF, PolyContext, RnsPolynomial
from repro.rns.primes import Prime, digit_ranges

#: default RLWE error width (the standard sigma ~ 3.2 discrete Gaussian)
DEFAULT_SIGMA = 3.2

#: the slot-rotation generator: rotations map to the Galois elements
#: 5^r mod 2N (5 generates the order-N/2 cyclic factor of (Z/2N)^*)
ROTATION_GEN = 5


def galois_element(rotation: int, ring_degree: int) -> int:
    """The Galois element ``5^rotation mod 2N`` for a slot rotation.

    Negative rotations work (the exponent is reduced mod the order
    ``N/2`` of 5 in ``(Z/2N)^*`` first).
    """
    if ring_degree < 4:
        raise ParameterError(f"ring degree {ring_degree} too small to rotate")
    order = ring_degree // 2
    return pow(ROTATION_GEN, rotation % order, 2 * ring_degree)


def conjugation_element(ring_degree: int) -> int:
    """The Galois element ``-1 mod 2N`` (complex conjugation)."""
    return 2 * ring_degree - 1


def sample_ternary(
    rng: np.random.Generator, n: int, *, hamming_weight: int | None = None
) -> np.ndarray:
    """A ternary secret/encryption vector in ``{-1, 0, 1}^n`` (int64).

    Uniform per coefficient by default; with ``hamming_weight`` exactly
    that many coefficients are nonzero (the sparse-secret variant).
    """
    if hamming_weight is None:
        return rng.integers(-1, 2, n, dtype=np.int64)
    if not 0 < hamming_weight <= n:
        raise ParameterError(
            f"hamming weight {hamming_weight} outside [1, {n}]"
        )
    s = np.zeros(n, dtype=np.int64)
    idx = rng.choice(n, size=hamming_weight, replace=False)
    s[idx] = rng.choice(np.array([-1, 1], dtype=np.int64), size=hamming_weight)
    return s


def sample_error(
    rng: np.random.Generator, n: int, *, sigma: float = DEFAULT_SIGMA
) -> np.ndarray:
    """A rounded-Gaussian RLWE error vector (int64)."""
    if sigma <= 0:
        raise ParameterError(f"error width sigma must be > 0, got {sigma}")
    return np.rint(rng.normal(0.0, sigma, n)).astype(np.int64)


def lift_signed(ctx: PolyContext, coeffs) -> RnsPolynomial:
    """Lift small signed integer coefficients into limb residues.

    ``coeffs[j] mod q_i`` per limb row (Python/NumPy floor-mod, so
    negatives land in ``[0, q_i)``); the standard embedding of a secret,
    error, or plaintext polynomial into every RNS basis it must meet.
    """
    coeffs = np.asarray(coeffs, dtype=np.int64)
    if coeffs.shape != (ctx.ring_degree,):
        raise LayoutError(
            f"expected {ctx.ring_degree} coefficients, got {coeffs.shape}"
        )
    limbs = np.empty((ctx.num_limbs, ctx.ring_degree), dtype=np.uint64)
    for i, q in enumerate(ctx.primes):
        limbs[i] = np.mod(coeffs, q).astype(np.uint64)
    return RnsPolynomial(ctx, limbs, COEFF)


class SecretKey:
    """A ternary RLWE secret with its per-basis limb lifts cached.

    The integer coefficient vector is the source of truth; ``poly(ctx)``
    lifts it into any context (full, rescaled, or extended) and caches
    the lift, so keygen and every decrypt at every level lifts once.
    """

    def __init__(self, coeffs: np.ndarray) -> None:
        self.coeffs = np.asarray(coeffs, dtype=np.int64).copy()
        self.coeffs.flags.writeable = False
        self._lifts: dict[tuple, RnsPolynomial] = {}

    def poly(self, ctx: PolyContext) -> RnsPolynomial:
        key = (ctx.ring_degree, tuple(ctx.primes), ctx.method)
        lifted = self._lifts.get(key)
        if lifted is None:
            lifted = lift_signed(ctx, self.coeffs)
            self._lifts[key] = lifted
        return lifted


class PublicKey:
    """An RLWE encryption pair ``(b, a)`` with ``b = -a*s + e``.

    Both halves are kept NTT-domain so every encryption's two products
    against them are pointwise passes over cached prepared operands.
    """

    def __init__(self, b: RnsPolynomial, a: RnsPolynomial) -> None:
        self.b = b.to_ntt()
        self.a = a.to_ntt()
        self.ctx = self.b.ctx


class KeyGenerator:
    """Seeded generation of the full key set for one parameter choice.

    Args:
        ctx: the top-level :class:`PolyContext`.  Keys default to the
            full limb basis; :meth:`relinearization_key` /
            :meth:`galois_key` also derive keys for any rescaled prefix
            of it (pass the lower context), so key switching keeps
            working after rescales.
        aux_primes: the auxiliary P-part primes for hybrid key switching
            (e.g. ``PrimePool.extension_basis``).
        dnum: hybrid key-switching digit count.
        rng: the *single* :class:`numpy.random.Generator` every sample
            draws from — one seed reproduces the whole key set.
        sigma: RLWE error width.
        hamming_weight: optional sparse-secret weight.
    """

    def __init__(
        self,
        ctx: PolyContext,
        aux_primes: Sequence[Prime | int],
        dnum: int,
        rng: np.random.Generator,
        *,
        sigma: float = DEFAULT_SIGMA,
        hamming_weight: int | None = None,
    ) -> None:
        self.ctx = ctx
        self.aux = [int(p) for p in aux_primes]
        self.dnum = int(dnum)
        digit_ranges(ctx.num_limbs, self.dnum)  # validates dnum
        self.rng = rng
        self.sigma = float(sigma)
        self.ext_ctx = ctx.extend(self.aux)
        self.p_modulus = math.prod(self.aux)
        self.secret = SecretKey(
            sample_ternary(rng, ctx.ring_degree, hamming_weight=hamming_weight)
        )
        self.public = self._public_key()
        # Caches keyed by the (level) prime basis the key lives at, so
        # the same generator serves the keygen level and every rescaled
        # prefix without re-deriving.
        self._relin: dict[tuple, KeySwitchKey] = {}
        self._galois: dict[tuple, KeySwitchKey] = {}

    def _public_key(self) -> PublicKey:
        ctx = self.ctx
        a = ctx.random(self.rng)
        e = lift_signed(ctx, sample_error(self.rng, ctx.ring_degree, sigma=self.sigma))
        b = e.sub(a.multiply(self.secret.poly(ctx)))
        return PublicKey(b, a)

    def _level_ctx(self, ctx: PolyContext | None) -> PolyContext:
        """Validate a requested key level: a prefix of the keygen basis."""
        if ctx is None or ctx is self.ctx:
            return self.ctx
        top = self.ctx
        if (
            ctx.ring_degree != top.ring_degree
            or ctx.method != top.method
            or ctx.primes != top.primes[: ctx.num_limbs]
        ):
            reason = top.mismatch_reason(ctx) or "not a rescaled prefix"
            raise ParameterError(
                f"cannot derive keys for a foreign context: {reason}"
            )
        if ctx.num_limbs < self.dnum:
            raise ParameterError(
                f"cannot derive dnum={self.dnum} switching keys at level "
                f"{ctx.num_limbs}: fewer live limbs than digits"
            )
        return ctx

    def switching_key(
        self, source_coeffs, *, ctx: PolyContext | None = None
    ) -> KeySwitchKey:
        """A hybrid key-switching key moving ``s'``-decryptions under ``s``.

        ``source_coeffs`` are the integer coefficients of the source
        secret ``s'`` (small: ``s^2`` or an automorphism of ``s``); the
        returned :class:`KeySwitchKey` plugs straight into
        ``RnsPolynomial.key_switch`` / ``KeySwitcher.run_hoisted``.
        ``ctx`` selects the live basis the key serves (default: the
        keygen level; pass a rescaled prefix context for lower levels).
        """
        base = self._level_ctx(ctx)
        ext = base.extend(self.aux)
        n = base.ring_degree
        big_q = base.modulus
        sp = lift_signed(ext, source_coeffs)
        s_ext = self.secret.poly(ext)
        pairs = []
        for lo, hi in digit_ranges(base.num_limbs, self.dnum):
            d_mod = math.prod(base.primes[lo:hi])
            d_hat = big_q // d_mod
            g = d_hat * pow(d_hat, -1, d_mod)  # CRT basis of digit d
            consts = np.array(
                [[(self.p_modulus * g) % q] for q in ext.primes],
                dtype=np.uint64,
            )
            a = ext.random(self.rng)
            e = lift_signed(ext, sample_error(self.rng, n, sigma=self.sigma))
            # b = e - a*s + (P * g_d) * s'; the per-limb constant column
            # stays < 2^31 so the product fits uint64 before the fold.
            term = RnsPolynomial(ext, (sp.limbs * consts) % ext.moduli, COEFF)
            b = e.sub(a.multiply(s_ext)).add(term)
            pairs.append((b.to_ntt(), a.to_ntt()))
        return KeySwitchKey(ext, len(self.aux), pairs)

    def relinearization_key(
        self, ctx: PolyContext | None = None
    ) -> KeySwitchKey:
        """The ``s^2 -> s`` switching key (cached per level).

        ``s^2`` is computed exactly as the integer negacyclic square of
        the ternary secret (coefficients bounded by N, so plain int64
        convolution is exact).
        """
        base = self._level_ctx(ctx)
        ksk = self._relin.get(tuple(base.primes))
        if ksk is None:
            s = self.secret.coeffs
            n = self.ctx.ring_degree
            full = np.convolve(s, s)
            s2 = full[:n].copy()
            s2[: n - 1] -= full[n:]  # X^N = -1 wrap
            ksk = self.switching_key(s2, ctx=base)
            self._relin[tuple(base.primes)] = ksk
        return ksk

    def galois_key(
        self, k: int, ctx: PolyContext | None = None
    ) -> KeySwitchKey:
        """The ``sigma_k(s) -> s`` switching key (cached per element/level)."""
        n = self.ctx.ring_degree
        k %= 2 * n
        base = self._level_ctx(ctx)
        cache_key = (k, tuple(base.primes))
        ksk = self._galois.get(cache_key)
        if ksk is None:
            src, neg, _ = automorphism_tables(n, k)
            sp = self.secret.coeffs[src].copy()
            sp[neg] = -sp[neg]
            ksk = self.switching_key(sp, ctx=base)
            self._galois[cache_key] = ksk
        return ksk

    def rotation_key(self, rotation: int) -> KeySwitchKey:
        """Galois key for a slot rotation by ``rotation``."""
        return self.galois_key(galois_element(rotation, self.ctx.ring_degree))

    def conjugation_key(self) -> KeySwitchKey:
        return self.galois_key(conjugation_element(self.ctx.ring_degree))

    def galois_keys(
        self, rotations: Sequence[int] = (), *, conjugate: bool = False
    ) -> dict[int, KeySwitchKey]:
        """Galois keys for a rotation set, keyed by Galois element."""
        n = self.ctx.ring_degree
        elements = [galois_element(r, n) for r in rotations]
        if conjugate:
            elements.append(conjugation_element(n))
        return {k: self.galois_key(k) for k in elements}
