"""Deprecated import path: the module moved to ``repro.scheme._linalg``.

:class:`~repro.scheme._linalg.SlotLinalg` is internal as of the PR 10
API redesign — user programs reach the slot workloads through
:class:`repro.context.CkksContext` (``cc.matvec`` / ``cc.poly_eval`` /
``cc.multiply_vector`` / ``cc.add_vector`` / ``cc.compile``).  This
shim keeps the old path importable for one release, warning once per
name; :func:`~repro.scheme._linalg.bsgs_split` stays a silent re-export
(it is a pure scheduling helper with no better public home yet).
"""

from __future__ import annotations

from repro._compat import warn_once
from repro.scheme import _linalg
from repro.scheme._linalg import bsgs_split  # noqa: F401  (still public)

_DEPRECATED = {
    "SlotLinalg": "CkksContext (cc.matvec / cc.poly_eval / cc.compile)",
}


def __getattr__(name: str):
    try:
        value = getattr(_linalg, name)
    except AttributeError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    if name in _DEPRECATED:
        warn_once(f"repro.scheme.linalg.{name}", _DEPRECATED[name])
    return value
