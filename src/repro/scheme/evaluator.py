"""Homomorphic evaluator over two-component RLWE ciphertexts.

Every operation is a composition of the priced polynomial kernels — the
batched NTT, the fused hybrid key switch, exact rescaling, the Galois
index-permutation passes — so :mod:`repro.scheme.cost` can price each op
the way the paper's Table accounts for composite workloads.

Scheduling notes (the parts that are *not* textbook):

* ``multiply`` relinearizes through the existing
  :class:`~repro.poly.basis_conv.KeySwitchPlan`: the degree-2 tensor
  component ``t2 = c1*d1`` stays NTT-domain and the plan decides the one
  input inverse it costs (the ``intt_input`` step) — no transform is
  scheduled outside the planner.
* ``rotate``/``conjugate`` run the *hoisted* schedule even for a single
  index: ModUp + extended forward NTT of every digit first, then the
  Galois action as a pure NTT-domain slot permutation of the extended
  digits, then MAC / fold / ModDown.  ``rotate_hoisted`` shares that
  ModUp+NTT front across many rotation indices (Halevi–Shoup hoisting),
  so hoisted and independent rotations are bit-identical by
  construction — the fast path is free of semantic drift.
* noise is tracked as a heuristic ``log2 |noise|`` estimate per
  ciphertext (see :attr:`Ciphertext.noise_bits`); the estimate feeds
  ``noise_budget_bits`` and the test-suite sanity assertions, nothing
  cryptographic.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import (
    KeyError_,
    LevelError,
    ParameterError,
    ScaleMismatchError,
)
from repro.poly.basis_conv import HoistedGaloisPlan, KeySwitchKey
from repro.poly.ntt import automorphism_tables
from repro.poly.rns_poly import COEFF, PolyContext, RnsPolynomial
from repro.scheme.ciphertext import Ciphertext, Plaintext
from repro.scheme.keys import (
    DEFAULT_SIGMA,
    KeyGenerator,
    PublicKey,
    SecretKey,
    conjugation_element,
    galois_element,
    lift_signed,
    sample_error,
    sample_ternary,
)

#: relative slack within which two operand scales still count as equal
SCALE_RTOL = 1e-9


def _combine_bits(a: float, b: float) -> float:
    """``log2(2^a + 2^b)`` without leaving log space."""
    hi, lo = (a, b) if a >= b else (b, a)
    return hi + math.log2(1.0 + 2.0 ** (lo - hi))


def validate_rotations(
    rotations: Sequence[int], num_slots: int, op: str
) -> None:
    """Reject zero, out-of-range, and duplicate rotation indices up front.

    Shared by :meth:`Evaluator.rotate_hoisted` and
    :meth:`~repro.scheme._linalg.SlotLinalg.matvec` so a bad rotation
    list fails with a :class:`ParameterError` naming the offending
    index, instead of deep inside the automorphism table lookup.
    Duplicates are detected modulo ``num_slots`` (two indices that
    rotate the packed slots identically would silently collapse into
    one result).
    """
    seen: set[int] = set()
    for r in rotations:
        r = int(r)
        if r == 0:
            raise ParameterError(
                f"{op}: rotation 0 is the identity; drop it from the "
                "rotation list"
            )
        if not -num_slots < r < num_slots:
            raise ParameterError(
                f"{op}: rotation {r} out of range for {num_slots} slots "
                f"(need |rotation| < {num_slots})"
            )
        canonical = r % num_slots
        if canonical in seen:
            raise ParameterError(
                f"{op}: duplicate rotation {r} (rotates by {canonical} "
                f"mod {num_slots}, already requested)"
            )
        seen.add(canonical)


class Evaluator:
    """Encrypt / decrypt and the homomorphic op set for one context.

    Args:
        ctx: the evaluation context (keys must be generated at it).
        relin_key: ``s^2 -> s`` switching key; required by
            :meth:`multiply`.
        galois_keys: mapping Galois element -> switching key; required
            by :meth:`rotate` / :meth:`conjugate` /
            :meth:`rotate_hoisted`.
        sigma: RLWE error width used by :meth:`encrypt` (and by the
            noise estimates).
        key_source: optional :class:`KeyGenerator` the evaluator derives
            *below-keygen-level* switching keys from (lazily, cached in
            the generator).  Without it, key switching after a rescale
            raises :class:`~repro.errors.KeyError_` as before.
    """

    def __init__(
        self,
        ctx: PolyContext,
        *,
        relin_key: KeySwitchKey | None = None,
        galois_keys: dict[int, KeySwitchKey] | None = None,
        sigma: float = DEFAULT_SIGMA,
        key_source: KeyGenerator | None = None,
    ) -> None:
        self.ctx = ctx
        self.relin_key = relin_key
        self.galois_keys = dict(galois_keys or {})
        self.key_source = key_source
        self.sigma = float(sigma)
        # Fresh-encryption noise: |v*e + e0 + e1*s| with ternary v, s —
        # ~ sigma * sqrt(2N) spread, padded by 8x for the tail.
        self._fresh_bits = math.log2(
            8.0 * self.sigma * math.sqrt(2.0 * ctx.ring_degree)
        )

    @classmethod
    def from_keygen(
        cls,
        keygen: KeyGenerator,
        *,
        rotations: Sequence[int] = (),
        conjugate: bool = False,
    ) -> Evaluator:
        """An evaluator wired with a keygen's relin + Galois keys."""
        return cls(
            keygen.ctx,
            relin_key=keygen.relinearization_key(),
            galois_keys=keygen.galois_keys(rotations, conjugate=conjugate),
            sigma=keygen.sigma,
            key_source=keygen,
        )

    # -- encryption --------------------------------------------------------
    def encrypt(
        self, pt: Plaintext, pk: PublicKey, rng: np.random.Generator
    ) -> Ciphertext:
        """Public-key RLWE encryption of ``pt`` at its scale.

        ``c0 = v*b + e0 + m``, ``c1 = v*a + e1`` with ternary ``v`` and
        rounded-Gaussian errors, all drawn from ``rng`` in fixed order
        (deterministic per seed).
        """
        ctx = pt.ctx
        reason = self.ctx.mismatch_reason(ctx)
        if reason is not None:
            raise ParameterError(f"plaintext context: {reason}")
        reason = self.ctx.mismatch_reason(pk.ctx)
        if reason is not None:
            raise KeyError_(f"public key context: {reason}")
        n = ctx.ring_degree
        v = lift_signed(ctx, sample_ternary(rng, n)).to_ntt()
        e0 = lift_signed(ctx, sample_error(rng, n, sigma=self.sigma))
        e1 = lift_signed(ctx, sample_error(rng, n, sigma=self.sigma))
        c0 = v.pointwise_multiply(pk.b).to_coeff().add(e0).add(pt.poly.to_coeff())
        c1 = v.pointwise_multiply(pk.a).to_coeff().add(e1)
        return Ciphertext(c0, c1, scale=pt.scale, noise_bits=self._fresh_bits)

    def decrypt(self, ct: Ciphertext, sk: SecretKey) -> Plaintext:
        """``c0 + c1 * s`` at the ciphertext's level, as a plaintext."""
        s = sk.poly(ct.ctx)
        m = ct.c0.to_coeff().add(ct.c1.to_coeff().multiply(s))
        m.state.scale = ct.scale
        return Plaintext(m)

    # -- operand checks ----------------------------------------------------
    def _check_pair(self, a: Ciphertext, b: Ciphertext, op: str) -> None:
        if a.level != b.level:
            raise LevelError(
                f"{op}: level mismatch: {a.level} vs {b.level} live limbs "
                "(rescale the higher-level operand down first)"
            )
        reason = a.ctx.mismatch_reason(b.ctx)
        if reason is not None:
            raise ParameterError(f"{op}: {reason}")

    def _check_scales(self, sa: float, sb: float, op: str) -> None:
        if not math.isclose(sa, sb, rel_tol=SCALE_RTOL):
            raise ScaleMismatchError(
                f"{op}: scale mismatch: 2^{math.log2(sa):.3f} vs "
                f"2^{math.log2(sb):.3f}; rescale/re-encode to a common "
                "scale first"
            )

    def _check_key_level(self, ksk: KeySwitchKey, ct: Ciphertext, op: str):
        if ksk.base_primes != ct.ctx.primes:
            raise KeyError_(
                f"{op}: key was generated for a {len(ksk.base_primes)}-limb "
                f"basis but the ciphertext sits at level {ct.level}; "
                "key switching below the keygen level needs a key_source "
                "(Evaluator.from_keygen wires one)"
            )

    def _relin_for(self, ct: Ciphertext, op: str) -> KeySwitchKey:
        """The ``s^2 -> s`` key at the operand's level.

        The keygen-level key is used directly; below it, the key is
        derived (once, cached) from ``key_source``.
        """
        ksk = self.relin_key
        if ksk is None:
            raise KeyError_(
                f"{op} requires a relinearization key "
                "(KeyGenerator.relinearization_key)"
            )
        if ksk.base_primes != ct.ctx.primes and self.key_source is not None:
            ksk = self.key_source.relinearization_key(ct.ctx)
        self._check_key_level(ksk, ct, op)
        return ksk

    def _galois_for(self, k: int, ct: Ciphertext, op: str) -> KeySwitchKey:
        """The ``sigma_k(s) -> s`` key at the operand's level.

        The rotation set stays an up-front contract: element ``k`` must
        be among the configured ``galois_keys`` even when the actual key
        is derived at a lower level.
        """
        ksk = self._galois_key_for(k, op)
        if ksk.base_primes != ct.ctx.primes and self.key_source is not None:
            ksk = self.key_source.galois_key(k, ct.ctx)
        self._check_key_level(ksk, ct, op)
        return ksk

    # -- linear ops --------------------------------------------------------
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_pair(a, b, "add")
        self._check_scales(a.scale, b.scale, "add")
        return Ciphertext(
            a.c0.add(b.c0),
            a.c1.add(b.c1),
            scale=a.scale,
            noise_bits=_combine_bits(a.noise_bits, b.noise_bits),
        )

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_pair(a, b, "sub")
        self._check_scales(a.scale, b.scale, "sub")
        return Ciphertext(
            a.c0.sub(b.c0),
            a.c1.sub(b.c1),
            scale=a.scale,
            noise_bits=_combine_bits(a.noise_bits, b.noise_bits),
        )

    def negate(self, ct: Ciphertext) -> Ciphertext:
        return Ciphertext(
            ct.c0.negate(),
            ct.c1.negate(),
            scale=ct.scale,
            noise_bits=ct.noise_bits,
        )

    def add_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        self._check_scales(ct.scale, pt.scale, "add_plain")
        reason = ct.ctx.mismatch_reason(pt.ctx)
        if reason is not None:
            raise ParameterError(f"add_plain: {reason}")
        return Ciphertext(
            ct.c0.to_coeff().add(pt.poly.to_coeff()),
            ct.c1.to_coeff(),
            scale=ct.scale,
            noise_bits=ct.noise_bits,
        )

    def multiply_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Scale-multiplying plaintext product of both components."""
        reason = ct.ctx.mismatch_reason(pt.ctx)
        if reason is not None:
            raise ParameterError(f"multiply_plain: {reason}")
        noise = (
            ct.noise_bits
            + math.log2(pt.scale)
            + 0.5 * math.log2(ct.ctx.ring_degree)
        )
        return Ciphertext(
            ct.c0.multiply(pt.poly),
            ct.c1.multiply(pt.poly),
            scale=ct.scale * pt.scale,
            noise_bits=noise,
        )

    # -- multiply + relinearize --------------------------------------------
    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """HMult fused with relinearization.

        Tensor the two pairs in the NTT domain (four forward transforms,
        four pointwise products — the cross terms through one fused
        :meth:`RnsPolynomial.multiply_accumulate`), then switch the
        degree-2 component back to the ``(1, s)`` basis through the
        relinearization key, scheduled by the existing
        :class:`KeySwitchPlan` (NTT-domain input, coefficient output).
        """
        self._check_pair(a, b, "multiply")
        relin = self._relin_for(a, "multiply")
        a0, a1 = a.c0.to_ntt(), a.c1.to_ntt()
        b0, b1 = b.c0.to_ntt(), b.c1.to_ntt()
        t0 = a0.pointwise_multiply(b0)
        t1 = RnsPolynomial.multiply_accumulate([a0, a1], [b1, b0])
        t2 = a1.pointwise_multiply(b1)
        plan = t2.plan_key_switch(relin, output_domain=COEFF)
        d0, d1 = t2.key_switch(relin, plan=plan)
        c0 = t0.to_coeff().add(d0)
        c1 = t1.to_coeff().add(d1)
        noise = _combine_bits(
            _combine_bits(
                a.noise_bits + math.log2(b.scale),
                b.noise_bits + math.log2(a.scale),
            )
            + 0.5 * math.log2(a.ctx.ring_degree),
            self._ks_bits(relin),
        )
        return Ciphertext(c0, c1, scale=a.scale * b.scale, noise_bits=noise)

    def _ks_bits(self, ksk: KeySwitchKey) -> float:
        """Heuristic key-switching noise: ``sum_d x_d e_d / P`` spread."""
        return math.log2(self.sigma * ksk.dnum * self.ctx.ring_degree)

    # -- rescaling ---------------------------------------------------------
    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Drop the last limb from both components, dividing the scale."""
        if ct.level < 2:
            raise LevelError(
                f"cannot rescale a level-{ct.level} ciphertext: "
                "no limb left to drop"
            )
        q_last = ct.ctx.primes[-1]
        c0 = ct.c0.to_coeff().exact_rescale()
        c1 = ct.c1.to_coeff().exact_rescale()
        noise = max(
            ct.noise_bits - math.log2(q_last),
            0.5 * math.log2(ct.ctx.ring_degree) + 1.0,  # rounding floor
        )
        return Ciphertext(c0, c1, scale=ct.scale / q_last, noise_bits=noise)

    # -- Galois rotations --------------------------------------------------
    def _galois_key_for(self, k: int, op: str) -> KeySwitchKey:
        ksk = self.galois_keys.get(k)
        if ksk is None:
            raise KeyError_(
                f"{op}: no Galois key for element {k}; generate it via "
                "KeyGenerator.galois_key and pass it in galois_keys"
            )
        return ksk

    def _finish_galois(
        self,
        ct: Ciphertext,
        switcher,
        hoisted: np.ndarray,
        k: int,
        ksk: KeySwitchKey,
    ) -> Ciphertext:
        """Per-rotation tail: permute hoisted digits, MAC, ModDown, add."""
        perm = automorphism_tables(ct.ctx.ring_degree, k)[2]
        d0, d1 = switcher.run_hoisted(hoisted, ksk, perm=perm)
        c0 = ct.c0.to_coeff().automorphism(k).add(d0)
        noise = _combine_bits(ct.noise_bits, self._ks_bits(ksk))
        return Ciphertext(c0, d1, scale=ct.scale, noise_bits=noise)

    def apply_galois(self, ct: Ciphertext, k: int) -> Ciphertext:
        """``sigma_k`` of the ciphertext, switched back under ``s``."""
        ksk = self._galois_for(k, ct, "apply_galois")
        switcher = ct.ctx.key_switcher(ksk.aux_primes, ksk.dnum)
        hoisted = switcher.hoist(ct.c1.to_coeff())
        return self._finish_galois(ct, switcher, hoisted, k, ksk)

    def rotate(self, ct: Ciphertext, rotation: int) -> Ciphertext:
        """Rotate by ``rotation`` slots (Galois element ``5^rotation``).

        Under the canonical-embedding packing
        (:class:`~repro.scheme.encoder.CanonicalEncoder`, slots
        orbit-ordered by powers of 5) this is exactly the cyclic shift
        ``np.roll(slots, -rotation)``; on a sparse packing the shift
        wraps mod the packed slot count.
        """
        return self.apply_galois(ct, galois_element(rotation, self.ctx.ring_degree))

    def conjugate(self, ct: Ciphertext) -> Ciphertext:
        """``sigma_{-1}``: slot-wise complex conjugation under the
        canonical-embedding packing."""
        return self.apply_galois(ct, conjugation_element(self.ctx.ring_degree))

    def rotate_hoisted(
        self, ct: Ciphertext, rotations: Sequence[int]
    ) -> dict[int, Ciphertext]:
        """Many rotations of one ciphertext sharing a single ModUp.

        The expensive front of every rotation's key switch — ModUp of
        each digit onto ``Q ∪ P`` plus the extended forward NTT — is
        input-only, so it is paid once and every rotation index reuses
        the hoisted digit tensor through its own slot permutation + MAC
        + ModDown tail.  Bit-identical to calling :meth:`rotate` per
        index (both run :meth:`KeySwitcher.run_hoisted` on the same
        tensor), just without the repeated front.
        """
        if not rotations:
            raise ParameterError("rotate_hoisted needs >= 1 rotation index")
        n = self.ctx.ring_degree
        validate_rotations(rotations, n // 2, "rotate_hoisted")
        elements = [galois_element(r, n) for r in rotations]
        keys = [self._galois_for(k, ct, "rotate_hoisted") for k in elements]
        first = keys[0]
        for ksk in keys:
            if (ksk.aux_primes != first.aux_primes or ksk.dnum != first.dnum):
                raise ParameterError(
                    "rotate_hoisted: all Galois keys must share one "
                    "(aux basis, dnum) configuration to share a ModUp"
                )
        switcher = ct.ctx.key_switcher(first.aux_primes, first.dnum)
        plan = HoistedGaloisPlan.build(switcher, elements, keys)
        c0_coeff = ct.c0.to_coeff()
        out: dict[int, Ciphertext] = {}
        for rotation, k, ksk, (d0, d1) in zip(
            rotations, elements, keys, plan.run(ct.c1)
        ):
            c0 = c0_coeff.automorphism(k).add(d0)
            noise = _combine_bits(ct.noise_bits, self._ks_bits(ksk))
            out[rotation] = Ciphertext(c0, d1, scale=ct.scale, noise_bits=noise)
        return out
