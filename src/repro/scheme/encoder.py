"""CKKS canonical-embedding SIMD encoder (the special FFT over 2N-th roots).

A real-coefficient element of ``R = Z[X]/(X^N + 1)`` is determined by its
values at the ``N`` primitive complex ``2N``-th roots of unity, which come
in ``N/2`` conjugate pairs — so a plaintext polynomial carries exactly
``N/2`` independent *complex slots*, and ring multiplication acts on them
slot-wise (SIMD).  This module converts between ``complex128`` slot
vectors and :class:`~repro.scheme.ciphertext.Plaintext` RNS coefficients:

* the transform is the *negacyclic special FFT*: the same iterative
  Cooley-Tukey / Gentleman-Sande butterfly schedule as the modular NTT
  engines (natural-order coefficients, bit-reversed evaluations at
  ``psi^(2*brv[t]+1)``), run over ``complex128`` with twiddles sliced
  from the per-``N``-cached :func:`~repro.poly.ntt.complex_root_powers`
  table;
* slots are *orbit-ordered* by powers of 5
  (:func:`~repro.poly.ntt.canonical_slot_tables`): slot ``j`` is the
  evaluation at ``psi^(5^j mod 2N)``.  Because the Galois rotation
  elements are the same powers of 5, ``Evaluator.rotate(r)`` is exactly
  the cyclic slot shift ``np.roll(slots, -r)`` and
  ``Evaluator.conjugate`` is exactly ``np.conj(slots)`` — the property
  tests pin this against the automorphism kernels;
* sparse packing: ``num_slots`` may be any divisor of ``N/2``; the slot
  vector is replicated across the full orbit on encode and the copies
  are averaged on decode (rotations then act mod ``num_slots``).

Precision: encoding quantizes each coefficient to ``1/scale``, so a
round trip is exact to about ``N/2 / scale`` in the worst case (each of
the ``N`` coefficient roundings contributes at most ``1/(2*scale)`` to a
slot value); :meth:`CanonicalEncoder.roundtrip_precision` tracks the
bits actually achieved for a given vector.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.errors import LayoutError, ParameterError
from repro.poly.ntt import (
    bit_reverse_permutation,
    canonical_slot_tables,
    complex_root_powers,
)
from repro.poly.rns_poly import PolyContext
from repro.scheme.ciphertext import Plaintext
from repro.scheme.keys import lift_signed

#: above this coefficient magnitude the int64 fast path could overflow,
#: so encode falls back to exact Python-int CRT decomposition
_INT64_SAFE = 2.0**62


@lru_cache(maxsize=64)
def _fft_twiddles(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Bit-reversed complex twiddle tables ``(forward, inverse)`` per N.

    Exactly the modular engines' table layout — ``psi^k`` for
    ``k in [0, N)`` gathered through the bit-reversal permutation — with
    ``psi = exp(i*pi/N)`` the complex primitive ``2N``-th root; the
    inverse table holds the ``psi^-k`` powers.  Cached and read-only.
    """
    roots = complex_root_powers(n)
    brv = bit_reverse_permutation(n)
    fwd = roots[:n][brv]
    inv = roots[(-np.arange(n)) % (2 * n)][brv]
    for arr in (fwd, inv):
        arr.flags.writeable = False
    return fwd, inv


def special_fft(coeffs: np.ndarray) -> np.ndarray:
    """Coefficients (natural order) -> evaluations (bit-reversed order).

    The complex twin of :meth:`~repro.poly.ntt.NegacyclicNTT.forward`:
    iterative CT-DIT, stage ``m`` reading the contiguous twiddle slice
    ``[m, 2m)``.  Output slot ``t`` holds the value at
    ``psi^(2*brv[t]+1)``.
    """
    x = np.array(coeffs, dtype=np.complex128)
    n = x.size
    if n < 2 or n & (n - 1):
        raise ParameterError(f"special FFT needs a power-of-two N, got {n}")
    fwd, _ = _fft_twiddles(n)
    t = n
    m = 1
    while m < n:
        t >>= 1
        blk = x.reshape(m, 2 * t)
        u = blk[:, :t].copy()
        v = blk[:, t:] * fwd[m : 2 * m, None]
        blk[:, :t] = u + v
        blk[:, t:] = u - v
        m <<= 1
    return x


def special_ifft(values: np.ndarray) -> np.ndarray:
    """Evaluations (bit-reversed order) -> coefficients (natural order).

    GS-DIF butterflies then the final ``1/N`` scaling, mirroring
    :meth:`~repro.poly.ntt.NegacyclicNTT.inverse`.
    """
    x = np.array(values, dtype=np.complex128)
    n = x.size
    if n < 2 or n & (n - 1):
        raise ParameterError(f"special iFFT needs a power-of-two N, got {n}")
    _, inv = _fft_twiddles(n)
    t = 1
    m = n
    while m > 1:
        h = m >> 1
        blk = x.reshape(h, 2 * t)
        u = blk[:, :t].copy()
        v = blk[:, t:].copy()
        blk[:, :t] = u + v
        blk[:, t:] = (u - v) * inv[h : 2 * h, None]
        t <<= 1
        m = h
    x /= n
    return x


class CanonicalEncoder:
    """Encode/decode between complex slot vectors and RNS plaintexts.

    One encoder serves one :class:`PolyContext`; the heavy tables
    (complex roots, bit-reversed twiddles, the power-of-5 slot orbit)
    are cached per ring degree at module level, so many encoders /
    contexts over the same ``N`` share them.

    Args:
        ctx: the polynomial context plaintexts are lifted into.  Decode
            accepts plaintexts at any level of the same ring (the slot
            structure does not depend on the limb basis).
    """

    def __init__(self, ctx: PolyContext) -> None:
        if ctx.ring_degree < 4:
            raise ParameterError(
                f"canonical embedding needs N >= 4, got {ctx.ring_degree}"
            )
        self.ctx = ctx
        self.n = ctx.ring_degree
        #: the full slot count N/2
        self.slots = self.n // 2
        self.slot_idx, self.conj_idx = canonical_slot_tables(self.n)

    # -- the embedding (float-level, no scaling) ---------------------------
    def _resolve_slots(self, values: np.ndarray, num_slots: int | None) -> int:
        if num_slots is None:
            num_slots = values.size
        num_slots = Plaintext.validate_slots(self.n, num_slots)
        if values.size != num_slots:
            raise LayoutError(
                f"{values.size} slot values for a {num_slots}-slot encoding"
            )
        return num_slots

    def embed(self, values, num_slots: int | None = None) -> np.ndarray:
        """Slot vector -> real coefficient vector (float64, unscaled).

        Scatters the slots (and their conjugates) onto the full orbit,
        replicating ``N/2 / num_slots`` times for sparse packings, and
        runs the inverse special FFT; the imaginary parts cancel by
        conjugate symmetry, so only rounding dust is discarded.
        """
        values = np.asarray(values, dtype=np.complex128).ravel()
        num_slots = self._resolve_slots(values, num_slots)
        full = np.tile(values, self.slots // num_slots)
        vals = np.zeros(self.n, dtype=np.complex128)
        vals[self.slot_idx] = full
        vals[self.conj_idx] = np.conj(full)
        return special_ifft(vals).real

    def project(self, coeffs, num_slots: int | None = None) -> np.ndarray:
        """Real coefficient vector -> slot vector (the decode transform).

        Runs the forward special FFT and gathers the power-of-5 orbit;
        a sparse packing averages its replicated copies (the exact
        inverse of :meth:`embed`'s replication, and a free noise
        reduction on decrypted data).
        """
        coeffs = np.asarray(coeffs, dtype=np.float64).ravel()
        if coeffs.size != self.n:
            raise LayoutError(
                f"expected {self.n} coefficients, got {coeffs.size}"
            )
        if num_slots is None:
            num_slots = self.slots
        num_slots = Plaintext.validate_slots(self.n, num_slots)
        z = special_fft(coeffs)[self.slot_idx]
        if num_slots < self.slots:
            z = z.reshape(-1, num_slots).mean(axis=0)
        return z

    # -- Plaintext round trip ----------------------------------------------
    def encode(
        self, values, scale: float, *, num_slots: int | None = None
    ) -> Plaintext:
        """Encode a complex slot vector at ``scale`` into a Plaintext.

        The embedded coefficients are multiplied by ``scale`` and
        rounded to nearest integers, then CRT-lifted into the context's
        limb basis (an exact big-int path takes over beyond int64 range,
        so scale-stacked workloads like BSGS polynomial evaluation can
        encode at ``Delta^k``).  Raises :class:`ParameterError` when a
        rounded coefficient would exceed ``Q/2``.
        """
        if not math.isfinite(scale) or scale <= 0:
            raise ParameterError(f"encoding scale must be > 0, got {scale}")
        values = np.asarray(values, dtype=np.complex128).ravel()
        num_slots = self._resolve_slots(values, num_slots)
        scaled = self.embed(values, num_slots) * float(scale)
        peak = float(np.abs(scaled).max())
        if not math.isfinite(peak):
            raise ParameterError("encoded coefficients overflow float64")
        if 2 * int(math.ceil(peak)) >= self.ctx.modulus:
            j = int(np.abs(scaled).argmax())
            raise ParameterError(
                f"encoded coefficient ~2^{math.log2(peak):.1f} at index {j} "
                f"exceeds Q/2: value too large for this (scale, level)"
            )
        if peak < _INT64_SAFE:
            poly = lift_signed(self.ctx, np.rint(scaled).astype(np.int64))
        else:
            poly = self.ctx.from_int_coeffs([int(round(float(c))) for c in scaled])
        poly.state.scale = float(scale)
        return Plaintext(poly, slots=num_slots)

    def decode(self, pt: Plaintext, *, num_slots: int | None = None) -> np.ndarray:
        """Centered CRT reconstruction, descaling, and slot projection.

        ``num_slots`` defaults to the plaintext's recorded slot count
        (full packing when it carries none, e.g. fresh decryptions).
        """
        if pt.ctx.ring_degree != self.n:
            raise ParameterError(
                f"plaintext ring degree {pt.ctx.ring_degree} != "
                f"encoder ring degree {self.n}"
            )
        if num_slots is None:
            num_slots = pt.slots if pt.slots is not None else self.slots
        ints = pt.poly.to_coeff().to_int_coeffs(centered=True)
        coeffs = np.array([float(c) for c in ints], dtype=np.float64)
        return self.project(coeffs / pt.scale, num_slots)

    def roundtrip_precision(
        self, values, scale: float, *, num_slots: int | None = None
    ) -> float:
        """Bits of slot precision an encode→decode round trip achieves.

        Returns ``-log2(max_j |decode(encode(v))_j - v_j|)`` — the
        tracking gauge for the quantization error budget (about
        ``scale_bits - log2(N)`` bits in the worst case).
        """
        values = np.asarray(values, dtype=np.complex128).ravel()
        back = self.decode(self.encode(values, scale, num_slots=num_slots))
        err = float(np.abs(back - values).max())
        return math.inf if err == 0.0 else -math.log2(err)
