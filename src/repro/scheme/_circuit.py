"""Circuit compiler: trace an evaluator program, plan it, replay it.

PRs 3–5 each gave one composite op an ahead-of-time plan — the
:class:`~repro.poly.basis_conv.KeySwitchPlan` schedule, the hoisted
rotation tensor, the BSGS matvec/poly_eval schedules — and each beat its
eager composition while staying bit-identical.  This module generalizes
the discipline to *whole programs*:

* :class:`CircuitTracer` is an :class:`~repro.scheme.evaluator.Evaluator`
  that records instead of computing: every op appends a node to a DAG
  and returns a :class:`TracedCiphertext` carrying only metadata (scale,
  level, context).  Any code written against the evaluator interface —
  including :class:`~repro.scheme._linalg.SlotLinalg` compositions —
  traces unmodified.
* The **planner** (:meth:`CircuitTracer.compile`) rewrites the DAG:
  common subexpressions are shared (hash-consing at trace time), every
  group of Galois ops on one source shares a single hoisted ModUp,
  rescale chains fuse into the producing key switch / plaintext product,
  plaintext-multiply-accumulate trees collapse into fused NTT-domain
  MACs, and intermediates whose consumers all accept NTT operands stay
  in the NTT domain across op boundaries.  Every transformation
  preserves the ring-level expression exactly, so compiled execution is
  **bit-identical** to the eager evaluator (the property tests replay
  seeded random DAGs both ways and compare limbs).
* The **executor** (:meth:`CircuitPlan.run`) replays the step list
  against fresh inputs with zero per-call planning or allocation: the
  key-switch schedules, automorphism permutations, hoist tensors, lazy
  accumulators and encoded (transformed, backend-prepared) plaintexts
  are all captured once per plan.  Noise estimates are computed at run
  time per step with the evaluator's exact formulas — they depend on
  the inputs, the schedule does not.

:class:`CircuitPlan` satisfies the :class:`repro.plan.Plan` protocol:
``build`` / ``run`` / ``cost`` / ``validate``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro import hooks
from repro.errors import (
    CheddarError,
    LevelError,
    ParameterError,
    PlanExecutionError,
    TraceError,
)
from repro.poly.basis_conv import KeySwitchKey
from repro.poly.cost import CostModel, OpCost, _merge
from repro.poly.lazy import LazyAccumulator
from repro.poly.ntt import automorphism_tables
from repro.poly.rns_poly import (
    _FP_MIX,
    COEFF,
    NTT,
    PolyContext,
    RnsPolynomial,
    data_fingerprint,
)
from repro.scheme.ciphertext import Ciphertext, Plaintext
from repro.scheme.cost import SchemeCostModel
from repro.scheme.evaluator import (
    SCALE_RTOL,
    Evaluator,
    _combine_bits,
    validate_rotations,
)
from repro.scheme.keys import galois_element

__all__ = ["CircuitTracer", "TracedCiphertext", "CircuitPlan"]


class _Node:
    """One recorded evaluator operation (or a declared input)."""

    __slots__ = ("id", "op", "args", "payload", "scale", "ctx")

    def __init__(self, nid, op, args, payload, scale, ctx):
        self.id = nid
        self.op = op
        self.args = tuple(args)
        self.payload = payload
        self.scale = float(scale)
        self.ctx = ctx

    @property
    def level(self) -> int:
        return self.ctx.num_limbs


class TracedCiphertext:
    """A symbolic ciphertext: metadata only, produced by a tracer.

    Carries exactly the state the evaluator's soundness checks consult
    (scale / level / context); asking for numeric data — the component
    polynomials, the noise estimate — raises
    :class:`~repro.errors.TraceError`, because a trace has none.
    """

    __slots__ = ("node", "tracer")

    def __init__(self, node: _Node, tracer: CircuitTracer) -> None:
        self.node = node
        self.tracer = tracer

    @property
    def scale(self) -> float:
        return self.node.scale

    @property
    def level(self) -> int:
        return self.node.level

    @property
    def ctx(self) -> PolyContext:
        return self.node.ctx

    @property
    def domain(self) -> str:
        # Every eager evaluator op materializes coefficient-domain
        # ciphertexts; the planner's NTT persistence is internal.
        return COEFF

    def _no_data(self, what: str):
        raise TraceError(
            f"traced ciphertext has no {what}: the tracer records the "
            "program, it does not execute it (compile the circuit and "
            "run the plan to get numbers)"
        )

    @property
    def c0(self):
        self._no_data("component polynomials")

    @property
    def c1(self):
        self._no_data("component polynomials")

    @property
    def noise_bits(self):
        self._no_data("noise estimate")

    @property
    def noise_budget_bits(self):
        self._no_data("noise estimate")


class CircuitTracer(Evaluator):
    """An evaluator that records a program DAG instead of executing it.

    Built from a configured eager evaluator (whose context and keys it
    shares), it exposes the same op surface; each call runs the same
    soundness checks the eager op would (level / context / scale / key
    availability) against the traced metadata, then appends a node.
    Structurally identical calls are hash-consed to one node, so e.g.
    the balanced power tree of ``poly_eval`` traces to a shared DAG with
    or without the implementation's own cache.

    ``encrypt`` / ``decrypt`` raise :class:`TraceError`: a circuit's
    boundary is :meth:`input` and the compiled plan's outputs.
    """

    def __init__(self, evaluator: Evaluator) -> None:
        super().__init__(
            evaluator.ctx,
            relin_key=evaluator.relin_key,
            galois_keys=evaluator.galois_keys,
            sigma=evaluator.sigma,
            key_source=evaluator.key_source,
        )
        self.nodes: list[_Node] = []
        self._cse: dict[tuple, _Node] = {}
        self._input_names: set[str] = set()

    # -- node construction -------------------------------------------------
    def _record(self, op, args, payload_key, payload, scale, ctx):
        key = (op, tuple(a.id for a in args), payload_key)
        node = self._cse.get(key)
        if node is None:
            node = _Node(len(self.nodes), op, args, payload, scale, ctx)
            self.nodes.append(node)
            self._cse[key] = node
        return TracedCiphertext(node, self)

    def _tn(self, ct, op: str) -> _Node:
        if not isinstance(ct, TracedCiphertext) or ct.tracer is not self:
            raise TraceError(
                f"{op}: operand is not a traced ciphertext of this tracer"
            )
        return ct.node

    # -- circuit boundary --------------------------------------------------
    def input(self, name: str, *, scale: float) -> TracedCiphertext:
        """Declare a named circuit input at the tracer's context/level."""
        if not name:
            raise ParameterError("circuit inputs need a non-empty name")
        if name in self._input_names:
            raise ParameterError(f"duplicate circuit input name {name!r}")
        if scale <= 0:
            raise ParameterError(f"input scale must be > 0, got {scale}")
        self._input_names.add(name)
        return self._record("input", (), name, name, scale, self.ctx)

    def encrypt(self, pt, pk, rng):
        raise TraceError(
            "encrypt is not traceable: declare circuit inputs with "
            "tracer.input(name, scale=...) and encrypt outside the circuit"
        )

    def decrypt(self, ct, sk):
        raise TraceError(
            "decrypt is not traceable: run the compiled plan and decrypt "
            "its outputs outside the circuit"
        )

    # -- recorded ops ------------------------------------------------------
    def add(self, a, b):
        an, bn = self._tn(a, "add"), self._tn(b, "add")
        self._check_pair(a, b, "add")
        self._check_scales(a.scale, b.scale, "add")
        return self._record("add", (an, bn), None, None, a.scale, an.ctx)

    def sub(self, a, b):
        an, bn = self._tn(a, "sub"), self._tn(b, "sub")
        self._check_pair(a, b, "sub")
        self._check_scales(a.scale, b.scale, "sub")
        return self._record("sub", (an, bn), None, None, a.scale, an.ctx)

    def negate(self, ct):
        n = self._tn(ct, "negate")
        return self._record("negate", (n,), None, None, ct.scale, n.ctx)

    def add_plain(self, ct, pt: Plaintext):
        n = self._tn(ct, "add_plain")
        self._check_scales(ct.scale, pt.scale, "add_plain")
        reason = ct.ctx.mismatch_reason(pt.ctx)
        if reason is not None:
            raise ParameterError(f"add_plain: {reason}")
        return self._record(
            "add_plain", (n,), id(pt), pt, ct.scale, n.ctx
        )

    def multiply_plain(self, ct, pt: Plaintext):
        n = self._tn(ct, "multiply_plain")
        reason = ct.ctx.mismatch_reason(pt.ctx)
        if reason is not None:
            raise ParameterError(f"multiply_plain: {reason}")
        return self._record(
            "multiply_plain", (n,), id(pt), pt, ct.scale * pt.scale, n.ctx
        )

    def multiply(self, a, b):
        an, bn = self._tn(a, "multiply"), self._tn(b, "multiply")
        if self.relin_key is None:
            raise TraceError(
                "multiply requires a relinearization key "
                "(KeyGenerator.relinearization_key)"
            )
        self._check_pair(a, b, "multiply")
        relin = self._relin_for(a, "multiply")
        # Products commute; canonicalize the argument order so a*b and
        # b*a hash-cons to one node.  (multiply IS commutative here: the
        # tensor components t0/t1/t2 and the noise estimate are all
        # symmetric in the operands.)
        if an.id > bn.id:
            an, bn = bn, an
        return self._record(
            "multiply", (an, bn), None, relin, a.scale * b.scale, an.ctx
        )

    def rescale(self, ct):
        n = self._tn(ct, "rescale")
        if ct.level < 2:
            raise LevelError(
                f"cannot rescale a level-{ct.level} ciphertext: "
                "no limb left to drop"
            )
        q_last = n.ctx.primes[-1]
        return self._record(
            "rescale", (n,), None, None, ct.scale / q_last, n.ctx.drop_last()
        )

    def apply_galois(self, ct, k: int):
        n = self._tn(ct, "apply_galois")
        ksk = self._galois_for(k, ct, "apply_galois")
        return self._record("galois", (n,), int(k), (int(k), ksk), ct.scale, n.ctx)

    # rotate / conjugate are inherited: they resolve the Galois element
    # and call apply_galois, which is all the tracer needs.

    def rotate_hoisted(self, ct, rotations: Sequence[int]):
        """Trace-mode hoisted rotations: plain Galois nodes per index.

        The *planner* rediscovers the shared ModUp — every Galois node
        on one source joins one hoist group at compile time — so the
        trace does not need a dedicated hoisted op.  Validation matches
        the eager path.
        """
        self._tn(ct, "rotate_hoisted")
        if not rotations:
            raise ParameterError("rotate_hoisted needs >= 1 rotation index")
        n = self.ctx.ring_degree
        validate_rotations(rotations, n // 2, "rotate_hoisted")
        elements = [galois_element(r, n) for r in rotations]
        keys = [self._galois_for(k, ct, "rotate_hoisted") for k in elements]
        first = keys[0]
        for ksk in keys:
            if (ksk.aux_primes != first.aux_primes or ksk.dnum != first.dnum):
                raise ParameterError(
                    "rotate_hoisted: all Galois keys must share one "
                    "(aux basis, dnum) configuration to share a ModUp"
                )
        return {
            r: self.apply_galois(ct, k) for r, k in zip(rotations, elements)
        }

    # -- compilation -------------------------------------------------------
    def compile(self, outputs) -> CircuitPlan:
        """Plan the recorded DAG down to the named ``outputs``.

        ``outputs`` is either a single :class:`TracedCiphertext` (the
        plan's :meth:`~CircuitPlan.run` then returns a bare
        :class:`Ciphertext`) or a ``{name: traced}`` mapping.
        """
        if isinstance(outputs, TracedCiphertext):
            out_nodes = {"out": self._tn(outputs, "compile")}
            single = True
        elif isinstance(outputs, Mapping):
            if not outputs:
                raise ParameterError("compile needs at least one output")
            out_nodes = {
                str(name): self._tn(tc, "compile")
                for name, tc in outputs.items()
            }
            single = False
        else:
            raise ParameterError(
                "compile takes a traced ciphertext or a {name: traced} "
                f"mapping, got {type(outputs).__name__}"
            )
        return CircuitPlan(self, out_nodes, single)


class _Step:
    """One executor step of a compiled plan."""

    __slots__ = ("kind", "dst", "srcs", "payload", "rescales", "emit_ntt",
                 "level", "label")

    def __init__(self, kind, dst=-1, srcs=(), payload=None, rescales=0,
                 emit_ntt=False, level=0, label=""):
        self.kind = kind
        self.dst = dst
        self.srcs = tuple(srcs)
        self.payload = payload
        self.rescales = rescales
        self.emit_ntt = emit_ntt
        self.level = level
        #: trace-node provenance ("n<id>:<op>") for analyzer diagnostics
        self.label = label


#: consumer ops that accept an NTT-domain operand without forcing an
#: inverse transform the eager schedule would not also pay
_NTT_OK_CONSUMERS = frozenset(
    {"add", "sub", "negate", "multiply", "multiply_plain"}
)

#: ops whose producing step can absorb a following single-consumer
#: rescale (they materialize coefficient-domain components anyway)
_RESCALE_FUSABLE = frozenset({"multiply", "galois", "multiply_plain"})


class CircuitPlan:
    """A compiled evaluator program: step list + captured constants.

    Satisfies the :class:`repro.plan.Plan` protocol.  Build once
    (through :meth:`CircuitTracer.compile` / :meth:`build`), run many:
    every :meth:`run` replays the same schedule against fresh inputs —
    no planning, no plaintext encoding, no scratch allocation.
    """

    def __init__(
        self,
        tracer: CircuitTracer,
        out_nodes: dict[str, _Node],
        single: bool,
    ) -> None:
        self.ctx = tracer.ctx
        self._sigma = tracer.sigma
        self._single = single
        # declared at trace time; some may be dead after DCE, and a
        # caller feeding the full batch must not be punished for that
        self._declared = frozenset(tracer._input_names)
        self._plan(tracer, out_nodes)

    @classmethod
    def build(cls, tracer: CircuitTracer, outputs) -> CircuitPlan:
        """Plan-protocol constructor (same as ``tracer.compile``)."""
        return tracer.compile(outputs)

    # -- planning ----------------------------------------------------------
    def _plan(self, tracer: CircuitTracer, out_nodes: dict[str, _Node]):
        out_ids = {n.id for n in out_nodes.values()}

        # Dead-code elimination: nodes reachable from the outputs, in
        # trace order (which is a topological order by construction).
        reach: set[int] = set()
        stack = list(out_nodes.values())
        while stack:
            n = stack.pop()
            if n.id in reach:
                continue
            reach.add(n.id)
            stack.extend(n.args)
            if n.op == "galois":
                pass  # key/element ride in the payload, no node args
        live = [n for n in tracer.nodes if n.id in reach]

        cons: dict[int, list[_Node]] = {n.id: [] for n in live}
        for n in live:
            for a in n.args:
                cons[a.id].append(n)

        # -- MAC fusion: left-fold add chains over single-consumer
        # plaintext products collapse into one fused NTT-domain MAC per
        # chain (exactly the _fused_inner schedule, rediscovered).
        mac_terms: dict[int, list[tuple[_Node, Plaintext]]] = {}
        absorbed: set[int] = set()

        def _mp_term(x: _Node):
            if (
                x.op == "multiply_plain"
                and len(cons[x.id]) == 1
                and x.id not in out_ids
            ):
                return (x.args[0], x.payload)
            return None

        for n in live:
            if n.op != "add":
                continue
            left, right = n.args
            rt = _mp_term(right)
            if rt is None:
                continue
            lt = _mp_term(left)
            if lt is not None:
                mac_terms[n.id] = [lt, rt]
                absorbed.update((left.id, right.id))
            elif (
                left.id in mac_terms
                and len(cons[left.id]) == 1
                and left.id not in out_ids
            ):
                mac_terms[n.id] = mac_terms.pop(left.id) + [rt]
                absorbed.update((left.id, right.id))

        def _eff_op(n: _Node) -> str:
            return "mac" if n.id in mac_terms else n.op

        # -- rescale fusion: a single-consumer key switch / plaintext
        # product followed by rescale(s) executes them in one step, on
        # the coefficient-domain components it just produced.
        base_of: dict[int, tuple[_Node, int]] = {}
        inlined: set[int] = set()
        for n in live:
            if n.op != "rescale" or n.id in absorbed:
                continue
            src = n.args[0]
            if len(cons[src.id]) != 1 or src.id in out_ids:
                continue
            if src.id in base_of:
                base, k = base_of[src.id]
                base_of[n.id] = (base, k + 1)
                inlined.add(src.id)
            elif src.id not in absorbed and (
                _eff_op(src) in _RESCALE_FUSABLE or src.id in mac_terms
            ):
                base_of[n.id] = (src, 1)
                inlined.add(src.id)

        # -- NTT persistence: a value stays in the NTT domain when every
        # consumer accepts it there (and it is not an output and carries
        # no fused rescale).  Conversions are exact either way; this
        # only removes inverse/forward transform pairs.
        def _keeps_ntt(value_node: _Node, produced_op: str, rescales: int):
            if rescales or value_node.id in out_ids:
                return False
            if produced_op not in ("add", "sub", "negate",
                                   "multiply_plain", "mac"):
                return False
            users = cons[value_node.id]
            if not users:
                return False
            return all(c.op in _NTT_OK_CONSUMERS for c in users)

        # -- hoist grouping: Galois ops are grouped by (source value,
        # key configuration); each group shares one ModUp + forward
        # transform of every digit.
        hoist_groups: dict[tuple, int] = {}
        hoist_specs: list[tuple[_Node, object]] = []  # (src node, switcher)

        def _galois_group(gnode: _Node) -> int:
            k, ksk = gnode.payload
            src = gnode.args[0]
            key = (src.id, tuple(ksk.aux_primes), ksk.dnum)
            idx = hoist_groups.get(key)
            if idx is None:
                idx = len(hoist_specs)
                hoist_groups[key] = idx
                switcher = gnode.ctx.key_switcher(ksk.aux_primes, ksk.dnum)
                hoist_specs.append((src, switcher))
            return idx

        # -- step emission in trace order --------------------------------
        slot_of: dict[int, int] = {}
        steps: list[_Step] = []
        inputs: list[tuple[str, int, float]] = []
        hoisted_emitted: set[int] = set()
        n_ring = self.ctx.ring_degree
        levels_used: set[int] = set()

        def _slot(node: _Node) -> int:
            return slot_of[node.id]

        for n in live:
            if n.id in absorbed or n.id in inlined:
                continue
            # Resolve what this value node actually computes.
            if n.id in base_of:
                base, rescales = base_of[n.id]
            else:
                base, rescales = n, 0
            op = _eff_op(base)
            dst = len(slot_of)
            slot_of[n.id] = dst
            emit_ntt = _keeps_ntt(n, op, rescales)
            level = base.ctx.num_limbs
            levels_used.add(level)
            if op == "input":
                inputs.append((base.payload, dst, base.scale))
                steps.append(_Step("input", dst, (),
                                   (base.payload, base.scale), level=level))
            elif op in ("add", "sub", "negate"):
                steps.append(_Step(
                    op, dst, [_slot(a) for a in base.args],
                    emit_ntt=emit_ntt, level=level,
                ))
            elif op == "add_plain":
                pt = base.payload
                steps.append(_Step(
                    "add_plain", dst, (_slot(base.args[0]),), pt,
                    level=level,
                ))
            elif op == "multiply_plain":
                pt = base.payload
                p_ntt = pt.poly.to_ntt()
                p_ntt.prepared_operand()
                steps.append(_Step(
                    "multiply_plain", dst, (_slot(base.args[0]),),
                    (pt, p_ntt), rescales, emit_ntt, level,
                ))
            elif op == "mac":
                terms = mac_terms[base.id]
                pts = [pt for _, pt in terms]
                p_ntts = []
                for pt in pts:
                    p = pt.poly.to_ntt()
                    p.prepared_operand()
                    p_ntts.append(p)
                steps.append(_Step(
                    "mac", dst, [_slot(src) for src, _ in terms],
                    (pts, p_ntts), rescales, emit_ntt, level,
                ))
            elif op == "multiply":
                relin = base.payload  # resolved at the node's level
                switcher = base.ctx.key_switcher(
                    relin.aux_primes, relin.dnum
                )
                ks_plan = switcher.plan_for(
                    NTT, has_twin=False, output_domain=COEFF
                )
                steps.append(_Step(
                    "multiply", dst,
                    (_slot(base.args[0]), _slot(base.args[1])),
                    (relin, switcher, ks_plan), rescales,
                    level=level,
                ))
            elif op == "galois":
                k, ksk = base.payload
                gidx = _galois_group(base)
                if gidx not in hoisted_emitted:
                    hoisted_emitted.add(gidx)
                    src_node, switcher = hoist_specs[gidx]
                    steps.append(_Step(
                        "hoist", -1, (_slot(src_node),),
                        (gidx, switcher), level=level,
                    ))
                perm = automorphism_tables(n_ring, k)[2]
                _, switcher = hoist_specs[gidx]
                steps.append(_Step(
                    "galois", dst, (_slot(base.args[0]),),
                    (k, ksk, perm, gidx, switcher), rescales,
                    level=level,
                ))
            elif op == "rescale":
                steps.append(_Step(
                    "rescale", dst, (_slot(base.args[0]),), level=level,
                ))
            else:  # pragma: no cover - tracer and planner move together
                raise ParameterError(f"unknown traced op {base.op!r}")
            steps[-1].label = f"n{n.id}:{op}"
            if op == "galois" and steps[-2].kind == "hoist":
                if not steps[-2].label:
                    steps[-2].label = f"n{n.id}:hoist"

        self._steps = steps
        self._n_slots = len(slot_of)
        self._inputs = inputs
        self._outputs = {name: slot_of[n.id] for name, n in out_nodes.items()}

        # -- per-plan scratch ---------------------------------------------
        # One lazy accumulator per live level serves every MAC in the
        # plan (steps run sequentially; multiply_accumulate resets it).
        self._accs: dict[int, LazyAccumulator] = {}
        for level in levels_used:
            lvl_ctx = self.ctx
            while lvl_ctx.num_limbs > level:
                lvl_ctx = lvl_ctx.drop_last()
            self._accs[level] = LazyAccumulator(
                lvl_ctx.batch_ntt.backend.red,
                (level, n_ring),
                strategy="reduced",
            )
        # One hoist tensor per group, shaped by its switcher.
        self._hoist_bufs = [
            np.empty((sw.dnum, sw.num_ext, n_ring), np.uint64)
            for _, sw in hoist_specs
        ]

    # -- plan protocol -----------------------------------------------------
    def validate(self, config) -> None:
        """Refuse inputs/configs from a different context chain.

        ``config`` is a :class:`PolyContext` or anything carrying one
        (an evaluator, a ciphertext).  Raises
        :class:`~repro.errors.ParameterError` naming the first
        mismatched field — including level mismatches, which is the
        stale-plan case (a plan compiled at one level cannot replay
        against operands that have rescaled past it).
        """
        ctx = config if isinstance(config, PolyContext) else config.ctx
        reason = self.ctx.mismatch_reason(ctx)
        if reason is not None:
            raise ParameterError(f"stale plan: {reason}")

    @property
    def input_names(self) -> list[str]:
        return [name for name, _, _ in self._inputs]

    @property
    def num_steps(self) -> int:
        return len(self._steps)

    def describe(self) -> str:
        """One line per step: kind, register, fused-rescale count."""
        parts = []
        for s in self._steps:
            tag = s.kind
            if s.rescales:
                tag += f"+rs{s.rescales}"
            if s.emit_ntt:
                tag += "~ntt"
            parts.append(f"{tag}->r{s.dst}" if s.dst >= 0 else tag)
        return " ; ".join(parts)

    def fingerprint(self) -> int:
        """Checksum over every captured plaintext constant in the plan.

        Folds, per step, the fingerprints of the encoded plaintext
        polynomials, their NTT-domain copies, *and* the backend-prepared
        operand arrays the pointwise kernels actually consume (a
        corrupted prepared handle would otherwise poison every product
        while the source limbs still checksum clean), mixed with the
        step index.  The serving layer records this at tenant
        registration and re-checks it before each batch dispatch; a
        mismatch quarantines the plan and triggers a rebuild from the
        tenant's build function.  Fault detection only — not
        cryptographic.
        """
        with np.errstate(over="ignore"):
            h = np.uint64(len(self._steps))
            for idx, step in enumerate(self._steps):
                if step.kind == "multiply_plain":
                    pt, p_ntt = step.payload
                    polys = (pt.poly, p_ntt)
                elif step.kind == "mac":
                    pts, p_ntts = step.payload
                    polys = tuple(pt.poly for pt in pts) + tuple(p_ntts)
                elif step.kind == "add_plain":
                    polys = (step.payload.poly,)
                else:
                    continue
                for poly in polys:
                    h = (h ^ np.uint64(poly.fingerprint())) * _FP_MIX
                    prepared = poly.state.prepared
                    if prepared is not None:
                        for arr in prepared:
                            word = np.uint64(data_fingerprint(arr))
                            h = (h ^ word) * _FP_MIX
                h ^= np.uint64(idx + 1)
            return int(h * _FP_MIX)

    def analyze(self, **kwargs):
        """Static Level-2 check of this plan, without running it.

        Sugar for :func:`repro.analysis.check_plan`: propagates
        level/scale/noise-budget lattices over the step list with the
        executor's exact formulas and returns a
        :class:`~repro.analysis.plan_check.PlanReport` flagging budget
        exhaustion, scale pathologies, dead hoists and redundant NTT
        round trips before any ciphertext is touched.
        """
        from repro.analysis.plan_check import check_plan

        return check_plan(self, **kwargs)

    def _ks_bits(self, ksk: KeySwitchKey) -> float:
        return math.log2(self._sigma * ksk.dnum * self.ctx.ring_degree)

    # -- execution ---------------------------------------------------------
    def run(
        self, inputs=None, *, tag=None, **named
    ) -> Ciphertext | dict[str, Ciphertext]:
        """Replay the plan against fresh input ciphertexts.

        Inputs are passed as a mapping or keywords, one per declared
        :meth:`CircuitTracer.input` name that survived planning.  Each
        is validated against the plan's context, level and scale —
        a stale or foreign ciphertext raises
        :class:`~repro.errors.ParameterError` instead of producing
        garbage.  Returns a bare :class:`Ciphertext` for single-output
        plans, else ``{name: Ciphertext}``.

        A library error raised *inside* a compute step is re-raised as
        :class:`~repro.errors.PlanExecutionError` naming the step index,
        the trace-node label, and the caller-supplied ``tag`` (the
        serving layer passes its tenant/request identity); the original
        exception rides along as ``__cause__``.  Input-validation steps
        are exempt so callers keep the precise
        :class:`~repro.errors.ParameterError` contract above.
        """
        provided: dict[str, Ciphertext] = {}
        if inputs is not None:
            if isinstance(inputs, Ciphertext) and len(self._inputs) == 1:
                provided[self._inputs[0][0]] = inputs
            elif isinstance(inputs, Mapping):
                provided.update(inputs)
            else:
                raise ParameterError(
                    "run takes a {name: Ciphertext} mapping (or a single "
                    "ciphertext for single-input plans)"
                )
        provided.update(named)
        needed = {name for name, _, _ in self._inputs}
        missing = sorted(needed - provided.keys())
        extra = sorted(provided.keys() - needed - self._declared)
        if missing or extra:
            raise ParameterError(
                f"plan inputs are {sorted(needed)}; "
                f"missing {missing}, unexpected {extra}"
            )

        vals: list[Ciphertext | None] = [None] * self._n_slots
        for idx, step in enumerate(self._steps):
            try:
                hooks.emit("circuit.step", step.label)
                self._run_step(step, vals, provided)
            except CheddarError as exc:
                if step.kind == "input":
                    # Input validation keeps its precise ParameterError
                    # contract (stale plan / wrong scale name the input).
                    raise
                label = step.label or step.kind
                who = f" [{tag}]" if tag else ""
                raise PlanExecutionError(
                    f"step {idx}/{len(self._steps)} ({label}){who} "
                    f"failed: {exc}",
                    step_index=idx,
                    label=label,
                    tag=tag,
                ) from exc
        outs = {
            name: self._materialize(vals[slot])
            for name, slot in self._outputs.items()
        }
        if self._single:
            return outs["out"]
        return outs

    @staticmethod
    def _materialize(ct: Ciphertext) -> Ciphertext:
        """Coefficient-domain view of a (possibly NTT-kept) value."""
        if ct.domain == COEFF:
            return ct
        return Ciphertext(
            ct.c0.to_coeff(),
            ct.c1.to_coeff(),
            scale=ct.scale,
            noise_bits=ct.noise_bits,
        )

    def _apply_rescales(self, c0, c1, scale, noise, count):
        """Eager-identical rescale formulas, applied ``count`` times."""
        for _ in range(count):
            ctx = c0.ctx
            q_last = ctx.primes[-1]
            c0 = c0.to_coeff().exact_rescale()
            c1 = c1.to_coeff().exact_rescale()
            noise = max(
                noise - math.log2(q_last),
                0.5 * math.log2(ctx.ring_degree) + 1.0,
            )
            scale = scale / q_last
        return c0, c1, scale, noise

    def _finish(self, step, c0, c1, scale, noise):
        if step.rescales:
            c0, c1, scale, noise = self._apply_rescales(
                c0, c1, scale, noise, step.rescales
            )
        elif not step.emit_ntt and c0.domain != COEFF:
            c0, c1 = c0.to_coeff(), c1.to_coeff()
        return Ciphertext(c0, c1, scale=scale, noise_bits=noise)

    def _run_step(self, step, vals, provided) -> None:
        kind = step.kind
        if kind == "input":
            name, scale = step.payload
            ct = provided[name]
            if not isinstance(ct, Ciphertext):
                raise ParameterError(
                    f"input {name!r} is not a Ciphertext "
                    f"(got {type(ct).__name__})"
                )
            reason = self.ctx.mismatch_reason(ct.ctx)
            if reason is not None:
                raise ParameterError(f"stale plan for input {name!r}: {reason}")
            if not math.isclose(ct.scale, scale, rel_tol=SCALE_RTOL):
                raise ParameterError(
                    f"input {name!r} arrives at scale "
                    f"2^{math.log2(ct.scale):.3f} but the plan was traced "
                    f"at 2^{math.log2(scale):.3f}"
                )
            vals[step.dst] = ct
            return
        if kind in ("add", "sub"):
            a, b = vals[step.srcs[0]], vals[step.srcs[1]]
            if a.domain != b.domain or (
                not step.emit_ntt and a.domain != COEFF
            ):
                a, b = self._materialize(a), self._materialize(b)
            fn0 = a.c0.add if kind == "add" else a.c0.sub
            fn1 = a.c1.add if kind == "add" else a.c1.sub
            vals[step.dst] = Ciphertext(
                fn0(b.c0),
                fn1(b.c1),
                scale=a.scale,
                noise_bits=_combine_bits(a.noise_bits, b.noise_bits),
            )
            return
        if kind == "negate":
            ct = vals[step.srcs[0]]
            if not step.emit_ntt:
                ct = self._materialize(ct)
            vals[step.dst] = Ciphertext(
                ct.c0.negate(),
                ct.c1.negate(),
                scale=ct.scale,
                noise_bits=ct.noise_bits,
            )
            return
        if kind == "add_plain":
            ct = vals[step.srcs[0]]
            pt = step.payload
            vals[step.dst] = Ciphertext(
                ct.c0.to_coeff().add(pt.poly.to_coeff()),
                ct.c1.to_coeff(),
                scale=ct.scale,
                noise_bits=ct.noise_bits,
            )
            return
        n_log_half = 0.5 * math.log2(self.ctx.ring_degree)
        if kind == "multiply_plain":
            ct = vals[step.srcs[0]]
            pt, p_ntt = step.payload
            c0 = ct.c0.to_ntt().pointwise_multiply(p_ntt)
            c1 = ct.c1.to_ntt().pointwise_multiply(p_ntt)
            noise = ct.noise_bits + math.log2(pt.scale) + n_log_half
            vals[step.dst] = self._finish(
                step, c0, c1, ct.scale * pt.scale, noise
            )
            return
        if kind == "mac":
            pts, p_ntts = step.payload
            cts = [vals[s] for s in step.srcs]
            acc = self._accs[step.level]
            c0 = RnsPolynomial.multiply_accumulate(
                [ct.c0.to_ntt() for ct in cts], p_ntts, acc=acc
            )
            c1 = RnsPolynomial.multiply_accumulate(
                [ct.c1.to_ntt() for ct in cts], p_ntts, acc=acc
            )
            noise = None
            for ct, pt in zip(cts, pts):  # mirrors _fused_inner exactly
                bits = ct.noise_bits + math.log2(pt.scale) + n_log_half
                noise = bits if noise is None else _combine_bits(noise, bits)
            vals[step.dst] = self._finish(
                step, c0, c1, cts[0].scale * pts[0].scale, noise
            )
            return
        if kind == "multiply":
            a, b = vals[step.srcs[0]], vals[step.srcs[1]]
            relin, switcher, ks_plan = step.payload
            acc = self._accs[step.level]
            a0, a1 = a.c0.to_ntt(), a.c1.to_ntt()
            b0, b1 = b.c0.to_ntt(), b.c1.to_ntt()
            t0 = a0.pointwise_multiply(b0)
            t1 = RnsPolynomial.multiply_accumulate(
                [a0, a1], [b1, b0], acc=acc
            )
            t2 = a1.pointwise_multiply(b1)
            d0, d1 = switcher.run(t2, relin, ks_plan)
            c0 = t0.to_coeff().add(d0)
            c1 = t1.to_coeff().add(d1)
            noise = _combine_bits(
                _combine_bits(
                    a.noise_bits + math.log2(b.scale),
                    b.noise_bits + math.log2(a.scale),
                )
                + n_log_half,
                self._ks_bits(relin),
            )
            vals[step.dst] = self._finish(
                step, c0, c1, a.scale * b.scale, noise
            )
            return
        if kind == "hoist":
            gidx, switcher = step.payload
            src = vals[step.srcs[0]]
            switcher.hoist(src.c1, out=self._hoist_bufs[gidx])
            return
        if kind == "galois":
            ct = vals[step.srcs[0]]
            k, ksk, perm, gidx, switcher = step.payload
            d0, d1 = switcher.run_hoisted(
                self._hoist_bufs[gidx], ksk, perm=perm
            )
            c0 = ct.c0.to_coeff().automorphism(k).add(d0)
            noise = _combine_bits(ct.noise_bits, self._ks_bits(ksk))
            vals[step.dst] = self._finish(step, c0, d1, ct.scale, noise)
            return
        if kind == "rescale":
            ct = vals[step.srcs[0]]
            c0, c1, scale, noise = self._apply_rescales(
                ct.c0, ct.c1, ct.scale, ct.noise_bits, 1
            )
            vals[step.dst] = Ciphertext(
                c0, c1, scale=scale, noise_bits=noise
            )
            return
        raise ParameterError(  # pragma: no cover - emission is closed
            f"unknown plan step {kind!r}"
        )

    # -- pricing -----------------------------------------------------------
    def cost(self) -> OpCost:
        """Price one :meth:`run` from the calibratable per-op entries.

        Field-wise sum over the step list: key-switching steps price
        through :class:`~repro.scheme.cost.SchemeCostModel` (the hoisted
        split — one shared front per hoist step, one finish per Galois
        step), linear steps through the polynomial-layer
        :class:`~repro.poly.cost.CostModel` at the step's level.
        """
        method = self.ctx.method
        n = self.ctx.ring_degree
        poly_models: dict[int, CostModel] = {}
        scheme_models: dict[tuple, SchemeCostModel] = {}

        def poly_model(level: int) -> CostModel:
            m = poly_models.get(level)
            if m is None:
                m = CostModel(n, level, method)
                poly_models[level] = m
            return m

        def scheme_model(level, num_aux, dnum) -> SchemeCostModel:
            key = (level, num_aux, dnum)
            m = scheme_models.get(key)
            if m is None:
                m = SchemeCostModel(n, level, num_aux, dnum, method)
                scheme_models[key] = m
            return m

        total = OpCost("circuit", method, 0, 0)
        for s in self._steps:
            pm = poly_model(s.level)
            limbs = s.level
            if s.kind in ("add", "sub", "negate"):
                total = _merge(total, pm.add().scaled(2))
            elif s.kind == "add_plain":
                total = _merge(total, pm.add())
            elif s.kind == "multiply_plain":
                total = _merge(total, pm.ntt().scaled(2 * limbs))
                total = _merge(total, pm.pointwise().scaled(2 * limbs))
                if not s.emit_ntt:
                    total = _merge(total, pm.intt().scaled(2 * limbs))
            elif s.kind == "mac":
                terms = len(s.srcs)
                total = _merge(total, pm.ntt().scaled(2 * terms * limbs))
                total = _merge(
                    total, pm.multiply_accumulate(terms).scaled(2)
                )
                if not s.emit_ntt:
                    total = _merge(total, pm.intt().scaled(2 * limbs))
            elif s.kind == "multiply":
                relin = s.payload[0]
                sm = scheme_model(s.level, relin.num_aux, relin.dnum)
                total = _merge(total, sm.hmult())
            elif s.kind == "hoist":
                switcher = s.payload[1]
                sm = scheme_model(s.level, len(switcher.aux), switcher.dnum)
                total = _merge(total, sm.ks_shared())
            elif s.kind == "galois":
                ksk = s.payload[1]
                sm = scheme_model(s.level, ksk.num_aux, ksk.dnum)
                total = _merge(total, sm.ks_finish())
                total = _merge(total, pm.automorphism("ntt"))
                total = _merge(total, pm.automorphism("coeff"))
                total = _merge(total, pm.add())
            elif s.kind == "rescale":
                total = _merge(total, pm.rescale().scaled(2))
            # input steps are free
            for _ in range(s.rescales):
                total = _merge(total, poly_model(limbs).rescale().scaled(2))
                limbs -= 1
        return total
