"""Scheme layer: RLWE ciphertexts, SIMD encoding, and the evaluator.

Built on :mod:`repro.poly`: keys ride the hybrid key-switching pipeline,
rotations ride the Galois index-permutation kernels and the hoisted
(shared-ModUp) schedule, rescaling rides ``exact_rescale`` — and
:class:`SchemeCostModel` prices each composite op as a sum of the
already-priced Table-3 kernels.  :class:`CanonicalEncoder` packs complex
slot vectors through the canonical embedding (rotations become cyclic
slot shifts), :class:`SlotLinalg` runs the slot-wise workloads (BSGS
matvec and polynomial evaluation) on top, and
:class:`ReferenceEvaluator` is the exact big-int/CRT plaintext-side
oracle — now with direct slot semantics — the end-to-end tests compare
against.
"""

from repro.scheme.ciphertext import Ciphertext, Plaintext
from repro.scheme.circuit import CircuitPlan, CircuitTracer, TracedCiphertext
from repro.scheme.cost import SchemeCostModel
from repro.scheme.encoder import CanonicalEncoder, special_fft, special_ifft
from repro.scheme.evaluator import Evaluator
from repro.scheme.keys import (
    DEFAULT_SIGMA,
    KeyGenerator,
    PublicKey,
    SecretKey,
    conjugation_element,
    galois_element,
    lift_signed,
    sample_error,
    sample_ternary,
)
from repro.scheme.linalg import SlotLinalg, bsgs_split
from repro.scheme.reference import ReferenceEvaluator

__all__ = [
    "DEFAULT_SIGMA",
    "CanonicalEncoder",
    "Ciphertext",
    "CircuitPlan",
    "CircuitTracer",
    "Evaluator",
    "KeyGenerator",
    "Plaintext",
    "PublicKey",
    "ReferenceEvaluator",
    "SchemeCostModel",
    "SecretKey",
    "SlotLinalg",
    "TracedCiphertext",
    "bsgs_split",
    "conjugation_element",
    "galois_element",
    "lift_signed",
    "sample_error",
    "sample_ternary",
    "special_fft",
    "special_ifft",
]
