"""Scheme layer: RLWE ciphertexts, SIMD encoding, and the evaluator.

Built on :mod:`repro.poly`: keys ride the hybrid key-switching pipeline,
rotations ride the Galois index-permutation kernels and the hoisted
(shared-ModUp) schedule, rescaling rides ``exact_rescale`` — and
:class:`SchemeCostModel` prices each composite op as a sum of the
already-priced Table-3 kernels.  :class:`CanonicalEncoder` packs complex
slot vectors through the canonical embedding (rotations become cyclic
slot shifts), :class:`SlotLinalg` runs the slot-wise workloads (BSGS
matvec and polynomial evaluation) on top, and
:class:`ReferenceEvaluator` is the exact big-int/CRT plaintext-side
oracle — now with direct slot semantics — the end-to-end tests compare
against.
"""

from repro.scheme._circuit import CircuitPlan, TracedCiphertext
from repro.scheme._linalg import bsgs_split
from repro.scheme.ciphertext import Ciphertext, Plaintext
from repro.scheme.cost import SchemeCostModel
from repro.scheme.encoder import CanonicalEncoder, special_fft, special_ifft
from repro.scheme.evaluator import Evaluator
from repro.scheme.keys import (
    DEFAULT_SIGMA,
    KeyGenerator,
    PublicKey,
    SecretKey,
    conjugation_element,
    galois_element,
    lift_signed,
    sample_error,
    sample_ternary,
)
from repro.scheme.reference import ReferenceEvaluator

#: internals as of the PR 10 API redesign, kept importable for one
#: release behind a warn-once shim (replacement named in the warning)
_DEPRECATED = {
    "SlotLinalg": (
        "repro.scheme._linalg",
        "CkksContext (cc.matvec / cc.poly_eval / cc.compile)",
    ),
    "CircuitTracer": (
        "repro.scheme._circuit",
        "CkksContext.compile(build)",
    ),
}


def __getattr__(name):
    entry = _DEPRECATED.get(name)
    if entry is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    from repro._compat import warn_once

    module, replacement = entry
    warn_once(f"repro.scheme.{name}", replacement)
    return getattr(importlib.import_module(module), name)

__all__ = [
    "DEFAULT_SIGMA",
    "CanonicalEncoder",
    "Ciphertext",
    "CircuitPlan",
    "CircuitTracer",
    "Evaluator",
    "KeyGenerator",
    "Plaintext",
    "PublicKey",
    "ReferenceEvaluator",
    "SchemeCostModel",
    "SecretKey",
    "SlotLinalg",
    "TracedCiphertext",
    "bsgs_split",
    "conjugation_element",
    "galois_element",
    "lift_signed",
    "sample_error",
    "sample_ternary",
    "special_fft",
    "special_ifft",
]
