"""Scheme layer: RLWE ciphertexts and the homomorphic evaluator.

Built on :mod:`repro.poly`: keys ride the hybrid key-switching pipeline,
rotations ride the Galois index-permutation kernels and the hoisted
(shared-ModUp) schedule, rescaling rides ``exact_rescale`` — and
:class:`SchemeCostModel` prices each composite op as a sum of the
already-priced Table-3 kernels.  :class:`ReferenceEvaluator` is the
exact big-int/CRT plaintext-side oracle the end-to-end tests compare
against.
"""

from repro.scheme.ciphertext import Ciphertext, Plaintext
from repro.scheme.cost import SchemeCostModel
from repro.scheme.evaluator import Evaluator
from repro.scheme.keys import (
    DEFAULT_SIGMA,
    KeyGenerator,
    PublicKey,
    SecretKey,
    conjugation_element,
    galois_element,
    lift_signed,
    sample_error,
    sample_ternary,
)
from repro.scheme.reference import ReferenceEvaluator

__all__ = [
    "DEFAULT_SIGMA",
    "Ciphertext",
    "Evaluator",
    "KeyGenerator",
    "Plaintext",
    "PublicKey",
    "ReferenceEvaluator",
    "SchemeCostModel",
    "SecretKey",
    "conjugation_element",
    "galois_element",
    "lift_signed",
    "sample_error",
    "sample_ternary",
]
