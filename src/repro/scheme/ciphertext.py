"""Plaintexts and two-component RLWE ciphertexts with explicit state.

A :class:`Ciphertext` is the pair ``(c0, c1)`` decrypting as
``c0 + c1 * s``; it carries the *same* explicit
:class:`~repro.poly.rns_poly.LimbState` (domain / level / scale) the
polynomial layer uses, plus a heuristic noise estimate in bits.  The
evaluator reads this state to refuse unsound combinations (level
mismatches raise :class:`~repro.errors.LevelError`, scale mismatches
:class:`~repro.errors.ScaleMismatchError`) instead of silently producing
garbage.

:class:`Plaintext` wraps either packing: the plain coefficient encoding
(a real vector scaled by ``Delta`` and rounded into polynomial
coefficients, ``slots is None``) or the canonical-embedding SIMD packing
produced by :class:`~repro.scheme.encoder.CanonicalEncoder`, in which
case ``slots`` records the packed slot count — a value that must divide
``N/2`` (the embedding has exactly ``N/2`` conjugate-pair evaluation
points, and only divisors replicate into well-defined sparse packings);
anything else raises :class:`~repro.errors.ParameterError` naming the
offending count.  Galois automorphisms act on the coefficient packing as
signed index permutations and on the slot packing as cyclic slot
rotations — the ring-level machinery is identical.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import LayoutError, ParameterError
from repro.poly.rns_poly import _FP_MIX, LimbState, PolyContext, RnsPolynomial


class Plaintext:
    """A scaled integer-coefficient plaintext element.

    Thin wrapper over an :class:`RnsPolynomial` whose
    ``state.scale`` records the encoding factor ``Delta``:
    coefficient ``j`` holds ``round(values[j] * Delta)``.

    ``slots`` is ``None`` for the plain coefficient packing, or the
    SIMD slot count for canonical-embedding encodings (validated via
    :meth:`validate_slots`: it must divide ``N/2``).
    """

    __slots__ = ("poly", "slots")

    def __init__(self, poly: RnsPolynomial, *, slots: int | None = None) -> None:
        self.poly = poly
        if slots is not None:
            slots = self.validate_slots(poly.ctx.ring_degree, slots)
        self.slots = slots

    @staticmethod
    def validate_slots(ring_degree: int, slots) -> int:
        """``slots`` as an int iff it divides ``N/2``; ParameterError else.

        The canonical embedding offers exactly ``N/2`` slots; a sparse
        packing replicates a length-``s`` vector ``(N/2)/s`` times, which
        is only well defined (and only rotation-compatible) when ``s``
        divides ``N/2`` — any other count used to be accepted silently
        and decoded to garbage.
        """
        half = ring_degree // 2
        slots = int(slots)
        if slots < 1 or half % slots != 0:
            raise ParameterError(
                f"slot count {slots} does not divide N/2 = {half} "
                f"(ring degree {ring_degree})"
            )
        return slots

    @property
    def ctx(self) -> PolyContext:
        return self.poly.ctx

    @property
    def scale(self) -> float:
        return self.poly.state.scale

    @property
    def level(self) -> int:
        return self.poly.state.level

    @classmethod
    def encode(cls, ctx: PolyContext, values, scale: float) -> Plaintext:
        """Encode a real vector (length <= N, zero-padded) at ``scale``."""
        if scale <= 0:
            raise ParameterError(f"encoding scale must be > 0, got {scale}")
        values = np.asarray(values, dtype=np.float64).ravel()
        n = ctx.ring_degree
        if values.size > n:
            raise LayoutError(
                f"{values.size} values do not fit a ring of degree {n}"
            )
        coeffs = [0] * n
        half_q = ctx.modulus // 2
        for j, v in enumerate(values):
            c = round(float(v) * scale)
            if abs(c) > half_q:
                raise ParameterError(
                    f"encoded coefficient {c} at index {j} exceeds Q/2: "
                    "value too large for this (scale, level)"
                )
            coeffs[j] = c
        poly = ctx.from_int_coeffs(coeffs)
        poly.state.scale = float(scale)
        return cls(poly)

    def decode(self) -> np.ndarray:
        """Centered CRT reconstruction divided by the scale."""
        ints = self.poly.to_coeff().to_int_coeffs(centered=True)
        return np.array(ints, dtype=np.float64) / self.scale


class Ciphertext:
    """A two-component RLWE ciphertext ``(c0, c1)``.

    Decrypts as ``c0 + c1 * s``.  The ciphertext-level
    :class:`LimbState` is authoritative for domain / level / scale (the
    component polynomials' own scales are neither consulted nor
    mutated — they may carry intermediate product scales), and
    ``noise_bits`` tracks a heuristic worst-case-ish estimate of
    ``log2 |noise|`` maintained by the evaluator — good for budgeting
    and test assertions, not a cryptographic guarantee.
    """

    __slots__ = ("c0", "c1", "state", "noise_bits")

    def __init__(
        self,
        c0: RnsPolynomial,
        c1: RnsPolynomial,
        *,
        scale: float,
        noise_bits: float = 0.0,
    ) -> None:
        reason = c0.ctx.mismatch_reason(c1.ctx)
        if reason is not None:
            raise ParameterError(f"ciphertext component contexts: {reason}")
        if c0.domain != c1.domain:
            raise LayoutError(
                f"ciphertext component domains differ: "
                f"{c0.domain} vs {c1.domain}"
            )
        if scale <= 0:
            raise ParameterError(f"ciphertext scale must be > 0, got {scale}")
        self.c0 = c0
        self.c1 = c1
        # The ciphertext state is authoritative; the borrowed component
        # polynomials are NOT mutated (they may be shared with another
        # ciphertext or carry intermediate product scales), so their own
        # state.scale is not consulted by any evaluator op.
        self.state = LimbState(c0.domain, c0.ctx.num_limbs, scale)
        self.noise_bits = float(noise_bits)

    @property
    def ctx(self) -> PolyContext:
        return self.c0.ctx

    @property
    def domain(self) -> str:
        return self.state.domain

    @property
    def level(self) -> int:
        return self.state.level

    @property
    def scale(self) -> float:
        return self.state.scale

    def fingerprint(self) -> int:
        """Cheap state-integrity checksum over both components.

        Folds the component polynomials'
        :meth:`~repro.poly.rns_poly.RnsPolynomial.fingerprint` digests
        with the authoritative scale, so any silent mutation of either
        limb matrix — a bit flip, a stale cache written behind
        :meth:`~repro.poly.rns_poly.LimbState.invalidate` — changes the
        result.  The serving layer fingerprints a batch's input
        ciphertext before dispatch and re-checks it afterwards; a
        mismatch discards the (possibly corrupted) execution and
        re-encrypts.  Not cryptographic: it detects faults, not
        adversaries.
        """
        with np.errstate(over="ignore"):
            h = np.uint64(self.c0.fingerprint()) * _FP_MIX
            h ^= np.uint64(self.c1.fingerprint())
            h ^= np.float64(self.scale).view(np.uint64)
            return int(h * _FP_MIX)

    @property
    def noise_budget_bits(self) -> float:
        """Estimated bits of headroom: ``log2(Q/2) - noise_bits``.

        A budget near zero means the estimated noise magnitude
        approaches ``Q/2`` and decryption is about to wrap — the
        estimate is heuristic (see :attr:`noise_bits`), so treat this as
        an engineering gauge, not a proof.
        """
        return math.log2(self.ctx.modulus) - 1.0 - self.noise_bits
