"""The ``Plan`` protocol: one shape for every ahead-of-time schedule.

Three planning surfaces grew up independently in this codebase —
``KeySwitchPlan`` (PR 3), the hoisted-rotation tensors behind
``KeySwitcher.hoist``/``run_hoisted`` (PR 4), and the BSGS schedules
inside ``SlotLinalg`` (PR 5).  Each one precomputes a schedule once and
replays it many times, but each exposed a different API.  This module
names the common contract so callers can treat any of them — including
whole-circuit :class:`repro.scheme._circuit.CircuitPlan` objects —
uniformly:

* ``SomePlan.build(...)`` constructs a plan from a configuration,
* ``plan.run(...)`` replays it against fresh inputs,
* ``plan.cost()`` prices it with the calibratable cost model,
* ``plan.validate(config)`` rejects a stale plan (wrong basis, wrong
  context, wrong level) with a descriptive error instead of corrupt
  output.

The protocol is intentionally structural (``runtime_checkable``): the
concrete plan classes live in different layers (poly vs scheme) and do
not share a base class.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = ["Plan"]


@runtime_checkable
class Plan(Protocol):
    """Structural protocol for ahead-of-time execution plans.

    Implementations additionally expose a ``build(...)`` classmethod
    (signatures differ per plan kind, so it is a documented convention
    rather than part of the structural type).
    """

    def run(self, *args: Any, **kwargs: Any) -> Any:
        """Replay the plan against fresh inputs; no planning, no allocation."""
        ...

    def cost(self) -> Any:
        """Price one ``run`` with the layer's cost model."""
        ...

    def validate(self, config: Any) -> None:
        """Raise a descriptive error if the plan does not match ``config``."""
        ...
