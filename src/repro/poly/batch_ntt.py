"""Batched limb-matrix negacyclic NTT (the paper's limb-parallel execution).

The paper's whole pitch is that every limb of the 25-30 prime system runs
the *same* kernel simultaneously: one NTT stage is one GPU-wide pass over
the ``(num_limbs, N)`` limb matrix, not a Python loop over per-prime
engines.  :class:`BatchNTT` reproduces that shape on the CPU: the Table-3
reducers accept per-row modulus columns (``(L, 1)`` ``q``/``mu``/``m``
arrays broadcasting against ``(L, N)`` data), the bit-reversed twiddle
tables of all limbs are stacked into one ``(L, N)`` matrix, and each
Cooley-Tukey / Gentleman-Sande stage transforms every limb in a single
vectorized NumPy pass.

Per stage the limb matrix is viewed as ``(L, m, 2, t)`` blocks; the
stage's twiddle slice ``[m, 2m)`` of the stacked table broadcasts across
the ``t`` butterflies of each block, exactly mirroring the per-prime
:class:`~repro.poly.ntt.NegacyclicNTT` (which stays as the reference
implementation the tests cross-check against — both use the same per-limb
roots, so outputs bit-match).

The transform hot loop runs through hand-scheduled stage kernels rather
than the generic backend ops, because at ``(L, N)`` scale the functional
style drowns in temporary allocations, strided slivers and 64-bit scalar
multiplies:

* every intermediate lives in a preallocated scratch workspace (``out=``
  everywhere) and stages ping-pong between two buffers, so a whole
  transform allocates nothing;
* conditional folds use the branch-free trick ``min(s, s - q)`` (for
  ``s < q`` the unsigned subtraction wraps, so the minimum keeps ``s``)
  instead of ``np.where`` temporaries;
* once butterflies pair elements closer than :data:`_CHUNK` apart, the
  limb matrix is transposed chunk-wise into a ``(_CHUNK, L*N/_CHUNK)``
  layout — the four-step-NTT locality trick — so the tail stages stream
  over long contiguous rows instead of ``t``-element slivers (the
  per-stage twiddle layout for the transposed phase is precomputed once
  per table);
* the Shoup / Montgomery / SMR kernels keep the whole coefficient state
  in **canonical uint32**: residues are < q < 2^31 so sums < 2q never
  wrap, low-32-bit partial products become wrapping uint32 multiplies
  (SIMD-friendly, unlike 64-bit multiplies which the int datapath runs
  scalar), and only the one high-half product per butterfly runs in
  64-bit.  Barrett needs all four 64-bit partial products anyway, so it
  keeps a uint64 Harvey-style 2q-lazy kernel instead.

Bit-exactness: the Shoup / Montgomery / Barrett kernels compute the very
same intermediate integers as the reference engine (same butterfly
schedule, same reduction formulas).  The SMR kernel canonicalizes each
Alg. 2 output into [0, q) instead of carrying the reference's signed
(-q, q) representatives; intermediates stay congruent mod q with all of
Alg. 2's range preconditions intact, so the canonical outputs after the
exit pass are bit-identical to the reference's.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import hooks
from repro.analysis.sanitizer import assert_within, checked_mode
from repro.errors import ParameterError
from repro.poly.backends import make_ntt_impl, resolve_backend
from repro.poly.ntt import (
    _power_table,
    _range_error,
    automorphism_tables,
    bit_reverse_permutation,
    make_ntt_backend,
)
from repro.rns.primes import Prime, primitive_root_of_unity

_U32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)
_ISHIFT32 = np.int64(32)
_ISHIFT63 = np.int64(63)

#: chunk length for the transposed tail phase; butterflies within a chunk
#: pair elements < _CHUNK apart, so whole chunks stay independent.
_CHUNK = 128
#: ring degrees below this keep the plain layout — their chunk count is
#: too small for the transposed rows to beat the transpose cost.
_MIN_SPLIT_N = 256


class BatchNTT:
    """Negacyclic NTT over all limbs of an RNS basis at once.

    Args:
        primes: the limb primes (ints or :class:`Prime`), each = 1 (mod 2N).
        n: ring degree N, a power of two.
        method: reducer backend; one of barrett / montgomery / shoup / smr.
        psis: optionally one primitive 2N-th root of unity per limb (pass
            the per-prime engines' roots to guarantee bit-identical
            outputs); found via :func:`primitive_root_of_unity` when
            omitted — which picks the same root the per-prime engine picks,
            so the two paths agree either way.
        backend: execution tier for the hot transforms — ``"numpy"`` /
            ``"sharded"`` / ``"compiled"`` (:mod:`repro.poly.backends`).
            ``None`` defers to ``REPRO_BACKEND``, then ``"numpy"``.  Every
            tier is bit-identical; an unavailable tier degrades back to
            the numpy kernels after one warning.
    """

    def __init__(
        self,
        primes: Sequence[Prime | int],
        n: int,
        method: str = "smr",
        *,
        psis: Sequence[int] | None = None,
        backend: str | None = None,
    ) -> None:
        primes = [int(q) for q in primes]
        if not primes:
            raise ParameterError("BatchNTT needs at least one limb prime")
        if n < 2 or n & (n - 1):
            raise ParameterError(f"ring degree {n} is not a power of two >= 2")
        for q in primes:
            if (q - 1) % (2 * n):
                raise ParameterError(f"q={q} is not NTT-friendly for N={n}")
        if psis is None:
            psis = [primitive_root_of_unity(2 * n, q) for q in primes]
        else:
            psis = [int(psi) for psi in psis]
            if len(psis) != len(primes):
                raise ParameterError(
                    f"{len(psis)} roots for {len(primes)} limb primes"
                )
            for psi, q in zip(psis, primes):
                if pow(psi, n, q) != q - 1:
                    raise ParameterError(
                        f"psi={psi} is not a primitive {2*n}-th root mod {q}"
                    )
        self.primes = primes
        self.psis = psis
        self.n = n
        self.log_n = n.bit_length() - 1
        self.method = method
        self.backend = make_ntt_backend(method, primes)
        #: dispatch tier name; the impl object itself is built lazily so
        #: engines that never transform (pure table donors) cost nothing
        self.backend_tier = resolve_backend(backend)
        self._impl = None
        self._impl_ready = False

        brv = bit_reverse_permutation(n)
        fwd = np.stack([_power_table(psi, q, n)[brv] for psi, q in zip(psis, primes)])
        inv = np.stack(
            [_power_table(pow(psi, -1, q), q, n)[brv] for psi, q in zip(psis, primes)]
        )
        self._fwd = self.backend.prepare_twiddles(fwd)
        self._inv = self.backend.prepare_twiddles(inv)
        n_inv = np.array([[pow(n, -1, q)] for q in primes], dtype=np.uint64)
        self._n_inv = self.backend.prepare_twiddles(n_inv)
        self._kernel = _KERNELS[method](primes, n, self.backend.red)
        self._kernel.set_tables(self._fwd, self._inv, self._n_inv)

    @property
    def num_limbs(self) -> int:
        return len(self.primes)

    @property
    def checked(self) -> bool:
        return self._kernel.checked

    def set_checked(self, flag: bool) -> None:
        """Toggle sanitizer-mode per-stage assertions on this engine.

        Kernels read ``REPRO_CHECKED`` at construction;
        :class:`~repro.poly.rns_poly.PolyContext` calls this to propagate
        an explicit ``checked=`` override onto shared/derived engines.
        """
        self._kernel.checked = bool(flag)

    def _tier_impl(self):
        """The lazily built backend impl for this engine (``None`` = numpy).

        A tier that is unavailable (no toolchain, crashed pool) resolves
        to ``None`` here or returns ``None`` per call — either way the
        numpy kernels below take over, so callers never branch on tier.
        """
        if not self._impl_ready:
            self._impl_ready = True
            self._impl = make_ntt_impl(self, self.backend_tier)
        return self._impl

    def take(self, num_limbs: int) -> BatchNTT:
        """A BatchNTT over the first ``num_limbs`` limbs, sharing tables.

        Twiddle tables are immutable, so a rescaled (child) context reuses
        its parent's prepared rows as views instead of recomputing power
        tables — the batched analogue of ``PolyContext.drop_last`` sharing
        per-prime engines.
        """
        if not 1 <= num_limbs <= self.num_limbs:
            raise ParameterError(
                f"cannot take {num_limbs} of {self.num_limbs} limbs"
            )
        return self.take_rows(0, num_limbs)

    def take_rows(self, start: int, stop: int) -> BatchNTT:
        """A BatchNTT over limb rows ``[start, stop)``, sharing tables.

        The general form of :meth:`take`: key switching transforms *row
        windows* of the extended basis (e.g. only the auxiliary P-part
        rows of an NTT-domain key-switch result during ModDown), and the
        window engine's prepared twiddle rows are views into this
        engine's — no power-table rebuild.
        """
        if not (0 <= start < stop <= self.num_limbs):
            raise ParameterError(
                f"row window [{start}, {stop}) outside "
                f"[0, {self.num_limbs})"
            )
        if start == 0 and stop == self.num_limbs:
            return self
        return self._clone(
            self.primes[start:stop],
            self.psis[start:stop],
            tuple(p[start:stop] for p in self._fwd),
            tuple(p[start:stop] for p in self._inv),
            tuple(p[start:stop] for p in self._n_inv),
        )

    def extend(
        self,
        extra_primes: Sequence[Prime | int],
        *,
        psis: Sequence[int] | None = None,
    ) -> BatchNTT:
        """A BatchNTT over this basis followed by ``extra_primes``.

        The extended-basis engine key switching needs (Q then the
        auxiliary P primes): prepared twiddle rows for the existing limbs
        are *shared* with this engine, and only the new primes pay the
        power-table build — so the extended tables cost O(K·N) work for K
        new primes instead of O((L+K)·N).
        """
        extra = BatchNTT(
            extra_primes, self.n, self.method, psis=psis, backend="numpy"
        )
        overlap = set(self.primes) & set(extra.primes)
        if overlap:
            raise ParameterError(
                f"extension primes overlap the base basis: {sorted(overlap)}"
            )
        return self._clone(
            self.primes + extra.primes,
            self.psis + extra.psis,
            tuple(np.concatenate([a, b]) for a, b in zip(self._fwd, extra._fwd)),
            tuple(np.concatenate([a, b]) for a, b in zip(self._inv, extra._inv)),
            tuple(np.concatenate([a, b]) for a, b in zip(self._n_inv, extra._n_inv)),
        )

    def _clone(self, primes, psis, fwd, inv, n_inv) -> BatchNTT:
        """Assemble an engine from already-prepared tables (take/extend)."""
        clone = object.__new__(BatchNTT)
        clone.primes = list(primes)
        clone.psis = list(psis)
        clone.n = self.n
        clone.log_n = self.log_n
        clone.method = self.method
        clone.backend = make_ntt_backend(self.method, clone.primes)
        clone.backend_tier = self.backend_tier
        clone._impl = None
        clone._impl_ready = False
        clone._fwd = fwd
        clone._inv = inv
        clone._n_inv = n_inv
        clone._kernel = _KERNELS[self.method](clone.primes, self.n, clone.backend.red)
        clone._kernel.set_tables(clone._fwd, clone._inv, clone._n_inv)
        return clone

    def _check_shape(self, a, label: str) -> None:
        if np.shape(a) != (self.num_limbs, self.n):
            raise ParameterError(
                f"{label}: expected ({self.num_limbs}, {self.n}) limb "
                f"matrix, got {np.shape(a)}"
            )

    # -- transforms --------------------------------------------------------
    def forward(self, a: np.ndarray, *, out: np.ndarray | None = None):
        """(L, N) coefficients -> (L, N) NTT values, all limbs per stage.

        Identical butterfly schedule to the per-prime engine; each stage's
        Cooley-Tukey pass runs over the whole limb matrix at once.  With
        ``out`` (a uint64 (L, N) buffer) the result is written there
        instead of a fresh array — the fused key-switching pipeline keeps
        its transforms allocation-free this way.  ``out`` may alias ``a``
        (the input is copied into the workspace before any write).
        """
        self._check_shape(a, "forward")
        hooks.emit("batch_ntt.forward")
        impl = self._tier_impl()
        if impl is not None:
            res = impl.forward(a, out)
            if res is not None:
                return res
        return self._kernel.forward(a, out=out)

    def inverse(self, a_hat: np.ndarray, *, out: np.ndarray | None = None):
        """(L, N) NTT values -> (L, N) coefficients (Gentleman-Sande).

        ``out`` as in :meth:`forward`.
        """
        self._check_shape(a_hat, "inverse")
        hooks.emit("batch_ntt.inverse")
        impl = self._tier_impl()
        if impl is not None:
            res = impl.inverse(a_hat, out)
            if res is not None:
                return res
        return self._kernel.inverse(a_hat, out=out)

    # -- NTT-domain arithmetic ---------------------------------------------
    def prepare_operand(self, b_hat: np.ndarray) -> tuple[np.ndarray, ...]:
        """Backend-prepared form of an (L, N) NTT-domain operand.

        Same contract as :meth:`NegacyclicNTT.prepare_operand`: Shoup's
        per-element companion division / the Montgomery family's
        ``to_form`` pass happen once here, and every
        :meth:`pointwise_prepared` against the handle skips them.
        """
        self._check_shape(b_hat, "prepare_operand")
        return self.backend.prepare_twiddles(np.asarray(b_hat))

    def pointwise_prepared(
        self, a_hat: np.ndarray, prepared: tuple[np.ndarray, ...]
    ) -> np.ndarray:
        """Element-wise limb-matrix product against a prepared operand."""
        self._check_shape(a_hat, "pointwise")
        impl = self._tier_impl()
        if impl is not None:
            res = impl.pointwise_prepared(a_hat, prepared)
            if res is not None:
                return res
        b = self.backend
        return b.exit(b.mul(b.enter(a_hat), prepared))

    def pointwise(self, a_hat: np.ndarray, b_hat: np.ndarray) -> np.ndarray:
        """Element-wise product of two (L, N) NTT-domain matrices."""
        return self.pointwise_prepared(a_hat, self.prepare_operand(b_hat))

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a * b mod (x^N + 1)`` per limb, via forward/pointwise/inverse."""
        return self.inverse(self.pointwise(self.forward(a), self.forward(b)))

    # -- Galois automorphisms ----------------------------------------------
    def automorphism_coeff(
        self, a: np.ndarray, k: int, *, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Coefficient-domain ``sigma_k: X -> X^k`` on an (L, N) matrix.

        One signed index permutation per limb row — a gather through the
        cached per-``(N, k)`` tables (:func:`automorphism_tables`) plus a
        conditional negation of the wrapped columns; no transform, no
        multiplies.  The same column pattern applies to every limb row
        because ``sigma_k`` permutes *integer* coefficients: the sign
        flip commutes with reduction mod each ``q_i``.
        """
        self._check_shape(a, "automorphism")
        src, neg, _ = automorphism_tables(self.n, k)
        a = np.asarray(a, dtype=np.uint64)
        if out is None:
            out = np.empty_like(a)
        np.take(a, src, axis=1, out=out)
        q = np.array(self.primes, dtype=np.uint64).reshape(-1, 1)
        cols = out[:, neg]
        out[:, neg] = np.where(cols == 0, cols, q - cols)
        return out

    def automorphism_ntt(
        self, a_hat: np.ndarray, k: int, *, out: np.ndarray | None = None
    ) -> np.ndarray:
        """NTT-domain ``sigma_k`` on an (L, N) matrix: a pure permutation.

        Multiplication by ``k`` permutes the odd evaluation exponents mod
        ``2N`` among themselves, so the whole action is one slot gather
        per limb row — no sign corrections and no transform round trip
        (the hoisted-rotation fast path lives on this).
        """
        self._check_shape(a_hat, "automorphism")
        _, _, perm = automorphism_tables(self.n, k)
        a_hat = np.asarray(a_hat, dtype=np.uint64)
        if out is None:
            out = np.empty_like(a_hat)
        np.take(a_hat, perm, axis=1, out=out)
        return out


# ---------------------------------------------------------------------------
# Stage kernels.
#
# Shared conventions:
# * state lives in two persistent ping-pong buffers plus persistent
#   scratch rows, reshaped per stage to the (L, m, t) / (J, t, M) view;
# * plain-layout constants are (L, 1, 1) columns broadcasting against the
#   (L, m, t) stage views; transposed-phase constants are (M,) rows
#   (M = L*N/_CHUNK columns, limb-major) broadcasting against (J, t, M);
# * a multiplicand ``v`` handed to ``_mul`` is only read before the first
#   scratch write, so callers may pass a scratch view as ``v``.
# ---------------------------------------------------------------------------


class _Layout:
    """Per-layout constant bundle (plain limb-rows vs transposed columns)."""

    __slots__ = ("q", "q2", "q64", "q_inv_neg", "mu_hi", "mu_lo", "m")


class _KernelBase:
    """Stage scheduling, layouts and table management shared by kernels.

    Subclasses define ``state_dtype``, ``_consts`` (per-layout constants),
    ``_cast_parts`` (table dtypes), ``_mul`` (twiddle product to canonical
    or lazy boundary), ``_bfly`` (CT combine), ``_gs`` (GS combine),
    ``enter`` and ``exit``.
    """

    def __init__(self, primes: list[int], n: int, reducer) -> None:
        self.primes = primes
        self.n = n
        #: the batched Table-3 reducer whose precomputed constants
        #: (mu, -q^-1, signed m) the kernels reuse instead of re-deriving
        self.reducer = reducer
        self.chunks = n // _CHUNK if n >= _MIN_SPLIT_N else 0
        self.cols = len(primes) * self.chunks  # M, transposed-phase width
        q = np.array(primes, dtype=np.uint64)
        self.q_ucol = q.reshape(-1, 1)
        #: sanitizer mode: assert the statically certified per-stage bound
        #: (q-1 canonical, 2q-1 Barrett-lazy) after every butterfly stage
        self.checked = checked_mode()
        bound = q * np.uint64(self.lazy_factor) - np.uint64(1)
        self._bound_col = bound.reshape(-1, 1)
        self._bound_row = np.repeat(bound, self.chunks) if self.chunks else None
        self.cN = self._consts(lambda a: np.asarray(a).reshape(-1, 1, 1))
        self.cT = (
            self._consts(lambda a: np.repeat(np.asarray(a).reshape(-1),
                                             self.chunks))
            if self.chunks
            else None
        )
        self._space: tuple | None = None

    # -- tables ------------------------------------------------------------
    def set_tables(self, fwd, inv, n_inv) -> None:
        """Adopt backend-prepared twiddle tables, in kernel dtypes plus the
        precomputed transposed-phase layout."""
        self.fwd_n = self._cast_parts(fwd)
        self.inv_n = self._cast_parts(inv)
        self.n_inv = self._cast_parts(n_inv)
        self.fwd_t = self._stage_tables(self.fwd_n, inverse=False)
        self.inv_t = self._stage_tables(self.inv_n, inverse=True)

    def _stage_tables(self, parts, *, inverse: bool) -> list:
        """Per-stage twiddles rearranged for the transposed tail phase.

        In that phase data column ``l*chunks + c`` holds chunk ``c`` of
        limb ``l``, and stage block ``g = c*J + j`` needs table entry
        ``[l, m + g]`` — so the stage slice ``[m, 2m)`` lands as a
        ``(J, 1, M)`` array (precomputed once; the hot loop just indexes).
        """
        if not self.chunks:
            return []
        stages = []
        t = _CHUNK // 2
        while t >= 1:
            m = self.n // (2 * t)
            blocks_per_chunk = _CHUNK // (2 * t)
            stages.append(
                tuple(
                    np.ascontiguousarray(
                        p[:, m : 2 * m]
                        .reshape(len(self.primes), self.chunks, -1)
                        .transpose(2, 0, 1)
                        .reshape(blocks_per_chunk, 1, self.cols)
                    )
                    for p in parts
                )
            )
            t >>= 1
        if inverse:
            stages.reverse()  # GS consumes small-t stages first
        return stages

    def _assert_state(self, x: np.ndarray, transposed: bool, stage: str) -> None:
        """Checked mode: the ping buffer must respect the stage invariant
        the Level-1 certificate proved (per-limb rows in the plain layout,
        per-limb repeated columns in the transposed layout)."""
        bound = self._bound_row if transposed else self._bound_col
        assert_within(x, bound, kernel=f"{self.method_name} NTT", stage=stage)

    # -- buffers -----------------------------------------------------------
    def _workspace(self):
        if self._space is None:
            self._space = self._alloc_space()
        return self._space

    def _transpose_in(self, cur: np.ndarray, other: np.ndarray):
        """(L, N) -> (_CHUNK, M): row r holds element r of every chunk."""
        dst = other.reshape(_CHUNK, self.cols)
        np.copyto(dst, cur.reshape(self.cols, _CHUNK).T)
        return dst, cur.reshape(_CHUNK, self.cols)

    def _transpose_out(self, cur: np.ndarray, other: np.ndarray):
        """(_CHUNK, M) -> (L, N)."""
        length = len(self.primes)
        dst = other.reshape(self.cols, _CHUNK)
        np.copyto(dst, cur.T)
        return dst.reshape(length, self.n), cur.reshape(length, self.n)

    # -- transforms --------------------------------------------------------
    def forward(self, a: np.ndarray, *, out: np.ndarray | None = None):
        x, y = self.enter(a)
        length = len(self.primes)
        transposed = False
        stage_t = 0
        t = self.n
        m = 1
        while m < self.n:
            t >>= 1
            if self.chunks and not transposed and 2 * t <= _CHUNK:
                x, y = self._transpose_in(x, y)
                transposed = True
            if transposed:
                j = _CHUNK // (2 * t)
                shape = (j, t, self.cols)
                xb = x.reshape(j, 2, t, self.cols)
                yb = y.reshape(j, 2, t, self.cols)
                tw = self.fwd_t[stage_t]
                stage_t += 1
                c = self.cT
                u, v = xb[:, 0], xb[:, 1]
                yu, yv = yb[:, 0], yb[:, 1]
            else:
                shape = (length, m, t)
                xb = x.reshape(length, m, 2, t)
                yb = y.reshape(length, m, 2, t)
                tw = tuple(p[:, m : 2 * m, None] for p in self.fwd_n)
                c = self.cN
                u, v = xb[:, :, 0, :], xb[:, :, 1, :]
                yu, yv = yb[:, :, 0, :], yb[:, :, 1, :]
            self._mul(v, tw, c, shape, yv)
            self._bfly(u, yu, yv, c, shape)
            x, y = y, x
            if self.checked:
                self._assert_state(x, transposed, f"forward stage m={m}")
            m <<= 1
        if transposed:
            x, y = self._transpose_out(x, y)
        return self.exit(x, y, out)

    def inverse(self, a_hat: np.ndarray, *, out: np.ndarray | None = None):
        x, y = self.enter(a_hat)
        length = len(self.primes)
        transposed = False
        stage_t = 0
        if self.chunks:
            x, y = self._transpose_in(x, y)
            transposed = True
        t = 1
        m = self.n
        while m > 1:
            h = m >> 1
            if transposed and 2 * t > _CHUNK:
                x, y = self._transpose_out(x, y)
                transposed = False
            if transposed:
                j = _CHUNK // (2 * t)
                shape = (j, t, self.cols)
                xb = x.reshape(j, 2, t, self.cols)
                yb = y.reshape(j, 2, t, self.cols)
                tw = self.inv_t[stage_t]
                stage_t += 1
                c = self.cT
                u, v = xb[:, 0], xb[:, 1]
                yu, yv = yb[:, 0], yb[:, 1]
            else:
                shape = (length, h, t)
                xb = x.reshape(length, h, 2, t)
                yb = y.reshape(length, h, 2, t)
                tw = tuple(p[:, h : 2 * h, None] for p in self.inv_n)
                c = self.cN
                u, v = xb[:, :, 0, :], xb[:, :, 1, :]
                yu, yv = yb[:, :, 0, :], yb[:, :, 1, :]
            self._gs(u, v, tw, c, shape, yu, yv)
            x, y = y, x
            if self.checked:
                self._assert_state(x, transposed, f"inverse stage m={m}")
            t <<= 1
            m = h
        if transposed:
            x, y = self._transpose_out(x, y)
        # Final n^-1 scale, chunked through the half-size scratch rows.
        half = self.n // 2
        tw = tuple(p[:, :, None] for p in self.n_inv)
        for lo in (0, half):
            v = x[:, lo : lo + half].reshape(length, 1, half)
            dst = y[:, lo : lo + half].reshape(length, 1, half)
            self._mul(v, tw, self.cN, (length, 1, half), dst)
        if self.checked:
            self._assert_state(y, False, "n^-1 scale")
        return self.exit(y, x, out)


class _Canon32Kernel(_KernelBase):
    """Canonical-uint32 state shared by the Shoup / Montgomery / SMR
    kernels: every stage value sits in [0, q), q < 2^31, so sums < 2q
    never wrap uint32 and every fold is one branch-free ``min``."""

    lazy_factor = 1  # stage invariant [0, q): canonical state

    def _alloc_space(self):
        shape = (len(self.primes), self.n)
        half = (len(self.primes), self.n // 2)
        return (
            np.empty(shape, dtype=np.uint32),
            np.empty(shape, dtype=np.uint32),
            np.empty(half, dtype=self.wide_dtype),
            np.empty(half, dtype=self.wide_dtype),
            np.empty(half, dtype=np.uint32),
            np.empty(half, dtype=np.uint32),
            np.empty(half, dtype=self.low_dtype),
        )

    def enter(self, a: np.ndarray):
        a = np.asarray(a, dtype=np.uint64)
        if a.size and np.any(a >= self.q_ucol):
            raise _range_error(a, self.q_ucol)
        x, y = self._workspace()[:2]
        np.copyto(x, a, casting="unsafe")
        return x, y

    def exit(
        self,
        x: np.ndarray,
        _scratch: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        if out is None:
            return x.astype(np.uint64)
        np.copyto(out, x, casting="unsafe")  # canonical uint32 -> uint64
        return out

    def _bfly(self, u, yu, yv, c, shape):
        """(u, tt=yv) -> (u + tt, u + q - tt) mod q, canonical, uint32."""
        _, _, _, _, c32, d32, _ = self._workspace()
        c1 = c32.reshape(shape)
        d1 = d32.reshape(shape)
        np.add(u, yv, out=c1)
        np.subtract(c1, c.q, out=d1)
        np.minimum(c1, d1, out=yu)
        np.add(u, c.q, out=c1)
        np.subtract(c1, yv, out=c1)
        np.subtract(c1, c.q, out=d1)
        np.minimum(c1, d1, out=yv)

    def _gs(self, u, v, tw, c, shape, yu, yv):
        """(u, v) -> (u + v, (u - v) * w) mod q, canonical, uint32."""
        _, _, _, _, c32, d32, _ = self._workspace()
        c1 = c32.reshape(shape)
        d1 = d32.reshape(shape)
        np.add(u, v, out=c1)
        np.subtract(c1, c.q, out=d1)
        np.minimum(c1, d1, out=yu)
        np.add(u, c.q, out=c1)
        np.subtract(c1, v, out=c1)
        np.subtract(c1, c.q, out=d1)
        np.minimum(c1, d1, out=c1)
        self._mul(c1, tw, c, shape, yv)


class _ShoupKernel(_Canon32Kernel):
    """Shoup butterflies: one 64-bit high product per twiddle multiply;
    the cross terms run as wrapping uint32 multiplies."""

    wide_dtype = np.uint64
    low_dtype = np.uint32
    method_name = "shoup"

    def _consts(self, shape) -> _Layout:
        c = _Layout()
        c.q = shape(np.array(self.primes, dtype=np.uint32))
        return c

    def _cast_parts(self, parts):
        w, w_shoup = parts
        return (w.astype(np.uint32), w_shoup)  # companion stays uint64

    def _mul(self, v, tw, c, shape, out):
        w32, ws64 = tw
        _, _, b64f, _, c32, d32, _ = self._workspace()
        b64 = b64f.reshape(shape)
        c1 = c32.reshape(shape)
        d1 = d32.reshape(shape)
        np.copyto(b64, v)  # widen v once for the high product
        np.multiply(b64, ws64, out=b64)
        np.right_shift(b64, _SHIFT32, out=b64)  # hi = mulhi32(v, w')
        np.copyto(d1, b64, casting="unsafe")  # hi < 2^31
        np.multiply(d1, c.q, out=d1)  # hi * q   (low 32 bits)
        np.multiply(v, w32, out=c1)  # v * w     (low 32 bits)
        np.subtract(c1, d1, out=c1)  # r = (v*w - hi*q) mod 2^32, in [0, 2q)
        np.subtract(c1, c.q, out=d1)
        np.minimum(c1, d1, out=out)  # canonical [0, q)


class _MontgomeryKernel(_Canon32Kernel):
    """Montgomery butterflies: the product and the m*q correction need
    full 64-bit; the mullo32 by -q^-1 wraps in uint32."""

    wide_dtype = np.uint64
    low_dtype = np.uint32
    method_name = "montgomery"

    def _consts(self, shape) -> _Layout:
        c = _Layout()
        c.q = shape(np.array(self.primes, dtype=np.uint32))
        c.q64 = shape(np.array(self.primes, dtype=np.uint64))
        c.q_inv_neg = shape(self.reducer.q_inv_neg.reshape(-1).astype(np.uint32))
        return c

    def _cast_parts(self, parts):
        return (parts[0],)  # Montgomery-form twiddles, uint64

    def _mul(self, v, tw, c, shape, out):
        _, _, b64f, c64f, _, d32, l32f = self._workspace()
        b64 = b64f.reshape(shape)
        c64 = c64f.reshape(shape)
        low = l32f.reshape(shape)
        d1 = d32.reshape(shape)
        np.copyto(b64, v)
        np.multiply(b64, tw[0], out=b64)  # p = v * (w * 2^32 mod q)
        np.copyto(low, b64, casting="unsafe")  # p mod 2^32
        np.multiply(low, c.q_inv_neg, out=low)  # m = mullo32(p, -q^-1)
        np.copyto(c64, low)
        np.multiply(c64, c.q64, out=c64)  # m * q, full 64 bits
        np.add(b64, c64, out=b64)
        np.right_shift(b64, _SHIFT32, out=b64)  # t = (p + m*q) >> 32 < 2q
        np.copyto(d1, b64, casting="unsafe")
        np.subtract(d1, c.q, out=out)
        np.minimum(d1, out, out=out)  # canonical [0, q)


class _SmrKernel(_Canon32Kernel):
    """SMR (Alg. 2) butterflies over canonical residues.

    The reference engine carries signed (-q, q) representatives; here each
    Alg. 2 output is folded straight into [0, q) (one arithmetic-shift
    sign mask), which keeps every intermediate congruent and inside
    Alg. 2's |x| < 2^31 domain while letting the butterfly combines run
    in uint32 like the other kernels.
    """

    wide_dtype = np.int64
    low_dtype = np.int32
    method_name = "smr"

    def _consts(self, shape) -> _Layout:
        c = _Layout()
        c.q = shape(np.array(self.primes, dtype=np.uint32))
        c.q64 = shape(np.array(self.primes, dtype=np.int64))
        c.m = shape(self.reducer.m.reshape(-1).astype(np.int32))
        return c

    def _cast_parts(self, parts):
        return (parts[0],)  # signed-Montgomery-form twiddles, int64

    def _mul(self, v, tw, c, shape, out):
        _, _, b64f, c64f, _, _, l32f = self._workspace()
        b64 = b64f.reshape(shape)
        c64 = c64f.reshape(shape)
        low = l32f.reshape(shape)
        np.copyto(b64, v)  # canonical residue, 0 <= v < q < 2^31
        np.multiply(b64, tw[0], out=b64)  # p = v * tw, |p| < q * 2^31
        np.right_shift(b64, _ISHIFT32, out=c64)  # x_hi (arithmetic shift)
        np.copyto(low, b64, casting="unsafe")  # signed low 32 of p
        np.multiply(low, c.m, out=low)  # z = signed mullo32(x_lo, m)
        np.copyto(b64, low)  # sign-extend z
        np.multiply(b64, c.q64, out=b64)
        np.right_shift(b64, _ISHIFT32, out=b64)  # signed mulhi32(z, q)
        np.subtract(c64, b64, out=c64)  # t = x_hi - z, in (-q, q)
        # Canonicalize: t += q when negative (branch-free sign mask).
        np.right_shift(c64, _ISHIFT63, out=b64)
        np.bitwise_and(b64, c.q64, out=b64)
        np.add(c64, b64, out=c64)
        np.copyto(out, c64, casting="unsafe")


class _BarrettKernel(_KernelBase):
    """Harvey-style 2q-lazy uint64 stages for the Barrett backend.

    Barrett's mu-chain needs all four 64-bit partial products, so there is
    no uint32 shortcut; instead stage values ride in [0, 2q) with exactly
    one fold per butterfly output and the exit pass folds to canonical.
    The intermediate integers match the reference's mulmod outputs before
    its strict fold, so canonical outputs are bit-identical.
    """

    lazy_factor = 2  # stage invariant [0, 2q): Harvey-lazy state
    method_name = "barrett"

    def _consts(self, shape) -> _Layout:
        c = _Layout()
        c.q = shape(np.array(self.primes, dtype=np.uint64))
        c.q2 = shape(np.array(self.primes, dtype=np.uint64) * np.uint64(2))
        mu = np.asarray(self.reducer.mu, dtype=np.uint64).reshape(-1)
        c.mu_hi = shape(mu >> _SHIFT32)
        c.mu_lo = shape(mu & _U32)
        return c

    def _cast_parts(self, parts):
        return (parts[0],)

    def _alloc_space(self):
        shape = (len(self.primes), self.n)
        half = (len(self.primes), self.n // 2)
        return (
            np.empty(shape, dtype=np.uint64),
            np.empty(shape, dtype=np.uint64),
            [np.empty(half, dtype=np.uint64) for _ in range(4)],
        )

    def enter(self, a: np.ndarray):
        a = np.asarray(a, dtype=np.uint64)
        if a.size and np.any(a >= self.q_ucol):
            raise _range_error(a, self.q_ucol)
        x, y = self._workspace()[:2]
        np.copyto(x, a)
        return x, y

    def exit(
        self,
        x: np.ndarray,
        scratch: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """[0, 2q) -> canonical [0, q) via the wraparound min-trick."""
        np.subtract(x, self.q_ucol, out=scratch)
        if out is None:
            return np.minimum(x, scratch)
        np.minimum(x, scratch, out=out)
        return out

    def _mul(self, v, tw, c, shape, out):
        b1, b2, b3, b4 = (s.reshape(shape) for s in self._workspace()[2])
        np.multiply(v, tw[0], out=b2)  # x = v * w (exact: < 2q^2 < 2^63)
        np.right_shift(b2, _SHIFT32, out=b1)  # x_hi (v consumed)
        np.bitwise_and(b2, _U32, out=b3)  # x_lo
        np.multiply(b3, c.mu_hi, out=b4)  # mid = x_lo * mu_hi
        np.multiply(b3, c.mu_lo, out=b3)
        np.right_shift(b3, _SHIFT32, out=b3)
        np.add(b4, b3, out=b4)  # + (x_lo * mu_lo) >> 32
        np.multiply(b1, c.mu_lo, out=b3)
        np.add(b4, b3, out=b4)  # + x_hi * mu_lo
        np.right_shift(b4, _SHIFT32, out=b4)
        np.multiply(b1, c.mu_hi, out=b3)
        np.add(b3, b4, out=b3)  # q_hat = x_hi * mu_hi + (mid >> 32)
        np.multiply(b3, c.q, out=b3)
        np.subtract(b2, b3, out=b2)  # r = x - q_hat * q, in [0, 3q)
        np.subtract(b2, c.q2, out=b3)
        np.minimum(b2, b3, out=out)  # fold once into [0, 2q)

    def _bfly(self, u, yu, yv, c, shape):
        """(u, tt=yv) -> (u + tt, u + 2q - tt), folded once into [0, 2q)."""
        b1, b2 = (s.reshape(shape) for s in self._workspace()[2][:2])
        np.add(u, yv, out=b1)
        np.subtract(b1, c.q2, out=b2)
        np.minimum(b1, b2, out=yu)
        np.add(u, c.q2, out=b1)
        np.subtract(b1, yv, out=b1)
        np.subtract(b1, c.q2, out=b2)
        np.minimum(b1, b2, out=yv)

    def _gs(self, u, v, tw, c, shape, yu, yv):
        b1, b2 = (s.reshape(shape) for s in self._workspace()[2][:2])
        np.add(u, v, out=b1)
        np.subtract(b1, c.q2, out=b2)
        np.minimum(b1, b2, out=yu)
        np.add(u, c.q2, out=b1)
        np.subtract(b1, v, out=b1)
        np.subtract(b1, c.q2, out=b2)
        np.minimum(b1, b2, out=b1)
        self._mul(b1, tw, c, shape, yv)


_KERNELS = {
    "barrett": _BarrettKernel,
    "montgomery": _MontgomeryKernel,
    "shoup": _ShoupKernel,
    "smr": _SmrKernel,
}
