"""Negacyclic number-theoretic transform engine (§4 of the paper).

Every kernel the paper prices — basis conversion, key switching, rescaling —
bottoms out in limb-wise negacyclic NTTs over the 25-30 RNS prime system.
This module implements the transform bit-faithfully on top of the Table-3
reducers of :mod:`repro.rns.reduction`:

* forward: iterative Cooley-Tukey decimation-in-time, natural-order input,
  bit-reversed output;
* inverse: iterative Gentleman-Sande decimation-in-frequency, bit-reversed
  input, natural-order output (with the final ``n^-1`` scaling);
* twiddles: powers of a primitive ``2N``-th root psi (``psi^N = -1``), stored
  in bit-reversed order so each stage reads a contiguous slice — the memory
  layout GPU NTT kernels use to keep twiddle loads coalesced.

The negacyclic wrap means ``inverse(forward(a) . forward(b))`` is the product
``a * b mod (x^N + 1)`` with no zero-padding, which is exactly the ring
arithmetic CKKS needs.

Reducer backends are interchangeable: ``method`` picks Shoup, SMR, Barrett or
(unsigned) Montgomery per Table 3.  Montgomery-family backends keep the
*twiddles* in Montgomery form (absorbing the ``2^-32`` factor into the table)
so coefficients never leave the standard domain between butterflies.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ParameterError
from repro.rns.primes import Prime, primitive_root_of_unity
from repro.rns.reduction import (
    BarrettReducer,
    MontgomeryReducer,
    ShoupReducer,
    SignedMontgomeryReducer,
    _parse_moduli,
    align_rows,
)


def _range_error(a: np.ndarray, q) -> ParameterError:
    """Error naming the first out-of-range coefficient and *its* modulus.

    With per-limb moduli, ``a.max()`` can be a perfectly valid value from
    a large-prime row while the violator hides in a small-prime row, so
    the offending entry is located explicitly.
    """
    q_full = np.broadcast_to(np.asarray(q, dtype=np.uint64), a.shape)
    idx = tuple(int(i[0]) for i in np.nonzero(a >= q_full))
    return ParameterError(
        f"coefficient {int(a[idx])} at index {idx} out of range "
        f"[0, {int(q_full[idx])})"
    )


@lru_cache(maxsize=32)
def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index array ``p`` with ``p[i]`` = ``i`` bit-reversed over log2(n) bits.

    Cached per ``n`` (and returned read-only so shared state cannot be
    corrupted): every engine construction — each per-prime engine, each
    batched table build, each extended-basis table build — gathers its
    twiddle tables through this index array, and at small ``N`` that
    repeated build + gather is the largest non-butterfly cost.
    """
    if n <= 0 or n & (n - 1):
        raise ParameterError(f"bit reversal needs a power of two, got {n}")
    log_n = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for bit in range(log_n):
        rev |= ((idx >> bit) & 1) << (log_n - 1 - bit)
    rev.flags.writeable = False
    return rev


@lru_cache(maxsize=64)
def complex_root_powers(n: int) -> np.ndarray:
    """All ``2N`` complex ``2N``-th roots of unity, indexed by exponent.

    ``complex_root_powers(n)[k] == exp(i * pi * k / n)`` — the complex
    analogue of the modular psi power tables the NTT engines build: the
    canonical-embedding encoder's special FFT twiddles are slices of this
    table, and the big-int reference evaluator's slot oracle evaluates
    polynomials against it directly (exponents reduced mod ``2N`` by
    index, so no ``psi**k`` drift accumulates).  Cached per ``N`` and
    read-only.
    """
    if n <= 0 or n & (n - 1):
        raise ParameterError(f"root table needs a power-of-two N, got {n}")
    table = np.exp(1j * np.pi * np.arange(2 * n) / n)
    table.flags.writeable = False
    return table


@lru_cache(maxsize=64)
def canonical_slot_tables(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Slot-orbit index tables for the canonical embedding, cached per N.

    The encoder's ``N/2`` slots are the evaluations at the primitive
    ``2N``-th roots ``psi^(5^j mod 2N)``, *orbit-ordered* by powers of 5 —
    the same generator :data:`repro.scheme.keys.ROTATION_GEN` the Galois
    rotation elements use, which is exactly why ``Evaluator.rotate(k)``
    acts as a cyclic slot shift and ``conjugate`` as slot-wise
    conjugation.  Returns two read-only arrays mapping orbit position
    ``j`` into the engines' bit-reversed NTT slot ordering (slot ``t``
    evaluates at ``psi^(2*brv[t]+1)``, see :func:`automorphism_tables`):

    * ``slot_idx[j]`` — the NTT slot holding the evaluation at
      ``psi^(5^j)``;
    * ``conj_idx[j]`` — the NTT slot holding the evaluation at
      ``psi^(-5^j)``, the conjugate point (real-coefficient polynomials
      take conjugate values there, which is what makes ``N`` real
      coefficients carry exactly ``N/2`` free complex slots).

    Together the two arrays enumerate all ``N`` odd residues mod ``2N``
    (the orbit of 5 and its negation partition them), so scatter-by-both
    followed by the inverse transform is a bijection.
    """
    if n < 4 or n & (n - 1):
        raise ParameterError(
            f"slot tables need a power-of-two N >= 4, got {n}"
        )
    brv = bit_reverse_permutation(n)
    exps = np.empty(n // 2, dtype=np.int64)
    e = 1
    for j in range(n // 2):
        exps[j] = e
        e = (e * 5) % (2 * n)
    slot_idx = brv[(exps - 1) // 2]
    conj_idx = brv[(2 * n - exps - 1) // 2]
    for arr in (slot_idx, conj_idx):
        arr.flags.writeable = False
    return slot_idx, conj_idx


def automorphism_tables(n: int, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached per ``(N, k)`` index tables for the Galois map ``X -> X^k``.

    ``k`` must be odd (i.e. coprime to ``2N``), so ``sigma_k`` is a ring
    automorphism of ``Z[X]/(X^N + 1)``.  Returns three read-only arrays:

    * ``coeff_src`` — coefficient-domain gather indices: output
      coefficient ``j`` reads input coefficient ``coeff_src[j]``;
    * ``coeff_neg`` — boolean mask of output coefficients that pick up a
      sign flip (``X^{ik}`` wrapped past ``X^N = -1`` an odd number of
      times);
    * ``ntt_perm`` — NTT-domain gather indices in the engines'
      bit-reversed evaluation ordering: slot ``t`` of the output reads
      slot ``ntt_perm[t]`` of the input.  The evaluation points
      ``psi^(2j+1)`` are the odd powers of ``psi``, and multiplication
      by ``k`` permutes the odd residues mod ``2N`` among themselves, so
      the NTT-domain action is a *pure* permutation — no transform round
      trip and no sign corrections.

    ``k`` is reduced mod ``2N`` first, so ``sigma_k`` composition tests
    can pass products directly.
    """
    if n <= 0 or n & (n - 1):
        raise ParameterError(f"automorphism needs a power-of-two N, got {n}")
    k %= 2 * n
    if k % 2 == 0:
        raise ParameterError(
            f"Galois element {k} is even: X -> X^k is only an "
            f"automorphism for k coprime to 2N (odd k)"
        )
    return _automorphism_tables(n, k)


@lru_cache(maxsize=128)
def _automorphism_tables(n: int, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The cached body of :func:`automorphism_tables` (``k`` reduced)."""
    idx = np.arange(n, dtype=np.int64)
    exp = (idx * k) % (2 * n)
    wrap = exp >= n  # X^e with e >= N folds to -X^(e-N)
    dest = np.where(wrap, exp - n, exp)
    coeff_src = np.empty(n, dtype=np.int64)
    coeff_src[dest] = idx  # invert the scatter into a gather
    coeff_neg = wrap[coeff_src]
    brv = bit_reverse_permutation(n)
    # Slot t evaluates at psi^(2*brv[t]+1); sigma_k(a) there equals a at
    # psi^((2*brv[t]+1)*k), which lives in slot brv[((e*k)-1)/2] (bit
    # reversal is an involution).
    src_exp = ((2 * brv + 1) * k) % (2 * n)
    ntt_perm = brv[(src_exp - 1) // 2]
    for arr in (coeff_src, coeff_neg, ntt_perm):
        arr.flags.writeable = False
    return coeff_src, coeff_neg, ntt_perm


class _UnsignedBackend:
    """Shared butterfly arithmetic for the [0, 2q)-output reducers.

    Coefficients live as canonical residues [0, q) in uint64; every butterfly
    folds back to canonical so stage outputs are always valid stage inputs.
    Subclasses only decide how a coefficient-times-twiddle product is formed.

    ``q`` is one prime (per-limb engine) or a sequence of L primes (batched:
    the modulus becomes an ``(L, 1)`` column and every op transforms all
    limbs of an ``(L, N)`` matrix in one vectorized pass).
    """

    name = "unsigned"

    def __init__(self, q) -> None:
        qs, self.batched = _parse_moduli(q, "NTT backend")
        self.q_ints = qs
        if self.batched:
            self.q = np.array(qs, dtype=np.uint64).reshape(-1, 1)
        else:
            self.q_int = qs[0]
            self.q = np.uint64(qs[0])

    # -- domain conversion -------------------------------------------------
    def enter(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64)
        q = align_rows(self.q, a.ndim)
        if a.size and np.any(a >= q):
            raise _range_error(a, q)
        return a.copy()

    def exit(self, a: np.ndarray) -> np.ndarray:
        return a

    # -- modular ring ops --------------------------------------------------
    def add(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        q = align_rows(self.q, x.ndim)
        s = x + y
        return np.where(s >= q, s - q, s)

    def sub(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        q = align_rows(self.q, x.ndim)
        d = x + q - y
        return np.where(d >= q, d - q, d)

    # Subclasses: prepare_twiddles(tw) -> tuple of arrays; mul(x, parts).


class _BarrettBackend(_UnsignedBackend):
    name = "barrett"

    def __init__(self, q) -> None:
        super().__init__(q)
        self.red = BarrettReducer(q)

    def prepare_twiddles(self, tw: np.ndarray) -> tuple[np.ndarray, ...]:
        return (np.asarray(tw, dtype=np.uint64),)

    def mul(self, x: np.ndarray, parts: tuple[np.ndarray, ...]) -> np.ndarray:
        return self.red.reduce_strict(self.red.mulmod(x, parts[0]))


class _MontgomeryBackend(_UnsignedBackend):
    name = "montgomery"

    def __init__(self, q) -> None:
        super().__init__(q)
        self.red = MontgomeryReducer(q)

    def prepare_twiddles(self, tw: np.ndarray) -> tuple[np.ndarray, ...]:
        # Twiddles are stored as w * 2^32 mod q so each butterfly's reduce
        # cancels the Montgomery factor and coefficients stay plain.
        return (self.red.to_form(np.asarray(tw, dtype=np.uint64)),)

    def mul(self, x: np.ndarray, parts: tuple[np.ndarray, ...]) -> np.ndarray:
        return self.red.reduce_strict(self.red.mulmod(x, parts[0]))


class _ShoupBackend(_UnsignedBackend):
    name = "shoup"

    def __init__(self, q) -> None:
        super().__init__(q)
        self.red = ShoupReducer(q)

    def prepare_twiddles(self, tw: np.ndarray) -> tuple[np.ndarray, ...]:
        tw = np.asarray(tw, dtype=np.uint64)
        return (tw, self.red.precompute(tw))

    def mul(self, x: np.ndarray, parts: tuple[np.ndarray, ...]) -> np.ndarray:
        w, w_shoup = parts
        return self.red.reduce_strict(self.red.mulmod_const(x, w, w_shoup))


class _SmrBackend:
    """Signed Montgomery (Alg. 2) backend.

    Coefficients live as signed representatives in (-q, q) in int64; every
    butterfly folds once so the range never widens.  Twiddles are stored in
    signed Montgomery form, making each twiddle multiply exactly Table 3's
    cheapest row: mulhi32 + mullo32 + one 32-bit subtract.
    """

    name = "smr"

    def __init__(self, q) -> None:
        qs, self.batched = _parse_moduli(q, "SMR backend")
        self.q_ints = qs
        if self.batched:
            self.q = np.array(qs, dtype=np.int64).reshape(-1, 1)
        else:
            self.q_int = qs[0]
            self.q = np.int64(qs[0])
        self.red = SignedMontgomeryReducer(q)

    def enter(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64)
        bound = np.asarray(align_rows(self.q, a.ndim), dtype=np.uint64)
        if a.size and np.any(a >= bound):
            raise _range_error(a, bound)
        return a.astype(np.int64)

    def exit(self, a: np.ndarray) -> np.ndarray:
        return self.red.canonical(a)

    def add(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        q = align_rows(self.q, x.ndim)
        s = x + y
        s = np.where(s >= q, s - q, s)
        return np.where(s <= -q, s + q, s)

    def sub(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        q = align_rows(self.q, x.ndim)
        d = x - y
        d = np.where(d >= q, d - q, d)
        return np.where(d <= -q, d + q, d)

    def prepare_twiddles(self, tw: np.ndarray) -> tuple[np.ndarray, ...]:
        tw = np.asarray(tw, dtype=np.uint64)
        return (self.red.to_form(tw),)

    def mul(self, x: np.ndarray, parts: tuple[np.ndarray, ...]) -> np.ndarray:
        # |x| < q and |tw_mont| < q, so |x * tw| < q * 2^31: Alg. 2's domain.
        return self.red.reduce(x * parts[0])


_BACKENDS = {
    "barrett": _BarrettBackend,
    "montgomery": _MontgomeryBackend,
    "shoup": _ShoupBackend,
    "smr": _SmrBackend,
}


def make_ntt_backend(method: str, q):
    """Factory over the four butterfly backends (Table 3).

    ``q`` is one prime (per-limb engine) or a sequence of L primes
    (batched limb-matrix mode, see :class:`repro.poly.batch_ntt.BatchNTT`).
    """
    try:
        return _BACKENDS[method](q)
    except KeyError:
        raise ParameterError(f"unknown NTT backend {method!r}") from None


class NegacyclicNTT:
    """Per-prime negacyclic NTT with precomputed bit-reversed twiddles.

    Args:
        q: the limb prime (a :class:`Prime` or a raw int), q = 1 (mod 2N).
        n: ring degree N, a power of two.
        method: reducer backend; one of barrett / montgomery / shoup / smr.
        psi: optionally a specific primitive 2N-th root of unity to use
            (tests pin it for reproducibility); found via
            :func:`primitive_root_of_unity` when omitted.
    """

    def __init__(
        self,
        q: int | Prime,
        n: int,
        method: str = "smr",
        *,
        psi: int | None = None,
    ) -> None:
        q = int(q)
        if n < 2 or n & (n - 1):
            raise ParameterError(f"ring degree {n} is not a power of two >= 2")
        if (q - 1) % (2 * n):
            raise ParameterError(f"q={q} is not NTT-friendly for N={n}")
        self.q = q
        self.n = n
        self.log_n = n.bit_length() - 1
        self.method = method
        if psi is None:
            psi = primitive_root_of_unity(2 * n, q)
        elif pow(psi, n, q) != q - 1:
            raise ParameterError(f"psi={psi} is not a primitive {2*n}-th root")
        self.psi = psi
        self.backend = make_ntt_backend(method, q)

        brv = bit_reverse_permutation(n)
        self._fwd = self.backend.prepare_twiddles(_power_table(psi, q, n)[brv])
        psi_inv = pow(psi, -1, q)
        self._inv = self.backend.prepare_twiddles(_power_table(psi_inv, q, n)[brv])
        self._n_inv = self.backend.prepare_twiddles(
            np.array([pow(n, -1, q)], dtype=np.uint64)
        )

    # -- transforms --------------------------------------------------------
    def forward(self, a: np.ndarray) -> np.ndarray:
        """Coefficients (natural order) -> NTT values (bit-reversed order).

        Cooley-Tukey DIT: log2(N) stages of N/2 butterflies
        ``(u, v) -> (u + S*v, u - S*v)``, stage ``m`` reading the contiguous
        twiddle slice ``[m, 2m)`` of the bit-reversed psi table.
        """
        b = self.backend
        x = b.enter(a)
        if x.shape != (self.n,):
            raise ParameterError(f"expected shape ({self.n},), got {x.shape}")
        t = self.n
        m = 1
        while m < self.n:
            t >>= 1
            blk = x.reshape(m, 2 * t)
            u = blk[:, :t]
            v = b.mul(blk[:, t:], _tw_slice(self._fwd, m, 2 * m))
            hi = b.add(u, v)
            lo = b.sub(u, v)
            blk[:, :t] = hi
            blk[:, t:] = lo
            m <<= 1
        return b.exit(x)

    def inverse(self, a_hat: np.ndarray) -> np.ndarray:
        """NTT values (bit-reversed order) -> coefficients (natural order).

        Gentleman-Sande DIF: butterflies ``(u, v) -> (u + v, S*(u - v))``
        then the final ``n^-1`` scaling.
        """
        b = self.backend
        x = b.enter(a_hat)
        if x.shape != (self.n,):
            raise ParameterError(f"expected shape ({self.n},), got {x.shape}")
        t = 1
        m = self.n
        while m > 1:
            h = m >> 1
            blk = x.reshape(h, 2 * t)
            u = blk[:, :t]
            v = blk[:, t:]
            s = b.add(u, v)
            d = b.mul(b.sub(u, v), _tw_slice(self._inv, h, 2 * h))
            blk[:, :t] = s
            blk[:, t:] = d
            t <<= 1
            m = h
        x = b.mul(x, tuple(p[:1] for p in self._n_inv))
        return b.exit(x)

    # -- NTT-domain arithmetic ---------------------------------------------
    def prepare_operand(self, b_hat: np.ndarray) -> tuple[np.ndarray, ...]:
        """Backend-prepared form of an NTT-domain operand, for reuse.

        Shoup's companion is a full per-element division and the Montgomery
        family pays an extra ``to_form`` pass; preparing once and passing
        the handle to :meth:`pointwise_prepared` makes repeated products
        against the same operand (key switching multiplies every limb by
        the same key polynomial) pay that precompute exactly once.
        """
        if np.shape(b_hat) != (self.n,):
            raise ParameterError(
                f"expected a ({self.n},) vector, got {np.shape(b_hat)}"
            )
        return self.backend.prepare_twiddles(b_hat)

    def pointwise_prepared(
        self, a_hat: np.ndarray, prepared: tuple[np.ndarray, ...]
    ) -> np.ndarray:
        """Element-wise product against a :meth:`prepare_operand` handle."""
        if np.shape(a_hat) != (self.n,):
            raise ParameterError(
                f"expected a ({self.n},) vector, got {np.shape(a_hat)}"
            )
        b = self.backend
        return b.exit(b.mul(b.enter(a_hat), prepared))

    def pointwise(self, a_hat: np.ndarray, b_hat: np.ndarray) -> np.ndarray:
        """Element-wise product of two NTT-domain vectors, canonical [0, q).

        Both inputs must come from :meth:`forward` (same bit-reversed
        ordering); the ordering is consistent so no permutation is needed.
        One-shot convenience over :meth:`prepare_operand` +
        :meth:`pointwise_prepared`; amortize the precompute through those
        when multiplying repeatedly by the same ``b_hat``.
        """
        return self.pointwise_prepared(a_hat, self.prepare_operand(b_hat))

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a * b mod (x^N + 1, q)`` via forward / pointwise / inverse."""
        return self.inverse(self.pointwise(self.forward(a), self.forward(b)))


@lru_cache(maxsize=4096)
def _power_table(base: int, q: int, n: int) -> np.ndarray:
    """[base^0, base^1, ..., base^(n-1)] mod q as uint64, cached.

    Shared root-table plumbing: the per-prime engines, the batched
    limb-matrix tables, and every extended-basis rebuild gather their
    bit-reversed twiddles out of this one cache, so reconstructing a
    context (tests, benchmarks, encoder/evaluator pairs) never recomputes
    a root chain it has already walked.  Returned read-only; callers
    gather through ``[brv]`` (which copies) before mutating layouts.
    """
    powers = np.empty(n, dtype=np.uint64)
    acc = 1
    for i in range(n):
        powers[i] = acc
        acc = acc * base % q
    powers.flags.writeable = False
    return powers


def _tw_slice(
    parts: tuple[np.ndarray, ...], lo: int, hi: int
) -> tuple[np.ndarray, ...]:
    """Stage slice [lo, hi) of a prepped twiddle table, as a column vector."""
    return tuple(p[lo:hi].reshape(-1, 1) for p in parts)
