"""Polynomial layer: negacyclic NTT + RNS polynomials over the prime system.

Layering (bottom up): :mod:`repro.rns` supplies limb primes, reducers and
rescaling cycles; this package turns them into ring arithmetic —
:class:`NegacyclicNTT` per limb (the reference path), :class:`BatchNTT`
across the whole ``(num_limbs, N)`` limb matrix (the limb-parallel hot
path), :class:`RnsPolynomial` across limbs, :class:`LazyAccumulator` for
§4.2 deferred folds, and :class:`CostModel` for Table-3-style instruction
pricing.
"""

from repro.poly.basis_conv import (
    BasisConverter,
    KeySwitchKey,
    ModDown,
    ModUp,
)
from repro.poly.batch_ntt import BatchNTT
from repro.poly.cost import (
    MODADD_INSTRS,
    RAW64_INSTRS,
    CostModel,
    OpCost,
    compare_methods,
)
from repro.poly.lazy import LazyAccumulator
from repro.poly.ntt import (
    NegacyclicNTT,
    automorphism_tables,
    bit_reverse_permutation,
    make_ntt_backend,
)
from repro.poly.rns_poly import (
    COEFF,
    NTT,
    LimbState,
    PolyContext,
    RnsPolynomial,
)

__all__ = [
    "COEFF",
    "NTT",
    "MODADD_INSTRS",
    "RAW64_INSTRS",
    "BasisConverter",
    "BatchNTT",
    "CostModel",
    "KeySwitchKey",
    "KeySwitchPlan",
    "KeySwitcher",
    "LazyAccumulator",
    "LimbState",
    "ModDown",
    "ModUp",
    "NegacyclicNTT",
    "OpCost",
    "PolyContext",
    "RnsPolynomial",
    "automorphism_tables",
    "bit_reverse_permutation",
    "compare_methods",
    "make_ntt_backend",
]

#: key-switching machinery is internal as of the PR 10 API redesign —
#: evaluator/plan layers reach it via PolyContext.key_switcher; the old
#: package-level names keep working for one release behind a warn-once
#: shim
_DEPRECATED = {
    "KeySwitcher": "PolyContext.key_switcher(...)",
    "KeySwitchPlan": "PolyContext.key_switcher(...).plan_for(...)",
}


def __getattr__(name):
    replacement = _DEPRECATED.get(name)
    if replacement is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    from repro import _compat
    from repro.poly import basis_conv

    _compat.warn_once(f"repro.poly.{name}", replacement)
    return getattr(basis_conv, name)
