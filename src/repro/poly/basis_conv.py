"""Fast RNS basis conversion and the fused key-switching pipeline (§4.3).

The paper's priced kernels beyond the NTT all reduce to *fast basis
extension* (HPS-style): an element known limb-wise in a source basis
``{q_1..q_L}`` is re-expressed in a target basis ``{p_1..p_K}`` without
ever reconstructing the big integer.  Writing ``Q = prod q_i`` and
``q_i_hat = Q / q_i``,

    x_hat_i = [x_i * q_i_hat^-1]_{q_i}                  (scale step)
    [x]_{p_j} = sum_i x_hat_i * [q_i_hat]_{p_j} - v * [Q]_{p_j}
    v = round-down of sum_i x_hat_i / q_i               (the correction)

:class:`BasisConverter` runs this entirely on ``(L, N)`` limb matrices:
the scale step is one vectorized per-row Shoup chain, the CRT matrix
product is one ``(L_out, L_in, N)`` pass through
:meth:`~repro.rns.reduction.ShoupReducer.mulmod_cross` summed through a
batched :class:`~repro.poly.lazy.LazyAccumulator` (deferred folds, one
terminal fold per lane), and ``v`` is the floating-point correction term
— guarded by an exact big-int resolution of the (measure-zero) boundary
coefficients so every output *bit-matches* a big-int CRT reference, not
just approximates it.

On top of the converter sit the key-switching kernels:

* :class:`ModUp` — extend one digit of the limb basis to the full
  extended basis ``Q ∪ P`` (digit rows are copied, the complement is
  converted);
* :class:`ModDown` — divide an extended-basis element by ``P`` exactly
  (convert the P-part back to Q, subtract, scale by ``P^-1``), the
  floor-division counterpart of ``exact_rescale``;
* :class:`KeySwitcher` — the fused hybrid key-switching pipeline.  A
  :class:`KeySwitchPlan` makes NTT-domain state *explicit*: the plan is
  built once from the operand's domain (including its cached
  coefficient/NTT twin) and the requested output domain, the executor
  interprets the plan step by step, and the step list is the proof that
  no forward/inverse round trip is redundant — e.g. an NTT-domain output
  inverse-transforms only the ``K`` auxiliary rows of each half, never
  the ``L`` base rows.  All intermediates live in persistent per-switcher
  scratch buffers.

Domain/representative conventions: conversion acts on the *canonical*
representative ``X in [0, Q)`` of the CRT reconstruction, and ModDown
computes ``floor(X / P)`` — the same conventions the big-int reference
uses, which is what makes bit-equality a meaningful test.  (The centered
variants CKKS noise analysis prefers differ by a data-independent shift
and are out of scope for this layer.)
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.analysis.sanitizer import assert_within, checked_mode
from repro.errors import LayoutError, ParameterError
from repro.poly.backends import make_convert_impl, resolve_backend
from repro.poly.lazy import LazyAccumulator
from repro.poly.ntt import _range_error
from repro.rns.primes import digit_ranges
from repro.rns.reduction import ShoupReducer

_U32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)

#: coefficients whose fractional CRT weight lies this close to an integer
#: are resolved with exact big-int arithmetic instead of trusting the
#: float64 correction term.  float64 accumulates < L * 2^-52 of error
#: over the sum, so 2^-30 is ~4 million times wider than the worst case —
#: the guard fires only when the true value genuinely straddles a
#: boundary (x within ~Q * 2^-30 of 0 or Q), where floats cannot decide.
_V_GUARD = 2.0**-30


def _as_ints(primes) -> list[int]:
    return [int(p) for p in primes]


class BasisConverter:
    """Fast basis extension from one RNS basis onto another.

    All per-prime constants are precomputed at construction: the inverse
    CRT weights ``q_i_hat^-1 mod q_i`` with Shoup companions (scale
    step), the ``(L_out, L_in)`` CRT matrix ``[q_i_hat]_{p_j}`` with
    per-row companions, and the v-correction constants ``[-Q]_{p_j}``.
    The converter's arithmetic is method-independent — canonical uint64
    residues through Shoup chains — so one converter serves every NTT
    backend, and its output bit-matches the big-int CRT reference by
    construction (see the module docstring's exactness guard).

    Scratch (two ``(L_out, L_in, N)`` tensors, a few ``(L, N)`` rows) is
    allocated lazily on first :meth:`convert` and reused for the life of
    the converter, so steady-state conversions allocate nothing.
    """

    def __init__(
        self,
        src_primes,
        dst_primes,
        ring_degree: int,
        *,
        checked: bool | None = None,
        backend: str | None = None,
    ) -> None:
        self.src = _as_ints(src_primes)
        self.dst = _as_ints(dst_primes)
        self.n = int(ring_degree)
        self.checked = checked_mode(checked)
        #: dispatch tier for the CRT tensor pass (same semantics as
        #: :class:`~repro.poly.batch_ntt.BatchNTT`'s ``backend``); the
        #: scale step and the exact v-term always run in-process
        self.backend_tier = resolve_backend(backend)
        self._impl = None
        self._impl_ready = False
        if not self.src or not self.dst:
            raise ParameterError("basis conversion needs non-empty bases")
        if len(set(self.src)) != len(self.src):
            raise ParameterError("source basis primes must be distinct")
        for q in (*self.src, *self.dst):
            if not (2 < q < 2**31):
                raise ParameterError(f"basis prime {q} out of 32-bit range")
        l_in, l_out = len(self.src), len(self.dst)

        #: Q = prod q_i and the big-int CRT weights (kept for the exact
        #: resolution of boundary coefficients).
        self.modulus = 1
        for q in self.src:
            self.modulus *= q
        self._q_hat = [self.modulus // q for q in self.src]

        col = lambda v, dt=np.uint64: np.array(v, dtype=dt).reshape(-1, 1)  # noqa: E731
        self._q_src = col(self.src)
        # Scale step: w_i = q_i_hat^-1 mod q_i with Shoup companions.
        w = [pow(h, -1, q) for h, q in zip(self._q_hat, self.src)]
        self._w = col(w)
        self._w_sh = col([(wi << 32) // q for wi, q in zip(w, self.src)])
        # CRT matrix M[j, i] = q_i_hat mod p_j with per-row companions.
        self._m = np.array(
            [[h % p for h in self._q_hat] for p in self.dst], dtype=np.uint64
        )
        self._m_sh = np.array(
            [[(h % p << 32) // p for h in self._q_hat] for p in self.dst],
            dtype=np.uint64,
        )
        # v-correction constant (-Q) mod p_j, with companions.
        corr = [(-self.modulus) % p for p in self.dst]
        self._corr = col(corr)
        self._corr_sh = col([(c << 32) // p for c, p in zip(corr, self.dst)])
        #: float64 reciprocals 1/q_i for the correction term
        self._inv_q = 1.0 / np.array(self.src, dtype=np.float64).reshape(-1, 1)

        #: batched Shoup reducer over the target basis — supplies
        #: mulmod_cross and the accumulator's per-row moduli
        self.reducer = ShoupReducer(self.dst)
        self._acc = LazyAccumulator(
            self.reducer, (l_out, self.n), strategy="reduced",
            checked=self.checked,
        )
        #: worst-case |term| of one summed cross-product row (see fold)
        self._row_bound = l_in * (2 * max(self.dst) - 1)
        self._space: tuple | None = None

    @property
    def num_src(self) -> int:
        return len(self.src)

    @property
    def num_dst(self) -> int:
        return len(self.dst)

    def _workspace(self) -> tuple:
        if self._space is None:
            l_in, l_out, n = len(self.src), len(self.dst), self.n
            self._space = (
                np.empty((l_in, n), np.uint64),  # scale scratch a
                np.empty((l_in, n), np.uint64),  # scale scratch b
                np.empty((l_out, l_in, n), np.uint64),  # cross tensor
                np.empty((l_out, l_in, n), np.uint64),  # cross work
                np.empty((l_out, n), np.uint64),  # row sums
                np.empty((l_in, n), np.float64),  # v weights
                np.empty(n, np.float64),  # v sum
                np.empty(n, np.float64),  # v rounding scratch
                np.empty((1, n), np.uint64),  # v as residues
                np.empty((l_out, n), np.uint64),  # default output
                np.empty((l_out, n), np.uint64),  # v-term product scratch
            )
        return self._space

    def scale(self, x: np.ndarray, out: np.ndarray | None = None):
        """The scale step: ``x_hat_i = x_i * q_i_hat^-1 mod q_i``.

        One vectorized per-row Shoup chain over the whole ``(L_in, N)``
        limb matrix; exposed separately because tests pin its exact
        intermediate (and ModUp's digit reuse wants it cheap).
        """
        if x.shape != (len(self.src), self.n):
            raise LayoutError(
                f"expected ({len(self.src)}, {self.n}) source limbs, "
                f"got {x.shape}"
            )
        if x.size and np.any(x >= self._q_src):
            raise _range_error(x, self._q_src)
        s1, s2 = self._workspace()[:2]
        if out is None:
            out = s1
        scale_core = getattr(self._tier_impl(), "scale_core", None)
        if scale_core is not None:
            res = scale_core(np.ascontiguousarray(x, dtype=np.uint64), out)
            if res is not None:
                return res
        np.multiply(x, self._w_sh, out=s2)
        np.right_shift(s2, _SHIFT32, out=s2)  # hi = mulhi32(x, w')
        np.multiply(s2, self._q_src, out=s2)  # hi * q (low 64)
        np.multiply(x, self._w, out=out)
        np.subtract(out, s2, out=out)
        np.bitwise_and(out, _U32, out=out)  # in [0, 2q)
        np.subtract(out, self._q_src, out=s2)
        np.minimum(out, s2, out=out)  # canonical [0, q)
        return out

    def _v_term(self, x_hat: np.ndarray) -> np.ndarray:
        """The correction multiplicities ``v = floor(sum x_hat_i / q_i)``.

        Float64 with an exact big-int fallback: coefficients whose
        fractional weight lies within :data:`_V_GUARD` of an integer are
        recomputed as ``(sum x_hat_i * q_i_hat) // Q`` in Python ints, so
        the returned ``v`` is *always* the exact integer the CRT identity
        needs — conversion stays bit-identical to the big-int reference
        even for adversarial inputs like ``X = Q - 1``.
        """
        fw, fs, fr, v_row = self._workspace()[5:9]
        np.multiply(x_hat, self._inv_q, out=fw)
        np.sum(fw, axis=0, out=fs)
        np.rint(fs, out=fr)
        np.subtract(fs, fr, out=fr)
        np.abs(fr, out=fr)
        ambiguous = np.nonzero(fr < _V_GUARD)[0]
        np.floor(fs, out=fs)
        np.copyto(v_row[0], fs, casting="unsafe")
        for j in ambiguous:
            exact = sum(int(x_hat[i, j]) * self._q_hat[i] for i in range(len(self.src)))
            v_row[0, j] = exact // self.modulus
        return v_row

    def _tier_impl(self):
        """The lazily built backend impl for the tensor pass, or ``None``."""
        if not self._impl_ready:
            self._impl_ready = True
            self._impl = make_convert_impl(self, self.backend_tier)
        return self._impl

    def _convert_core(
        self, x_hat: np.ndarray, v_row: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """The numpy-tier tensor pass: cross products + v-term + fold.

        Separated from :meth:`convert` as the dispatch seam — a backend
        impl replaces exactly this (canonical ``x_hat`` and exact ``v``
        in, canonical target residues out), never the scale/v steps.
        """
        space = self._workspace()
        cross, work, sums = space[2:5]
        self.reducer.mulmod_cross(x_hat, self._m, self._m_sh, out=cross, work=work)
        np.add.reduce(cross, axis=1, out=sums)
        acc = self._acc
        acc.reset()
        acc.accumulate_value(sums, self._row_bound)
        # v-correction term v * [-Q]_{p_j}, same Shoup chain in scratch
        # (sums is free again once accumulated above).
        t = space[10]
        q_dst = self.reducer.q
        np.multiply(v_row, self._corr_sh, out=t)
        np.right_shift(t, _SHIFT32, out=t)  # hi = mulhi32(v, corr')
        np.multiply(t, q_dst, out=t)
        np.multiply(v_row, self._corr, out=sums)
        np.subtract(sums, t, out=sums)
        np.bitwise_and(sums, _U32, out=sums)  # in [0, 2q)
        acc.accumulate_value(sums, 2 * max(self.dst) - 1)
        acc.fold_into(out)
        return out

    def convert(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``(L_in, N)`` residues in the source basis -> ``(L_out, N)``.

        Exact: output row ``j`` is ``X mod p_j`` for the canonical CRT
        representative ``X in [0, Q)`` of ``x``.  When ``out`` is omitted
        the result lands in (and is returned as) converter-owned scratch
        overwritten by the next call.
        """
        x_hat = self.scale(x)
        v_row = self._v_term(x_hat)
        if out is None:
            out = self._workspace()[9]
        impl = self._tier_impl()
        res = (
            impl.convert_core(x_hat, v_row, out) if impl is not None else None
        )
        if res is None:
            self._convert_core(x_hat, v_row, out)
        if self.checked:
            assert_within(
                out, self.reducer.q - np.uint64(1),
                kernel="BasisConverter", stage="convert output",
            )
        return out


class ModUp:
    """Extend one digit of a limb basis onto the full extended basis.

    ``ext_primes`` is the extended basis (base limbs then auxiliary
    limbs); the digit occupies rows ``[lo, hi)``.  :meth:`apply` copies
    the digit rows verbatim and fills the complement — the rows before
    ``lo``, after ``hi``, and the whole P-part — from one
    :class:`BasisConverter` pass.
    """

    def __init__(
        self,
        ext_primes,
        lo: int,
        hi: int,
        ring_degree: int,
        *,
        checked: bool | None = None,
        backend: str | None = None,
    ) -> None:
        ext = _as_ints(ext_primes)
        if not 0 <= lo < hi <= len(ext):
            raise ParameterError(
                f"digit rows [{lo}, {hi}) outside the {len(ext)}-limb "
                "extended basis"
            )
        if hi - lo == len(ext):
            raise ParameterError(
                "digit covers the whole extended basis; nothing to extend"
            )
        self.lo, self.hi = lo, hi
        self.num_ext = len(ext)
        self.converter = BasisConverter(
            ext[lo:hi], ext[:lo] + ext[hi:], ring_degree,
            checked=checked, backend=backend,
        )

    def apply(self, digit: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``digit`` (digit rows, coeff domain) -> ``out`` (L_ext, N)."""
        lo, hi = self.lo, self.hi
        conv = self.converter.convert(digit)
        out[:lo] = conv[:lo]
        out[lo:hi] = digit
        out[hi:] = conv[lo:]
        return out


class ModDown:
    """Exact division by the auxiliary modulus ``P`` (floor convention).

    For an extended-basis element with canonical representative
    ``X in [0, Q*P)``, computes ``floor(X / P)`` in the base basis:
    convert the P-part residues back onto Q, subtract, and scale by the
    cached ``P^-1 mod q_i`` — the key-switching counterpart of
    ``exact_rescale`` (which divides by one limb; this divides by the
    whole P-part in one pass).  :meth:`combine` is domain-agnostic
    (per-row constants commute with the NTT), which is what lets the
    NTT-domain key-switch output skip inverse-transforming base rows.
    """

    def __init__(
        self,
        base_primes,
        aux_primes,
        ring_degree: int,
        *,
        checked: bool | None = None,
        backend: str | None = None,
    ) -> None:
        self.base = _as_ints(base_primes)
        self.aux = _as_ints(aux_primes)
        self.n = int(ring_degree)
        self.checked = checked_mode(checked)
        self.converter = BasisConverter(
            self.aux, self.base, ring_degree,
            checked=self.checked, backend=backend,
        )
        self.p_modulus = 1
        for p in self.aux:
            self.p_modulus *= p
        col = lambda v: np.array(v, dtype=np.uint64).reshape(-1, 1)  # noqa: E731
        self._q = col(self.base)
        pinv = [pow(self.p_modulus, -1, q) for q in self.base]
        self._pinv = col(pinv)
        self._pinv_sh = col([(w << 32) // q for w, q in zip(pinv, self.base)])
        shape = (len(self.base), self.n)
        self._s1 = np.empty(shape, np.uint64)
        self._s2 = np.empty(shape, np.uint64)

    def combine(
        self, x_base: np.ndarray, conv: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """``out = (x_base - conv) * P^-1 mod q`` on ``(L, N)`` rows.

        Valid in the coefficient *or* NTT domain as long as ``x_base``
        and ``conv`` share one: subtraction and per-row constant
        multiplication are pointwise, so they commute with the
        (per-row-linear) NTT.
        """
        s1, s2 = self._s1, self._s2
        q = self._q
        np.subtract(q, conv, out=s1)  # q - conv in (0, q]
        np.add(s1, x_base, out=s1)  # x - conv + q in (0, 2q)
        np.subtract(s1, q, out=s2)
        np.minimum(s1, s2, out=s1)  # canonical difference
        np.multiply(s1, self._pinv_sh, out=s2)
        np.right_shift(s2, _SHIFT32, out=s2)
        np.multiply(s2, q, out=s2)  # hi * q
        np.multiply(s1, self._pinv, out=s1)
        np.subtract(s1, s2, out=s1)
        np.bitwise_and(s1, _U32, out=s1)  # in [0, 2q)
        np.subtract(s1, q, out=s2)
        np.minimum(s1, s2, out=out)
        if self.checked:
            assert_within(
                out, q - np.uint64(1),
                kernel="ModDown", stage="combine output",
            )
        return out

    def apply(self, x_ext: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Coefficient-domain ModDown of an ``(L+K, N)`` limb matrix."""
        num_base = len(self.base)
        if x_ext.shape != (num_base + len(self.aux), self.n):
            raise LayoutError(
                f"expected ({num_base + len(self.aux)}, {self.n}) extended "
                f"limbs, got {x_ext.shape}"
            )
        conv = self.converter.convert(x_ext[num_base:])
        return self.combine(x_ext[:num_base], conv, out)


# ---------------------------------------------------------------------------
# Hybrid key switching
# ---------------------------------------------------------------------------


class KeySwitchKey:
    """A hybrid key-switching key: ``dnum`` NTT-domain polynomial pairs.

    Each pair lives in the *extended* context (base limbs then auxiliary
    limbs) in the NTT domain; pair ``d`` multiplies the ModUp-extension
    of digit ``d``.  The pairs cache their backend-prepared operands on
    first use, so a long-lived key pays Shoup-companion / Montgomery
    ``to_form`` precompute exactly once across all switches.

    This layer treats the key as opaque data — the pipeline is linear in
    the key, so correctness (bit-matching the composed reference) is
    independent of how the pairs were generated; :meth:`random` supplies
    uniform pairs for tests and benchmarks.
    """

    def __init__(self, ext_ctx, num_aux: int, pairs) -> None:
        from repro.poly.rns_poly import NTT

        self.ext_ctx = ext_ctx
        self.num_aux = int(num_aux)
        if not 1 <= self.num_aux < ext_ctx.num_limbs:
            raise ParameterError(
                f"num_aux={num_aux} must lie in [1, {ext_ctx.num_limbs})"
            )
        self.pairs = [tuple(pair) for pair in pairs]
        if not self.pairs:
            raise ParameterError("a key-switching key needs >= 1 digit pair")
        for pair in self.pairs:
            if len(pair) != 2:
                raise ParameterError("each digit needs a (k0, k1) pair")
            for k in pair:
                if not ext_ctx.compatible(k.ctx):
                    raise ParameterError(
                        "key pair context does not match the extended basis"
                    )
                if k.domain != NTT:
                    raise LayoutError("key pairs must be NTT-domain")

    @property
    def dnum(self) -> int:
        return len(self.pairs)

    @property
    def base_primes(self) -> list[int]:
        return self.ext_ctx.primes[: -self.num_aux]

    @property
    def aux_primes(self) -> list[int]:
        return self.ext_ctx.primes[-self.num_aux :]

    @classmethod
    def random(cls, ctx, aux_primes, dnum: int, rng) -> KeySwitchKey:
        """Uniform key pairs over ``ctx`` extended by ``aux_primes``."""
        ext_ctx = ctx.extend(aux_primes)
        pairs = [
            (ext_ctx.random(rng).to_ntt(), ext_ctx.random(rng).to_ntt())
            for _ in range(dnum)
        ]
        return cls(ext_ctx, len(_as_ints(aux_primes)), pairs)


@dataclass(frozen=True)
class KeySwitchPlan:
    """An explicit NTT-domain schedule for one key switch.

    ``steps`` is the exact sequence the executor interprets — each entry
    ``(op, arg)`` where ``arg`` is a digit index (``mod_up`` / ``mac``)
    or the number of limb *rows* the step transforms.  ``forward_rows`` /
    ``inverse_rows`` total those transforms; the test suite pins them to
    the information-theoretic minimum for each (input state, output
    domain) pair — the "zero redundant round trips" claim, stated as
    data.
    """

    input_domain: str
    output_domain: str
    #: identity of the switcher configuration the plan was built for —
    #: the executor refuses a plan from a different (basis, dnum), which
    #: would otherwise silently skip or duplicate digit work
    ext_primes: tuple[int, ...]
    dnum: int
    steps: tuple[tuple[str, int], ...]
    # Pricing metadata (appended with defaults so older positional
    # construction keeps working); filled by KeySwitcher.plan_for.
    ring_degree: int = 0
    method: str = ""
    num_base: int = 0

    @classmethod
    def build(cls, switcher: KeySwitcher, poly, output_domain: str = "coeff"):
        """Plan-protocol constructor: schedule switching ``poly``."""
        return switcher.plan(poly, output_domain)

    def run(self, poly, ksk: KeySwitchKey):
        """Execute this plan against ``poly`` under ``ksk``."""
        switcher = poly.ctx.key_switcher(ksk.aux_primes, ksk.dnum)
        return switcher.run(poly, ksk, self)

    def validate(self, config: KeySwitcher) -> None:
        """Refuse to run under a switcher this plan was not built for."""
        if (
            self.ext_primes != tuple(config.ext_ctx.primes)
            or self.dnum != config.dnum
        ):
            raise ParameterError(
                "plan was built for a different (extended basis, dnum) "
                "configuration than this key's switcher"
            )

    def cost(self):
        """Price one execution with the polynomial-layer cost model.

        The method-priced key-switch core, plus the input inverse
        transform when the plan starts from an un-twinned NTT operand
        (``reuse_coeff`` and coefficient inputs add nothing).
        """
        from repro.poly.cost import CostModel, _merge

        if not self.ring_degree or not self.method or not self.num_base:
            raise ParameterError(
                "plan carries no pricing metadata; build it through "
                "KeySwitcher.plan / plan_for"
            )
        model = CostModel(self.ring_degree, self.num_base, self.method)
        num_aux = len(self.ext_primes) - self.num_base
        total = model.key_switch(
            num_aux, dnum=self.dnum, output_domain=self.output_domain
        )
        input_rows = sum(arg for op, arg in self.steps if op == "intt_input")
        if input_rows:
            total = _merge(total, model.intt().scaled(input_rows))
        return total

    @property
    def forward_rows(self) -> int:
        return sum(
            arg for op, arg in self.steps if op in ("ntt_ext", "ntt_conv")
        )

    @property
    def inverse_rows(self) -> int:
        return sum(
            arg
            for op, arg in self.steps
            if op in ("intt_input", "intt_ext", "intt_aux")
        )

    def describe(self) -> str:
        ops = " -> ".join(f"{op}[{arg}]" for op, arg in self.steps)
        return (
            f"{self.input_domain} -> {self.output_domain}: {ops} "
            f"({self.forward_rows} fwd rows, {self.inverse_rows} inv rows)"
        )


class KeySwitcher:
    """The fused hybrid key-switching pipeline for one (ctx, P, dnum).

    Cached on the base :class:`~repro.poly.rns_poly.PolyContext` (see
    ``PolyContext.key_switcher``); holds every per-basis precompute — one
    :class:`ModUp` per digit, the :class:`ModDown`, the extended-basis
    batched NTT (twiddle tables shared with the base context via
    ``BatchNTT.extend``), the auxiliary-row window engine, two
    :class:`~repro.poly.lazy.LazyAccumulator` halves, and all transform /
    conversion scratch — so every stage of a steady-state switch writes
    into reusable buffers (the reducer-level temporaries inside the MAC
    and the two output polynomials are the only fresh arrays).
    """

    def __init__(self, ctx, aux_primes, dnum: int) -> None:
        self.ctx = ctx
        self.aux = _as_ints(aux_primes)
        self.ext_ctx = ctx.extend(self.aux)
        num_base, num_aux = ctx.num_limbs, len(self.aux)
        self.num_ext = num_base + num_aux
        self.digits = digit_ranges(num_base, dnum)
        self.dnum = dnum
        n = ctx.ring_degree
        ext_primes = self.ext_ctx.primes
        self.checked = bool(getattr(ctx, "checked", False))
        self.backend = getattr(ctx, "backend", None)
        self.modups = [
            ModUp(
                ext_primes, lo, hi, n,
                checked=self.checked, backend=self.backend,
            )
            for lo, hi in self.digits
        ]
        self.moddown = ModDown(
            ctx.primes, self.aux, n,
            checked=self.checked, backend=self.backend,
        )
        #: window engine over the auxiliary rows only (shared tables)
        self.aux_batch = self.ext_ctx.batch_ntt.take_rows(num_base, self.num_ext)
        self.aux_batch.set_checked(self.checked)
        ext_shape = (self.num_ext, n)
        self._ext_buf = np.empty(ext_shape, np.uint64)
        self._ahat = np.empty(ext_shape, np.uint64)
        self._c = (np.empty(ext_shape, np.uint64),
                   np.empty(ext_shape, np.uint64))
        self._conv_hat = np.empty((num_base, n), np.uint64)
        self._signed = ctx.method == "smr"
        self._lanes = (np.empty(ext_shape, np.int64) if self._signed else None)

    @cached_property
    def _accs(self) -> tuple[LazyAccumulator, LazyAccumulator]:
        red = self.ext_ctx.batch_ntt.backend.red
        shape = (self.num_ext, self.ctx.ring_degree)
        return (
            LazyAccumulator(red, shape, strategy="reduced", checked=self.checked),
            LazyAccumulator(red, shape, strategy="reduced", checked=self.checked),
        )

    # -- planning ----------------------------------------------------------
    def plan_for(
        self,
        input_domain: str,
        *,
        has_twin: bool = False,
        output_domain: str = "coeff",
    ) -> KeySwitchPlan:
        """Build the explicit schedule from *described* input state.

        ``input_domain`` and ``has_twin`` (whether an NTT-domain operand
        carries a cached coefficient twin, making its input inverse
        free) fully determine the step list — which is what lets a
        circuit compiler plan a switch ahead of time, before the operand
        exists.
        """
        from repro.poly.rns_poly import COEFF, NTT

        if input_domain not in (COEFF, NTT):
            raise LayoutError(f"unknown input domain {input_domain!r}")
        if output_domain not in (COEFF, NTT):
            raise LayoutError(f"unknown output domain {output_domain!r}")
        steps: list[tuple[str, int]] = []
        if input_domain == NTT:
            if has_twin:
                steps.append(("reuse_coeff", 0))
            else:
                steps.append(("intt_input", self.ctx.num_limbs))
        for d in range(self.dnum):
            steps.append(("mod_up", d))
            steps.append(("ntt_ext", self.num_ext))
            steps.append(("mac", d))
        steps.append(("fold", 2))
        if output_domain == COEFF:
            steps.append(("intt_ext", 2 * self.num_ext))
            steps.append(("mod_down", 2))
        else:
            num_aux = self.num_ext - self.ctx.num_limbs
            steps.append(("intt_aux", 2 * num_aux))
            steps.append(("ntt_conv", 2 * self.ctx.num_limbs))
            steps.append(("mod_down", 2))
        return KeySwitchPlan(
            input_domain,
            output_domain,
            tuple(self.ext_ctx.primes),
            self.dnum,
            tuple(steps),
            ring_degree=self.ctx.ring_degree,
            method=self.ctx.method,
            num_base=self.ctx.num_limbs,
        )

    def plan(self, poly, output_domain: str) -> KeySwitchPlan:
        """Build the explicit schedule for switching ``poly``.

        Consults the polynomial's *actual* domain state — including its
        cached coefficient twin, which makes the input inverse transform
        free — so the plan reflects what the executor will really do.
        """
        return self.plan_for(
            poly.domain,
            has_twin=poly.state.twin is not None,
            output_domain=output_domain,
        )

    # -- hoisting (shared ModUp across rotations) --------------------------
    def hoist(self, poly, *, out: np.ndarray | None = None) -> np.ndarray:
        """Shared ModUp: extend + forward-transform every digit once.

        Returns the ``(dnum, L+K, N)`` NTT-domain extended digit tensor.
        A Galois automorphism acts on this tensor as a *pure* NTT-domain
        slot permutation per digit — ``sigma_k`` of the integer digit
        lift commutes with reduction mod every extended prime — so one
        ModUp + transform pass (the expensive front of a key switch)
        serves every rotation index; :meth:`run_hoisted` finishes each
        rotation from here.  This is the Halevi–Shoup hoisting trick on
        top of the hybrid pipeline.

        ``out``, when given, receives the tensor (a compiled caller's
        per-plan buffer) instead of a fresh allocation.
        """
        if not self.ctx.compatible(poly.ctx):
            raise ParameterError("polynomial context does not match switcher")
        coeff_limbs = poly.to_coeff().limbs
        shape = (self.dnum, self.num_ext, self.ctx.ring_degree)
        if out is None:
            hoisted = np.empty(shape, np.uint64)
        else:
            if out.shape != shape or out.dtype != np.uint64:
                raise LayoutError(
                    f"hoist output buffer {out.shape} ({out.dtype}) != "
                    f"{shape} (uint64)"
                )
            hoisted = out
        for d, (lo, hi) in enumerate(self.digits):
            self.modups[d].apply(coeff_limbs[lo:hi], self._ext_buf)
            self.ext_ctx.batch_ntt.forward(self._ext_buf, out=hoisted[d])
        return hoisted

    def run_hoisted(
        self,
        hoisted: np.ndarray,
        ksk: KeySwitchKey,
        *,
        perm: np.ndarray | None = None,
    ):
        """MAC + fold + ModDown of one key against hoisted digits.

        ``perm``, when given, is an NTT-domain slot gather (e.g.
        ``automorphism_tables(N, k)[2]``) applied to every digit row
        before the MAC — the only per-rotation work ahead of the output
        transforms.  Returns the coefficient-domain ``(c0, c1)`` pair
        (rotations are followed by adds/rescales, which want coeff).

        A single rotation *is* ``run_hoisted(hoist(c1), ksk, perm=...)``
        — the production rotate path executes exactly this — so hoisted
        and independent rotations are bit-identical by construction.
        """
        self._check_key(ksk)
        expect = (self.dnum, self.num_ext, self.ctx.ring_degree)
        if np.shape(hoisted) != expect:
            raise LayoutError(
                f"hoisted digit tensor {np.shape(hoisted)} != {expect}"
            )
        from repro.poly.rns_poly import COEFF, RnsPolynomial

        c0, c1 = self._c
        for acc in self._accs:
            acc.reset()
        for d in range(self.dnum):
            if perm is None:
                a_hat = hoisted[d]
            else:
                a_hat = np.take(hoisted[d], perm, axis=1, out=self._ahat)
            self._mac(a_hat, ksk, d)
        self._accs[0].fold_into(c0)
        self._accs[1].fold_into(c1)
        ext_batch = self.ext_ctx.batch_ntt
        ext_batch.inverse(c0, out=c0)
        ext_batch.inverse(c1, out=c1)
        num_base = self.ctx.num_limbs
        out_polys = []
        for c in (c0, c1):
            out = np.empty((num_base, self.ctx.ring_degree), np.uint64)
            self.moddown.apply(c, out)
            out_polys.append(RnsPolynomial(self.ctx, out, COEFF))
        return out_polys[0], out_polys[1]

    # -- execution ---------------------------------------------------------
    def _check_key(self, ksk: KeySwitchKey) -> None:
        if (
            ksk.dnum != self.dnum
            or ksk.num_aux != len(self.aux)
            or not self.ext_ctx.compatible(ksk.ext_ctx)
        ):
            raise ParameterError(
                "key-switching key does not match this switcher's "
                "(basis, dnum) configuration"
            )

    def _mac(self, a_hat: np.ndarray, ksk: KeySwitchKey, d: int) -> None:
        """Accumulate digit ``d``'s two products into the c0/c1 halves."""
        shoup = self.ctx.method == "shoup"
        if self._signed:
            np.copyto(self._lanes, a_hat)
            lanes = self._lanes
        else:
            lanes = a_hat
        for acc, key in zip(self._accs, ksk.pairs[d]):
            parts = key.prepared_operand()
            if shoup:
                acc.accumulate_product(lanes, parts[0], b_shoup=parts[1])
            else:
                acc.accumulate_product(lanes, parts[0])

    def run(self, poly, ksk: KeySwitchKey, plan: KeySwitchPlan | None = None):
        """Execute a key switch, returning the ``(c0, c1)`` pair.

        The executor is a small interpreter over the plan's steps — the
        planner alone decides which rows go through which transform.
        """
        from repro.poly.rns_poly import COEFF, NTT, RnsPolynomial

        if not self.ctx.compatible(poly.ctx):
            raise ParameterError("polynomial context does not match switcher")
        self._check_key(ksk)
        if plan is None:
            plan = self.plan(poly, COEFF)
        plan.validate(self)
        if plan.input_domain != poly.domain:
            raise LayoutError(
                f"plan was built for a {plan.input_domain}-domain operand, "
                f"got {poly.domain}"
            )
        ext_batch = self.ext_ctx.batch_ntt
        num_base = self.ctx.num_limbs
        coeff_limbs = None
        c0, c1 = self._c
        for acc in self._accs:
            acc.reset()
        out_polys: list[RnsPolynomial] = []
        for op, arg in plan.steps:
            if op in ("intt_input", "reuse_coeff"):
                # Both resolve through to_coeff(): the twin cache makes
                # reuse_coeff free, intt_input pays one (L, N) inverse.
                coeff_limbs = poly.to_coeff().limbs
            elif op == "mod_up":
                if coeff_limbs is None:
                    coeff_limbs = poly.limbs  # already coefficient-domain
                lo, hi = self.digits[arg]
                self.modups[arg].apply(coeff_limbs[lo:hi], self._ext_buf)
            elif op == "ntt_ext":
                ext_batch.forward(self._ext_buf, out=self._ahat)
            elif op == "mac":
                self._mac(self._ahat, ksk, arg)
            elif op == "fold":
                self._accs[0].fold_into(c0)
                self._accs[1].fold_into(c1)
            elif op == "intt_ext":
                ext_batch.inverse(c0, out=c0)
                ext_batch.inverse(c1, out=c1)
            elif op == "intt_aux":
                self.aux_batch.inverse(c0[num_base:], out=c0[num_base:])
                self.aux_batch.inverse(c1[num_base:], out=c1[num_base:])
            elif op == "ntt_conv":
                pass  # fused into mod_down below (needs the conversion)
            elif op == "mod_down":
                for c in (c0, c1):
                    out = np.empty((num_base, self.ctx.ring_degree), np.uint64)
                    if plan.output_domain == COEFF:
                        self.moddown.apply(c, out)
                    else:
                        conv = self.moddown.converter.convert(c[num_base:])
                        self.ctx.batch_ntt.forward(conv, out=self._conv_hat)
                        self.moddown.combine(c[:num_base], self._conv_hat, out)
                    out_polys.append(RnsPolynomial(self.ctx, out, plan.output_domain))
            else:  # pragma: no cover - planner and executor move together
                raise ParameterError(f"unknown key-switch step {op!r}")
        return out_polys[0], out_polys[1]


class HoistedGaloisPlan:
    """One shared ModUp front finishing many Galois elements (Plan protocol).

    Precomputes everything a hoisted rotation batch needs — the
    per-element NTT-domain slot permutations, the key list (checked
    against the switcher once, at build time), and the ``(dnum, L+K, N)``
    digit tensor buffer — so :meth:`run` is exactly one
    :meth:`KeySwitcher.hoist` plus one :meth:`KeySwitcher.run_hoisted`
    per element, with zero per-call planning or allocation.  This is the
    plan object behind ``Evaluator.rotate_hoisted``.
    """

    def __init__(self, switcher: KeySwitcher, elements, keys) -> None:
        from repro.poly.ntt import automorphism_tables

        self.switcher = switcher
        self.elements = tuple(int(e) for e in elements)
        self.keys = tuple(keys)
        if not self.elements:
            raise ParameterError(
                "a hoisted Galois plan needs >= 1 Galois element"
            )
        if len(self.keys) != len(self.elements):
            raise ParameterError(
                f"need one key per Galois element, got {len(self.keys)} "
                f"keys for {len(self.elements)} elements"
            )
        for ksk in self.keys:
            switcher._check_key(ksk)
        n = switcher.ctx.ring_degree
        self.perms = tuple(
            automorphism_tables(n, e)[2] for e in self.elements
        )
        self._buffer = np.empty(
            (switcher.dnum, switcher.num_ext, n), np.uint64
        )

    @classmethod
    def build(
        cls, switcher: KeySwitcher, elements, keys
    ) -> HoistedGaloisPlan:
        """Plan-protocol constructor."""
        return cls(switcher, elements, keys)

    def validate(self, config) -> None:
        """Refuse an operand context this plan was not built for."""
        reason = self.switcher.ctx.mismatch_reason(config)
        if reason is not None:
            raise ParameterError(
                f"hoisted Galois plan does not match the operand: {reason}"
            )

    def run(self, poly):
        """Hoist ``poly`` once, finish every element; ``(c0, c1)`` list."""
        self.validate(poly.ctx)
        hoisted = self.switcher.hoist(poly, out=self._buffer)
        return [
            self.switcher.run_hoisted(hoisted, ksk, perm=perm)
            for ksk, perm in zip(self.keys, self.perms)
        ]

    def cost(self):
        """Scheme-level pricing: one shared front + per-element finishes."""
        from repro.scheme.cost import SchemeCostModel

        sw = self.switcher
        model = SchemeCostModel(
            sw.ctx.ring_degree,
            sw.ctx.num_limbs,
            len(sw.aux),
            sw.dnum,
            sw.ctx.method,
        )
        return model.hoisted_rotate(len(self.elements))
