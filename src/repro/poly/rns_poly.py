"""RNS polynomial arithmetic over the 25-30 prime system (§3.2, §4).

An :class:`RnsPolynomial` is one ring element of ``Z_Q[x]/(x^N + 1)`` stored
limb-wise: a ``(num_limbs, N)`` uint64 array whose row ``i`` holds the
coefficients mod limb prime ``q_i``.  All arithmetic is limb-parallel, which
is exactly how the paper's GPU pipeline executes it — each limb maps to an
independent slice of thread blocks.

A :class:`PolyContext` pins the limb basis (ordered primes from a
:class:`~repro.rns.primes.PrimePool`), the ring degree, and the reduction
method, and caches one :class:`~repro.poly.ntt.NegacyclicNTT` engine per
limb.  Rescaling (:meth:`RnsPolynomial.exact_rescale`) drops the last limb
with the inverse-CRT correction, following the level schedule a
:class:`~repro.rns.cycle.RescalingCycle` prescribes.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import cached_property

import numpy as np

from repro.errors import LayoutError, LevelError, ParameterError
from repro.poly.cost import CostModel
from repro.poly.ntt import NegacyclicNTT
from repro.rns.primes import Prime, PrimePool

COEFF = "coeff"
NTT = "ntt"


class PolyContext:
    """Limb basis + ring degree + reduction method for RNS polynomials.

    Contexts are value-compared by ``(ring_degree, moduli, method)``: two
    polynomials interoperate iff their contexts agree.  ``drop_last()``
    returns (and caches) the child context one rescale level down.
    """

    def __init__(
        self,
        ring_degree: int,
        primes: Sequence[Prime | int],
        method: str = "smr",
        *,
        _engines: list[NegacyclicNTT] | None = None,
    ) -> None:
        if not primes:
            raise ParameterError("a PolyContext needs at least one limb prime")
        self.ring_degree = ring_degree
        self.primes = [int(p) for p in primes]
        if len(set(self.primes)) != len(self.primes):
            raise ParameterError("limb primes must be pairwise distinct")
        self.method = method
        if _engines is not None:
            # Internal reuse hook (drop_last): twiddle tables are immutable,
            # so a child level shares its parent's per-limb engines.
            if len(_engines) != len(self.primes) or any(
                e.q != q for e, q in zip(_engines, self.primes)
            ):
                raise ParameterError("engine list does not match limb primes")
            self.ntts = list(_engines)
        else:
            self.ntts = [
                NegacyclicNTT(q, ring_degree, method) for q in self.primes
            ]
        #: column vector of limb moduli, broadcasts against (L, N) limb data
        self.moduli = np.array(self.primes, dtype=np.uint64).reshape(-1, 1)
        self._dropped: PolyContext | None = None

    @classmethod
    def from_pool(
        cls,
        pool: PrimePool,
        *,
        num_terminal: int,
        num_main: int,
        method: str = "smr",
    ) -> PolyContext:
        """Context over a level's live limbs: terminals first, then mains."""
        return cls(
            pool.ring_degree,
            pool.limb_primes(num_terminal, num_main),
            method,
        )

    @property
    def num_limbs(self) -> int:
        return len(self.primes)

    @cached_property
    def modulus(self) -> int:
        """The full composite modulus Q = prod q_i (a Python int)."""
        prod = 1
        for q in self.primes:
            prod *= q
        return prod

    @cached_property
    def cost_model(self) -> CostModel:
        """Table-3-style instruction pricing for ops in this context."""
        return CostModel(self.ring_degree, self.num_limbs, self.method)

    def drop_last(self) -> PolyContext:
        """The context one rescale down (last limb removed), cached."""
        if self.num_limbs < 2:
            raise LevelError("cannot drop the last remaining limb")
        if self._dropped is None:
            self._dropped = PolyContext(
                self.ring_degree,
                self.primes[:-1],
                self.method,
                _engines=self.ntts[:-1],
            )
        return self._dropped

    def compatible(self, other: PolyContext) -> bool:
        return (
            self.ring_degree == other.ring_degree
            and self.primes == other.primes
            and self.method == other.method
        )

    # -- constructors ------------------------------------------------------
    def zeros(self) -> RnsPolynomial:
        shape = (self.num_limbs, self.ring_degree)
        return RnsPolynomial(self, np.zeros(shape, dtype=np.uint64), COEFF)

    def random(self, rng: np.random.Generator) -> RnsPolynomial:
        """Uniform element of R_Q, sampled limb-wise (for tests/benchmarks)."""
        limbs = np.stack(
            [
                rng.integers(0, q, self.ring_degree, dtype=np.uint64)
                for q in self.primes
            ]
        )
        return RnsPolynomial(self, limbs, COEFF)

    def from_int_coeffs(self, coeffs: Sequence[int]) -> RnsPolynomial:
        """CRT-decompose integer coefficients into limb residues."""
        if len(coeffs) != self.ring_degree:
            raise LayoutError(
                f"expected {self.ring_degree} coefficients, got {len(coeffs)}"
            )
        limbs = np.empty((self.num_limbs, self.ring_degree), dtype=np.uint64)
        for i, q in enumerate(self.primes):
            limbs[i] = np.array([int(c) % q for c in coeffs], dtype=np.uint64)
        return RnsPolynomial(self, limbs, COEFF)


class RnsPolynomial:
    """One element of R_Q = Z_Q[x]/(x^N + 1) in limb-sliced RNS layout.

    ``limbs[i, j]`` is coefficient ``j`` mod ``ctx.primes[i]`` — in the
    coefficient domain when ``domain == "coeff"``, or NTT values (in the
    engine's bit-reversed ordering) when ``domain == "ntt"``.
    """

    __slots__ = ("ctx", "limbs", "domain")

    def __init__(
        self, ctx: PolyContext, limbs: np.ndarray, domain: str = COEFF
    ) -> None:
        if domain not in (COEFF, NTT):
            raise LayoutError(f"unknown domain {domain!r}")
        if limbs.shape != (ctx.num_limbs, ctx.ring_degree):
            raise LayoutError(
                f"limb array {limbs.shape} != "
                f"({ctx.num_limbs}, {ctx.ring_degree})"
            )
        self.ctx = ctx
        self.limbs = limbs.astype(np.uint64, copy=False)
        self.domain = domain

    @property
    def num_limbs(self) -> int:
        return self.ctx.num_limbs

    def _check(self, other: RnsPolynomial) -> None:
        if not self.ctx.compatible(other.ctx):
            raise ParameterError("operands come from incompatible contexts")
        if self.domain != other.domain:
            raise LayoutError(
                f"domain mismatch: {self.domain} vs {other.domain}"
            )

    # -- limb-wise linear ops (valid in either domain) ---------------------
    def add(self, other: RnsPolynomial) -> RnsPolynomial:
        """Limb-wise modular addition (one conditional subtract, no div)."""
        self._check(other)
        q = self.ctx.moduli
        s = self.limbs + other.limbs
        return RnsPolynomial(self.ctx, np.where(s >= q, s - q, s), self.domain)

    def sub(self, other: RnsPolynomial) -> RnsPolynomial:
        self._check(other)
        q = self.ctx.moduli
        d = self.limbs + q - other.limbs
        return RnsPolynomial(self.ctx, np.where(d >= q, d - q, d), self.domain)

    def negate(self) -> RnsPolynomial:
        q = self.ctx.moduli
        neg = np.where(self.limbs == 0, self.limbs, q - self.limbs)
        return RnsPolynomial(self.ctx, neg, self.domain)

    def __add__(self, other: RnsPolynomial) -> RnsPolynomial:
        return self.add(other)

    def __sub__(self, other: RnsPolynomial) -> RnsPolynomial:
        return self.sub(other)

    def __neg__(self) -> RnsPolynomial:
        return self.negate()

    # -- domain switches ---------------------------------------------------
    def to_ntt(self) -> RnsPolynomial:
        if self.domain == NTT:
            return self
        out = np.empty_like(self.limbs)
        for i, ntt in enumerate(self.ctx.ntts):
            out[i] = ntt.forward(self.limbs[i])
        return RnsPolynomial(self.ctx, out, NTT)

    def to_coeff(self) -> RnsPolynomial:
        if self.domain == COEFF:
            return self
        out = np.empty_like(self.limbs)
        for i, ntt in enumerate(self.ctx.ntts):
            out[i] = ntt.inverse(self.limbs[i])
        return RnsPolynomial(self.ctx, out, COEFF)

    # -- multiplication ----------------------------------------------------
    def pointwise_multiply(self, other: RnsPolynomial) -> RnsPolynomial:
        """Element-wise NTT-domain product; both operands must be in NTT."""
        self._check(other)
        if self.domain != NTT:
            raise LayoutError("pointwise multiply requires NTT-domain inputs")
        out = np.empty_like(self.limbs)
        for i, ntt in enumerate(self.ctx.ntts):
            out[i] = ntt.pointwise(self.limbs[i], other.limbs[i])
        return RnsPolynomial(self.ctx, out, NTT)

    def multiply(self, other: RnsPolynomial) -> RnsPolynomial:
        """Negacyclic polynomial product via NTT-domain convolution.

        Coefficient-domain operands are transformed in, multiplied
        pointwise, and transformed back; NTT-domain operands stay in NTT
        (the caller chose that layout deliberately, e.g. to amortize the
        forward transforms across several products).
        """
        self._check(other)
        if self.domain == NTT:
            return self.pointwise_multiply(other)
        prod = self.to_ntt().pointwise_multiply(other.to_ntt())
        return prod.to_coeff()

    def __mul__(self, other: RnsPolynomial) -> RnsPolynomial:
        return self.multiply(other)

    # -- rescaling ---------------------------------------------------------
    def exact_rescale(self) -> RnsPolynomial:
        """Divide by the last limb prime exactly, dropping that limb (§3.2).

        Computes ``(c - [c]_{q_L}) / q_L`` limb-wise, where ``[c]_{q_L}`` is
        the *centered* remainder: the inverse-CRT correction subtracts the
        last limb's lift from every remaining limb, then multiplies by
        ``q_L^-1 mod q_i``.  The centered lift keeps the implicit rounding
        error at most ``q_L / 2``, i.e. the result is the nearest integer
        polynomial to ``c / q_L`` (what CKKS rescaling needs for < 0.5 ulp
        of scale noise).

        Requires the coefficient domain: the correction mixes coefficients
        of one limb into all others, which has no pointwise NTT analogue.
        """
        if self.domain != COEFF:
            raise LayoutError("exact_rescale requires the coefficient domain")
        if self.num_limbs < 2:
            raise LevelError("cannot rescale a single-limb polynomial")
        child = self.ctx.drop_last()
        q_last = self.ctx.primes[-1]
        last = self.limbs[-1].astype(np.int64)
        # Centered lift of the dropped limb: (-q_L/2, q_L/2].
        centered = np.where(last > q_last // 2, last - q_last, last)
        out = np.empty((child.num_limbs, self.ctx.ring_degree), np.uint64)
        for i, q in enumerate(child.primes):
            r = centered % q  # numpy int64 % folds negatives into [0, q)
            diff = self.limbs[i] + np.uint64(q) - r.astype(np.uint64)
            diff = np.where(diff >= q, diff - np.uint64(q), diff)
            inv = pow(q_last, -1, q)
            # diff < q < 2^31 and inv < 2^31: the product fits uint64.
            out[i] = diff * np.uint64(inv) % np.uint64(q)
        return RnsPolynomial(child, out, COEFF)

    # -- CRT reconstruction (reference/tests; Python-int arithmetic) -------
    def to_int_coeffs(self, *, centered: bool = True) -> list[int]:
        """CRT-reconstruct coefficients as Python ints mod Q.

        With ``centered`` the representatives lie in ``(-Q/2, Q/2]``,
        matching the signed plaintext convention; otherwise ``[0, Q)``.
        """
        if self.domain != COEFF:
            raise LayoutError("CRT reconstruction requires coefficient domain")
        big_q = self.ctx.modulus
        acc = [0] * self.ctx.ring_degree
        for i, q in enumerate(self.ctx.primes):
            m_i = big_q // q
            lift = m_i * pow(m_i, -1, q)
            row = self.limbs[i]
            for j in range(self.ctx.ring_degree):
                acc[j] = (acc[j] + int(row[j]) * lift) % big_q
        if centered:
            half = big_q // 2
            acc = [c - big_q if c > half else c for c in acc]
        return acc
