"""RNS polynomial arithmetic over the 25-30 prime system (§3.2, §4).

An :class:`RnsPolynomial` is one ring element of ``Z_Q[x]/(x^N + 1)`` stored
limb-wise: a ``(num_limbs, N)`` uint64 array whose row ``i`` holds the
coefficients mod limb prime ``q_i``.  All arithmetic is limb-parallel, which
is exactly how the paper's GPU pipeline executes it — each limb maps to an
independent slice of thread blocks.

A :class:`PolyContext` pins the limb basis (ordered primes from a
:class:`~repro.rns.primes.PrimePool`), the ring degree, and the reduction
method.  Hot paths — ``to_ntt`` / ``to_coeff`` / ``pointwise_multiply`` /
``multiply`` / ``exact_rescale`` — run through the context's
:class:`~repro.poly.batch_ntt.BatchNTT`, which transforms the whole limb
matrix per stage instead of looping Python over per-prime engines; the
per-limb :class:`~repro.poly.ntt.NegacyclicNTT` engines are kept as the
reference implementation tests cross-check against.  Rescaling
(:meth:`RnsPolynomial.exact_rescale`) drops the last limb with the
inverse-CRT correction (its per-limb inverse table cached on the context),
following the level schedule a :class:`~repro.rns.cycle.RescalingCycle`
prescribes, and :meth:`RnsPolynomial.multiply_accumulate` fuses the §4.2
key-switching inner product through a
:class:`~repro.poly.lazy.LazyAccumulator`.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import cached_property

import numpy as np

from repro import hooks
from repro.analysis.sanitizer import assert_within, checked_mode
from repro.errors import LayoutError, LevelError, ParameterError
from repro.poly.backends import resolve_backend
from repro.poly.batch_ntt import BatchNTT
from repro.poly.cost import CostModel
from repro.poly.lazy import LazyAccumulator
from repro.poly.ntt import NegacyclicNTT
from repro.rns.primes import Prime, PrimePool

COEFF = "coeff"
NTT = "ntt"

#: odd 64-bit mixing constant (golden-ratio) for the fingerprint fold
_FP_MIX = np.uint64(0x9E3779B97F4A7C15)


def data_fingerprint(arr: np.ndarray) -> int:
    """Position-mixed xor checksum of an array's raw 64-bit words.

    One vectorized pass: each word is xored with its (1-based) position
    and multiplied by an odd 64-bit constant before the xor fold, so a
    single bit flip, a swapped pair, or a torn write all change the
    digest.  This targets the *silent-corruption* class (faulty memory,
    stale caches written behind :meth:`LimbState.invalidate`'s back,
    injected bit flips) — it is not a cryptographic hash and offers no
    adversarial collision resistance.

    Works on any array whose itemsize divides into 64-bit words
    (uint64 limbs, float64, complex128 payloads).
    """
    a = np.ascontiguousarray(arr).reshape(-1)
    w = a if a.dtype == np.uint64 else a.view(np.uint64)
    with np.errstate(over="ignore"):
        idx = np.arange(1, w.size + 1, dtype=np.uint64)
        folded = np.bitwise_xor.reduce((w ^ idx) * _FP_MIX)
        return int(folded ^ np.uint64(w.size))


class LimbState:
    """Explicit domain / level / scale state for one ring element.

    Earlier PRs kept this state implicit and scattered: the domain string
    and the two derived-data caches (the backend-prepared operand and the
    coeff/NTT transform *twin*) lived as private attributes on
    :class:`RnsPolynomial` with ad-hoc invalidation, and level/scale did
    not exist at all.  ``LimbState`` lifts that bookkeeping into one
    explicit object that :class:`RnsPolynomial` and the scheme layer's
    :class:`~repro.scheme.ciphertext.Ciphertext` both carry, and
    :meth:`invalidate` is the *single* path that drops every cache
    derived from the limb values.

    Attributes:
        domain: ``"coeff"`` or ``"ntt"`` — how the limb matrix is to be
            interpreted.
        level: number of live limbs.  Derived from the owning context at
            construction (``RnsPolynomial`` always sets it to
            ``ctx.num_limbs``; a rescale *constructs* the lower level
            rather than decrementing in place); stored explicitly so the
            scheme layer's ``Ciphertext`` carries the same state shape
            and can refuse operations on mismatched levels.
        scale: the CKKS scaling factor Delta carried by the element.
            Passive metadata at the polynomial layer (linear ops keep it,
            products multiply it, rescaling divides it by the dropped
            prime); the scheme layer enforces its semantics.
        prepared: cached backend-prepared operand handle (or ``None``).
        twin: the cached transform twin polynomial (or ``None``); the
            link is bidirectional, ``twin.state.twin`` points back.
    """

    __slots__ = ("domain", "level", "scale", "prepared", "twin")

    def __init__(self, domain: str, level: int, scale: float = 1.0) -> None:
        if domain not in (COEFF, NTT):
            raise LayoutError(f"unknown domain {domain!r}")
        if level < 1:
            raise LevelError(f"level must be >= 1, got {level}")
        self.domain = domain
        self.level = int(level)
        self.scale = float(scale)
        self.prepared: tuple[np.ndarray, ...] | None = None
        self.twin = None  # the twin RnsPolynomial, when cached

    def invalidate(self) -> None:
        """The one invalidation path: drop caches derived from limb values.

        The prepared handle is derived data; the twin link is
        bidirectional, so the twin's back-pointer is severed too — the
        twin's own limbs stay valid, it just no longer mirrors this
        element.  Every in-place mutation funnels through here.
        """
        self.prepared = None
        twin = self.twin
        self.twin = None
        if twin is not None:
            twin.state.twin = None


class PolyContext:
    """Limb basis + ring degree + reduction method for RNS polynomials.

    Contexts are value-compared by ``(ring_degree, moduli, method)``: two
    polynomials interoperate iff their contexts agree.  ``drop_last()``
    returns (and caches) the child context one rescale level down.
    """

    def __init__(
        self,
        ring_degree: int,
        primes: Sequence[Prime | int],
        method: str = "smr",
        *,
        checked: bool | None = None,
        backend: str | None = None,
        _engines: list[NegacyclicNTT] | None = None,
        _batch: BatchNTT | None = None,
    ) -> None:
        if not primes:
            raise ParameterError("a PolyContext needs at least one limb prime")
        self.ring_degree = ring_degree
        self.primes = [int(p) for p in primes]
        if len(set(self.primes)) != len(self.primes):
            raise ParameterError("limb primes must be pairwise distinct")
        self.method = method
        if _engines is not None:
            # Internal reuse hook (drop_last): twiddle tables are immutable,
            # so a child level shares its parent's per-limb engines.
            if len(_engines) != len(self.primes) or any(
                e.q != q for e, q in zip(_engines, self.primes)
            ):
                raise ParameterError("engine list does not match limb primes")
            self._ntts: list[NegacyclicNTT] | None = list(_engines)
        else:
            # Built lazily (see :attr:`ntts`): the batched hot path never
            # needs the per-prime reference engines.
            self._ntts = None
        if _batch is not None:
            # Same reuse hook for the batched engine (drop_last slices rows).
            if (
                _batch.primes != self.primes
                or _batch.n != ring_degree
                or _batch.method != method
            ):
                raise ParameterError("batch engine does not match limb primes")
            self.batch_ntt = _batch
            # Child contexts inherit the donor engine's tier rather than
            # re-reading the environment (an explicit override still wins
            # and retargets the shared engine's dispatch).
            if backend is not None:
                tier = resolve_backend(backend)
                if tier != _batch.backend_tier:
                    _batch.backend_tier = tier
                    _batch._impl = None
                    _batch._impl_ready = False
            #: execution tier for this context's hot kernels
            #: (:mod:`repro.poly.backends`)
            self.backend = _batch.backend_tier
        else:
            self.backend = resolve_backend(backend)
            self.batch_ntt = BatchNTT(
                self.primes, ring_degree, method, backend=self.backend
            )
        #: sanitizer mode (REPRO_CHECKED=1 or an explicit override): real
        #: kernels assert the statically certified bounds at runtime, and
        #: the Level-1 certificate is validated eagerly below
        self.checked = checked_mode(checked)
        self.batch_ntt.set_checked(self.checked)
        #: column vector of limb moduli, broadcasts against (L, N) limb data
        self.moduli = np.array(self.primes, dtype=np.uint64).reshape(-1, 1)
        self._certificate = None
        self._dropped: PolyContext | None = None
        self._parent: PolyContext | None = None
        #: base context this one was built from via :meth:`extend` (if any)
        self._ext_parent: PolyContext | None = None
        self._extended: dict[tuple[int, ...], PolyContext] = {}
        self._bases: dict[int, PolyContext] = {}
        self._basis_kernels: dict[tuple, object] = {}
        self._switchers: dict[tuple, object] = {}
        if self.checked:
            # Checked execution only asserts bounds the analyzer actually
            # proved; an unprovable family fails loudly up front instead.
            self.range_certificate().raise_if_failed()

    def range_certificate(self):
        """The Level-1 :class:`~repro.analysis.ranges.KernelCertificate`
        for this parameter family, computed once and cached.

        The ahead-of-time replacement for runtime worst-case tracking:
        one interval pass proves (or refutes) uint32/uint64 non-overflow
        and the 2q-lazy invariant for every stage kernel, the rescale
        chain and the lazy-accumulation headroom of this ``(N, primes,
        method)`` family.
        """
        if self._certificate is None:
            from repro.analysis.ranges import certify_kernels

            self._certificate = certify_kernels(
                self.ring_degree, self.primes, self.method
            )
        return self._certificate

    @property
    def ntts(self) -> list[NegacyclicNTT]:
        """Per-limb reference engines, built on first use.

        Pinned to the batched engine's roots so the reference and batched
        paths are bit-identical by construction; a rescaled child borrows
        its parent's engines (twiddle tables are immutable) so rescale
        chains stay O(L) rather than O(L^2).
        """
        if self._ntts is None:
            if self._parent is not None:
                self._ntts = list(self._parent.ntts[: self.num_limbs])
            else:
                self._ntts = [
                    NegacyclicNTT(q, self.ring_degree, self.method, psi=psi)
                    for q, psi in zip(self.primes, self.batch_ntt.psis)
                ]
        return self._ntts

    @classmethod
    def from_pool(
        cls,
        pool: PrimePool,
        *,
        num_terminal: int,
        num_main: int,
        method: str = "smr",
        checked: bool | None = None,
        backend: str | None = None,
    ) -> PolyContext:
        """Context over a level's live limbs: terminals first, then mains."""
        return cls(
            pool.ring_degree,
            pool.limb_primes(num_terminal, num_main),
            method,
            checked=checked,
            backend=backend,
        )

    @property
    def num_limbs(self) -> int:
        return len(self.primes)

    @cached_property
    def modulus(self) -> int:
        """The full composite modulus Q = prod q_i (a Python int)."""
        prod = 1
        for q in self.primes:
            prod *= q
        return prod

    @cached_property
    def cost_model(self) -> CostModel:
        """Table-3-style instruction pricing for ops in this context."""
        return CostModel(self.ring_degree, self.num_limbs, self.method)

    def drop_last(self) -> PolyContext:
        """The context one rescale down (last limb removed), cached."""
        if self.num_limbs < 2:
            raise LevelError("cannot drop the last remaining limb")
        if self._dropped is None:
            child = PolyContext(
                self.ring_degree,
                self.primes[:-1],
                self.method,
                checked=self.checked,
                _engines=None if self._ntts is None else self._ntts[:-1],
                _batch=self.batch_ntt.take(self.num_limbs - 1),
            )
            # Parent link lets the child borrow reference engines lazily.
            child._parent = self
            self._dropped = child
        return self._dropped

    def extend(self, aux_primes: Sequence[Prime | int]) -> PolyContext:
        """The extended context ``Q ∪ P`` for key switching, cached.

        The extended basis appends the auxiliary (P-part) primes after
        the live limbs; its batched NTT shares this context's prepared
        twiddle rows (``BatchNTT.extend``), so only the new primes pay a
        table build.  The result remembers this context as its extension
        base, which is how ``mod_down`` finds its way home.
        """
        key = tuple(int(p) for p in aux_primes)
        if not key:
            raise ParameterError("extension needs at least one aux prime")
        ext = self._extended.get(key)
        if ext is None:
            ext = PolyContext(
                self.ring_degree,
                self.primes + list(key),
                self.method,
                checked=self.checked,
                _batch=self.batch_ntt.extend(key),
            )
            ext._ext_parent = self
            self._extended[key] = ext
        return ext

    def base_of_extension(self, num_aux: int) -> PolyContext:
        """The context this one extends by ``num_aux`` auxiliary limbs.

        Returns the original base context when this one came from
        :meth:`extend` (sharing its caches); otherwise builds — and
        caches — a prefix context over ``primes[:-num_aux]`` whose
        batched engine shares this context's tables.
        """
        if not 1 <= num_aux < self.num_limbs:
            raise LevelError(
                f"cannot strip {num_aux} aux limbs from a "
                f"{self.num_limbs}-limb context"
            )
        parent = self._ext_parent
        if parent is not None and parent.num_limbs == self.num_limbs - num_aux:
            return parent
        base = self._bases.get(num_aux)
        if base is None:
            base = PolyContext(
                self.ring_degree,
                self.primes[: -num_aux],
                self.method,
                checked=self.checked,
                _batch=self.batch_ntt.take(self.num_limbs - num_aux),
            )
            self._bases[num_aux] = base
        return base

    def mod_up_kernel(self, aux_primes: Sequence[Prime | int]):
        """The cached whole-basis :class:`~repro.poly.basis_conv.ModUp`."""
        from repro.poly.basis_conv import ModUp

        ext = self.extend(aux_primes)
        key = ("up", tuple(ext.primes))
        kern = self._basis_kernels.get(key)
        if kern is None:
            kern = ModUp(
                ext.primes, 0, self.num_limbs, self.ring_degree,
                checked=self.checked, backend=self.backend,
            )
            self._basis_kernels[key] = kern
        return kern

    def mod_down_kernel(self, num_aux: int):
        """The cached :class:`~repro.poly.basis_conv.ModDown` for this
        extended context's last ``num_aux`` limbs."""
        from repro.poly.basis_conv import ModDown

        base = self.base_of_extension(num_aux)
        key = ("down", num_aux)
        kern = self._basis_kernels.get(key)
        if kern is None:
            kern = ModDown(
                base.primes, self.primes[-num_aux:], self.ring_degree,
                checked=self.checked, backend=self.backend,
            )
            self._basis_kernels[key] = kern
        return kern

    def key_switcher(self, aux_primes: Sequence[Prime | int], dnum: int):
        """The cached fused key-switching pipeline for ``(P, dnum)``."""
        from repro.poly.basis_conv import KeySwitcher

        key = (tuple(int(p) for p in aux_primes), int(dnum))
        switcher = self._switchers.get(key)
        if switcher is None:
            switcher = KeySwitcher(self, key[0], key[1])
            self._switchers[key] = switcher
        return switcher

    @cached_property
    def _rescale_scratch(self) -> tuple[np.ndarray, np.ndarray]:
        """Two persistent (L-1, N) work rows so ``exact_rescale`` runs its
        whole chain through ``out=`` without allocating temporaries."""
        shape = (self.num_limbs - 1, self.ring_degree)
        return np.empty(shape, np.uint64), np.empty(shape, np.uint64)

    @cached_property
    def rescale_consts(self) -> tuple[np.ndarray, ...]:
        """Cached ``(L-1, 1)`` constant columns for ``exact_rescale``.

        Four per-surviving-limb tables — ``inv = q_last^-1 mod q_i`` with
        its Shoup companion ``floor(inv * 2^32 / q_i)``, the 32-bit Barrett
        constant ``floor(2^32 / q_i)``, and the fold correction
        ``(q_i - q_last) mod q_i`` — so the per-call path is pure
        division-free NumPy.  The modular inverses were previously
        recomputed with ``pow(q_last, -1, q)`` inside the per-limb loop on
        every call; caching lives here alongside :meth:`drop_last`.
        """
        if self.num_limbs < 2:
            raise LevelError("rescale constants need at least two limbs")
        q_last = self.primes[-1]
        live = self.primes[:-1]
        col = lambda vals: np.array(vals, dtype=np.uint64).reshape(-1, 1)  # noqa: E731
        inv = [pow(q_last, -1, q) for q in live]
        return (
            col(inv),
            col([(w << 32) // q for w, q in zip(inv, live)]),  # Shoup
            col([(1 << 32) // q for q in live]),  # 32-bit Barrett mu
            col([(q - q_last % q) % q for q in live]),  # -q_last mod q_i
        )

    def mismatch_reason(self, other: PolyContext) -> str | None:
        """The first field on which two contexts differ, named — or ``None``.

        Distinguishes a *level* mismatch (one limb basis is a prefix of
        the other, i.e. the operands sit at different points of the same
        rescaling chain) from a genuine *basis* mismatch (different
        primes at some row), from ring-degree and reduction-method
        mismatches — so "incompatible contexts" errors say which field
        to fix.
        """
        if self.ring_degree != other.ring_degree:
            return (
                f"ring degree mismatch: N={self.ring_degree} vs "
                f"N={other.ring_degree}"
            )
        if self.method != other.method:
            return (
                f"reduction method mismatch: {self.method!r} vs "
                f"{other.method!r}"
            )
        if self.primes != other.primes:
            m = min(len(self.primes), len(other.primes))
            if self.primes[:m] == other.primes[:m]:
                return (
                    f"level mismatch: {len(self.primes)} vs "
                    f"{len(other.primes)} live limbs of the same basis "
                    "chain (rescale the higher-level operand down)"
                )
            i = next(
                i
                for i, (p, q) in enumerate(zip(self.primes, other.primes))
                if p != q
            )
            return (
                f"limb basis mismatch at row {i}: prime "
                f"{self.primes[i]} vs {other.primes[i]}"
            )
        return None

    def compatible(self, other: PolyContext) -> bool:
        return self.mismatch_reason(other) is None

    # -- constructors ------------------------------------------------------
    def zeros(self) -> RnsPolynomial:
        shape = (self.num_limbs, self.ring_degree)
        return RnsPolynomial(self, np.zeros(shape, dtype=np.uint64), COEFF)

    def random(self, rng: np.random.Generator) -> RnsPolynomial:
        """Uniform element of R_Q, sampled limb-wise (for tests/benchmarks)."""
        limbs = np.stack(
            [rng.integers(0, q, self.ring_degree, dtype=np.uint64) for q in self.primes]
        )
        return RnsPolynomial(self, limbs, COEFF)

    def from_int_coeffs(self, coeffs: Sequence[int]) -> RnsPolynomial:
        """CRT-decompose integer coefficients into limb residues."""
        if len(coeffs) != self.ring_degree:
            raise LayoutError(
                f"expected {self.ring_degree} coefficients, got {len(coeffs)}"
            )
        limbs = np.empty((self.num_limbs, self.ring_degree), dtype=np.uint64)
        for i, q in enumerate(self.primes):
            limbs[i] = np.array([int(c) % q for c in coeffs], dtype=np.uint64)
        return RnsPolynomial(self, limbs, COEFF)


class RnsPolynomial:
    """One element of R_Q = Z_Q[x]/(x^N + 1) in limb-sliced RNS layout.

    ``limbs[i, j]`` is coefficient ``j`` mod ``ctx.primes[i]`` — in the
    coefficient domain when ``domain == "coeff"``, or NTT values (in the
    engine's bit-reversed ordering) when ``domain == "ntt"``.

    Limbs are treated as immutable once constructed (every operation
    returns a new polynomial); this is what lets an NTT-domain operand
    cache its backend-prepared form for repeated pointwise products and
    lets ``to_ntt``/``to_coeff`` cache each other's result (the *twin*):
    transforming the same polynomial twice costs one transform.  The
    sanctioned exception is the in-place mutator family (``add_`` /
    ``sub_`` / ``negate_``), which writes into ``limbs`` and funnels
    through :meth:`LimbState.invalidate` — mutating ``limbs`` behind the
    object's back instead leaves stale prepared/twin handles serving
    wrong answers.

    Domain, level, scale and the cache handles all live in one explicit
    :class:`LimbState` (``self.state``) shared structurally with the
    scheme layer's ``Ciphertext``; ``domain`` stays readable as a
    property.
    """

    __slots__ = ("ctx", "limbs", "state")

    def __init__(
        self,
        ctx: PolyContext,
        limbs: np.ndarray,
        domain: str = COEFF,
        *,
        scale: float = 1.0,
    ) -> None:
        if limbs.shape != (ctx.num_limbs, ctx.ring_degree):
            raise LayoutError(
                f"limb array {limbs.shape} != "
                f"({ctx.num_limbs}, {ctx.ring_degree})"
            )
        self.ctx = ctx
        self.limbs = limbs.astype(np.uint64, copy=False)
        self.state = LimbState(domain, ctx.num_limbs, scale)

    @property
    def domain(self) -> str:
        return self.state.domain

    @property
    def level(self) -> int:
        return self.state.level

    @property
    def scale(self) -> float:
        return self.state.scale

    # Back-compat views of the cache handles (read paths only; writes go
    # through ``self.state``).
    @property
    def _prepared(self) -> tuple[np.ndarray, ...] | None:
        return self.state.prepared

    @property
    def _twin(self) -> RnsPolynomial | None:
        return self.state.twin

    @property
    def num_limbs(self) -> int:
        return self.ctx.num_limbs

    def fingerprint(self) -> int:
        """Cheap per-limb checksum of the limb matrix (plus domain/level).

        One vectorized :func:`data_fingerprint` pass over the ``(L, N)``
        words, mixed with the interpretation state — the same limbs in
        the other domain fingerprint differently.  Used by the serving
        layer's fault injector and circuit breaker to detect silent
        corruption: any mutation of ``limbs`` that bypasses the public
        mutator family (``add_`` / ``sub_`` / ``negate_``) leaves the
        cached prepared/twin handles stale — such a mutation must call
        :meth:`LimbState.invalidate`, and a fingerprint mismatch is how
        the one that didn't gets caught.
        """
        tag = np.uint64(self.state.level * 2 + (1 if self.domain == NTT else 0))
        with np.errstate(over="ignore"):
            return int((np.uint64(data_fingerprint(self.limbs)) ^ tag) * _FP_MIX)

    def _check(self, other: RnsPolynomial) -> None:
        reason = self.ctx.mismatch_reason(other.ctx)
        if reason is not None:
            raise ParameterError(
                f"operands come from incompatible contexts: {reason}"
            )
        if self.domain != other.domain:
            raise LayoutError(
                f"domain mismatch: {self.domain} vs {other.domain}"
            )

    # -- limb-wise linear ops (valid in either domain) ---------------------
    def add(self, other: RnsPolynomial) -> RnsPolynomial:
        """Limb-wise modular addition (one conditional subtract, no div)."""
        self._check(other)
        q = self.ctx.moduli
        s = self.limbs + other.limbs
        return RnsPolynomial(
            self.ctx,
            np.where(s >= q, s - q, s),
            self.domain,
            scale=self.state.scale,
        )

    def sub(self, other: RnsPolynomial) -> RnsPolynomial:
        self._check(other)
        q = self.ctx.moduli
        d = self.limbs + q - other.limbs
        return RnsPolynomial(
            self.ctx,
            np.where(d >= q, d - q, d),
            self.domain,
            scale=self.state.scale,
        )

    def negate(self) -> RnsPolynomial:
        q = self.ctx.moduli
        neg = np.where(self.limbs == 0, self.limbs, q - self.limbs)
        return RnsPolynomial(self.ctx, neg, self.domain, scale=self.state.scale)

    def __add__(self, other: RnsPolynomial) -> RnsPolynomial:
        return self.add(other)

    def __sub__(self, other: RnsPolynomial) -> RnsPolynomial:
        return self.sub(other)

    def __neg__(self) -> RnsPolynomial:
        return self.negate()

    # -- in-place mutation (invalidates caches) ----------------------------
    def add_(self, other: RnsPolynomial) -> RnsPolynomial:
        """In-place :meth:`add`: accumulate ``other`` into this limb matrix.

        Returns ``self``; drops the cached prepared handle and domain
        twin through the single :meth:`LimbState.invalidate` path.
        """
        self._check(other)
        self.state.invalidate()
        q = self.ctx.moduli
        np.add(self.limbs, other.limbs, out=self.limbs)
        np.minimum(self.limbs, self.limbs - q, out=self.limbs)
        return self

    def sub_(self, other: RnsPolynomial) -> RnsPolynomial:
        """In-place :meth:`sub`."""
        self._check(other)
        self.state.invalidate()
        q = self.ctx.moduli
        np.add(self.limbs, q, out=self.limbs)
        np.subtract(self.limbs, other.limbs, out=self.limbs)
        np.minimum(self.limbs, self.limbs - q, out=self.limbs)
        return self

    def negate_(self) -> RnsPolynomial:
        """In-place :meth:`negate`."""
        self.state.invalidate()
        q = self.ctx.moduli
        np.copyto(
            self.limbs,
            np.where(self.limbs == 0, self.limbs, q - self.limbs),
        )
        return self

    # -- domain switches ---------------------------------------------------
    def to_ntt(self) -> RnsPolynomial:
        """All limbs through the batched forward NTT in one stage-wise pass.

        The result is cached as this polynomial's *twin* (and vice
        versa), so repeated transforms of the same polynomial — the §4.2
        shape where one operand meets many partners — pay the transform,
        its bit-reversal-ordered twiddle gathers included, exactly once.
        """
        if self.domain == NTT:
            return self
        if self.state.twin is None:
            out = self.ctx.batch_ntt.forward(self.limbs)
            twin = RnsPolynomial(self.ctx, out, NTT, scale=self.state.scale)
            twin.state.twin = self
            self.state.twin = twin
        return self.state.twin

    def to_coeff(self) -> RnsPolynomial:
        """Inverse of :meth:`to_ntt`, with the same twin caching."""
        if self.domain == COEFF:
            return self
        if self.state.twin is None:
            out = self.ctx.batch_ntt.inverse(self.limbs)
            twin = RnsPolynomial(self.ctx, out, COEFF, scale=self.state.scale)
            twin.state.twin = self
            self.state.twin = twin
        return self.state.twin

    # -- Galois automorphisms ----------------------------------------------
    def automorphism(self, k: int) -> RnsPolynomial:
        """The Galois automorphism ``sigma_k: X -> X^k`` (``k`` odd).

        Domain-preserving and transform-free in *both* domains: a signed
        index permutation of the coefficient columns, or a pure slot
        permutation of the NTT values, through the per-``(N, k)`` tables
        cached by :func:`repro.poly.ntt.automorphism_tables`.  Level and
        scale carry over unchanged (an automorphism permutes the
        plaintext slots, it does not rescale them).
        """
        batch = self.ctx.batch_ntt
        if self.domain == NTT:
            out = batch.automorphism_ntt(self.limbs, k)
        else:
            out = batch.automorphism_coeff(self.limbs, k)
        return RnsPolynomial(self.ctx, out, self.domain, scale=self.state.scale)

    # -- multiplication ----------------------------------------------------
    def prepared_operand(self) -> tuple[np.ndarray, ...]:
        """This polynomial's backend-prepared form, computed once.

        Shoup's companion is a per-element division and the Montgomery
        family pays a ``to_form`` pass; the handle is cached on the
        instance so every product against the same operand (the §4.2
        key-switching shape) reuses it.
        """
        if self.domain != NTT:
            raise LayoutError("prepared operands require the NTT domain")
        if self.state.prepared is None:
            self.state.prepared = self.ctx.batch_ntt.prepare_operand(self.limbs)
        return self.state.prepared

    def pointwise_multiply(self, other: RnsPolynomial) -> RnsPolynomial:
        """Element-wise NTT-domain product; both operands must be in NTT."""
        self._check(other)
        if self.domain != NTT:
            raise LayoutError("pointwise multiply requires NTT-domain inputs")
        out = self.ctx.batch_ntt.pointwise_prepared(
            self.limbs, other.prepared_operand()
        )
        return RnsPolynomial(
            self.ctx, out, NTT, scale=self.state.scale * other.state.scale
        )

    def multiply(self, other: RnsPolynomial) -> RnsPolynomial:
        """Negacyclic polynomial product via NTT-domain convolution.

        Coefficient-domain operands are transformed in, multiplied
        pointwise, and transformed back; NTT-domain operands stay in NTT
        (the caller chose that layout deliberately, e.g. to amortize the
        forward transforms across several products).  The operands keep
        their transform twins (repeat products against them are cheap);
        the *result* is built directly in the coefficient domain so a
        chain of products does not pin an extra NTT-domain copy of every
        intermediate.
        """
        self._check(other)
        if self.domain == NTT:
            return self.pointwise_multiply(other)
        prod = self.to_ntt().pointwise_multiply(other.to_ntt())
        out = self.ctx.batch_ntt.inverse(prod.limbs)
        return RnsPolynomial(
            self.ctx, out, COEFF, scale=self.state.scale * other.state.scale
        )

    def __mul__(self, other: RnsPolynomial) -> RnsPolynomial:
        return self.multiply(other)

    @staticmethod
    def multiply_accumulate(
        a_polys: Sequence[RnsPolynomial],
        b_polys: Sequence[RnsPolynomial],
        *,
        strategy: str = "reduced",
        acc: LazyAccumulator | None = None,
    ) -> RnsPolynomial:
        """Fused inner product ``sum_i a_i * b_i`` in the NTT domain (§4.2).

        The key-switching shape: every output value is a dot product of
        NTT-domain operands.  Each ``b_i`` is consumed through its cached
        :meth:`prepared_operand`, every product lands in one
        :class:`~repro.poly.lazy.LazyAccumulator` spanning the whole
        ``(L, N)`` limb matrix, and a single fold at the end replaces the
        per-term folds a naive multiply-then-add chain would pay.

        ``strategy`` follows :class:`LazyAccumulator`: ``"reduced"``
        (default, any backend, ~2^32 terms of headroom) reduces each
        product and defers the folds; ``"raw"`` (SMR only) defers the
        reductions themselves, bounded by Alg. 2's ``|sum| < q * 2^31``.

        ``acc`` lets a compiled caller hand in a persistent
        :class:`LazyAccumulator` (reset and reused here) so the per-call
        ``(L, N)`` accumulator allocation disappears; it must match this
        context's reducer and full limb shape.
        """
        a_polys = list(a_polys)
        b_polys = list(b_polys)
        if not a_polys or len(a_polys) != len(b_polys):
            raise ParameterError(
                "multiply_accumulate needs equally many a and b "
                f"polynomials (>= 1), got {len(a_polys)} and {len(b_polys)}"
            )
        ctx = a_polys[0].ctx
        for poly in (*a_polys, *b_polys):
            if not ctx.compatible(poly.ctx):
                raise ParameterError(
                    "multiply_accumulate operands come from incompatible "
                    "contexts"
                )
            if poly.domain != NTT:
                raise LayoutError(
                    "multiply_accumulate requires NTT-domain operands"
                )
        hooks.emit("rns_poly.mac")
        batch = ctx.batch_ntt
        signed = ctx.method == "smr"
        shoup = ctx.method == "shoup"
        if acc is None:
            acc = LazyAccumulator(
                batch.backend.red,
                (ctx.num_limbs, ctx.ring_degree),
                strategy=strategy,
                checked=ctx.checked,
            )
        else:
            acc.reset()
        for a, b in zip(a_polys, b_polys):
            parts = b.prepared_operand()
            lanes = a.limbs.astype(np.int64) if signed else a.limbs
            if shoup:
                acc.accumulate_product(lanes, parts[0], b_shoup=parts[1])
            else:
                acc.accumulate_product(lanes, parts[0])
        # Scale follows the product convention (pointwise_multiply /
        # multiply): terms of one inner product share a common scale, so
        # the first pair's product scale is the sum's.
        return RnsPolynomial(
            ctx,
            acc.fold(),
            NTT,
            scale=a_polys[0].state.scale * b_polys[0].state.scale,
        )

    # -- rescaling ---------------------------------------------------------
    def exact_rescale(self) -> RnsPolynomial:
        """Divide by the last limb prime exactly, dropping that limb (§3.2).

        Computes ``(c - [c]_{q_L}) / q_L`` limb-wise, where ``[c]_{q_L}`` is
        the *centered* remainder: the inverse-CRT correction subtracts the
        last limb's lift from every remaining limb, then multiplies by
        ``q_L^-1 mod q_i``.  The centered lift keeps the implicit rounding
        error at most ``q_L / 2``, i.e. the result is the nearest integer
        polynomial to ``c / q_L`` (what CKKS rescaling needs for < 0.5 ulp
        of scale noise).

        Requires the coefficient domain: the correction mixes coefficients
        of one limb into all others, which has no pointwise NTT analogue.
        """
        if self.domain != COEFF:
            raise LayoutError("exact_rescale requires the coefficient domain")
        if self.num_limbs < 2:
            raise LevelError("cannot rescale a single-limb polynomial")
        hooks.emit("rns_poly.rescale")
        child = self.ctx.drop_last()
        q_last = self.ctx.primes[-1]
        last = self.limbs[-1].astype(np.int64)
        # Centered lift of the dropped limb: (-q_L/2, q_L/2].
        centered = np.where(last > q_last // 2, last - q_last, last)
        q = self.ctx.moduli[:-1]  # (L-1, 1), broadcasts over every limb row
        inv, inv_shoup, mu32, corr = self.ctx.rescale_consts
        s1, s2 = self.ctx._rescale_scratch
        shift = np.uint64(32)
        # Division-free (L-1, N) chain through cached constants and
        # persistent scratch (no temporaries); every fold is the
        # branch-free uint64 min-trick — min(s, s - q) keeps s when the
        # subtraction wraps.
        # t0 = q_L - centered is a positive < 2^32 lift of -[c]_{q_L}
        # shifted by q_L; reduce it per row via the cached 32-bit Barrett
        # constant (approximation error < 3q, so two folds reach [0, q)).
        t0 = (q_last - centered).astype(np.uint64)[None, :]
        np.multiply(t0, mu32, out=s1)
        np.right_shift(s1, shift, out=s1)
        np.multiply(s1, q, out=s1)
        np.subtract(t0, s1, out=s1)  # t0 mod q + < 3q of error
        np.subtract(s1, q, out=s2)
        np.minimum(s1, s2, out=s1)
        np.subtract(s1, q, out=s2)
        np.minimum(s1, s2, out=s1)  # canonical [0, q)
        # Undo the +q_L shift (corr = -q_last mod q_i) and add the limb:
        # diff = limbs - [c]_{q_L} mod q_i, canonical after one fold each.
        np.add(s1, corr, out=s1)
        np.subtract(s1, q, out=s2)
        np.minimum(s1, s2, out=s1)
        np.add(s1, self.limbs[:-1], out=s1)
        np.subtract(s1, q, out=s2)
        np.minimum(s1, s2, out=s1)
        # Multiply by the cached q_last^-1 via its Shoup companion.
        np.multiply(s1, inv_shoup, out=s2)
        np.right_shift(s2, shift, out=s2)
        np.multiply(s2, q, out=s2)  # hi * q
        np.multiply(s1, inv, out=s1)
        np.subtract(s1, s2, out=s1)
        np.bitwise_and(s1, np.uint64(0xFFFFFFFF), out=s1)  # in [0, 2q)
        np.subtract(s1, q, out=s2)
        out = np.minimum(s1, s2)
        if self.ctx.checked:
            assert_within(
                out, q - np.uint64(1),
                kernel="exact_rescale", stage="output",
            )
        return RnsPolynomial(child, out, COEFF, scale=self.state.scale / q_last)

    # -- basis conversion / key switching (§4.3) ---------------------------
    def mod_up(self, aux_primes: Sequence[Prime | int]) -> RnsPolynomial:
        """Extend this element onto the basis ``Q ∪ P`` (ModUp).

        Fast basis extension of the canonical representative: the
        original limbs are copied and the auxiliary rows are filled by
        the cached :class:`~repro.poly.basis_conv.BasisConverter` —
        output row ``p_j`` is exactly ``X mod p_j`` for ``X in [0, Q)``.
        Requires the coefficient domain (CRT mixing has no pointwise
        NTT analogue).
        """
        if self.domain != COEFF:
            raise LayoutError("mod_up requires the coefficient domain")
        ext = self.ctx.extend(aux_primes)
        kern = self.ctx.mod_up_kernel(aux_primes)
        out = np.empty((ext.num_limbs, ext.ring_degree), np.uint64)
        kern.apply(self.limbs, out)
        return RnsPolynomial(ext, out, COEFF)

    def mod_down(self, num_aux: int) -> RnsPolynomial:
        """Divide by the auxiliary modulus ``P`` exactly, dropping its limbs.

        Treats the last ``num_aux`` limb rows as the P-part and computes
        ``floor(X / P)`` on the base basis (the key-switching rescale;
        see :class:`~repro.poly.basis_conv.ModDown`).  Requires the
        coefficient domain; the fused ``key_switch`` pipeline has an
        NTT-domain variant that never inverse-transforms base rows.
        """
        if self.domain != COEFF:
            raise LayoutError("mod_down requires the coefficient domain")
        base = self.ctx.base_of_extension(num_aux)
        kern = self.ctx.mod_down_kernel(num_aux)
        out = np.empty((base.num_limbs, base.ring_degree), np.uint64)
        kern.apply(self.limbs, out)
        return RnsPolynomial(base, out, COEFF)

    def plan_key_switch(self, ksk, *, output_domain: str = COEFF):
        """The explicit NTT-domain schedule ``key_switch`` would execute.

        The plan is the domain-state planner's output: built from this
        polynomial's current domain (a cached coefficient twin makes the
        input inverse free) and the requested output domain; its step
        list and transform-row totals are inspectable, and passing it to
        :meth:`key_switch` executes exactly those steps.
        """
        switcher = self.ctx.key_switcher(ksk.aux_primes, ksk.dnum)
        return switcher.plan(self, output_domain)

    def key_switch(
        self, ksk, *, output_domain: str = COEFF, plan=None
    ) -> tuple[RnsPolynomial, RnsPolynomial]:
        """Hybrid key switching: the fused ModUp → NTT → MAC → ModDown
        pipeline (§4.2/§4.3), returning the ``(c0, c1)`` pair.

        Each limb digit is ModUp-extended onto ``Q ∪ P``, transformed
        once, multiplied against the key pair through one batched
        :class:`~repro.poly.lazy.LazyAccumulator` per half, and the
        folded sums are ModDown-rescaled back to ``Q``.  All scheduling
        follows the :class:`~repro.poly.basis_conv.KeySwitchPlan` (see
        :meth:`plan_key_switch`): with ``output_domain="ntt"`` only the
        auxiliary rows are ever inverse-transformed.
        """
        switcher = self.ctx.key_switcher(ksk.aux_primes, ksk.dnum)
        if plan is None:
            plan = switcher.plan(self, output_domain)
        return switcher.run(self, ksk, plan)

    # -- CRT reconstruction (reference/tests; Python-int arithmetic) -------
    def to_int_coeffs(self, *, centered: bool = True) -> list[int]:
        """CRT-reconstruct coefficients as Python ints mod Q.

        With ``centered`` the representatives lie in ``(-Q/2, Q/2]``,
        matching the signed plaintext convention; otherwise ``[0, Q)``.
        """
        if self.domain != COEFF:
            raise LayoutError("CRT reconstruction requires coefficient domain")
        big_q = self.ctx.modulus
        acc = [0] * self.ctx.ring_degree
        for i, q in enumerate(self.ctx.primes):
            m_i = big_q // q
            lift = m_i * pow(m_i, -1, q)
            row = self.limbs[i]
            for j in range(self.ctx.ring_degree):
                acc[j] = (acc[j] + int(row[j]) * lift) % big_q
        if centered:
            half = big_q // 2
            acc = [c - big_q if c > half else c for c in acc]
        return acc
