"""Lazy-reduction accumulation (§4.2 of the paper).

Inner-product-shaped kernels (basis conversion, key switching) sum many
modular products per output coefficient.  Folding every partial sum back
into canonical range wastes instructions; the paper instead lets partial
sums ride in a wide accumulator and folds once at the end.  SMR makes this
especially cheap because its output range (-q, q) is symmetric and its
input precondition (|x| < q * 2^31, Alg. 2) leaves headroom to defer work
into.

Two deferral strategies, both wrapped by :class:`LazyAccumulator`:

* ``reduced`` — each product is reduced first (into (-q, q) for SMR,
  [0, 2q) for the unsigned reducers) and the *folds* are deferred: partial
  sums accumulate raw in 64-bit.  Headroom is ~2^32 terms; works with every
  Table-3 reducer.
* ``raw`` (SMR only) — the *reductions themselves* are deferred: raw 64-bit
  products accumulate unreduced and one final SMR reduce folds the whole
  sum.  Alg. 2's precondition caps this at ``floor(2^31 / q)`` products
  — ~64 for a Pr~25 terminal prime but only ~2 for a Pr~30 main prime,
  which is why the paper's kernels interleave partial folds.

The accumulator carries an explicit worst-case bound tracker: every
``accumulate`` asserts the new bound still fits the strategy's domain and
raises :class:`~repro.errors.AccumulatorOverflowError` before any wraparound
can corrupt a result silently.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.sanitizer import assert_fold_sound, checked_mode
from repro.errors import AccumulatorOverflowError, ParameterError
from repro.rns.reduction import SignedMontgomeryReducer, align_rows

_INT64_MAX = 2**63 - 1
_UINT64_MAX = 2**64 - 1


class LazyAccumulator:
    """Accumulate modular products, deferring folds (or reductions).

    Args:
        reducer: a Table-3 reducer; ``raw`` strategy requires
            :class:`~repro.rns.reduction.SignedMontgomeryReducer`.
            Batched reducers (per-limb ``(L, 1)`` modulus columns) work
            too: the bound tracker then uses the worst-case limb (largest
            ``q`` for per-term magnitude, smallest for the raw-strategy
            domain) and the fold reduces each row by its own modulus.
        shape: shape of the accumulated vector.
        strategy: ``"reduced"`` or ``"raw"`` (see module docstring).

    Montgomery-family reducers carry an implicit ``2^-32`` factor per
    multiply; callers follow the NTT convention of pre-scaling one operand
    into Montgomery form so accumulated values are plain residues.
    """

    def __init__(
        self,
        reducer,
        shape: tuple[int, ...] | int,
        *,
        strategy: str = "reduced",
        checked: bool | None = None,
    ) -> None:
        if strategy not in ("reduced", "raw"):
            raise ParameterError(f"unknown lazy strategy {strategy!r}")
        self.signed = isinstance(reducer, SignedMontgomeryReducer)
        if strategy == "raw" and not self.signed:
            raise ParameterError(
                "raw accumulation needs SMR: only Alg. 2 tolerates "
                "unreduced 64-bit partial sums at its input"
            )
        self.reducer = reducer
        self.strategy = strategy
        #: sanitizer mode: cross-check the tracked bound against the real
        #: data at every fold (REPRO_CHECKED=1, or an explicit override)
        self.checked = checked_mode(checked)
        qs = [int(v) for v in np.ravel(np.asarray(reducer.q))]
        #: worst-case limb modulus — per-term bound charges use it
        self.q = max(qs)
        dtype = np.int64 if self.signed else np.uint64
        self.acc = np.zeros(shape, dtype=dtype)
        #: worst-case |accumulator| given everything accumulated so far
        self.bound = 0
        self.terms = 0
        if strategy == "raw":
            # One final reduce must satisfy Alg. 2 for every limb row:
            # row i allows ~q_i*2^31 / (q_i-1)^2 terms, decreasing in q_i,
            # so the largest limb is the binding row — tracking its limit
            # with its per-term magnitude is sound for all smaller rows.
            self.limit = self.q * 2**31 - 1
            self._per_term = (self.q - 1) ** 2
        elif self.signed:
            self.limit = _INT64_MAX
            self._per_term = self.q - 1  # SMR products land in (-q, q)
        else:
            self.limit = _UINT64_MAX
            self._per_term = 2 * self.q - 1  # unsigned reducers: [0, 2q)

    @property
    def headroom(self) -> int:
        """How many more worst-case terms fit before overflow."""
        return (self.limit - self.bound) // self._per_term

    def _charge(self, amount: int, what: str) -> None:
        if self.bound + amount > self.limit:
            from repro.analysis.ranges import safe_headroom

            detail = ""
            if self.acc.size:
                mag = (
                    np.abs(self.acc, dtype=np.int64)
                    if self.signed
                    else self.acc
                )
                idx = np.unravel_index(int(np.argmax(mag)), self.acc.shape)
                limb = idx[0] if self.acc.ndim > 1 else 0
                detail = (
                    f"; largest live magnitude |{int(self.acc[idx])}| sits "
                    f"at limb {limb}, coefficient {idx[-1]}"
                )
            raise AccumulatorOverflowError(
                f"{what} would push the lazy bound to "
                f"{self.bound + amount} > {self.limit} "
                f"({self.terms} terms accumulated, strategy "
                f"{self.strategy!r}, q={self.q}); statically safe headroom "
                f"at the current bound is "
                f"{safe_headroom(self.limit, self.bound, self._per_term)} "
                f"more worst-case term(s){detail}; fold first"
            )
        self.bound += amount

    def accumulate_product(
        self,
        a: np.ndarray,
        b: np.ndarray | int,
        *,
        b_shoup: np.ndarray | int | None = None,
    ) -> LazyAccumulator:
        """Add ``a * b`` (one modular product per lane) to the accumulator.

        Operands must be valid reducer inputs (canonical or one-fold-lazy
        residues).  ``reduced`` reduces now and defers the fold; ``raw``
        defers the reduction itself.  With a Shoup reducer, pass
        ``b_shoup = reducer.precompute(b)`` once and reuse it across terms
        (Shoup's whole premise); it is computed on the fly when omitted.

        The term is fully formed (including any on-the-fly Shoup
        precompute, which can raise) *before* the bound is charged, so a
        failed call leaves the tracker untouched.
        """
        if self.strategy == "raw":
            term = np.asarray(a).astype(np.int64) * (
                b.astype(np.int64)
                if isinstance(b, np.ndarray)
                else np.int64(b)
            )
        elif hasattr(self.reducer, "mulmod"):
            term = self.reducer.mulmod(np.asarray(a), b).astype(self.acc.dtype)
        else:  # Shoup multiplies by constants only; needs the companion
            w = int(b) if not isinstance(b, np.ndarray) else b
            if b_shoup is None:
                b_shoup = self.reducer.precompute(w)
            term = self.reducer.mulmod_const(
                np.asarray(a), w, b_shoup
            ).astype(self.acc.dtype)
        self._charge(self._per_term, "accumulating a product")
        self.acc += term
        self.terms += 1
        return self

    def accumulate_value(self, v: np.ndarray, max_abs: int) -> LazyAccumulator:
        """Add pre-reduced values with caller-declared worst-case |v|.

        Raises:
            ParameterError: if ``v`` carries negative values while the
                accumulator is unsigned — ``astype(uint64)`` would wrap
                them into huge positive residues and corrupt the sum with
                no error, so the sign is validated against the strategy
                before anything is charged or added.
        """
        if self.strategy == "raw":
            raise ParameterError(
                "raw accumulators take products only; reduce-then-add "
                "values belong to the 'reduced' strategy"
            )
        v = np.asarray(v)
        if (
            not self.signed
            and v.size
            and v.dtype.kind != "u"
            and int(v.min()) < 0
        ):
            raise ParameterError(
                f"negative value {int(v.min())} cannot enter an unsigned "
                "accumulator: the uint64 cast would wrap it silently; use "
                "an SMR (signed) accumulator or fold the sign into a "
                "canonical residue first"
            )
        self._charge(max_abs, "accumulating a value")
        self.acc += v.astype(self.acc.dtype, copy=False)
        self.terms += 1
        return self

    def fold(self) -> np.ndarray:
        """Collapse the deferred sum into canonical residues [0, q).

        ``raw`` performs the single deferred SMR reduction (Alg. 2) first;
        both strategies then take the exact centered remainder — on
        hardware this terminal fold is a short Barrett chain, priced
        separately by the cost model, executed once per output instead of
        once per term.
        """
        if self.checked:
            assert_fold_sound(
                self.acc, self.bound,
                kernel="LazyAccumulator.fold", signed=self.signed,
            )
        acc = self.acc
        if self.strategy == "raw":
            acc = self.reducer.reduce(acc)  # one Alg. 2 pass, into (-q, q)
        # Per-row moduli for batched reducers; plain scalar otherwise.
        if self.signed:
            q = align_rows(np.asarray(self.reducer.q, np.int64), acc.ndim)
            # int64 floor-mod folds negatives straight into [0, q).
            return (acc % q).astype(np.uint64)
        q = align_rows(np.asarray(self.reducer.q, np.uint64), acc.ndim)
        return acc % q

    def fold_into(self, out: np.ndarray) -> np.ndarray:
        """Destructive :meth:`fold` writing canonical residues into ``out``.

        The fused pipelines (basis conversion, key switching) fold into
        persistent scratch so the hot path allocates nothing.  The terminal
        remainder runs *in place on the accumulator*, so the accumulator
        state is consumed: call :meth:`reset` before accumulating again.
        ``out`` must be a uint64 array of the accumulator's shape.

        Raises:
            ParameterError: if ``out`` overlaps the accumulator storage.
                The in-place remainder would read half-folded values
                through the alias and corrupt the result silently — the
                evaluator's relinearize-then-rescale chains fold into
                per-kernel scratch, and this guard is what keeps a
                mis-shared scratch buffer from slipping through.
        """
        if out.shape != self.acc.shape or out.dtype != np.uint64:
            raise ParameterError(
                f"fold_into needs a uint64 {self.acc.shape} buffer, got "
                f"{out.dtype} {out.shape}"
            )
        if np.shares_memory(out, self.acc):
            raise ParameterError(
                "fold_into output aliases the accumulator scratch: the "
                "terminal remainder runs in place on the accumulator "
                "before the copy-out, so an aliased buffer would read "
                "partially-folded state; pass a distinct buffer"
            )
        if self.checked:
            assert_fold_sound(
                self.acc, self.bound,
                kernel="LazyAccumulator.fold_into", signed=self.signed,
            )
        acc = self.acc
        if self.strategy == "raw":
            acc = self.reducer.reduce(acc)  # one Alg. 2 pass, into (-q, q)
            np.copyto(self.acc, acc)
            acc = self.acc
        q = align_rows(np.asarray(self.reducer.q, dtype=acc.dtype), acc.ndim)
        np.remainder(acc, q, out=acc)  # floor-mod: canonical even if signed
        np.copyto(out, acc, casting="unsafe")
        return out

    def reset(self) -> None:
        self.acc[...] = 0
        self.bound = 0
        self.terms = 0
