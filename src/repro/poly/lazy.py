"""Lazy-reduction accumulation (§4.2 of the paper).

Inner-product-shaped kernels (basis conversion, key switching) sum many
modular products per output coefficient.  Folding every partial sum back
into canonical range wastes instructions; the paper instead lets partial
sums ride in a wide accumulator and folds once at the end.  SMR makes this
especially cheap because its output range (-q, q) is symmetric and its
input precondition (|x| < q * 2^31, Alg. 2) leaves headroom to defer work
into.

Two deferral strategies, both wrapped by :class:`LazyAccumulator`:

* ``reduced`` — each product is reduced first (into (-q, q) for SMR,
  [0, 2q) for the unsigned reducers) and the *folds* are deferred: partial
  sums accumulate raw in 64-bit.  Headroom is ~2^32 terms; works with every
  Table-3 reducer.
* ``raw`` (SMR only) — the *reductions themselves* are deferred: raw 64-bit
  products accumulate unreduced and one final SMR reduce folds the whole
  sum.  Alg. 2's precondition caps this at ``floor(2^31 / q)`` products
  — ~64 for a Pr~25 terminal prime but only ~2 for a Pr~30 main prime,
  which is why the paper's kernels interleave partial folds.

The accumulator carries an explicit worst-case bound tracker: every
``accumulate`` asserts the new bound still fits the strategy's domain and
raises :class:`~repro.errors.AccumulatorOverflowError` before any wraparound
can corrupt a result silently.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AccumulatorOverflowError, ParameterError
from repro.rns.reduction import SignedMontgomeryReducer

_INT64_MAX = 2**63 - 1
_UINT64_MAX = 2**64 - 1


class LazyAccumulator:
    """Accumulate modular products, deferring folds (or reductions).

    Args:
        reducer: a Table-3 reducer; ``raw`` strategy requires
            :class:`~repro.rns.reduction.SignedMontgomeryReducer`.
        shape: shape of the accumulated vector.
        strategy: ``"reduced"`` or ``"raw"`` (see module docstring).

    Montgomery-family reducers carry an implicit ``2^-32`` factor per
    multiply; callers follow the NTT convention of pre-scaling one operand
    into Montgomery form so accumulated values are plain residues.
    """

    def __init__(
        self,
        reducer,
        shape: tuple[int, ...] | int,
        *,
        strategy: str = "reduced",
    ) -> None:
        if strategy not in ("reduced", "raw"):
            raise ParameterError(f"unknown lazy strategy {strategy!r}")
        self.signed = isinstance(reducer, SignedMontgomeryReducer)
        if strategy == "raw" and not self.signed:
            raise ParameterError(
                "raw accumulation needs SMR: only Alg. 2 tolerates "
                "unreduced 64-bit partial sums at its input"
            )
        self.reducer = reducer
        self.strategy = strategy
        self.q = int(reducer.q_int if hasattr(reducer, "q_int") else reducer.q)
        dtype = np.int64 if self.signed else np.uint64
        self.acc = np.zeros(shape, dtype=dtype)
        #: worst-case |accumulator| given everything accumulated so far
        self.bound = 0
        self.terms = 0
        if strategy == "raw":
            # One final reduce must satisfy Alg. 2: |sum| < q * 2^31.
            self.limit = self.q * 2**31 - 1
            self._per_term = (self.q - 1) ** 2
        elif self.signed:
            self.limit = _INT64_MAX
            self._per_term = self.q - 1  # SMR products land in (-q, q)
        else:
            self.limit = _UINT64_MAX
            self._per_term = 2 * self.q - 1  # unsigned reducers: [0, 2q)

    @property
    def headroom(self) -> int:
        """How many more worst-case terms fit before overflow."""
        return (self.limit - self.bound) // self._per_term

    def _charge(self, amount: int, what: str) -> None:
        if self.bound + amount > self.limit:
            raise AccumulatorOverflowError(
                f"{what} would push the lazy bound to "
                f"{self.bound + amount} > {self.limit} "
                f"({self.terms} terms accumulated, strategy "
                f"{self.strategy!r}, q={self.q}); fold first"
            )
        self.bound += amount

    def accumulate_product(
        self,
        a: np.ndarray,
        b: np.ndarray | int,
        *,
        b_shoup: np.ndarray | int | None = None,
    ) -> LazyAccumulator:
        """Add ``a * b`` (one modular product per lane) to the accumulator.

        Operands must be valid reducer inputs (canonical or one-fold-lazy
        residues).  ``reduced`` reduces now and defers the fold; ``raw``
        defers the reduction itself.  With a Shoup reducer, pass
        ``b_shoup = reducer.precompute(b)`` once and reuse it across terms
        (Shoup's whole premise); it is computed on the fly when omitted.
        """
        self._charge(self._per_term, "accumulating a product")
        if self.strategy == "raw":
            prod = np.asarray(a).astype(np.int64) * (
                b.astype(np.int64)
                if isinstance(b, np.ndarray)
                else np.int64(b)
            )
            self.acc += prod
        elif hasattr(self.reducer, "mulmod"):
            self.acc += self.reducer.mulmod(np.asarray(a), b).astype(
                self.acc.dtype
            )
        else:  # Shoup multiplies by constants only; needs the companion
            w = int(b) if not isinstance(b, np.ndarray) else b
            if b_shoup is None:
                b_shoup = self.reducer.precompute(w)
            self.acc += self.reducer.mulmod_const(np.asarray(a), w, b_shoup)
        self.terms += 1
        return self

    def accumulate_value(
        self, v: np.ndarray, max_abs: int
    ) -> LazyAccumulator:
        """Add pre-reduced values with caller-declared worst-case |v|."""
        if self.strategy == "raw":
            raise ParameterError(
                "raw accumulators take products only; reduce-then-add "
                "values belong to the 'reduced' strategy"
            )
        self._charge(max_abs, "accumulating a value")
        self.acc += np.asarray(v).astype(self.acc.dtype)
        self.terms += 1
        return self

    def fold(self) -> np.ndarray:
        """Collapse the deferred sum into canonical residues [0, q).

        ``raw`` performs the single deferred SMR reduction (Alg. 2) first;
        both strategies then take the exact centered remainder — on
        hardware this terminal fold is a short Barrett chain, priced
        separately by the cost model, executed once per output instead of
        once per term.
        """
        acc = self.acc
        if self.strategy == "raw":
            acc = self.reducer.reduce(acc)  # one Alg. 2 pass, into (-q, q)
        if self.signed:
            # int64 floor-mod folds negatives straight into [0, q).
            return (acc % np.int64(self.q)).astype(np.uint64)
        return acc % np.uint64(self.q)

    def reset(self) -> None:
        self.acc[...] = 0
        self.bound = 0
        self.terms = 0
