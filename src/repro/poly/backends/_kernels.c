/* Compiled backend tier: the four Table-3 butterfly stage-kernel
 * families (Barrett / Montgomery / Shoup / SMR) and the CRT tensor pass
 * of fast basis conversion, as plain C over the same precomputed tables
 * the numpy kernels use.
 *
 * Bit-exactness contract: every transform output is the *canonical
 * exact* negacyclic NTT (or inverse) over the same bit-reversed twiddle
 * tables as repro.poly.batch_ntt, and the converter output is the exact
 * residue X mod p_j — so outputs are bit-identical to the numpy tier by
 * construction, independent of how intermediates are scheduled.  The
 * stage invariants nevertheless mirror the numpy kernels exactly
 * (canonical [0, q) state for the Shoup / Montgomery / SMR families,
 * Harvey 2q-lazy [0, 2q) state for Barrett) so that checked mode
 * asserts the very same certified per-stage bounds.
 *
 * Checked mode: with `bound` non-NULL, each (limb, stage) pass scans
 * the live row against bound[limb] — the caller passes the engine's
 * live certified bound column, so tightened bounds (tests) and the
 * PR 7 certificates apply to this tier exactly as to numpy.  The first
 * violation stops the transform and reports {value, stage m (0 = the
 * n^-1 scale), limb, coefficient} through `err`, and the function
 * returns 1.  The Python wrapper raises SanitizerError from that
 * tuple.
 *
 * Layout: data is one contiguous (L, n) row-major matrix; twiddle
 * tables are contiguous (L, n) in the backend-prepared dtype; per-limb
 * constants are length-L vectors.  Loops run limb-major (each limb
 * completes all stages before the next limb starts) — at n = 4096 a row
 * is 16-32 KiB, so the whole per-limb working set lives in L1/L2.
 */

#include <stdint.h>

#define EXPORT __attribute__((visibility("default")))

/* -- checked-mode row scans ---------------------------------------- */

/* Saturate a 64-bit bound into the uint32 state domain: any bound at or
 * above 2^32 - 1 can never trip on uint32 state, which matches numpy's
 * semantics of comparing the full-width value. */
static inline uint32_t b32(uint64_t b) {
    return b > 0xffffffffu ? 0xffffffffu : (uint32_t)b;
}

static int scan32(const uint32_t *row, int64_t n, uint32_t bound,
                  int64_t stage, int64_t limb, uint64_t *err) {
    for (int64_t k = 0; k < n; ++k) {
        if (row[k] > bound) {
            err[0] = row[k];
            err[1] = (uint64_t)stage;
            err[2] = (uint64_t)limb;
            err[3] = (uint64_t)k;
            return 1;
        }
    }
    return 0;
}

static int scan64(const uint64_t *row, int64_t n, uint64_t bound,
                  int64_t stage, int64_t limb, uint64_t *err) {
    for (int64_t k = 0; k < n; ++k) {
        if (row[k] > bound) {
            err[0] = row[k];
            err[1] = (uint64_t)stage;
            err[2] = (uint64_t)limb;
            err[3] = (uint64_t)k;
            return 1;
        }
    }
    return 0;
}

/* -- Shoup family ---------------------------------------------------
 * Twiddles: w (uint32 canonical) with companion w' = floor(w<<32 / q)
 * (uint64 carrier).  One 64-bit high product per multiply; state stays
 * canonical uint32. */

static inline uint32_t shoup_mul(uint32_t v, uint32_t w, uint64_t wsh,
                                 uint32_t q) {
    uint32_t hi = (uint32_t)(((uint64_t)v * wsh) >> 32);
    uint32_t r = v * w - hi * q; /* (v*w - hi*q) mod 2^32, in [0, 2q) */
    return r < q ? r : r - q;
}

EXPORT int ntt_fwd_shoup(uint32_t *x, const uint32_t *w, const uint64_t *wsh,
                         const uint32_t *q, int64_t L, int64_t n, const uint64_t *bound,
                         uint64_t *err) {
    for (int64_t l = 0; l < L; ++l) {
        uint32_t ql = q[l];
        uint32_t *row = x + l * n;
        const uint32_t *wl = w + l * n;
        const uint64_t *wshl = wsh + l * n;
        for (int64_t m = 1, t = n >> 1; m < n; m <<= 1, t >>= 1) {
            for (int64_t g = 0; g < m; ++g) {
                uint32_t tw = wl[m + g];
                uint64_t twsh = wshl[m + g];
                uint32_t *u = row + g * 2 * t;
                uint32_t *v = u + t;
                for (int64_t k = 0; k < t; ++k) {
                    uint32_t r = shoup_mul(v[k], tw, twsh, ql);
                    uint32_t uk = u[k];
                    uint32_t s = uk + r;
                    s = s < ql ? s : s - ql;
                    uint32_t d = uk + ql - r;
                    d = d < ql ? d : d - ql;
                    u[k] = s;
                    v[k] = d;
                }
            }
            if (bound && scan32(row, n, b32(bound[l]), m, l, err)) return 1;
        }
    }
    return 0;
}

EXPORT int ntt_inv_shoup(uint32_t *x, const uint32_t *w, const uint64_t *wsh,
                         const uint32_t *ninv, const uint64_t *ninvsh,
                         const uint32_t *q, int64_t L, int64_t n, const uint64_t *bound,
                         uint64_t *err) {
    for (int64_t l = 0; l < L; ++l) {
        uint32_t ql = q[l];
        uint32_t *row = x + l * n;
        const uint32_t *wl = w + l * n;
        const uint64_t *wshl = wsh + l * n;
        for (int64_t m = n, t = 1; m > 1; m >>= 1, t <<= 1) {
            int64_t h = m >> 1;
            for (int64_t g = 0; g < h; ++g) {
                uint32_t tw = wl[h + g];
                uint64_t twsh = wshl[h + g];
                uint32_t *u = row + g * 2 * t;
                uint32_t *v = u + t;
                for (int64_t k = 0; k < t; ++k) {
                    uint32_t uk = u[k], vk = v[k];
                    uint32_t s = uk + vk;
                    s = s < ql ? s : s - ql;
                    uint32_t d = uk + ql - vk;
                    d = d < ql ? d : d - ql;
                    u[k] = s;
                    v[k] = shoup_mul(d, tw, twsh, ql);
                }
            }
            if (bound && scan32(row, n, b32(bound[l]), m, l, err)) return 1;
        }
        uint32_t nv = ninv[l];
        uint64_t nvsh = ninvsh[l];
        for (int64_t k = 0; k < n; ++k) row[k] = shoup_mul(row[k], nv, nvsh, ql);
        if (bound && scan32(row, n, b32(bound[l]), 0, l, err)) return 1;
    }
    return 0;
}

/* -- (unsigned) Montgomery family -----------------------------------
 * Twiddles in Montgomery form (w * 2^32 mod q, uint64 carrier); the
 * butterfly reduce cancels the 2^-32, keeping coefficients plain. */

static inline uint32_t mont_mul(uint32_t v, uint64_t twf, uint32_t q,
                                uint32_t qinv_neg) {
    uint64_t p = (uint64_t)v * twf;                       /* < q^2 * 2 */
    uint32_t m = (uint32_t)p * qinv_neg;                  /* mullo32 */
    uint32_t t = (uint32_t)((p + (uint64_t)m * q) >> 32); /* < 2q */
    return t < q ? t : t - q;
}

EXPORT int ntt_fwd_mont(uint32_t *x, const uint64_t *w, const uint32_t *q,
                        const uint32_t *qinv, int64_t L, int64_t n,
                        const uint64_t *bound, uint64_t *err) {
    for (int64_t l = 0; l < L; ++l) {
        uint32_t ql = q[l], qi = qinv[l];
        uint32_t *row = x + l * n;
        const uint64_t *wl = w + l * n;
        for (int64_t m = 1, t = n >> 1; m < n; m <<= 1, t >>= 1) {
            for (int64_t g = 0; g < m; ++g) {
                uint64_t tw = wl[m + g];
                uint32_t *u = row + g * 2 * t;
                uint32_t *v = u + t;
                for (int64_t k = 0; k < t; ++k) {
                    uint32_t r = mont_mul(v[k], tw, ql, qi);
                    uint32_t uk = u[k];
                    uint32_t s = uk + r;
                    s = s < ql ? s : s - ql;
                    uint32_t d = uk + ql - r;
                    d = d < ql ? d : d - ql;
                    u[k] = s;
                    v[k] = d;
                }
            }
            if (bound && scan32(row, n, b32(bound[l]), m, l, err)) return 1;
        }
    }
    return 0;
}

EXPORT int ntt_inv_mont(uint32_t *x, const uint64_t *w, const uint64_t *ninv,
                        const uint32_t *q, const uint32_t *qinv, int64_t L,
                        int64_t n, const uint64_t *bound, uint64_t *err) {
    for (int64_t l = 0; l < L; ++l) {
        uint32_t ql = q[l], qi = qinv[l];
        uint32_t *row = x + l * n;
        const uint64_t *wl = w + l * n;
        for (int64_t m = n, t = 1; m > 1; m >>= 1, t <<= 1) {
            int64_t h = m >> 1;
            for (int64_t g = 0; g < h; ++g) {
                uint64_t tw = wl[h + g];
                uint32_t *u = row + g * 2 * t;
                uint32_t *v = u + t;
                for (int64_t k = 0; k < t; ++k) {
                    uint32_t uk = u[k], vk = v[k];
                    uint32_t s = uk + vk;
                    s = s < ql ? s : s - ql;
                    uint32_t d = uk + ql - vk;
                    d = d < ql ? d : d - ql;
                    u[k] = s;
                    v[k] = mont_mul(d, tw, ql, qi);
                }
            }
            if (bound && scan32(row, n, b32(bound[l]), m, l, err)) return 1;
        }
        uint64_t nv = ninv[l];
        for (int64_t k = 0; k < n; ++k) row[k] = mont_mul(row[k], nv, ql, qi);
        if (bound && scan32(row, n, b32(bound[l]), 0, l, err)) return 1;
    }
    return 0;
}

/* -- SMR (signed Montgomery, Alg. 2) family -------------------------
 * Twiddles in signed Montgomery form (int64 carrier, values in
 * (-q, q)); each Alg. 2 output is canonicalized into [0, q) so the
 * butterfly combines run in uint32, exactly like the numpy kernel. */

static inline uint32_t smr_mul(uint32_t v, int64_t twf, uint32_t q,
                               uint32_t m) {
    int64_t p = (int64_t)v * twf; /* |p| < q * 2^31: Alg. 2's domain */
    int64_t x_hi = p >> 32;
    uint32_t x_lo = (uint32_t)p;
    int32_t z = (int32_t)(x_lo * m); /* signed mullo32 wrap */
    int64_t hi = ((int64_t)z * (int64_t)q) >> 32;
    int64_t t = x_hi - hi; /* in (-q, q) */
    return t < 0 ? (uint32_t)(t + q) : (uint32_t)t;
}

EXPORT int ntt_fwd_smr(uint32_t *x, const int64_t *w, const uint32_t *q,
                       const uint32_t *m, int64_t L, int64_t n, const uint64_t *bound,
                       uint64_t *err) {
    for (int64_t l = 0; l < L; ++l) {
        uint32_t ql = q[l], ml = m[l];
        uint32_t *row = x + l * n;
        const int64_t *wl = w + l * n;
        for (int64_t mm = 1, t = n >> 1; mm < n; mm <<= 1, t >>= 1) {
            for (int64_t g = 0; g < mm; ++g) {
                int64_t tw = wl[mm + g];
                uint32_t *u = row + g * 2 * t;
                uint32_t *v = u + t;
                for (int64_t k = 0; k < t; ++k) {
                    uint32_t r = smr_mul(v[k], tw, ql, ml);
                    uint32_t uk = u[k];
                    uint32_t s = uk + r;
                    s = s < ql ? s : s - ql;
                    uint32_t d = uk + ql - r;
                    d = d < ql ? d : d - ql;
                    u[k] = s;
                    v[k] = d;
                }
            }
            if (bound && scan32(row, n, b32(bound[l]), mm, l, err)) return 1;
        }
    }
    return 0;
}

EXPORT int ntt_inv_smr(uint32_t *x, const int64_t *w, const int64_t *ninv,
                       const uint32_t *q, const uint32_t *m, int64_t L,
                       int64_t n, const uint64_t *bound, uint64_t *err) {
    for (int64_t l = 0; l < L; ++l) {
        uint32_t ql = q[l], ml = m[l];
        uint32_t *row = x + l * n;
        const int64_t *wl = w + l * n;
        for (int64_t mm = n, t = 1; mm > 1; mm >>= 1, t <<= 1) {
            int64_t h = mm >> 1;
            for (int64_t g = 0; g < h; ++g) {
                int64_t tw = wl[h + g];
                uint32_t *u = row + g * 2 * t;
                uint32_t *v = u + t;
                for (int64_t k = 0; k < t; ++k) {
                    uint32_t uk = u[k], vk = v[k];
                    uint32_t s = uk + vk;
                    s = s < ql ? s : s - ql;
                    uint32_t d = uk + ql - vk;
                    d = d < ql ? d : d - ql;
                    u[k] = s;
                    v[k] = smr_mul(d, tw, ql, ml);
                }
            }
            if (bound && scan32(row, n, b32(bound[l]), mm, l, err)) return 1;
        }
        int64_t nv = ninv[l];
        for (int64_t k = 0; k < n; ++k) row[k] = smr_mul(row[k], nv, ql, ml);
        if (bound && scan32(row, n, b32(bound[l]), 0, l, err)) return 1;
    }
    return 0;
}

/* -- Barrett family --------------------------------------------------
 * Harvey-style 2q-lazy uint64 state, exactly the numpy kernel's
 * schedule: mu = floor(2^64 / q) split into 32-bit halves (same dropped
 * carries, so even the lazy intermediates match), one fold per
 * butterfly output into [0, 2q), exit fold to canonical. */

static inline uint64_t barrett_mul(uint64_t v, uint64_t w, uint64_t q,
                                   uint64_t q2, uint64_t mu_hi,
                                   uint64_t mu_lo) {
    uint64_t x = v * w; /* exact: v < 2q, w < q, so x < 2q^2 < 2^63 */
    uint64_t x_hi = x >> 32;
    uint64_t x_lo = x & 0xffffffffu;
    uint64_t mid = x_lo * mu_hi + ((x_lo * mu_lo) >> 32) + x_hi * mu_lo;
    uint64_t qhat = x_hi * mu_hi + (mid >> 32);
    uint64_t r = x - qhat * q; /* in [0, 3q) */
    return r < q2 ? r : r - q2;
}

EXPORT int ntt_fwd_barrett(uint64_t *x, const uint64_t *w, const uint64_t *q,
                           const uint64_t *mu, int64_t L, int64_t n,
                           const uint64_t *bound, uint64_t *err) {
    for (int64_t l = 0; l < L; ++l) {
        uint64_t ql = q[l], q2 = 2 * ql;
        uint64_t mu_hi = mu[l] >> 32, mu_lo = mu[l] & 0xffffffffu;
        uint64_t *row = x + l * n;
        const uint64_t *wl = w + l * n;
        for (int64_t m = 1, t = n >> 1; m < n; m <<= 1, t >>= 1) {
            for (int64_t g = 0; g < m; ++g) {
                uint64_t tw = wl[m + g];
                uint64_t *u = row + g * 2 * t;
                uint64_t *v = u + t;
                for (int64_t k = 0; k < t; ++k) {
                    uint64_t r = barrett_mul(v[k], tw, ql, q2, mu_hi, mu_lo);
                    uint64_t uk = u[k];
                    uint64_t s = uk + r;
                    s = s < q2 ? s : s - q2;
                    uint64_t d = uk + q2 - r;
                    d = d < q2 ? d : d - q2;
                    u[k] = s;
                    v[k] = d;
                }
            }
            if (bound && scan64(row, n, bound[l], m, l, err)) return 1;
        }
        for (int64_t k = 0; k < n; ++k) { /* exit fold to canonical */
            uint64_t s = row[k];
            row[k] = s < ql ? s : s - ql;
        }
    }
    return 0;
}

EXPORT int ntt_inv_barrett(uint64_t *x, const uint64_t *w,
                           const uint64_t *ninv, const uint64_t *q,
                           const uint64_t *mu, int64_t L, int64_t n,
                           const uint64_t *bound, uint64_t *err) {
    for (int64_t l = 0; l < L; ++l) {
        uint64_t ql = q[l], q2 = 2 * ql;
        uint64_t mu_hi = mu[l] >> 32, mu_lo = mu[l] & 0xffffffffu;
        uint64_t *row = x + l * n;
        const uint64_t *wl = w + l * n;
        for (int64_t m = n, t = 1; m > 1; m >>= 1, t <<= 1) {
            int64_t h = m >> 1;
            for (int64_t g = 0; g < h; ++g) {
                uint64_t tw = wl[h + g];
                uint64_t *u = row + g * 2 * t;
                uint64_t *v = u + t;
                for (int64_t k = 0; k < t; ++k) {
                    uint64_t uk = u[k], vk = v[k];
                    uint64_t s = uk + vk;
                    s = s < q2 ? s : s - q2;
                    uint64_t d = uk + q2 - vk;
                    d = d < q2 ? d : d - q2;
                    u[k] = s;
                    v[k] = barrett_mul(d, tw, ql, q2, mu_hi, mu_lo);
                }
            }
            if (bound && scan64(row, n, bound[l], m, l, err)) return 1;
        }
        uint64_t nv = ninv[l];
        for (int64_t k = 0; k < n; ++k)
            row[k] = barrett_mul(row[k], nv, ql, q2, mu_hi, mu_lo);
        if (bound && scan64(row, n, bound[l], 0, l, err)) return 1;
        for (int64_t k = 0; k < n; ++k) { /* exit fold to canonical */
            uint64_t s = row[k];
            row[k] = s < ql ? s : s - ql;
        }
    }
    return 0;
}

/* -- CRT tensor pass --------------------------------------------------
 * out[j] = (sum_i x_hat[i] * M[j,i] + v * corr[j]) mod p_j, the
 * (L_out, L_in, N) pass of fast basis conversion collapsed row by row:
 * Shoup lazy products in [0, 2p_j) accumulate in uint64 (L_in <= a few
 * dozen, so sums stay far below 2^64 — the same §4.2 headroom the numpy
 * LazyAccumulator certifies), then one exact Barrett fold per output
 * element via mu_j = floor(2^64 / p_j) with a subtract-until-canonical
 * tail, so the result is the exact residue regardless of the one-off
 * approximation error.  x_hat and v are canonical (computed by the
 * main-process scale step / exact v guard). */

EXPORT int crt_convert(const uint64_t *x_hat, const uint64_t *m,
                       const uint64_t *msh, const uint64_t *v,
                       const uint64_t *corr, const uint64_t *corrsh,
                       const uint64_t *p, const uint64_t *mu, int64_t L_in,
                       int64_t L_out, int64_t n, uint64_t *out) {
    for (int64_t j = 0; j < L_out; ++j) {
        uint64_t pj = p[j];
        uint64_t *oj = out + j * n;
        const uint64_t *mj = m + j * L_in;
        const uint64_t *mshj = msh + j * L_in;
        for (int64_t k = 0; k < n; ++k) oj[k] = 0;
        for (int64_t i = 0; i < L_in; ++i) {
            uint64_t w = mj[i], wsh = mshj[i];
            const uint64_t *xi = x_hat + i * n;
            for (int64_t k = 0; k < n; ++k) {
                uint64_t a = xi[k]; /* < 2^31 */
                uint64_t hi = (a * wsh) >> 32;
                oj[k] += (a * w - hi * pj) & 0xffffffffu; /* + [0, 2p) */
            }
        }
        uint64_t cw = corr[j], cwsh = corrsh[j], muj = mu[j];
        for (int64_t k = 0; k < n; ++k) {
            uint64_t a = v[k];
            uint64_t hi = (a * cwsh) >> 32;
            uint64_t s = oj[k] + ((a * cw - hi * pj) & 0xffffffffu);
            uint64_t qh = (uint64_t)(((unsigned __int128)s * muj) >> 64);
            uint64_t r = s - qh * pj;
            while (r >= pj) r -= pj;
            oj[k] = r;
        }
    }
    return 0;
}

/* The converter's scale step: x_hat_i = x_i * q_i_hat^-1 mod q_i, one
 * scalar Shoup multiply per row.  Same 32-bit wrap + canonical fold the
 * numpy chain performs, so the output bits match exactly. */

EXPORT int crt_scale(const uint64_t *x, const uint64_t *w,
                     const uint64_t *wsh, const uint64_t *q, int64_t L,
                     int64_t n, uint64_t *out) {
    for (int64_t i = 0; i < L; ++i) {
        uint64_t wi = w[i], wshi = wsh[i], qi = q[i];
        const uint64_t *xi = x + i * n;
        uint64_t *oi = out + i * n;
        for (int64_t k = 0; k < n; ++k) {
            uint64_t a = xi[k];
            uint64_t hi = (a * wshi) >> 32;
            uint64_t r = (a * wi - hi * qi) & 0xffffffffu;
            oi[k] = r >= qi ? r - qi : r;
        }
    }
    return 0;
}
