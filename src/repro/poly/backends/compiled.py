"""Compiled backend tier: ctypes-loaded C stage kernels and CRT pass.

The C source (``_kernels.c``, shipped next to this module) implements
the four Table-3 butterfly stage-kernel families and the basis-conversion
CRT tensor pass over exactly the tables the numpy kernels use, so the
outputs are bit-identical by the canonical-exactness argument in the
package docstring.  The shared library is built lazily on first use with
whatever C compiler is around (``$CC``, else ``cc``/``gcc``/``clang``)
and cached by source hash under ``$REPRO_KERNEL_CACHE`` (default: a
per-user directory in the system tempdir), so one build serves every
process and every test run.

No toolchain — or a failing build — is *not* an error: :func:`get_lib`
warns once per process with :class:`~repro.poly.backends.
BackendFallbackWarning` and every subsequent call silently uses the
numpy tier.  ``_reset()`` clears that latch for tests.

Checked mode runs *inside* the C kernels: each (limb, stage) pass
re-scans the live row against the certified stage bound (canonical
``q-1`` for the Shoup / Montgomery / SMR families, Harvey-lazy ``2q-1``
for Barrett) and a violation surfaces as the same
:class:`~repro.errors.SanitizerError` shape the numpy kernels raise.
The converter is the one exception: under ``checked`` it falls through
to the numpy path so the LazyAccumulator's fold-soundness
instrumentation (not just the output bound) stays active.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path

import numpy as np

from repro.errors import SanitizerError
from repro.poly.backends import BackendFallbackWarning
from repro.poly.ntt import _range_error

_SOURCE = Path(__file__).with_name("_kernels.c")

_LIB: ctypes.CDLL | None = None
_FAILED = False


def _reset() -> None:
    """Forget the loaded library and the warn-once latch (tests only)."""
    global _LIB, _FAILED
    _LIB = None
    _FAILED = False


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE", "").strip()
    if env:
        return Path(env)
    uid = getattr(os, "getuid", lambda: "all")()
    return Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"


def _compiler() -> str | None:
    cc = os.environ.get("CC", "").strip()
    if cc:
        return cc
    for cand in ("cc", "gcc", "clang"):
        if shutil.which(cand):
            return cand
    return None


def _build_lib() -> Path:
    """Compile (or reuse) the kernel shared library, returning its path.

    The artifact name carries a source hash, so editing ``_kernels.c``
    invalidates stale caches naturally; the build lands under a
    temporary name and is published with an atomic ``os.replace`` so
    concurrent processes never load a half-written library.
    """
    digest = hashlib.sha256(_SOURCE.read_bytes()).hexdigest()[:16]
    cache = _cache_dir()
    so = cache / f"repro_kernels_{digest}.so"
    if so.exists():
        return so
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler found ($CC unset, no cc/gcc/clang)")
    cache.mkdir(parents=True, exist_ok=True)
    tmp = so.with_name(f"{so.name}.tmp{os.getpid()}")
    cmd = [cc, "-O3", "-fPIC", "-shared", "-o", str(tmp), str(_SOURCE)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode:
        tmp.unlink(missing_ok=True)
        detail = (proc.stderr or proc.stdout).strip()[:400]
        raise RuntimeError(f"{cc} failed (rc={proc.returncode}): {detail}")
    os.replace(tmp, so)
    return so


def get_lib() -> ctypes.CDLL | None:
    """The kernel library, building it on first call; ``None`` if absent.

    Degradation is loud exactly once: the first failed attempt emits one
    :class:`BackendFallbackWarning` naming the cause, then the failure
    is latched and later calls return ``None`` silently.
    """
    global _LIB, _FAILED
    if _LIB is not None:
        return _LIB
    if _FAILED:
        return None
    try:
        _LIB = ctypes.CDLL(str(_build_lib()))
    except Exception as exc:  # noqa: BLE001 - any build/load failure degrades
        _FAILED = True
        _LIB = None
        warnings.warn(
            f"compiled backend unavailable ({exc}); "
            "falling back to the numpy reference tier",
            BackendFallbackWarning,
            stacklevel=3,
        )
        return None
    return _LIB


def _ptr(a: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(a.ctypes.data)


def _c(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a)


class CompiledNtt:
    """C-kernel implementation bound to one :class:`BatchNTT` engine.

    Holds contiguous casts of the engine's prepared twiddle tables in the
    C ABI dtypes (built once per engine — ``take_rows``/``extend`` clones
    get their own impl) plus one persistent state buffer, so a transform
    is: range-check, one copy in, one C call, one copy out.
    """

    def __init__(self, engine, lib: ctypes.CDLL) -> None:
        self.engine = engine
        self.lib = lib
        self.n = engine.n
        self.num_limbs = len(engine.primes)
        red = engine.backend.red
        q64 = np.array(engine.primes, dtype=np.uint64)
        self._q_col = q64.reshape(-1, 1)
        self._err = np.zeros(4, dtype=np.uint64)
        method = engine.method
        fwd, inv, ninv = engine._fwd, engine._inv, engine._n_inv
        if method == "barrett":
            self._state = np.empty((self.num_limbs, self.n), np.uint64)
            q = _c(q64)
            mu = _c(np.asarray(red.mu, dtype=np.uint64).reshape(-1))
            self._fwd_call = (lib.ntt_fwd_barrett, (_c(fwd[0]), q, mu))
            self._inv_call = (
                lib.ntt_inv_barrett,
                (_c(inv[0]), _c(ninv[0].reshape(-1)), q, mu),
            )
        else:
            self._state = np.empty((self.num_limbs, self.n), np.uint32)
            q32 = _c(q64.astype(np.uint32))
            if method == "shoup":
                nv = _c(ninv[0].reshape(-1).astype(np.uint32))
                nvsh = _c(ninv[1].reshape(-1))
                self._fwd_call = (
                    lib.ntt_fwd_shoup,
                    (_c(fwd[0].astype(np.uint32)), _c(fwd[1]), q32),
                )
                self._inv_call = (
                    lib.ntt_inv_shoup,
                    (_c(inv[0].astype(np.uint32)), _c(inv[1]), nv, nvsh, q32),
                )
            elif method == "montgomery":
                qi = _c(np.asarray(red.q_inv_neg).reshape(-1).astype(np.uint32))
                self._fwd_call = (lib.ntt_fwd_mont, (_c(fwd[0]), q32, qi))
                self._inv_call = (
                    lib.ntt_inv_mont,
                    (_c(inv[0]), _c(ninv[0].reshape(-1)), q32, qi),
                )
            elif method == "smr":
                m32 = _c(
                    np.bitwise_and(
                        np.asarray(red.m, dtype=np.int64).reshape(-1),
                        np.int64(0xFFFFFFFF),
                    ).astype(np.uint32)
                )
                self._fwd_call = (lib.ntt_fwd_smr, (_c(fwd[0]), q32, m32))
                self._inv_call = (
                    lib.ntt_inv_smr,
                    (_c(inv[0]), _c(ninv[0].reshape(-1)), q32, m32),
                )
            else:  # pragma: no cover - BatchNTT validates the method first
                raise ValueError(f"no compiled kernel for method {method!r}")

    def _run(self, call, direction: str) -> None:
        fn, tables = call
        err = self._err
        err[:] = 0
        kernel = self.engine._kernel
        # Read the *live* bound column each call: it is the same certified
        # per-stage bound the numpy kernel asserts, and tests tighten it
        # in place to prove the asserts run inside the hot loop.
        bound_col = None
        if kernel.checked:
            bound_col = np.ascontiguousarray(
                np.asarray(kernel._bound_col, dtype=np.uint64).reshape(-1)
            )
        rc = fn(
            _ptr(self._state),
            *(_ptr(t) for t in tables),
            ctypes.c_int64(self.num_limbs),
            ctypes.c_int64(self.n),
            ctypes.c_void_p(None) if bound_col is None else _ptr(bound_col),
            _ptr(err),
        )
        if rc:
            limb = int(err[2])
            bound = int(bound_col[limb])
            m = int(err[1])
            stage = f"{direction} stage m={m}" if m else "n^-1 scale"
            raise SanitizerError(
                f"checked mode: {self.engine.method} NTT {stage} produced "
                f"{int(err[0])} outside [0, {bound}] at row {limb}, "
                f"coefficient index {int(err[3])}"
            )

    def _transform(self, a, call, direction, out):
        a = np.asarray(a, dtype=np.uint64)
        if a.size and np.any(a >= self._q_col):
            raise _range_error(a, self._q_col)
        np.copyto(self._state, a, casting="unsafe")
        self._run(call, direction)
        if out is None:
            return self._state.astype(np.uint64)
        np.copyto(out, self._state, casting="unsafe")
        return out

    def forward(self, a, out=None):
        return self._transform(a, self._fwd_call, "forward", out)

    def inverse(self, a_hat, out=None):
        return self._transform(a_hat, self._inv_call, "inverse", out)

    def pointwise_prepared(self, a_hat, prepared):
        return None  # the numpy pointwise pass is already a single mulmod


class CompiledConvert:
    """C CRT tensor pass bound to one :class:`BasisConverter`.

    Takes over ``convert``'s ``(L_out, L_in, N)`` cross-product + fold;
    the scale step and the exact ``v`` correction stay in the caller (the
    v guard needs Python big ints).  Declines (returns ``None``) under
    checked mode so the accumulator instrumentation stays engaged.
    """

    def __init__(self, converter, lib: ctypes.CDLL) -> None:
        self.converter = converter
        self.lib = lib
        self._m = _c(converter._m)
        self._msh = _c(converter._m_sh)
        self._corr = _c(converter._corr.reshape(-1))
        self._corrsh = _c(converter._corr_sh.reshape(-1))
        self._p = _c(np.array(converter.dst, dtype=np.uint64))
        self._mu = _c(
            np.array([(1 << 64) // p for p in converter.dst], dtype=np.uint64)
        )
        self._w = _c(converter._w.reshape(-1))
        self._wsh = _c(converter._w_sh.reshape(-1))
        self._q_src = _c(converter._q_src.reshape(-1))

    def scale_core(self, x, out):
        """The per-row Shoup scale in C; caller has already range-checked."""
        if self.converter.checked:
            return None
        if not (
            x.flags.c_contiguous
            and x.dtype == np.uint64
            and out.flags.c_contiguous
            and out.dtype == np.uint64
        ):
            return None
        self.lib.crt_scale(
            _ptr(x),
            _ptr(self._w),
            _ptr(self._wsh),
            _ptr(self._q_src),
            ctypes.c_int64(len(self.converter.src)),
            ctypes.c_int64(self.converter.n),
            _ptr(out),
        )
        return out

    def convert_core(self, x_hat, v_row, out):
        conv = self.converter
        if conv.checked:
            return None
        if not (
            x_hat.flags.c_contiguous
            and v_row.flags.c_contiguous
            and out.flags.c_contiguous
            and out.dtype == np.uint64
        ):
            return None
        self.lib.crt_convert(
            _ptr(x_hat),
            _ptr(self._m),
            _ptr(self._msh),
            _ptr(v_row),
            _ptr(self._corr),
            _ptr(self._corrsh),
            _ptr(self._p),
            _ptr(self._mu),
            ctypes.c_int64(len(conv.src)),
            ctypes.c_int64(len(conv.dst)),
            ctypes.c_int64(conv.n),
            _ptr(out),
        )
        return out


def make_compiled_ntt(engine):
    lib = get_lib()
    return None if lib is None else CompiledNtt(engine, lib)


def make_compiled_convert(converter):
    lib = get_lib()
    return None if lib is None else CompiledConvert(converter, lib)
