"""Process-sharded backend tier: limb-row partitioning over shared memory.

The ``(L, N)`` limb matrix ops this package dispatches are
embarrassingly parallel across limb rows (NTT: each limb transforms
independently; CRT convert: each *output* row is an independent dot
through the full ``x_hat``), so this tier splits rows across a
persistent pool of worker processes:

* one pool per process, built lazily on first large-enough call and torn
  down by :func:`close_pool` (explicitly, or via the registered
  ``atexit`` hook — tests assert zero ``/dev/shm`` residue after both);
* data crosses the process boundary through named
  ``multiprocessing.shared_memory`` segments (zero-copy ``np.ndarray``
  views on both sides; the pool grows and reuses a small set of
  segments, so steady state allocates nothing);
* workers build *numpy-tier* row-slice engines (``BatchNTT`` /
  ``BasisConverter``, pinned to the parent's roots so outputs are
  bit-identical rows of the reference result) once per (engine, row
  range) and keep them — twiddle tables are mapped once at pool start
  for the lifetime of the pool, exactly like the paper's
  device-resident tables;
* checked mode rides along: the per-call flag reaches the worker, whose
  numpy kernels run the same certified-bound asserts in-process and
  surface :class:`~repro.errors.SanitizerError` back to the caller.

Sharding pays one pipe round trip and two segment copies per op, so it
only wins when ``L*N`` is large and cores are plentiful;
below :func:`shard_min_elements` elements (``REPRO_SHARD_MIN``, default
4096) a call falls through to the numpy tier instead of paying IPC on
tiny matrices.

Failure model: a worker dying mid-operation raises
:class:`~repro.errors.ShardCrashError` on the observing call, the pool
is torn down (segments unlinked — no leaks even on crash), and the
crashed state is latched: subsequent calls degrade silently to the
numpy tier rather than respawning into an unknown failure or erroring
forever.  A *clean* :func:`close_pool` does allow a later call to build
a fresh pool.
"""

from __future__ import annotations

import atexit
import os
import shutil
import subprocess
import sys
import tempfile
import warnings
from multiprocessing import shared_memory
from multiprocessing.connection import Client, Listener
from pathlib import Path

import numpy as np

from repro.errors import (
    ParameterError,
    SanitizerError,
    ShardCrashError,
)
from repro.poly.backends import BackendFallbackWarning
from repro.poly.ntt import _range_error

_POOL: _Pool | None = None
_CRASHED = False

#: exception types a worker may raise that map back onto library types
#: (anything else surfaces as ShardCrashError-adjacent BackendError text)
_ERROR_TYPES = {
    "SanitizerError": SanitizerError,
    "ParameterError": ParameterError,
    "LayoutError": ParameterError,
}

_PIPE_EXC = (EOFError, BrokenPipeError, ConnectionResetError, OSError)


def _reset() -> None:
    """Release the pool and clear the crash latch (tests only)."""
    global _CRASHED
    close_pool()
    _CRASHED = False


def shard_min_elements() -> int:
    """Dispatch floor: matrices under this many elements stay on numpy."""
    try:
        return int(os.environ.get("REPRO_SHARD_MIN", "4096"))
    except ValueError:
        return 4096


def _num_workers() -> int:
    try:
        want = int(os.environ.get("REPRO_SHARD_WORKERS", "0"))
    except ValueError:
        want = 0
    if want <= 0:
        want = os.cpu_count() or 1
    return max(1, want)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without adopting cleanup responsibility.

    Python < 3.13 auto-registers attached segments with the worker's
    resource tracker, which would unlink main-process segments (and
    print warnings) when a worker exits; ``track=False`` (3.13+) or an
    explicit unregister keeps ownership with the creating process.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # noqa: BLE001 - tracker quirks must not kill work
            pass
        return shm


def _worker_entry() -> None:
    """Subprocess entry point: dial the pool's socket and serve forever.

    Workers are plain ``python -c`` subprocesses rather than
    ``multiprocessing`` children because every mp start method re-runs
    (spawn/forkserver) or unsafely clones (fork, with the serving
    layer's threads) the parent's ``__main__``; a fresh interpreter that
    just imports this module has neither problem.  The pool passes its
    listener address through ``REPRO_SHARD_ADDR``.
    """
    conn = Client(os.environ["REPRO_SHARD_ADDR"], family="AF_UNIX")
    _worker_main(conn)


def _worker_main(conn) -> None:
    """Worker loop: build row-slice engines once, serve ops over pipes."""
    from repro.poly.basis_conv import BasisConverter
    from repro.poly.batch_ntt import BatchNTT

    engines: dict = {}
    converters: dict = {}
    while True:
        try:
            msg = conn.recv()
        except _PIPE_EXC:
            return
        if msg[0] == "stop":
            conn.close()
            return
        try:
            if msg[0] == "ntt":
                _, spec, op, name, length, n, lo, hi, checked = msg
                primes, psis, _, method = spec
                key = (spec, lo, hi)
                eng = engines.get(key)
                if eng is None:
                    eng = BatchNTT(
                        list(primes[lo:hi]),
                        n,
                        method,
                        psis=list(psis[lo:hi]),
                        backend="numpy",
                    )
                    engines[key] = eng
                eng.set_checked(checked)
                shm = _attach(name)
                try:
                    rows = np.ndarray(
                        (length, n), np.uint64, buffer=shm.buf
                    )[lo:hi]
                    if op == "fwd":
                        eng.forward(rows, out=rows)
                    else:
                        eng.inverse(rows, out=rows)
                finally:
                    shm.close()
            elif msg[0] == "pw":
                _, spec, name, part_names, part_dtypes, length, n, lo, hi = msg
                primes, psis, _, method = spec
                key = (spec, lo, hi)
                eng = engines.get(key)
                if eng is None:
                    eng = BatchNTT(
                        list(primes[lo:hi]),
                        n,
                        method,
                        psis=list(psis[lo:hi]),
                        backend="numpy",
                    )
                    engines[key] = eng
                shms = [_attach(name)] + [_attach(p) for p in part_names]
                try:
                    rows = np.ndarray(
                        (length, n), np.uint64, buffer=shms[0].buf
                    )[lo:hi]
                    parts = tuple(
                        np.ndarray((length, n), np.dtype(dt), buffer=s.buf)[
                            lo:hi
                        ]
                        for s, dt in zip(shms[1:], part_dtypes)
                    )
                    rows[:] = eng.pointwise_prepared(rows, parts)
                finally:
                    for s in shms:
                        s.close()
            elif msg[0] == "conv":
                _, spec, xname, vname, oname, lo, hi = msg
                src, dst, n = spec
                key = (spec, lo, hi)
                conv = converters.get(key)
                if conv is None:
                    conv = BasisConverter(
                        list(src),
                        list(dst[lo:hi]),
                        n,
                        checked=False,
                        backend="numpy",
                    )
                    converters[key] = conv
                sx, sv, so = _attach(xname), _attach(vname), _attach(oname)
                try:
                    x_hat = np.ndarray((len(src), n), np.uint64, buffer=sx.buf)
                    v_row = np.ndarray((1, n), np.uint64, buffer=sv.buf)
                    out = np.ndarray(
                        (len(dst), n), np.uint64, buffer=so.buf
                    )[lo:hi]
                    conv._convert_core(x_hat, v_row, out)
                finally:
                    sx.close()
                    sv.close()
                    so.close()
            else:
                raise ParameterError(f"unknown shard op {msg[0]!r}")
            conn.send(("ok",))
        except Exception as exc:  # noqa: BLE001 - marshalled to the caller
            try:
                conn.send(("err", type(exc).__name__, str(exc)))
            except _PIPE_EXC:
                return


class _Pool:
    """The per-process worker pool plus its shared-memory segments."""

    def __init__(self, workers: int) -> None:
        self.procs: list[subprocess.Popen] = []
        self.conns = []
        self.segments: dict[str, shared_memory.SharedMemory] = {}
        self._gen = 0
        # Rendezvous socket in a fresh 0700 tempdir (user-only access).
        self._tmpdir = tempfile.mkdtemp(prefix="repro_shard_")
        self._listener = Listener(
            address=os.path.join(self._tmpdir, "sock"), family="AF_UNIX"
        )
        # Workers must be able to `import repro` even when the parent got
        # it via sys.path manipulation (the benchmark runner does), so
        # pin the package root into their PYTHONPATH; strip REPRO_BACKEND
        # so worker-side engines never recurse into the sharded tier.
        import repro

        root = str(Path(repro.__file__).parents[1])
        env = dict(os.environ)
        env["REPRO_SHARD_ADDR"] = self._listener.address
        env.pop("REPRO_BACKEND", None)
        pp = env.get("PYTHONPATH")
        if root not in (pp.split(os.pathsep) if pp else []):
            env["PYTHONPATH"] = root + (os.pathsep + pp if pp else "")
        try:
            # Bound the wait for workers to dial in: a worker that dies
            # at import time must fail pool construction, not hang it.
            self._listener._listener._socket.settimeout(60.0)
        except AttributeError:  # pragma: no cover - stdlib internals moved
            pass
        cmd = [
            sys.executable,
            "-c",
            "from repro.poly.backends.sharded import _worker_entry; "
            "_worker_entry()",
        ]
        try:
            for _ in range(workers):
                self.procs.append(subprocess.Popen(cmd, env=env))
            self.conns = [self._listener.accept() for _ in range(workers)]
        except Exception:
            _teardown(self)
            raise

    # -- segments ----------------------------------------------------------
    def segment(self, tag: str, nbytes: int) -> shared_memory.SharedMemory:
        """A named segment of >= ``nbytes``, grown (never shrunk) on demand."""
        shm = self.segments.get(tag)
        if shm is not None and shm.size >= nbytes:
            return shm
        if shm is not None:
            shm.close()
            shm.unlink()
        self._gen += 1
        name = f"repro_shard_{os.getpid()}_{tag}_{self._gen}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        self.segments[tag] = shm
        return shm

    # -- fan-out -----------------------------------------------------------
    def _scatter(self, tasks) -> None:
        """Send one message per (conn, payload), gather replies, map errors.

        Any pipe failure means a worker died mid-operation: the pool is
        torn down (latched — see :func:`close_pool`) and the caller gets
        :class:`ShardCrashError`; library errors raised inside a worker
        re-raise as their own types.
        """
        global _CRASHED
        live = []
        try:
            for conn, payload in tasks:
                conn.send(payload)
                live.append(conn)
            replies = [conn.recv() for conn in live]
        except _PIPE_EXC as exc:
            _CRASHED = True
            _teardown(self)
            raise ShardCrashError(
                f"sharded backend worker died mid-operation ({exc!r}); "
                "subsequent calls fall back to the numpy tier"
            ) from exc
        failure = next((r for r in replies if r[0] != "ok"), None)
        if failure is not None:
            _, name, text = failure
            exc_type = _ERROR_TYPES.get(name)
            if exc_type is not None:
                raise exc_type(text)
            raise ShardCrashError(f"sharded worker failed: {name}: {text}")

    def _ranges(self, num_rows: int):
        """Contiguous row ranges, one per participating worker."""
        k = min(len(self.conns), num_rows)
        bounds = np.linspace(0, num_rows, k + 1, dtype=int)
        return [
            (self.conns[i], int(bounds[i]), int(bounds[i + 1]))
            for i in range(k)
            if bounds[i] < bounds[i + 1]
        ]

    # -- ops ---------------------------------------------------------------
    def ntt(self, engine, op: str, a, out):
        length, n = len(engine.primes), engine.n
        a = np.asarray(a, dtype=np.uint64)
        q_col = np.array(engine.primes, dtype=np.uint64).reshape(-1, 1)
        if a.size and np.any(a >= q_col):
            raise _range_error(a, q_col)
        shm = self.segment("ntt", length * n * 8)
        buf = np.ndarray((length, n), np.uint64, buffer=shm.buf)
        np.copyto(buf, a)
        spec = (
            tuple(engine.primes), tuple(engine.psis), n, engine.method,
        )
        checked = bool(engine._kernel.checked)
        self._scatter(
            [
                (conn, ("ntt", spec, op, shm.name, length, n, lo, hi, checked))
                for conn, lo, hi in self._ranges(length)
            ]
        )
        if out is None:
            return buf.copy()
        np.copyto(out, buf, casting="unsafe")
        return out

    def pointwise(self, engine, a_hat, prepared):
        length, n = len(engine.primes), engine.n
        a_hat = np.asarray(a_hat, dtype=np.uint64)
        shm = self.segment("pw", length * n * 8)
        buf = np.ndarray((length, n), np.uint64, buffer=shm.buf)
        np.copyto(buf, a_hat)
        part_names, part_dtypes = [], []
        for i, part in enumerate(prepared):
            pseg = self.segment(f"pw_part{i}", length * n * 8)
            np.copyto(
                np.ndarray((length, n), part.dtype, buffer=pseg.buf), part
            )
            part_names.append(pseg.name)
            part_dtypes.append(part.dtype.str)
        spec = (
            tuple(engine.primes), tuple(engine.psis), n, engine.method,
        )
        self._scatter(
            [
                (
                    conn,
                    (
                        "pw", spec, shm.name, tuple(part_names),
                        tuple(part_dtypes), length, n, lo, hi,
                    ),
                )
                for conn, lo, hi in self._ranges(length)
            ]
        )
        return buf.copy()

    def convert(self, converter, x_hat, v_row, out):
        l_in, l_out, n = len(converter.src), len(converter.dst), converter.n
        sx = self.segment("conv_x", l_in * n * 8)
        sv = self.segment("conv_v", n * 8)
        so = self.segment("conv_o", l_out * n * 8)
        np.copyto(np.ndarray((l_in, n), np.uint64, buffer=sx.buf), x_hat)
        np.copyto(np.ndarray((1, n), np.uint64, buffer=sv.buf), v_row)
        spec = (tuple(converter.src), tuple(converter.dst), n)
        self._scatter(
            [
                (conn, ("conv", spec, sx.name, sv.name, so.name, lo, hi))
                for conn, lo, hi in self._ranges(l_out)
            ]
        )
        np.copyto(out, np.ndarray((l_out, n), np.uint64, buffer=so.buf))
        return out


def _teardown(pool: _Pool) -> None:
    """Stop workers, release every segment, remove the rendezvous socket."""
    global _POOL
    for conn in pool.conns:
        try:
            conn.send(("stop",))
        except _PIPE_EXC:
            pass
        try:
            conn.close()
        except OSError:
            pass
    for proc in pool.procs:
        try:
            proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=2.0)
    for shm in pool.segments.values():
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass
    pool.conns.clear()
    pool.procs.clear()
    pool.segments.clear()
    try:
        pool._listener.close()
    except OSError:  # pragma: no cover - already gone
        pass
    shutil.rmtree(pool._tmpdir, ignore_errors=True)
    if _POOL is pool:
        _POOL = None


def close_pool() -> None:
    """Deterministically release the pool and its segments (idempotent).

    After a *clean* close, the next sharded-tier call may build a fresh
    pool; after a crash (:class:`ShardCrashError`) the tier stays down
    for the life of the process and calls degrade to numpy.
    """
    pool = _POOL
    if pool is not None:
        _teardown(pool)


atexit.register(close_pool)


def get_pool() -> _Pool | None:
    """The lazily built worker pool; ``None`` when the tier is down.

    A pool that cannot even start (worker import failure, no sockets)
    latches the tier down with one :class:`BackendFallbackWarning` —
    graceful degradation, matching the compiled tier's no-toolchain path.
    """
    global _POOL, _CRASHED
    if _CRASHED:
        return None
    if _POOL is None:
        try:
            _POOL = _Pool(_num_workers())
        except Exception as exc:  # noqa: BLE001 - degrade, don't error
            _CRASHED = True
            warnings.warn(
                f"sharded backend unavailable ({exc}); "
                "falling back to the numpy reference tier",
                BackendFallbackWarning,
                stacklevel=4,
            )
            return None
    return _POOL


class ShardedNtt:
    """Sharded-tier implementation bound to one :class:`BatchNTT`."""

    def __init__(self, engine) -> None:
        self.engine = engine

    def _pool(self):
        if len(self.engine.primes) * self.engine.n < shard_min_elements():
            return None
        return get_pool()

    def forward(self, a, out=None):
        pool = self._pool()
        return None if pool is None else pool.ntt(self.engine, "fwd", a, out)

    def inverse(self, a_hat, out=None):
        pool = self._pool()
        return None if pool is None else pool.ntt(self.engine, "inv", a_hat, out)

    def pointwise_prepared(self, a_hat, prepared):
        pool = self._pool()
        if pool is None:
            return None
        return pool.pointwise(self.engine, a_hat, prepared)


class ShardedConvert:
    """Sharded-tier CRT tensor pass bound to one :class:`BasisConverter`.

    Output rows are partitioned across workers; each worker needs the
    whole ``x_hat`` (the CRT product is all-to-all over input limbs) and
    returns only its ``[lo, hi)`` rows.  Declines under checked mode so
    the main-process accumulator instrumentation stays engaged.
    """

    def __init__(self, converter) -> None:
        self.converter = converter

    def convert_core(self, x_hat, v_row, out):
        conv = self.converter
        if conv.checked:
            return None
        if len(conv.src) * conv.n < shard_min_elements():
            return None
        pool = get_pool()
        if pool is None:
            return None
        return pool.convert(conv, x_hat, v_row, out)


def make_sharded_ntt(engine):
    return ShardedNtt(engine)


def make_sharded_convert(converter):
    return ShardedConvert(converter)
