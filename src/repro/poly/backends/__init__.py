"""Backend dispatch layer: numpy / process-sharded / compiled tiers.

ROADMAP item 3: every bench cell bottoms out in the batched NTT stage
kernels and the ``(L_out, L_in, N)`` CRT tensor pass, and both are
embarrassingly parallel across limbs.  This package escalates those two
hot paths behind a *bit-exact* dispatch seam with three tiers:

``numpy``
    The existing :class:`~repro.poly.batch_ntt.BatchNTT` stage kernels
    and :class:`~repro.poly.basis_conv.BasisConverter` Shoup chains,
    unchanged — the always-available reference tier every other tier
    must bit-match.

``sharded``
    A persistent ``multiprocessing`` worker pool partitioning the
    ``(L, N)`` limb matrix by rows over ``multiprocessing.shared_memory``
    segments (:mod:`repro.poly.backends.sharded`).  Wins only when the
    machine has cores to spare and ``L*N`` is large enough to amortize
    the per-op IPC round trip; below :data:`~repro.poly.backends.sharded.
    shard_min_elements` elements a call falls through to numpy.

``compiled``
    ctypes-loaded C implementations of the four Table-3 butterfly
    stage-kernel families and the CRT tensor pass
    (:mod:`repro.poly.backends.compiled`), built lazily with ``cc -O3``
    and cached by source hash.  When no toolchain is present the tier
    degrades to numpy with a single :class:`BackendFallbackWarning` per
    process — never an error, never a per-call warning.

Tier selection follows the same precedence discipline as ``checked``
(:func:`repro.analysis.sanitizer.checked_mode`): an explicit
constructor argument wins, else the ``REPRO_BACKEND`` environment
variable, else ``numpy``.  Dispatch is *transparent*:
``RnsPolynomial`` / ``BasisConverter`` / ``KeySwitcher`` /
``CircuitPlan`` never branch on tier, and the sanitizer
(``REPRO_CHECKED=1``) plus the PR 7 certified stage bounds apply
identically to every tier (the compiled kernels re-check the per-stage
invariant in C and surface violations as
:class:`~repro.errors.SanitizerError`; sharded workers run the numpy
kernels, checks included, in-process).

Bit-exactness is the acceptance bar, not an aspiration: every tier's
NTT outputs are *canonical exact* transforms over the same bit-reversed
twiddle tables and the converter outputs are the exact CRT residues
``X mod p_j``, so equality with the numpy tier is guaranteed by
construction and asserted — across the full parity grid — in
``tests/test_backends.py`` and before every timed bench cell.
"""

from __future__ import annotations

import os

from repro.errors import ParameterError

__all__ = [
    "BACKEND_TIERS",
    "BackendFallbackWarning",
    "close_backends",
    "make_convert_impl",
    "make_ntt_impl",
    "resolve_backend",
]

#: the three dispatch tiers, reference tier first
BACKEND_TIERS = ("numpy", "sharded", "compiled")


class BackendFallbackWarning(RuntimeWarning):
    """A requested backend tier degraded to the numpy reference tier.

    Emitted at most once per process per cause (e.g. ``compiled``
    requested with no C toolchain on PATH) — degraded dispatch is loud
    exactly once, then silent, so a hot loop is never spammed.
    """


def resolve_backend(override: str | None = None) -> str:
    """Resolve the backend tier with the ``checked_mode`` precedence.

    An explicit ``override`` (constructor argument) wins; otherwise the
    ``REPRO_BACKEND`` environment variable; otherwise ``"numpy"``.  An
    unknown tier name raises :class:`~repro.errors.ParameterError`
    loudly rather than silently running the reference tier.
    """
    if override is None:
        name = os.environ.get("REPRO_BACKEND", "").strip().lower() or "numpy"
    else:
        name = str(override).strip().lower()
    if name not in BACKEND_TIERS:
        raise ParameterError(
            f"unknown backend tier {name!r}; expected one of "
            f"{', '.join(BACKEND_TIERS)}"
        )
    return name


def make_ntt_impl(engine, tier: str):
    """Build the tier implementation for one ``BatchNTT``, or ``None``.

    ``None`` means "use the numpy kernels" — either because the numpy
    tier was selected or because the requested tier is unavailable
    (which will already have warned once).  The returned impl object
    exposes ``forward(a, out)`` / ``inverse(a_hat, out)`` /
    ``pointwise_prepared(a_hat, prepared)``, each returning the result
    array or ``None`` to fall through to the numpy kernels per call.
    """
    if tier == "compiled":
        from repro.poly.backends.compiled import make_compiled_ntt

        return make_compiled_ntt(engine)
    if tier == "sharded":
        from repro.poly.backends.sharded import make_sharded_ntt

        return make_sharded_ntt(engine)
    return None


def make_convert_impl(converter, tier: str):
    """Tier implementation for one ``BasisConverter``, or ``None``.

    The impl exposes ``convert_core(x_hat, v_row, out)`` with the same
    fall-through contract as :func:`make_ntt_impl`: the scale step and
    the exact v-correction term always run in the main process (the
    v guard needs Python big ints), and the tier takes over the
    ``(L_out, L_in, N)`` tensor pass + fold.
    """
    if tier == "compiled":
        from repro.poly.backends.compiled import make_compiled_convert

        return make_compiled_convert(converter)
    if tier == "sharded":
        from repro.poly.backends.sharded import make_sharded_convert

        return make_sharded_convert(converter)
    return None


def close_backends() -> None:
    """Release every backend-held OS resource (worker pool, segments).

    Idempotent; also wired to ``atexit`` by the sharded tier itself, so
    calling it is only needed for deterministic mid-process teardown
    (tests assert zero shared-memory residue right after this).
    """
    import sys

    sharded = sys.modules.get("repro.poly.backends.sharded")
    if sharded is not None:
        sharded.close_pool()
