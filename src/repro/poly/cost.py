"""Instruction-count pricing for polynomial kernels (Table 3, §4).

The paper prices every kernel in equivalent int32 instructions, because the
GPU's 32-bit integer datapath is the scarce resource CKKS arithmetic fights
over.  This module rolls the per-modmul costs of
:data:`repro.rns.reduction.REDUCTION_COSTS` up into per-operation counts for
the polynomial layer: one NTT butterfly is one modular multiply plus two
modular additions, an N-point NTT is ``(N/2) * log2(N)`` butterflies, and so
on up through full RNS polynomial multiply and rescale.

The counts are *nominal* arithmetic instruction counts — memory traffic and
the per-constant precomputation Shoup needs (its ``extra_consts = -1``
sentinel in Table 3) are tracked separately as ``twiddle_consts`` so the
memory-bound analysis of later PRs can price them differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.rns.primes import digit_ranges
from repro.rns.reduction import REDUCTION_COSTS

#: int32 instructions per modular addition: one 32-bit add, then a
#: compare-and-conditional-subtract (set-predicate + subtract-with-select
#: fuse to one instruction on the modeled datapath).
MODADD_INSTRS = 2

#: int32 instructions per *raw* 64-bit operation (a mulwide or a 64-bit
#: add with no reduction attached): two, through the 32-bit datapath.
#: §4.2's lazy accumulation trades modmuls/modadds for these.
RAW64_INSTRS = 2


@dataclass(frozen=True)
class OpCost:
    """Arithmetic cost of one polynomial-layer operation.

    Attributes:
        name: operation label (e.g. ``"ntt"``, ``"rescale"``).
        method: reduction method pricing the modmuls.
        modmuls: modular multiplications performed.
        modadds: modular additions/subtractions performed.
        twiddle_consts: precomputed per-prime table entries the op reads
            (twiddles, Shoup companions, inverse factors).
        raw_muls64: unreduced 64-bit multiplies (deferred-reduction §4.2
            accumulation); priced at :data:`RAW64_INSTRS` each.
        raw_adds64: unreduced 64-bit adds (deferred folds); same pricing.
    """

    name: str
    method: str
    modmuls: int
    modadds: int
    twiddle_consts: int = 0
    raw_muls64: int = 0
    raw_adds64: int = 0
    #: pre-priced int32 instructions from sub-kernels running under a
    #: *different* reduction method than ``method`` — the basis-conversion
    #: layer always executes Shoup chains, so a composite like key
    #: switching under an SMR NTT backend carries its conversion cost
    #: here, already multiplied out.
    extra_int32: int = 0

    @property
    def int32_instrs(self) -> int:
        """Total equivalent int32 instructions (Table 3 pricing)."""
        per_mul = REDUCTION_COSTS[self.method].total_instrs
        return (
            self.modmuls * per_mul
            + self.modadds * MODADD_INSTRS
            + (self.raw_muls64 + self.raw_adds64) * RAW64_INSTRS
            + self.extra_int32
        )

    def scaled(self, factor: int, name: str | None = None) -> OpCost:
        return OpCost(
            name or self.name,
            self.method,
            self.modmuls * factor,
            self.modadds * factor,
            self.twiddle_consts * factor,
            self.raw_muls64 * factor,
            self.raw_adds64 * factor,
            self.extra_int32 * factor,
        )


def _merge(a: OpCost, b: OpCost) -> OpCost:
    """Field-wise sum of two same-method costs, keeping ``a``'s name."""
    if a.method != b.method:
        raise ParameterError(
            f"cannot merge {a.method!r} and {b.method!r} costs field-wise"
        )
    return OpCost(
        a.name,
        a.method,
        a.modmuls + b.modmuls,
        a.modadds + b.modadds,
        a.twiddle_consts + b.twiddle_consts,
        a.raw_muls64 + b.raw_muls64,
        a.raw_adds64 + b.raw_adds64,
        a.extra_int32 + b.extra_int32,
    )


class CostModel:
    """Table-3-style instruction counts for one (N, num_limbs, method).

    Each method returns an :class:`OpCost`; :meth:`table` renders the whole
    operation set the way Table 3 renders reducers — one row per op with
    its modmul/modadd/int32 totals.
    """

    def __init__(self, ring_degree: int, num_limbs: int, method: str) -> None:
        if method not in REDUCTION_COSTS:
            raise ParameterError(f"unknown reduction method {method!r}")
        if ring_degree < 2 or ring_degree & (ring_degree - 1):
            raise ParameterError(
                f"ring degree {ring_degree} is not a power of two"
            )
        self.n = ring_degree
        self.log_n = ring_degree.bit_length() - 1
        self.num_limbs = num_limbs
        self.method = method

    # -- single-limb building blocks ---------------------------------------
    @property
    def butterflies_per_ntt(self) -> int:
        return (self.n // 2) * self.log_n

    def ntt(self) -> OpCost:
        """One forward NTT on one limb: (N/2)·log2(N) butterflies.

        Each butterfly spends one twiddle modmul and two modadds; the
        twiddle table holds N entries (2N for Shoup with companions).
        """
        shoup = 2 if self.method == "shoup" else 1
        return OpCost(
            "ntt",
            self.method,
            modmuls=self.butterflies_per_ntt,
            modadds=2 * self.butterflies_per_ntt,
            twiddle_consts=self.n * shoup,
        )

    def intt(self) -> OpCost:
        """Inverse NTT: forward's butterflies plus the N-point n^-1 scale.

        The n^-1 factor is one more stored constant — two under Shoup,
        which precomputes a companion for it just like any other twiddle.
        """
        base = self.ntt()
        shoup = 2 if self.method == "shoup" else 1
        return OpCost(
            "intt",
            self.method,
            modmuls=base.modmuls + self.n,
            modadds=base.modadds,
            twiddle_consts=base.twiddle_consts + shoup,
        )

    def pointwise(self) -> OpCost:
        """N element-wise modmuls on one limb.

        Shoup pays an on-the-fly companion precompute per element (charged
        as one extra modmul-equivalent each) because pointwise operands are
        data, not constants — Table 3's "many constants" drawback.
        """
        shoup_extra = self.n if self.method == "shoup" else 0
        return OpCost(
            "pointwise", self.method, modmuls=self.n + shoup_extra, modadds=0
        )

    # -- full RNS operations -----------------------------------------------
    def add(self) -> OpCost:
        return OpCost(
            "add", self.method, modmuls=0, modadds=self.n * self.num_limbs
        )

    def poly_multiply(self) -> OpCost:
        """Full RNS negacyclic multiply: per limb, 2 NTT + pointwise + iNTT.

        Each limb prime carries its own twiddle tables, so the constant
        traffic scales with limbs exactly like the arithmetic does.
        """
        fwd, pw, inv = self.ntt(), self.pointwise(), self.intt()
        return OpCost(
            "poly_multiply",
            self.method,
            modmuls=(2 * fwd.modmuls + pw.modmuls + inv.modmuls)
            * self.num_limbs,
            modadds=(2 * fwd.modadds + pw.modadds + inv.modadds)
            * self.num_limbs,
            twiddle_consts=(fwd.twiddle_consts + inv.twiddle_consts)
            * self.num_limbs,
        )

    def multiply_accumulate(
        self, terms: int, *, strategy: str = "reduced"
    ) -> OpCost:
        """Fused inner product of ``terms`` NTT-domain pairs (§4.2).

        The key-switching shape: ``N * num_limbs`` lanes, each summing
        ``terms`` modular products.  ``reduced`` pays one modmul per term
        but defers every fold — partial sums ride as raw 64-bit adds, and
        one terminal fold per lane (priced as one modmul-equivalent short
        Barrett chain) replaces the per-term modadd a naive
        multiply-then-add chain would pay.  ``raw`` (SMR only) defers the
        reductions too: each term is a bare 64-bit multiply and add, and a
        single Alg. 2 reduce per lane folds the whole sum.
        """
        if terms < 1:
            raise ParameterError(
                f"multiply_accumulate needs at least one term, got {terms}"
            )
        lanes = self.n * self.num_limbs
        if strategy == "raw":
            if self.method != "smr":
                raise ParameterError(
                    "raw accumulation needs SMR (§4.2): only Alg. 2 "
                    "tolerates unreduced 64-bit partial sums at its input"
                )
            return OpCost(
                "multiply_accumulate",
                self.method,
                modmuls=lanes,  # the one deferred reduce + fold per lane
                modadds=0,
                raw_muls64=terms * lanes,
                raw_adds64=terms * lanes,
            )
        if strategy != "reduced":
            raise ParameterError(f"unknown lazy strategy {strategy!r}")
        return OpCost(
            "multiply_accumulate",
            self.method,
            modmuls=(terms + 1) * lanes,  # products + terminal fold per lane
            modadds=0,
            raw_adds64=terms * lanes,
        )

    # -- basis conversion / key switching (§4.3) ---------------------------
    def basis_convert(self, l_in: int, l_out: int) -> OpCost:
        """Fast basis extension of ``l_in`` source onto ``l_out`` target limbs.

        Always priced under Shoup (``method="shoup"``): the production
        :class:`~repro.poly.basis_conv.BasisConverter` runs canonical
        uint64 Shoup chains whatever NTT backend the context uses.  Per
        coefficient: ``l_in`` scale modmuls, the ``l_out × l_in`` CRT
        matrix modmuls with their folds deferred as raw 64-bit adds, one
        v-correction modmul + add per output limb, and one terminal fold
        per output lane (priced as one modmul-equivalent short Barrett
        chain, the :meth:`multiply_accumulate` convention).  The float64
        v-term itself runs on the FP datapath and is free in this int32
        model.
        """
        if l_in < 1 or l_out < 1:
            raise ParameterError(
                f"basis_convert needs l_in, l_out >= 1, got {l_in}, {l_out}"
            )
        n = self.n
        return OpCost(
            "basis_convert",
            "shoup",
            modmuls=n * (l_in + l_in * l_out + l_out + l_out),
            modadds=0,
            twiddle_consts=2 * l_in + 2 * l_in * l_out + 2 * l_out,
            raw_adds64=n * (l_in * l_out + l_out),
        )

    def mod_up(self, num_aux: int, *, dnum: int = 1) -> OpCost:
        """ModUp: every digit extended onto the ``L + num_aux`` basis.

        Digit ``d`` (``s_d`` limbs) converts onto the ``L + K - s_d``
        complement rows; the digit rows themselves are copies (free in
        the arithmetic model).  Priced under Shoup like
        :meth:`basis_convert`.
        """
        ext = self.num_limbs + num_aux
        total = OpCost("mod_up", "shoup", 0, 0)
        # The same partition the executor uses (one source of truth).
        for lo, hi in digit_ranges(self.num_limbs, dnum):
            total = _merge(total, self.basis_convert(hi - lo, ext - (hi - lo)))
        return total

    def mod_down(self, num_aux: int) -> OpCost:
        """ModDown of an ``L + num_aux``-limb element back onto ``L``.

        One ``num_aux -> L`` conversion plus, per surviving lane, one
        fold-subtract and one ``P^-1`` Shoup modmul.
        """
        if num_aux < 1:
            raise ParameterError(f"mod_down needs num_aux >= 1, got {num_aux}")
        conv = self.basis_convert(num_aux, self.num_limbs)
        lanes = self.n * self.num_limbs
        return OpCost(
            "mod_down",
            "shoup",
            modmuls=conv.modmuls + lanes,
            modadds=conv.modadds + lanes,
            twiddle_consts=conv.twiddle_consts + 2 * self.num_limbs,
            raw_adds64=conv.raw_adds64,
        )

    def key_switch(
        self, num_aux: int, *, dnum: int = 1, output_domain: str = "coeff"
    ) -> OpCost:
        """The fused hybrid key switch (§4.2/§4.3), both halves.

        Method-priced parts (the context's NTT backend): ``dnum``
        forward NTTs over the extended basis, the two-half MAC through
        the lazy accumulator, and the output transforms — full extended
        inverses for a coefficient output, or only the ``num_aux``
        auxiliary-row inverses plus ``L``-row forwards of the converted
        tails for an NTT output (the planner's whole point).  The
        conversion sub-kernels (ModUp / ModDown) always run Shoup chains
        and ride along pre-priced in ``extra_int32``.
        """
        if output_domain not in ("coeff", "ntt"):
            raise ParameterError(f"unknown output domain {output_domain!r}")
        ext = self.num_limbs + num_aux
        fwd = self.ntt()
        inv = self.intt()
        lanes = self.n * ext
        # dnum extended-basis forward transforms.
        modmuls = dnum * ext * fwd.modmuls
        modadds = dnum * ext * fwd.modadds
        consts = ext * (fwd.twiddle_consts + inv.twiddle_consts)
        # MAC: per half, one modmul per term per lane, deferred folds as
        # raw 64-bit adds, one terminal fold per lane.
        modmuls += 2 * (dnum + 1) * lanes
        raw_adds = 2 * dnum * lanes
        if output_domain == "coeff":
            modmuls += 2 * ext * inv.modmuls
            modadds += 2 * ext * inv.modadds
        else:
            modmuls += 2 * (num_aux * inv.modmuls
                            + self.num_limbs * fwd.modmuls)
            modadds += 2 * (num_aux * inv.modadds
                            + self.num_limbs * fwd.modadds)
        conversions = [self.mod_down(num_aux), self.mod_down(num_aux)]
        conversions.append(self.mod_up(num_aux, dnum=dnum))
        # mod_down was counted twice (one per half); mod_up covers all
        # digits already.
        extra = sum(c.int32_instrs for c in conversions)
        consts += sum(c.twiddle_consts for c in conversions[1:])
        return OpCost(
            "key_switch",
            self.method,
            modmuls=modmuls,
            modadds=modadds,
            twiddle_consts=consts,
            raw_adds64=raw_adds,
            extra_int32=extra,
        )

    def automorphism(self, domain: str = "coeff") -> OpCost:
        """Galois ``sigma_k`` on all limbs: cached index-permutation passes.

        The coefficient-domain action pays one conditional negation per
        lane for the wrapped columns (priced as a modadd); the
        NTT-domain action is a *pure* slot permutation — zero arithmetic
        on the int32 datapath (only memory traffic, which this model
        does not price).  Either way there are no modmuls and no table
        constants: the per-``(N, k)`` index tables are integer metadata,
        not modular constants.
        """
        if domain not in ("coeff", "ntt"):
            raise ParameterError(f"unknown domain {domain!r}")
        modadds = self.n * self.num_limbs if domain == "coeff" else 0
        return OpCost("automorphism", self.method, modmuls=0, modadds=modadds)

    def rescale(self) -> OpCost:
        """Exact rescale: per surviving limb, N subtracts and N modmuls."""
        limbs = self.num_limbs - 1
        if limbs < 1:
            raise ParameterError("rescale needs at least two limbs")
        return OpCost(
            "rescale",
            self.method,
            modmuls=self.n * limbs,
            modadds=self.n * limbs,
            twiddle_consts=limbs,  # q_last^-1 mod q_i per limb
        )

    # -- reporting ---------------------------------------------------------
    def operations(self) -> list[OpCost]:
        """Representative op set for :meth:`table` (one aux limb, one
        digit for the key-switching rows)."""
        return [
            self.ntt(),
            self.intt(),
            self.pointwise(),
            self.add(),
            self.poly_multiply(),
            self.multiply_accumulate(2),
            self.rescale(),
            self.basis_convert(self.num_limbs, self.num_limbs),
            self.mod_up(1),
            self.mod_down(1),
            self.key_switch(1),
        ]

    def table(self) -> str:
        """Render per-operation instruction counts, Table-3 style."""
        header = (
            f"N={self.n}, limbs={self.num_limbs}, method={self.method} "
            f"(modmul = {REDUCTION_COSTS[self.method].total_instrs} int32 "
            f"instrs, range {REDUCTION_COSTS[self.method].output_range})"
        )
        rows = [header, f"{'op':<20}{'modmul':>10}{'modadd':>10}"
                f"{'raw64':>10}{'consts':>8}{'int32':>12}"]
        for op in self.operations():
            rows.append(
                f"{op.name:<20}{op.modmuls:>10}{op.modadds:>10}"
                f"{op.raw_muls64 + op.raw_adds64:>10}"
                f"{op.twiddle_consts:>8}{op.int32_instrs:>12}"
            )
        return "\n".join(rows)


def compare_methods(ring_degree: int, num_limbs: int) -> dict[str, int]:
    """int32 instructions for a full RNS multiply under each Table-3 method."""
    return {
        method: CostModel(ring_degree, num_limbs, method)
        .poly_multiply()
        .int32_instrs
        for method in REDUCTION_COSTS
    }
