"""Process-wide kernel event hooks (fault injection / instrumentation).

The polynomial and circuit layers emit a named event at the entry of
their hot kernels — ``batch_ntt.forward`` / ``batch_ntt.inverse``,
``rns_poly.mac`` / ``rns_poly.rescale``, and ``circuit.step`` (payload:
the step's trace-node label).  With no handler installed, :func:`emit`
is one attribute load and a ``None`` check — nothing on the hot path
changes.  With a handler installed, every event is forwarded to it; the
handler may observe (instrumentation), stall (sleep), or raise (fault
injection) — whatever it raises propagates out of the kernel exactly as
a real failure would.

The registry is deliberately process-global and single-slot: the one
production consumer is the serving layer's deterministic fault injector
(:mod:`repro.serving.faults`), which arms a handler around a single
batch execution at a time and uninstalls it on exit.  Handlers run on
whatever thread executes the kernel, so they must be thread-safe.
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["emit", "install", "installed", "uninstall"]

#: the single installed handler, or None (the common case)
_handler: Callable[[str, object], None] | None = None


def install(handler: Callable[[str, object], None]) -> None:
    """Install ``handler`` as the process-wide event hook.

    Replaces any previously installed handler (last writer wins; the
    fault injector serializes arm windows itself).
    """
    global _handler
    _handler = handler


def uninstall() -> None:
    """Remove the installed handler, restoring zero-cost emits."""
    global _handler
    _handler = None


def installed() -> bool:
    """Whether a handler is currently installed."""
    return _handler is not None


def emit(site: str, payload: object = None) -> None:
    """Emit one kernel event; a no-op unless a handler is installed."""
    h = _handler
    if h is not None:
        h(site, payload)
