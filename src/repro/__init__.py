"""Bit-faithful reproduction of the paper's RNS-CKKS arithmetic stack.

Subpackages: :mod:`repro.rns` (primes, reducers, rescaling cycles) and
:mod:`repro.poly` (negacyclic NTT, RNS polynomials, lazy reduction, cost
model).  See README.md for the architecture map.
"""

from repro.errors import CheddarError

__all__ = ["CheddarError"]
__version__ = "0.1.0"
