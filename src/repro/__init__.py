"""Bit-faithful reproduction of the paper's RNS-CKKS arithmetic stack.

Subpackages: :mod:`repro.rns` (primes, reducers, rescaling cycles),
:mod:`repro.poly` (negacyclic NTT, RNS polynomials, lazy reduction, cost
model) and :mod:`repro.scheme` (RLWE keys, ciphertexts, the homomorphic
evaluator and its composite cost model).  See README.md for the
architecture map.
"""

from repro.errors import CheddarError

__all__ = ["CheddarError"]
__version__ = "0.1.0"
