"""Bit-faithful reproduction of the paper's RNS-CKKS arithmetic stack.

Subpackages: :mod:`repro.rns` (primes, reducers, rescaling cycles),
:mod:`repro.poly` (negacyclic NTT, RNS polynomials, lazy reduction, cost
model), :mod:`repro.scheme` (RLWE keys, ciphertexts, the homomorphic
evaluator and its composite cost model), :mod:`repro.analysis` (the
static overflow / noise-budget analyzer and sanitizer-checked
execution), :mod:`repro.serving` (the fault-tolerant multi-tenant
batch-serving layer) and :mod:`repro.ml` (encrypted ML inference end to
end).  See README.md for the architecture map.

The stable public surface is this ``__all__``: build a
:class:`CkksContext` and go through it (``cc.encrypt`` / ``cc.matvec`` /
``cc.poly_eval`` / ``cc.compile`` / ``cc.model``); serve compiled plans
with :class:`CkksServer`; check plans with :func:`check_plan`.
Everything underscore-prefixed — and the old top-level homes of
``SlotLinalg`` / ``CircuitTracer`` / ``KeySwitcher`` — is internal
(the old names still import, with a deprecation warning naming the
replacement, for one release).
"""

from repro.errors import CheddarError, ModelPlanError
from repro.plan import Plan

__all__ = [
    "CheddarError",
    "CkksContext",
    "CkksServer",
    "FaultInjector",
    "ModelPlanError",
    "Plan",
    "ServingConfig",
    "certify_kernels",
    "check_plan",
    "checked_mode",
    "ml",
]
__version__ = "0.1.0"

#: analyzer entry points re-exported lazily (numpy-heavy, cycle-prone)
_ANALYSIS = {"certify_kernels", "check_plan", "checked_mode"}

#: serving entry points, equally lazy (asyncio + the whole scheme stack)
_SERVING = {"CkksServer", "FaultInjector", "ServingConfig"}


def __getattr__(name):
    # CkksContext pulls in numpy and the whole scheme stack; load it on
    # first touch so `import repro` stays import-cycle-free and cheap.
    if name == "CkksContext":
        from repro.context import CkksContext

        return CkksContext
    if name == "ml":
        import repro.ml as ml

        return ml
    if name in _ANALYSIS:
        import repro.analysis as analysis

        return getattr(analysis, name)
    if name in _SERVING:
        import repro.serving as serving

        return getattr(serving, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
