"""Bit-faithful reproduction of the paper's RNS-CKKS arithmetic stack.

Subpackages: :mod:`repro.rns` (primes, reducers, rescaling cycles),
:mod:`repro.poly` (negacyclic NTT, RNS polynomials, lazy reduction, cost
model), :mod:`repro.scheme` (RLWE keys, ciphertexts, the homomorphic
evaluator and its composite cost model) and :mod:`repro.analysis` (the
static overflow / noise-budget analyzer and sanitizer-checked
execution).  See README.md for the architecture map.
"""

from repro.errors import CheddarError
from repro.plan import Plan

__all__ = [
    "CheddarError",
    "CkksContext",
    "Plan",
    "certify_kernels",
    "check_plan",
    "checked_mode",
]
__version__ = "0.1.0"

#: analyzer entry points re-exported lazily (numpy-heavy, cycle-prone)
_ANALYSIS = {"certify_kernels", "check_plan", "checked_mode"}


def __getattr__(name):
    # CkksContext pulls in numpy and the whole scheme stack; load it on
    # first touch so `import repro` stays import-cycle-free and cheap.
    if name == "CkksContext":
        from repro.context import CkksContext

        return CkksContext
    if name in _ANALYSIS:
        import repro.analysis as analysis

        return getattr(analysis, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
