"""Bundled real dataset for the encrypted-inference end-to-end tests.

Fisher's iris measurements (150 samples, 4 features, 3 species) ship
with the package as ``data/iris.csv`` so the e2e agreement tests touch
no network: :func:`load_iris` reads the file, :func:`load_iris_split`
adds the deterministic shuffled train/test split and per-feature
standardization (train statistics only — the test split sees the train
split's mean/std, never its own).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ParameterError

_IRIS_CSV = Path(__file__).resolve().parent / "data" / "iris.csv"

#: feature columns, in csv order
FEATURE_NAMES = (
    "sepal_length", "sepal_width", "petal_length", "petal_width",
)

#: species encoding used in the csv's last column
SPECIES = ("setosa", "versicolor", "virginica")


def load_iris() -> tuple[np.ndarray, np.ndarray]:
    """The raw bundled dataset: ``(X, y)`` with shapes (150, 4), (150,)."""
    raw = np.genfromtxt(_IRIS_CSV, delimiter=",", skip_header=1)
    if raw.ndim != 2 or raw.shape[1] != 5 or np.isnan(raw).any():
        raise ParameterError(
            f"bundled iris data at {_IRIS_CSV} is malformed "
            f"(shape {raw.shape})"
        )
    return raw[:, :4], raw[:, 4].astype(np.int64)


@dataclass(frozen=True)
class IrisSplit:
    """A standardized train/test split of the bundled iris data."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    mean: np.ndarray    #: per-feature train mean (standardization origin)
    std: np.ndarray     #: per-feature train std (standardization unit)

    @property
    def dim(self) -> int:
        return self.x_train.shape[1]


def load_iris_split(*, seed: int = 0, test_fraction: float = 1 / 3) -> IrisSplit:
    """Deterministic shuffled split, standardized by train statistics."""
    if not 0.0 < test_fraction < 1.0:
        raise ParameterError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    features, labels = load_iris()
    rng = np.random.default_rng(seed)
    perm = rng.permutation(labels.size)
    n_test = round(labels.size * test_fraction)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    mean = features[train_idx].mean(axis=0)
    std = features[train_idx].std(axis=0)
    scaled = (features - mean) / std
    return IrisSplit(
        x_train=scaled[train_idx],
        y_train=labels[train_idx],
        x_test=scaled[test_idx],
        y_test=labels[test_idx],
        mean=mean,
        std=std,
    )
