"""Noise-budget-aware level planner: automatic rescale placement.

The model layer never calls ``rescale`` by hand.  Each model layer is
traced inside a :meth:`LevelPlanner.layer` span; after every scale-
raising composition the planner's :meth:`~LevelPlanner.normalize` drops
levels until the working scale returns to the declared ``2**scale_bits``
— simulating the drops against the *actual* prime chain, not a nominal
bit count — and refuses statically (raising
:class:`~repro.errors.ModelPlanError`, which names the layer and the
failing budget, per the ``PolyContext.mismatch_reason`` convention) when
a layer needs more levels than remain.

Deployability is checked twice more, both before any ciphertext exists:

* at construction, the declared scale must admit a
  :class:`~repro.rns.cycle.RescalingCycle` whose every move swaps only
  main primes — the prefix limb layout rescales by dropping the highest
  main limb, so a cycle that needs terminal-prime swaps is undeployable
  on this representation, and the planner says so by name;
* at :meth:`finish`, the compiled plan runs PR 7's
  :func:`~repro.analysis.check_plan`; any error diagnostic is mapped
  back to the model layer that traced the offending node (step labels
  carry ``n<id>:<op>`` trace provenance) and raised as a layer-named
  :class:`~repro.errors.ModelPlanError`.
"""

from __future__ import annotations

import math
import re
from contextlib import contextmanager

from repro.errors import (
    KeyError_,
    LevelError,
    ModelPlanError,
    ParameterError,
)
from repro.rns.cycle import RescalingCycle, find_rescaling_cycle
from repro.scheme._linalg import bsgs_split

#: extra bits poly_eval reserves above the stacked scale (kept in sync
#: with SlotLinalg._check_scale_budget's headroom)
_POLY_HEADROOM_BITS = 8

_NODE_RE = re.compile(r"\bn(\d+):")


class LevelPlanner:
    """Places every rescale of a traced model; rejects what cannot fit.

    Args:
        tracer: the :class:`~repro.scheme._circuit.CircuitTracer` the
            model is being recorded on.
        scale_bits: the model's working scale is ``2**scale_bits``;
            every :meth:`normalize` returns the ciphertext scale to
            (approximately) this value.
        main_bits / terminal_bits: the prime system's nominal sizes,
            used to vet the rescaling cycle and to budget level counts.
    """

    def __init__(
        self,
        tracer,
        *,
        scale_bits: int,
        main_bits: int = 30,
        terminal_bits: int = 25,
    ) -> None:
        self.tracer = tracer
        self.scale_bits = int(scale_bits)
        self.main_bits = int(main_bits)
        self.terminal_bits = int(terminal_bits)
        self.cycle = self._vet_cycle()
        #: rescales placed so far (all of them: the model path places none)
        self.placed_rescales = 0
        self._layers: list[tuple[str, int, int]] = []
        self._current: str | None = None

    # -- static deployability ----------------------------------------------
    def _vet_cycle(self) -> RescalingCycle:
        try:
            cycle = find_rescaling_cycle(
                self.scale_bits,
                main_bits=self.main_bits,
                terminal_bits=self.terminal_bits,
            )
        except ParameterError as exc:
            raise ModelPlanError(
                f"scale 2^{self.scale_bits} is undeployable: no rescaling "
                f"cycle exists for {self.main_bits}/{self.terminal_bits}-bit "
                f"primes ({exc})"
            ) from exc
        swaps = [m for m in cycle.moves if m.terminal_delta != 0]
        if swaps:
            raise ModelPlanError(
                f"scale 2^{self.scale_bits} is undeployable on the prefix "
                f"limb layout: its rescaling cycle needs terminal-prime "
                f"swaps ({swaps[0].terminal_delta:+d} terminals in one "
                f"move) but rescaling here only drops the highest main "
                f"limb; use a scale with a mains-only cycle (e.g. "
                f"2^{self.main_bits})"
            )
        return cycle

    # -- layer spans ---------------------------------------------------------
    @contextmanager
    def layer(self, name: str):
        """Record ``name`` as the owner of every node traced inside.

        Scheme-layer rejections raised while tracing (key level too low
        for the digit count, scale budget exceeded, level exhausted) are
        re-raised as :class:`ModelPlanError` naming the layer.
        """
        if self._current is not None:
            raise ModelPlanError(
                f"layer {name!r} opened inside layer {self._current!r}: "
                "layer spans cannot nest"
            )
        start = len(self.tracer.nodes)
        self._current = name
        try:
            yield
        except ModelPlanError:
            raise
        except (ParameterError, LevelError, KeyError_) as exc:
            raise ModelPlanError(
                f"layer {name!r} cannot be deployed on these parameters: "
                f"{exc}",
                layer=name,
            ) from exc
        finally:
            self._layers.append((name, start, len(self.tracer.nodes)))
            self._current = None

    def _layer_of(self, node_id: int) -> str | None:
        for name, start, end in self._layers:
            if start <= node_id < end:
                return name
        return None

    def _where(self) -> str:
        return self._current if self._current is not None else "model"

    # -- rescale placement ---------------------------------------------------
    def normalize(self, ct):
        """Rescale ``ct`` back down to the working scale, or refuse.

        Simulates the drops against the live prime chain (each rescale
        divides by the actual highest main prime), counts how many the
        stacked scale needs, and raises a layer-named
        :class:`ModelPlanError` if the chain is too short — *before*
        recording any rescale node.
        """
        target = self.scale_bits + self.main_bits / 2
        available = ct.level - 1
        needed = 0
        sim_scale, sim_ctx = ct.scale, ct.ctx
        while math.log2(sim_scale) > target:
            needed += 1
            if needed <= available:
                sim_scale /= sim_ctx.primes[-1]
                sim_ctx = sim_ctx.drop_last()
            else:  # keep counting at nominal size for the error message
                sim_scale /= 2.0 ** self.main_bits
        if needed > available:
            raise ModelPlanError(
                f"layer {self._where()!r}: returning scale "
                f"2^{math.log2(ct.scale):.1f} to 2^{self.scale_bits} needs "
                f"{needed} rescale levels but only {available} remain "
                f"below level {ct.level}; shallower activation, larger "
                "modulus chain, or smaller scale",
                layer=self._where(),
            )
        for _ in range(needed):
            ct = self.tracer.rescale(ct)
        self.placed_rescales += needed
        return ct

    def require_budget(self, ct, coeffs) -> None:
        """Pre-check a ``poly_eval`` scale stack at ``ct``'s level.

        Mirrors ``SlotLinalg._check_scale_budget`` but raises the
        layer-named :class:`ModelPlanError` so an undeployable
        activation is rejected with model context, statically.
        """
        coeffs = [float(c) for c in coeffs]
        while coeffs and coeffs[-1] == 0.0:
            coeffs.pop()
        if len(coeffs) < 2:
            return
        bs, gs = bsgs_split(len(coeffs))
        stack = bs * gs
        need = stack * math.log2(ct.scale) + math.log2(
            max(1.0, sum(abs(c) for c in coeffs))
        )
        have = math.log2(ct.ctx.modulus) - 1
        if need + _POLY_HEADROOM_BITS > have:
            raise ModelPlanError(
                f"layer {self._where()!r}: degree-{len(coeffs) - 1} "
                f"activation stacks ~{need:.0f}+{_POLY_HEADROOM_BITS} "
                f"scale bits but log2(Q/2) at level {ct.level} is only "
                f"{have:.0f}; lower the activation degree or enter the "
                "layer at a higher level",
                layer=self._where(),
            )

    # -- compilation ---------------------------------------------------------
    def finish(self, outputs):
        """Compile the trace and statically check the plan.

        Returns ``(plan, report)`` on success.  Any error diagnostic
        from :func:`~repro.analysis.check_plan` is mapped back to the
        model layer that traced the offending node and raised as a
        layer-named :class:`ModelPlanError`.
        """
        plan = self.tracer.compile(outputs)
        report = plan.analyze()
        if report.errors:
            parts = []
            first_layer = None
            for diag in report.errors:
                layer = None
                m = _NODE_RE.search(diag.where)
                if m is not None:
                    layer = self._layer_of(int(m.group(1)))
                if first_layer is None and layer is not None:
                    first_layer = layer
                parts.append(f"layer {layer or '?'}: {diag}")
            raise ModelPlanError(
                "compiled model fails the static plan check: "
                + "; ".join(parts),
                layer=first_layer,
            )
        return plan, report
