"""End-to-end encrypted inference: agreement gate + depth-sweep artifact.

:func:`run_e2e` trains the two bundled models (binary logistic
regression on *virginica vs rest*, and a 3-class one-hidden-layer MLP)
on the bundled iris split, compiles each at a sweep of activation
degrees — each degree changes the ``poly_eval`` scale stack and hence
the number of levels the planner must place — and evaluates the
held-out test split both ways: encrypted (encrypt, run the compiled
plan, decrypt) and plain (the numpy twin of the *same* polynomial
network).  Per cell it records fit error, both accuracies, the
encrypted-vs-plain **agreement** (the gated metric: the two twins
differ only by encryption noise, so agreement below the threshold means
the cryptography drifted), and the level budget the planner spent — the
accuracy-vs-depth curve of the JSON artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.context import CkksContext
from repro.ml.data import load_iris_split
from repro.ml.model import agreement, logistic_regression, mlp

__all__ = ["AGREEMENT_THRESHOLD", "run_e2e", "write_artifact"]

#: minimum encrypted-vs-plain label agreement per (model, degree, backend)
AGREEMENT_THRESHOLD = 0.98

#: default activation-degree sweeps (the depth axis of the artifact)
LOGREG_DEGREES = (3, 5, 7)
MLP_DEGREES = (2, 3, 4)

#: context parameters every cell runs under — deep enough for the
#: degree-7 sigmoid's 9-term scale stack plus the planner's rescales
CONTEXT_KWARGS = dict(
    ring_degree=256, num_main=10, num_aux=7, dnum=2, rotations=(1, 2)
)


def _build_context(backend: str | None, seed: int) -> CkksContext:
    return CkksContext(seed=seed, backend=backend, **CONTEXT_KWARGS)


def _evaluate(model, x_test, y_test) -> dict:
    enc_scores = model.predict_encrypted(x_test)
    plain_scores = model.predict_plain(x_test)
    enc_labels = model.classify(enc_scores)
    plain_labels = model.classify(plain_scores)
    fits = [
        layer.activation for layer in model.layers
        if layer.activation is not None
    ]
    return {
        "degree": max(f.degree for f in fits),
        "fit_max_error": max(f.max_error for f in fits),
        "slot_max_abs_error": float(
            np.max(np.abs(enc_scores - plain_scores))
        ),
        "agreement": agreement(enc_labels, plain_labels),
        "encrypted_accuracy": agreement(enc_labels, y_test),
        "plain_accuracy": agreement(plain_labels, y_test),
        "levels_consumed": model.levels_consumed,
        "output_level": model.output_level,
        "planner_rescales": model.placed_rescales,
        "plan_steps": model.plan.num_steps,
    }


def run_e2e(
    *,
    backends=("numpy",),
    logreg_degrees=LOGREG_DEGREES,
    mlp_degrees=MLP_DEGREES,
    seed: int = 0,
    n_test: int | None = None,
    threshold: float = AGREEMENT_THRESHOLD,
) -> dict:
    """Run the full sweep; returns the artifact dict (never raises on
    a failed gate — ``result["passed"]`` carries the verdict)."""
    split = load_iris_split(seed=seed)
    x_test, y_test = split.x_test, split.y_test
    if n_test is not None:
        x_test, y_test = x_test[:n_test], y_test[:n_test]
    y_binary_train = (split.y_train == 2).astype(np.int64)
    y_binary_test = (y_test == 2).astype(np.int64)

    results = []
    for backend in backends:
        cc = _build_context(backend, seed)
        resolved = cc.backend  # requested tier may have fallen back
        for degree in logreg_degrees:
            model = logistic_regression(
                cc, split.x_train, y_binary_train, degree=degree
            )
            cell = _evaluate(model, x_test, y_binary_test)
            cell.update(model="logreg", activation="sigmoid",
                        backend=resolved, requested_backend=backend or "numpy")
            results.append(cell)
        for degree in mlp_degrees:
            model = mlp(cc, split.x_train, split.y_train, degree=degree)
            cell = _evaluate(model, x_test, y_test)
            cell.update(model="mlp", activation="relu",
                        backend=resolved, requested_backend=backend or "numpy")
            results.append(cell)

    return {
        "dataset": "iris",
        "n_train": int(split.y_train.size),
        "n_test": int(y_test.size),
        "seed": seed,
        "agreement_threshold": threshold,
        "results": results,
        "passed": all(r["agreement"] >= threshold for r in results),
    }


def write_artifact(report: dict, path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
