"""Encrypted models: dense layers compiled to one CircuitPlan.

A model here is a short stack of :class:`DenseLayer` — a square weight
matrix (BSGS diagonal matvec), a bias vector, and an optional
:class:`~repro.ml.chebyshev.ChebyshevFit` activation (``poly_eval``
scale stacking).  :func:`compile_model` traces the stack through one
:class:`~repro.scheme._circuit.CircuitTracer`, with **every rescale
placed by the** :class:`~repro.ml.planner.LevelPlanner` — the model
path contains zero hand-placed rescales — and compiles it to a single
:class:`~repro.scheme._circuit.CircuitPlan` that inherits the planner's
hoisting / MAC fusion / NTT persistence and runs on every backend.

The plaintext reference (:meth:`CompiledModel.predict_plain`) evaluates
the *same* polynomial network in numpy — polynomial activations, padded
weights and all — so encrypted-vs-plain disagreement measures only
encryption noise, never the approximation.  Training
(:func:`train_logreg`, :func:`train_mlp`) is plain numpy gradient
descent; the MLP trains *through* its polynomial activation (backprop
uses the exact polynomial derivative), so the deployed network is the
trained one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.ml.chebyshev import ChebyshevFit, fit_activation
from repro.ml.planner import LevelPlanner
from repro.scheme._circuit import CircuitTracer
from repro.scheme._linalg import SlotLinalg

__all__ = [
    "CompiledModel",
    "DenseLayer",
    "compile_model",
    "logistic_regression",
    "mlp",
    "train_logreg",
    "train_mlp",
]


@dataclass(frozen=True)
class DenseLayer:
    """One dense layer: ``act(W @ x + b)`` over the slot vector."""

    name: str
    weight: np.ndarray          #: (dim, dim) real matrix
    bias: np.ndarray            #: (dim,) real vector
    activation: ChebyshevFit | None = None

    def __post_init__(self) -> None:
        w = np.asarray(self.weight, dtype=np.float64)
        b = np.asarray(self.bias, dtype=np.float64).ravel()
        if w.ndim != 2 or w.shape[0] != w.shape[1]:
            raise ParameterError(
                f"layer {self.name!r} needs a square weight matrix, "
                f"got shape {w.shape}"
            )
        if b.shape != (w.shape[0],):
            raise ParameterError(
                f"layer {self.name!r} bias shape {b.shape} does not match "
                f"weight dim {w.shape[0]}"
            )
        object.__setattr__(self, "weight", w)
        object.__setattr__(self, "bias", b)

    @property
    def dim(self) -> int:
        return self.weight.shape[0]


def _trace_layers(linalg: SlotLinalg, planner: LevelPlanner, layers, x):
    """Trace the layer stack; the planner owns every rescale."""
    h = x
    for layer in layers:
        with planner.layer(layer.name):
            h = linalg.matvec_naive(h, layer.weight)
            h = planner.normalize(h)
            h = linalg.add_vector(h, layer.bias)
            if layer.activation is not None:
                planner.require_budget(h, layer.activation.coeffs)
                h = linalg.poly_eval(h, layer.activation.coeffs)
                h = planner.normalize(h)
    return h


class CompiledModel:
    """A dense stack compiled to one plan, plus its plain twin.

    Built by :func:`compile_model`; bound to the
    :class:`~repro.context.CkksContext` it compiled under (the plan's
    key switches and encodings live in that context's backend).
    """

    def __init__(self, cc, layers, plan, report, *, scale_bits,
                 placed_rescales, output_level, kind, n_classes):
        self.cc = cc
        self.layers = tuple(layers)
        self.plan = plan
        self.report = report
        self.scale_bits = int(scale_bits)
        self.scale = 2.0 ** self.scale_bits
        self.dim = layers[0].dim
        #: rescales the planner placed (the model path placed none)
        self.placed_rescales = int(placed_rescales)
        self.input_level = cc.poly_ctx.num_limbs
        self.output_level = int(output_level)
        self.kind = kind
        self.n_classes = int(n_classes)

    @property
    def levels_consumed(self) -> int:
        return self.input_level - self.output_level

    # -- serving recipe -----------------------------------------------------
    def build(self, tracer, x):
        """``build(tracer, x)`` recipe for ``CkksServer.register_tenant``.

        Deterministic and self-contained: a fresh planner re-places the
        rescales, the layer constants are re-encoded from the stored
        weights, and the returned trace compiles to the same plan.
        """
        planner = LevelPlanner(
            tracer,
            scale_bits=self.scale_bits,
            main_bits=getattr(self.cc, "main_bits", 30),
            terminal_bits=getattr(self.cc, "terminal_bits", 25),
        )
        linalg = SlotLinalg(self.cc.encoder, tracer)
        return _trace_layers(linalg, planner, self.layers, x)

    # -- the two twins ------------------------------------------------------
    def predict_plain(self, x) -> np.ndarray:
        """The numpy twin: same weights, same polynomial activations.

        Returns the (n, dim) slot matrix the encrypted path would
        decrypt to (up to encryption noise).
        """
        h = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            h = h @ layer.weight.T + layer.bias
            if layer.activation is not None:
                h = layer.activation(h)
        return h

    def predict_encrypted(self, x) -> np.ndarray:
        """Encrypt each sample, run the plan, decrypt the slot scores."""
        rows = np.atleast_2d(np.asarray(x, dtype=np.float64))
        out = np.empty((rows.shape[0], self.dim))
        for i, row in enumerate(rows):
            ct = self.cc.encrypt(row, scale=self.scale, num_slots=self.dim)
            res = self.plan.run(ct)
            out[i] = self.cc.decrypt(res, num_slots=self.dim).real
        return out

    def classify(self, scores: np.ndarray) -> np.ndarray:
        """Slot scores -> class labels (shared by both twins)."""
        scores = np.atleast_2d(scores)
        if self.kind == "binary":
            return (scores[:, 0] > 0.5).astype(np.int64)
        return np.argmax(scores[:, : self.n_classes], axis=1)


def compile_model(
    cc,
    layers,
    *,
    scale_bits: int | None = None,
    kind: str = "argmax",
    n_classes: int | None = None,
) -> CompiledModel:
    """Compile a dense stack end to end; see the module docstring.

    ``scale_bits`` defaults to the context's own ``cc.scale_bits``.
    Raises :class:`~repro.errors.ModelPlanError` — naming the layer and
    the failing budget — when the stack cannot be deployed on ``cc``'s
    parameters, before any ciphertext exists.
    """
    if scale_bits is None:
        scale_bits = getattr(cc, "scale_bits", 30)
    layers = list(layers)
    if not layers:
        raise ParameterError("compile_model needs at least one layer")
    dims = {layer.dim for layer in layers}
    if len(dims) != 1:
        raise ParameterError(
            f"all layers must share one slot dim, got {sorted(dims)}"
        )
    if kind not in ("binary", "argmax"):
        raise ParameterError(f"unknown decision kind {kind!r}")
    tracer = CircuitTracer(cc.evaluator)
    linalg = SlotLinalg(cc.encoder, tracer)
    planner = LevelPlanner(
        tracer,
        scale_bits=scale_bits,
        main_bits=getattr(cc, "main_bits", 30),
        terminal_bits=getattr(cc, "terminal_bits", 25),
    )
    x = tracer.input("x", scale=2.0 ** scale_bits)
    out = _trace_layers(linalg, planner, layers, x)
    plan, report = planner.finish(out)
    return CompiledModel(
        cc, layers, plan, report,
        scale_bits=scale_bits,
        placed_rescales=planner.placed_rescales,
        output_level=out.level,
        kind=kind,
        n_classes=layers[0].dim if n_classes is None else n_classes,
    )


# -- plain-numpy training ----------------------------------------------------
def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def train_logreg(
    x, y, *, epochs: int = 2000, lr: float = 0.5, l2: float = 1e-2,
) -> tuple[np.ndarray, float]:
    """Binary logistic regression by full-batch gradient descent.

    Trains with the *exact* sigmoid (the polynomial replaces it only at
    deployment); returns ``(w, b)``.
    """
    x = np.asarray(x, dtype=np.float64)
    t = np.asarray(y, dtype=np.float64).ravel()
    n, d = x.shape
    w = np.zeros(d)
    b = 0.0
    for _ in range(epochs):
        p = 1.0 / (1.0 + np.exp(-(x @ w + b)))
        g = (p - t) / n
        w -= lr * (x.T @ g + l2 * w)
        b -= lr * float(g.sum())
    return w, b


def train_mlp(
    x, y, activation: ChebyshevFit, *, hidden: int | None = None,
    n_classes: int = 3, epochs: int = 1500, lr: float = 0.3,
    l2: float = 1e-3, seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One-hidden-layer softmax MLP trained *through* its polynomial.

    The forward pass uses ``activation`` — the fitted polynomial, not
    the exact nonlinearity — and backprop uses the polynomial's exact
    derivative, so the trained network is precisely the one the
    encrypted path evaluates.  Returns ``(W1, b1, W2, b2)``.
    """
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(y, dtype=np.int64).ravel()
    n, d = x.shape
    hidden = d if hidden is None else int(hidden)
    onehot = np.eye(n_classes)[labels]
    der = tuple(
        k * c for k, c in enumerate(activation.coeffs)
    )[1:]  # d/dx of the ascending-coefficient polynomial

    def act_der(z: np.ndarray) -> np.ndarray:
        acc = np.zeros_like(z)
        for c in reversed(der):
            acc = acc * z + c
        return acc

    rng = np.random.default_rng(seed)
    w1 = rng.normal(0.0, 0.4, (hidden, d))
    b1 = np.zeros(hidden)
    w2 = rng.normal(0.0, 0.4, (n_classes, hidden))
    b2 = np.zeros(n_classes)
    for _ in range(epochs):
        z1 = x @ w1.T + b1
        h1 = activation(z1)
        probs = _softmax(h1 @ w2.T + b2)
        g = (probs - onehot) / n
        gw2 = g.T @ h1 + l2 * w2
        gb2 = g.sum(axis=0)
        dz1 = (g @ w2) * act_der(z1)
        gw1 = dz1.T @ x + l2 * w1
        gb1 = dz1.sum(axis=0)
        w2 -= lr * gw2
        b2 -= lr * gb2
        w1 -= lr * gw1
        b1 -= lr * gb1
    return w1, b1, w2, b2


# -- model factories ---------------------------------------------------------
def logistic_regression(
    cc, x, y, *, degree: int = 7, scale_bits: int | None = None,
    interval: tuple[float, float] | None = None,
    epochs: int = 2000, lr: float = 0.5, l2: float = 1e-2,
) -> CompiledModel:
    """Train + compile encrypted binary logistic regression.

    One dense layer whose rows all hold the trained ``w`` (the logit
    replicates across every slot) under a degree-``degree`` sigmoid;
    :meth:`CompiledModel.classify` thresholds slot 0 at ``0.5``.  The
    sigmoid's fit interval defaults to 1.5x the trained logit range —
    a monomial-basis interpolant diverges fast outside its interval, so
    it must cover every logit the deployed weights can plausibly emit.
    """
    x = np.asarray(x, dtype=np.float64)
    w, b = train_logreg(x, y, epochs=epochs, lr=lr, l2=l2)
    dim = w.size
    if interval is None:
        reach = 1.5 * float(np.max(np.abs(x @ w + b)))
        interval = (-reach, reach)
    fit = fit_activation("sigmoid", degree, interval=interval)
    layer = DenseLayer(
        "logreg",
        np.tile(w, (dim, 1)),
        np.full(dim, b),
        fit,
    )
    return compile_model(
        cc, [layer], scale_bits=scale_bits, kind="binary", n_classes=2
    )


def mlp(
    cc, x, y, *, degree: int = 4, scale_bits: int | None = None,
    n_classes: int = 3, interval: tuple[float, float] = (-6.0, 6.0),
    epochs: int = 1500, lr: float = 0.3, l2: float = 1e-3, seed: int = 0,
) -> CompiledModel:
    """Train + compile a small encrypted MLP (dim -> dim -> dim slots).

    The hidden layer uses a degree-``degree`` polynomial relu; the
    output layer is linear (argmax is monotone-invariant), its weight
    zero-padded from ``n_classes`` rows up to the slot dim.
    """
    x = np.asarray(x, dtype=np.float64)
    dim = x.shape[1]
    if n_classes > dim:
        raise ParameterError(
            f"n_classes={n_classes} does not fit the {dim}-slot layout"
        )
    fit = fit_activation("relu", degree, interval=interval)
    w1, b1, w2, b2 = train_mlp(
        x, y, fit, hidden=dim, n_classes=n_classes,
        epochs=epochs, lr=lr, l2=l2, seed=seed,
    )
    w2_pad = np.zeros((dim, dim))
    w2_pad[:n_classes] = w2
    b2_pad = np.zeros(dim)
    b2_pad[:n_classes] = b2
    layers = [
        DenseLayer("hidden", w1, b1, fit),
        DenseLayer("output", w2_pad, b2_pad, None),
    ]
    return compile_model(
        cc, layers, scale_bits=scale_bits, kind="argmax", n_classes=n_classes
    )


def agreement(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of samples where two label vectors agree."""
    a, b = np.asarray(a).ravel(), np.asarray(b).ravel()
    if a.size != b.size or a.size == 0:
        raise ParameterError(
            f"agreement needs two equal nonempty label vectors, "
            f"got sizes {a.size} and {b.size}"
        )
    return float(np.mean(a == b))


def accuracy(pred: np.ndarray, truth: np.ndarray) -> float:
    """Classification accuracy (sugar over :func:`agreement`)."""
    return agreement(pred, truth)
