"""Chebyshev approximation of activations for encrypted inference.

CKKS evaluates polynomials, not branches, so the nonlinearities of a
model are replaced by low-degree polynomial approximations before
compilation.  :func:`fit_activation` interpolates an activation at the
Chebyshev nodes of the fit interval — the near-minimax choice, with
error within a log factor of the best degree-``d`` polynomial — and
returns monomial coefficients ready for
``SlotLinalg.poly_eval``'s scale-stacking schedule, together with the
*measured* max deviation over a dense grid (reported in the e2e
artifact, and property-tested against a numpy reference).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Split by sign to avoid overflow in exp for large |x|.
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


#: activations the fitter knows; each maps an ndarray to an ndarray
ACTIVATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sigmoid": _sigmoid,
    "relu": _relu,
}


@dataclass(frozen=True)
class ChebyshevFit:
    """A fitted polynomial activation.

    ``coeffs`` are monomial coefficients in ascending degree — exactly
    what ``poly_eval`` consumes.  ``max_error`` is the measured
    max-absolute deviation from the true activation over a dense grid on
    ``interval`` (not a bound: a measurement, recorded so accuracy-vs-
    depth artifacts can attribute accuracy loss to the approximation).
    """

    name: str
    degree: int
    interval: tuple[float, float]
    coeffs: tuple[float, ...]
    max_error: float
    _fn: Callable[[np.ndarray], np.ndarray] = field(repr=False, compare=False)

    def __call__(self, x) -> np.ndarray:
        """Evaluate the *polynomial* (the encrypted-side semantics)."""
        x = np.asarray(x, dtype=np.float64)
        acc = np.zeros_like(x)
        for c in reversed(self.coeffs):  # Horner, ascending storage
            acc = acc * x + c
        return acc

    def reference(self, x) -> np.ndarray:
        """Evaluate the exact activation (the plaintext-side oracle)."""
        return self._fn(np.asarray(x, dtype=np.float64))


def fit_activation(
    name: str,
    degree: int,
    *,
    interval: tuple[float, float] = (-6.0, 6.0),
    grid: int = 4001,
) -> ChebyshevFit:
    """Fit ``name`` with a degree-``degree`` Chebyshev interpolant.

    The polynomial interpolates the activation at the ``degree + 1``
    Chebyshev nodes of ``interval`` (the roots of ``T_{d+1}`` mapped onto
    the interval), then the coefficients are converted to the monomial
    basis in the *unscaled* variable so ``poly_eval`` can consume them
    directly.  Raises :class:`ParameterError` for unknown activations,
    degenerate intervals, or degrees too high for stable monomial
    conversion.
    """
    fn = ACTIVATIONS.get(name)
    if fn is None:
        raise ParameterError(
            f"unknown activation {name!r}; known: {sorted(ACTIVATIONS)}"
        )
    if degree < 1:
        raise ParameterError(f"activation degree must be >= 1, got {degree}")
    if degree > 24:
        raise ParameterError(
            f"activation degree {degree} too high: monomial-basis "
            "conversion loses float64 accuracy beyond ~24"
        )
    a, b = float(interval[0]), float(interval[1])
    if not (math.isfinite(a) and math.isfinite(b)) or not a < b:
        raise ParameterError(f"fit interval must satisfy a < b, got {interval}")
    k = np.arange(degree + 1)
    nodes = np.cos((2 * k + 1) * np.pi / (2 * (degree + 1)))
    x_nodes = 0.5 * (b - a) * nodes + 0.5 * (a + b)
    coeffs = np.polynomial.polynomial.polyfit(x_nodes, fn(x_nodes), degree)
    xs = np.linspace(a, b, grid)
    approx = np.zeros_like(xs)
    for c in coeffs[::-1]:
        approx = approx * xs + c
    max_error = float(np.max(np.abs(approx - fn(xs))))
    return ChebyshevFit(
        name=name,
        degree=degree,
        interval=(a, b),
        coeffs=tuple(float(c) for c in coeffs),
        max_error=max_error,
        _fn=fn,
    )
