"""CLI for the encrypted-inference end-to-end sweep.

Examples::

    PYTHONPATH=src python -m repro.ml --json ml_inference.json
    PYTHONPATH=src python -m repro.ml --backend numpy,sharded --quick

Exits nonzero when any (model, degree, backend) cell's encrypted-vs-
plain agreement falls below the threshold.
"""

from __future__ import annotations

import argparse
import sys

from repro.ml.e2e import AGREEMENT_THRESHOLD, run_e2e, write_artifact


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ml",
        description="Encrypted logreg/MLP inference: agreement gate "
        "and accuracy-vs-depth artifact over the bundled iris split.",
    )
    parser.add_argument(
        "--backend", default="numpy",
        help="comma-separated execution tiers to sweep "
        "(numpy, sharded, compiled; unavailable tiers fall back)",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="split/keys/weights seed")
    parser.add_argument("--threshold", type=float,
                        default=AGREEMENT_THRESHOLD,
                        help="minimum encrypted-vs-plain agreement")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the artifact JSON here")
    parser.add_argument("--quick", action="store_true",
                        help="one degree per model, 12 test samples")
    args = parser.parse_args(argv)

    kwargs = {}
    if args.quick:
        kwargs.update(logreg_degrees=(3,), mlp_degrees=(2,), n_test=12)
    report = run_e2e(
        backends=tuple(b.strip() for b in args.backend.split(",") if b.strip()),
        seed=args.seed,
        threshold=args.threshold,
        **kwargs,
    )
    if args.json:
        write_artifact(report, args.json)
    for r in report["results"]:
        print(
            f"{r['model']:<7} deg={r['degree']} [{r['backend']}] "
            f"agreement={r['agreement']:.3f} "
            f"enc_acc={r['encrypted_accuracy']:.3f} "
            f"plain_acc={r['plain_accuracy']:.3f} "
            f"fit_err={r['fit_max_error']:.4f} "
            f"levels={r['levels_consumed']} "
            f"rescales={r['planner_rescales']}"
        )
    verdict = "PASS" if report["passed"] else "FAIL"
    print(f"{verdict}: {len(report['results'])} cells, "
          f"agreement threshold {report['agreement_threshold']}")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
