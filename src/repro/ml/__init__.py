"""Encrypted ML inference end to end (see ISSUE PR 10 / ROADMAP item 4).

Chebyshev-approximated activations lowered onto ``poly_eval`` scale
stacking, dense layers as BSGS matvecs, and a noise-budget-aware
:class:`LevelPlanner` that places every rescale automatically — the
model path contains none — and statically rejects undeployable
depth/scale combinations with a layer-named
:class:`~repro.errors.ModelPlanError`.

Entry points: :func:`logistic_regression` / :func:`mlp` train-and-
compile a model against a :class:`~repro.context.CkksContext`;
:func:`run_e2e` produces the agreement-gated accuracy-vs-depth
artifact (also ``python -m repro.ml``).
"""

from repro.errors import ModelPlanError
from repro.ml.chebyshev import ACTIVATIONS, ChebyshevFit, fit_activation
from repro.ml.data import IrisSplit, load_iris, load_iris_split
from repro.ml.e2e import AGREEMENT_THRESHOLD, run_e2e, write_artifact
from repro.ml.model import (
    CompiledModel,
    DenseLayer,
    accuracy,
    agreement,
    compile_model,
    logistic_regression,
    mlp,
    train_logreg,
    train_mlp,
)
from repro.ml.planner import LevelPlanner

__all__ = [
    "ACTIVATIONS",
    "AGREEMENT_THRESHOLD",
    "ChebyshevFit",
    "CompiledModel",
    "DenseLayer",
    "IrisSplit",
    "LevelPlanner",
    "ModelPlanError",
    "accuracy",
    "agreement",
    "compile_model",
    "fit_activation",
    "load_iris",
    "load_iris_split",
    "logistic_regression",
    "mlp",
    "run_e2e",
    "train_logreg",
    "train_mlp",
    "write_artifact",
]
