"""NTT-friendly prime generation (the ``primegen.py`` utility of the paper).

CKKS with RNS needs primes ``q`` with ``q = 1 (mod 2N)`` (Eq. 3 of the paper)
so that a primitive ``2N``-th root of unity exists mod ``q`` and the negacyclic
NTT can run limb-wise.  Cheddar's 25-30 prime system draws from two fixed
lists: main primes "sufficiently close" to ``2^30`` (``Pr~30``) and terminal
primes close to ``2^25`` (``Pr~25``); §3.2.  This module generates such lists
for arbitrary target bit-sizes and ring degrees.

Primes are returned ordered by closeness to the target ``2^k``, alternating
above/below the target, which keeps products of consecutive primes within a
fraction of a bit of ``2^(n*k)`` — this is what bounds the scale divergence of
the prime system to < 0.1 bits (§3.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ParameterError, PrimeSearchError

# A packed constant table reads better than one prime per line.
# fmt: off
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)
# fmt: on

# Deterministic Miller-Rabin witness sets (Sinclair / Feitsma bounds).
_MR_WITNESSES_64 = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test, exact for n < 3.3e24."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES_64:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class Prime:
    """A single NTT-friendly RNS prime.

    Attributes:
        value: the prime q itself (q < 2^31 for the 32-bit datapath).
        bits: nominal size class k for a Pr~k prime (e.g. 30 or 25).
        kind: "main" (Pr~30 q_i), "terminal" (Pr~25 tau_i) or
            "aux" (P-part p_i used only inside key switching).
        index: position within its kind's fixed selection list.
    """

    value: int
    bits: int
    kind: str
    index: int

    def __post_init__(self) -> None:
        if self.kind not in ("main", "terminal", "aux"):
            raise PrimeSearchError(f"unknown prime kind {self.kind!r}")

    @property
    def log2(self) -> float:
        return math.log2(self.value)

    def root_of_unity(self, order: int) -> int:
        """Primitive ``order``-th root of unity mod this prime.

        The negacyclic NTT layer calls this with ``order = 2N``; it exists
        whenever ``2N | q - 1``, which :func:`ntt_friendly_primes` guarantees
        for the ring degree the prime was generated for.
        """
        return primitive_root_of_unity(order, self.value)

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # compact, used heavily in test output
        return f"{self.kind[0]}{self.index}:{self.value}"


def ntt_friendly_primes(
    target_bits: int,
    count: int,
    ring_degree: int,
    *,
    kind: str = "main",
    exclude: set[int] | None = None,
    max_distance: float = 0.5,
) -> list[Prime]:
    """Find ``count`` primes q = 1 (mod 2N) closest to ``2**target_bits``.

    The search walks outward from ``2**target_bits`` in steps of ``2N``
    (the only residues that can satisfy Eq. 3), alternating above and below
    the target so that consecutive picks balance each other's deviation.

    Args:
        target_bits: k for a Pr~k list.
        count: how many primes to return.
        ring_degree: N; candidates satisfy q = 1 (mod 2N).
        kind: recorded on each returned :class:`Prime`.
        exclude: prime values that must not be reused (e.g. already taken
            by another list of the same construction).
        max_distance: maximum allowed |log2(q) - target_bits|.

    Raises:
        PrimeSearchError: when the window around 2^k is exhausted.
    """
    if ring_degree & (ring_degree - 1):
        raise PrimeSearchError(f"ring degree {ring_degree} is not a power of two")
    step = 2 * ring_degree
    center = 1 << target_bits
    # Candidates must be = 1 (mod 2N); walk outward from the center.
    base_up = step * (center // step) + 1
    if base_up <= center:
        base_up += step
    base_down = base_up - step
    exclude = exclude or set()
    found: list[Prime] = []
    up, down = base_up, base_down
    lo_bound = center / (2**max_distance)
    hi_bound = center * (2**max_distance)
    prefer_up = True
    while len(found) < count:
        if up > hi_bound and down < lo_bound:
            raise PrimeSearchError(
                f"exhausted Pr~{target_bits} window for N={ring_degree}: "
                f"found {len(found)}/{count}"
            )
        # Alternate sides to keep the running product balanced around 2^k.
        took = False
        if prefer_up:
            while up <= hi_bound:
                cand, up = up, up + step
                if cand not in exclude and cand < 2**31 and is_prime(cand):
                    found.append(Prime(cand, target_bits, kind, len(found)))
                    took = True
                    break
        else:
            while down >= lo_bound:
                cand, down = down, down - step
                if cand not in exclude and cand < 2**31 and is_prime(cand):
                    found.append(Prime(cand, target_bits, kind, len(found)))
                    took = True
                    break
        prefer_up = not prefer_up
        if not took and up > hi_bound and down < lo_bound:
            raise PrimeSearchError(
                f"exhausted Pr~{target_bits} window for N={ring_degree}: "
                f"found {len(found)}/{count}"
            )
    return found


def primitive_root_of_unity(order: int, modulus: int) -> int:
    """Return a primitive ``order``-th root of unity modulo a prime.

    Used to build NTT twiddle tables: for negacyclic NTT we need a primitive
    2N-th root psi with psi^N = -1 (mod q).
    """
    if (modulus - 1) % order:
        raise PrimeSearchError(f"{order} does not divide {modulus}-1")
    cofactor = (modulus - 1) // order
    # Factor `order` (a power of two in our use) for primitivity checks.
    for g in range(2, modulus):
        root = pow(g, cofactor, modulus)
        if pow(root, order // 2, modulus) == modulus - 1:
            return root
    raise PrimeSearchError(f"no primitive root of order {order} mod {modulus}")


def digit_ranges(num_limbs: int, dnum: int) -> list[tuple[int, int]]:
    """Hybrid key switching's limb-row digit partition.

    The live limb basis (``num_limbs`` rows) splits into ``dnum``
    contiguous digits of ``alpha = ceil(num_limbs / dnum)`` rows each
    (the last digit may be shorter); each digit is ModUp-extended
    independently during key switching.
    """
    if not 1 <= dnum <= num_limbs:
        raise ParameterError(
            f"dnum={dnum} must lie in [1, {num_limbs}] for a "
            f"{num_limbs}-limb basis"
        )
    alpha = -(-num_limbs // dnum)
    return [(lo, min(lo + alpha, num_limbs)) for lo in range(0, num_limbs, alpha)]


@dataclass
class PrimePool:
    """Fixed, ordered prime lists backing one RNS construction.

    The 25-30 prime system draws terminal and main primes *in a fixed order*
    from carefully chosen lists (§3.2); the pool is that pair of lists plus
    the auxiliary (P-part) primes for key switching.
    """

    ring_degree: int
    main: list[Prime] = field(default_factory=list)
    terminal: list[Prime] = field(default_factory=list)
    aux: list[Prime] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        ring_degree: int,
        *,
        main_bits: int = 30,
        terminal_bits: int = 25,
        num_main: int,
        num_terminal: int,
        num_aux: int,
        aux_bits: int | None = None,
    ) -> PrimePool:
        """Generate disjoint main/terminal/aux lists for one construction."""
        aux_bits = aux_bits if aux_bits is not None else main_bits
        main = ntt_friendly_primes(main_bits, num_main, ring_degree, kind="main")
        taken = {p.value for p in main}
        terminal = ntt_friendly_primes(
            terminal_bits, num_terminal, ring_degree, kind="terminal", exclude=taken
        )
        taken |= {p.value for p in terminal}
        aux = ntt_friendly_primes(
            aux_bits, num_aux, ring_degree, kind="aux", exclude=taken
        )
        return cls(ring_degree, main, terminal, aux)

    @property
    def all_primes(self) -> list[Prime]:
        return self.terminal + self.main + self.aux

    def limb_primes(self, num_terminal: int, num_main: int) -> list[Prime]:
        """The live limb moduli for a level: terminals first, then mains.

        The 25-30 system draws both lists in fixed order (§3.2), so the limb
        basis at any level is always a prefix of each list.  This is the
        ordering :class:`repro.poly.rns_poly.RnsPolynomial` keeps its limbs
        in; ``exact_rescale`` drops the *last* limb, i.e. the highest main.
        """
        if num_terminal > len(self.terminal) or num_main > len(self.main):
            raise PrimeSearchError(
                f"pool holds {len(self.terminal)} terminal / {len(self.main)} "
                f"main primes; asked for {num_terminal}/{num_main}"
            )
        return self.terminal[:num_terminal] + self.main[:num_main]

    def extension_basis(
        self, num_terminal: int, num_main: int, *, dnum: int = 1
    ) -> list[Prime]:
        """Auxiliary (P-part) primes for hybrid key switching.

        Selects the shortest prefix of the pool's ``aux`` list whose
        product strictly exceeds the largest digit modulus of the live
        basis — the condition that keeps the key-switching ModDown's
        rounding noise below one unit per digit (the P > max_d prod(D_d)
        requirement); a shorter P would let the v-correction term
        overflow the extension headroom.

        Raises:
            PrimeSearchError: when the pool's aux list cannot cover the
                largest digit product (generate the pool with more
                ``num_aux`` primes).
        """
        limbs = self.limb_primes(num_terminal, num_main)
        ranges = digit_ranges(len(limbs), dnum)
        max_digit = 1
        for lo, hi in ranges:
            prod = 1
            for p in limbs[lo:hi]:
                prod *= p.value
            max_digit = max(max_digit, prod)
        chosen: list[Prime] = []
        p_prod = 1
        for p in self.aux:
            if p_prod > max_digit:
                break
            chosen.append(p)
            p_prod *= p.value
        if p_prod <= max_digit:
            raise PrimeSearchError(
                f"aux list ({len(self.aux)} primes, product ~2^"
                f"{p_prod.bit_length() - 1}) cannot cover the largest "
                f"digit modulus ~2^{max_digit.bit_length() - 1}; generate "
                "the pool with more num_aux primes"
            )
        return chosen

    def assert_disjoint(self) -> None:
        values = [p.value for p in self.all_primes]
        if len(values) != len(set(values)):
            raise PrimeSearchError("prime pool contains duplicates")
