"""Rescaling-cycle search for the 25-30 prime system (§3.2).

A *rescaling cycle* is a short periodic pattern of per-level prime swaps —
"discard a main primes, add b terminal primes" style moves — such that every
rescaling divides the scale by almost exactly ``2**log_delta`` while the
number of live terminal primes returns to its starting value after one
period.  The paper's Δ = 2^40 example is the period-3 orbit of terminal
counts (2, 0, 4) — level 0 holds two terminal primes, level 1 none, level 2
four, level 3 two again — using at most four terminal primes.

This module finds such cycles for arbitrary (log_delta, main_bits,
terminal_bits) by breadth-first search over the live-terminal-count state
space, minimizing first the peak number of terminal primes, then the period,
and finally rotating the cycle so the level-0 modulus is as small as
possible while still exceeding the scale (the paper's 50-bit base for
Δ = 2^40).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class CycleMove:
    """One up-level move: entering level l+1 from level l.

    ``main_delta`` main primes and ``terminal_delta`` terminal primes are
    added going up (negative = removed going up, i.e. added back when
    rescaling down).  Exact log identity:
    ``main_bits*main_delta + terminal_bits*terminal_delta == log_delta``.
    """

    main_delta: int
    terminal_delta: int


def enumerate_moves(
    log_delta: int, main_bits: int, terminal_bits: int, max_terminal: int
) -> list[CycleMove]:
    """All single-step moves whose nominal log-scale change is log_delta.

    The log identity ``main_bits*main_delta + terminal_bits*terminal_delta
    == log_delta`` with ``|terminal_delta| <= max_terminal`` bounds
    ``main_delta`` to the window centered on ``log_delta / main_bits`` with
    half-width ``terminal_bits * max_terminal / main_bits``; the window is
    derived from those parameters, symmetric around its center.
    """
    lo = math.ceil((log_delta - terminal_bits * max_terminal) / main_bits)
    hi = math.floor((log_delta + terminal_bits * max_terminal) / main_bits)
    moves = []
    for main_delta in range(lo, hi + 1):
        rem = log_delta - main_bits * main_delta
        if rem % terminal_bits:
            continue
        terminal_delta = rem // terminal_bits
        if abs(terminal_delta) > max_terminal:
            continue
        if main_delta == 0 and terminal_delta == 0:
            continue
        moves.append(CycleMove(main_delta, terminal_delta))
    return moves


@dataclass(frozen=True)
class RescalingCycle:
    """A periodic schedule of moves plus the terminal-count orbit.

    ``terminal_counts[i]`` is the live terminal-prime count at level
    ``i mod period``; ``moves[i]`` is applied when ascending from level
    ``i mod period`` to the next level.
    """

    moves: tuple[CycleMove, ...]
    terminal_counts: tuple[int, ...]

    @property
    def period(self) -> int:
        return len(self.moves)

    @property
    def peak_terminals(self) -> int:
        return max(
            max(self.terminal_counts),
            max(c + m.terminal_delta for c, m in zip(self.terminal_counts, self.moves)),
        )

    @property
    def mains_consumed_per_period(self) -> int:
        return sum(m.main_delta for m in self.moves)

    def terminal_count_at(self, level: int) -> int:
        return self.terminal_counts[level % self.period]

    def main_count_at(self, level: int, base_main: int) -> int:
        """Live main primes at ``level`` given ``base_main`` at level 0."""
        full, part = divmod(level, self.period)
        count = base_main + full * self.mains_consumed_per_period
        for move in self.moves[:part]:
            count += move.main_delta
        return count


def find_rescaling_cycle(
    log_delta: int,
    *,
    main_bits: int = 30,
    terminal_bits: int = 25,
    max_terminal: int = 6,
    max_period: int = 8,
    base_margin_bits: int = 5,
) -> RescalingCycle:
    """Find a rescaling cycle minimizing (peak terminals, period).

    Raises:
        ParameterError: if no cycle exists within the bounds — e.g.
            Δ = 2^41 with 25/30-bit primes needs a different prime system
            (§3.2's "otherwise we can construct similar prime systems,
            e.g. 24-30").
    """
    moves = enumerate_moves(log_delta, main_bits, terminal_bits, max_terminal)
    if not moves:
        raise ParameterError(
            f"no moves for log_delta={log_delta} with "
            f"{main_bits}/{terminal_bits}-bit primes"
        )
    best: RescalingCycle | None = None
    for cap in range(0, max_terminal + 1):
        for start in range(cap + 1):
            cand = _shortest_cycle_from(start, moves, cap, max_period)
            if cand is None:
                continue
            if best is None or (cand.peak_terminals, cand.period) < (
                best.peak_terminals,
                best.period,
            ):
                best = cand
        if best is not None:
            break
    if best is None:
        raise ParameterError(
            f"no rescaling cycle for log_delta={log_delta} with "
            f"{main_bits}/{terminal_bits}-bit primes "
            f"(max_terminal={max_terminal}, max_period={max_period})"
        )
    return _rotate_for_base(best, log_delta, main_bits, terminal_bits,
                            base_margin_bits)


def _shortest_cycle_from(
    start: int, moves: list[CycleMove], cap: int, max_period: int
) -> RescalingCycle | None:
    """BFS upward through levels for the shortest cycle returning to start.

    A valid cycle must consume main primes on net (``sum main_delta > 0``):
    the total modulus grows with the level, and terminal counts are
    periodic, so all net growth comes from main primes.
    """
    frontier: list[tuple[int, tuple[CycleMove, ...], tuple[int, ...]]]
    frontier = [(start, (), ())]
    for _ in range(max_period):
        next_frontier = []
        for state, path, orbit in frontier:
            for move in moves:
                nxt = state + move.terminal_delta
                if not 0 <= nxt <= cap:
                    continue
                new_path = path + (move,)
                new_orbit = orbit + (state,)
                if nxt == start:
                    if sum(m.main_delta for m in new_path) > 0:
                        return RescalingCycle(new_path, new_orbit)
                else:
                    next_frontier.append((nxt, new_path, new_orbit))
        frontier = next_frontier
    return None


def _rotate_for_base(
    cycle: RescalingCycle,
    log_delta: int,
    main_bits: int,
    terminal_bits: int,
    margin_bits: int,
) -> RescalingCycle:
    """Pick the rotation whose level-0 modulus is smallest but > Δ.

    The level-0 modulus must comfortably exceed the scale so decryption at
    level 0 retains the message; the paper's Δ = 2^40 system starts from a
    50-bit two-terminal base (Table 2).
    """
    best_rot = 0
    best_bits = None
    for rot in range(cycle.period):
        n_tau = cycle.terminal_counts[rot]
        need = log_delta + margin_bits - terminal_bits * n_tau
        n_main = max(0, -(-need // main_bits))  # ceil for positive need
        base_bits = terminal_bits * n_tau + main_bits * n_main
        if best_bits is None or base_bits < best_bits:
            best_bits = base_bits
            best_rot = rot
    moves = cycle.moves[best_rot:] + cycle.moves[:best_rot]
    orbit = cycle.terminal_counts[best_rot:] + cycle.terminal_counts[:best_rot]
    return RescalingCycle(moves, orbit)
