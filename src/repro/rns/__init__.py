"""RNS layer: NTT-friendly primes, Table-3 reducers, rescaling cycles."""

from repro.rns.cycle import (
    CycleMove,
    RescalingCycle,
    enumerate_moves,
    find_rescaling_cycle,
)
from repro.rns.primes import (
    Prime,
    PrimePool,
    digit_ranges,
    is_prime,
    ntt_friendly_primes,
    primitive_root_of_unity,
)
from repro.rns.reduction import (
    REDUCTION_COSTS,
    BarrettReducer,
    MontgomeryReducer,
    ReductionCost,
    ShoupReducer,
    SignedMontgomeryReducer,
    make_reducer,
)

__all__ = [
    "REDUCTION_COSTS",
    "BarrettReducer",
    "CycleMove",
    "MontgomeryReducer",
    "Prime",
    "PrimePool",
    "ReductionCost",
    "RescalingCycle",
    "ShoupReducer",
    "SignedMontgomeryReducer",
    "digit_ranges",
    "enumerate_moves",
    "find_rescaling_cycle",
    "is_prime",
    "make_reducer",
    "ntt_friendly_primes",
    "primitive_root_of_unity",
]
