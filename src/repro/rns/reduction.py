"""Modular reduction methods (§4.1, Table 3 of the paper).

Implements the four reduction methods the paper compares — Barrett,
(unsigned) Montgomery, Shoup, and the signed Montgomery reduction (SMR,
Alg. 2) Cheddar adopts — in bit-faithful vectorized NumPy.  "Bit-faithful"
means each method is written in terms of the 32-bit primitive operations a
GPU int32 core provides (``mullo32``, ``mulhi32``, 32/64-bit adds), with the
same intermediate ranges, so unit tests can check the exact output-range
claims of Table 3 and the lazy-reduction accumulation bounds of §4.2.

Every method also carries its instruction cost so the GPU model can price
kernels (Table 3's "computation requirements" column).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError

_U32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def mullo32(a: np.ndarray, b: np.ndarray | int) -> np.ndarray:
    """Lower 32 bits of a 32x32-bit product (uint64 carrier)."""
    return (a * np.asarray(b, dtype=np.uint64)) & _U32


def mulhi32(a: np.ndarray, b: np.ndarray | int) -> np.ndarray:
    """Upper 32 bits of a 32x32-bit unsigned product."""
    return ((a & _U32) * (np.asarray(b, dtype=np.uint64) & _U32)) >> _SHIFT32


def _signed_mulhi32(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Upper 32 bits of a signed 32x32-bit product (int64 carrier)."""
    return (a.astype(np.int64) * b.astype(np.int64)) >> np.int64(32)


def _signed_mullo32(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Lower 32 bits of a product, reinterpreted as signed int32."""
    lo = (a.astype(np.int64) * b.astype(np.int64)) & np.int64(0xFFFFFFFF)
    return (lo ^ np.int64(1 << 31)) - np.int64(1 << 31)  # sign-extend bit 31


def _parse_moduli(q, label: str) -> tuple[list[int], bool]:
    """Normalize a modulus spec into ``(values, batched)``.

    A plain int is the classic single-prime mode.  A sequence / 1-D array /
    ``(L, 1)`` column of primes selects *batched* mode: every reducer
    constant becomes an ``(L, 1)`` column vector that broadcasts row-wise
    against ``(L, N)`` limb-matrix data, so one vectorized pass reduces all
    limbs at once (the paper's limb-parallel execution).
    """
    if isinstance(q, (int, np.integer)):
        return [int(q)], False
    arr = np.asarray(q)
    if arr.ndim == 2 and arr.shape[1] == 1:
        arr = arr[:, 0]
    if arr.ndim != 1 or arr.size == 0:
        raise ParameterError(
            f"{label} moduli must be one int or a non-empty 1-D/(L, 1) "
            f"sequence of ints, got shape {np.shape(q)}"
        )
    return [int(v) for v in arr], True


def align_rows(c, ndim: int):
    """Reshape an ``(L, 1)`` per-limb constant column to broadcast against
    limb-major data of the given ndim.

    NTT stages view the ``(L, N)`` limb matrix as ``(L, m, t)`` blocks;
    a 2-D column does not broadcast against 3-D data under NumPy's
    trailing-axis rules, so constants grow trailing singleton axes to
    match.  Scalars and already-matching arrays pass through untouched.
    """
    if not isinstance(c, np.ndarray) or c.ndim < 2 or c.ndim == ndim:
        return c
    return c.reshape(c.shape[0], *([1] * (ndim - 1)))


def _column(values: list[int], dtype) -> np.ndarray:
    return np.array(values, dtype=dtype).reshape(-1, 1)


@dataclass(frozen=True)
class ReductionCost:
    """Instruction cost of one modular multiplication (Table 3).

    Costs are expressed in equivalent int32 instructions.  ``mulwide32``
    counts as two (it writes a 64-bit result through the 32-bit datapath);
    ``mulhi`` and ``mullo`` count as one each; 64-bit adds count as two.
    """

    name: str
    mul_instrs: int
    add_instrs: int
    extra_consts: int  # precomputed constants per prime (per unique constant
    # for Shoup)
    output_range: str

    @property
    def total_instrs(self) -> int:
        return self.mul_instrs + self.add_instrs


@dataclass(frozen=True)
class ReducerContract:
    """Machine-readable range contract of one Table-3 reducer.

    The static analyzer (:mod:`repro.analysis.ranges`) seeds its interval
    domain from these contracts instead of re-deriving the output ranges
    from the implementations: ``output_lo_q``/``output_hi_q`` give the
    reducer's *lazy* output range as exclusive multiples of the modulus
    (``(-1, 1)`` means ``(-q, q)``, ``(0, 2)`` means ``[0, 2q)``), and
    ``precondition`` states the input domain under which that range — the
    reducer's axiom — holds.  The analyzer discharges the precondition
    with exact per-limb arithmetic and only then assumes the output range.
    """

    name: str
    signed: bool
    carrier: str  # accumulator dtype the products ride in
    output_lo_q: int  # exclusive lower bound, as a multiple of q
    output_hi_q: int  # exclusive upper bound, as a multiple of q
    precondition: str
    axiom: str


#: Range contracts the static analyzer discharges, one per Table-3 method.
REDUCER_CONTRACTS = {
    "barrett": ReducerContract(
        "barrett", signed=False, carrier="uint64",
        output_lo_q=-1, output_hi_q=2,
        precondition="a, b canonical in [0, q) with q < 2^31",
        axiom="r = x - floor(x*mu/2^64)*q lands in [0, 3q) for any "
              "x < 2^64; one conditional fold brings it into [0, 2q)",
    ),
    "montgomery": ReducerContract(
        "montgomery", signed=False, carrier="uint64",
        output_lo_q=-1, output_hi_q=2,
        precondition="x = a*b in [0, q*2^32)",
        axiom="t = (x + mullo32(x, -q^-1)*q) >> 32 < x/2^32 + q < 2q",
    ),
    "shoup": ReducerContract(
        "shoup", signed=False, carrier="uint64",
        output_lo_q=-1, output_hi_q=2,
        precondition="a < 2^32 and constant w in [0, q) with "
                     "w' = floor(w*2^32 / q)",
        axiom="(a*w - mulhi32(a, w')*q) mod 2^32 lands in [0, 2q)",
    ),
    "smr": ReducerContract(
        "smr", signed=True, carrier="int64",
        output_lo_q=-1, output_hi_q=1,
        precondition="|x| < q * 2^31 (Alg. 2)",
        axiom="x_hi - mulhi32(mullo32(x_lo, q^-1), q) lands in (-q, q)",
    ),
}


#: Table 3 of the paper, as data the GPU model consumes.
REDUCTION_COSTS = {
    "barrett": ReductionCost("barrett", mul_instrs=2 + 2, add_instrs=2,
                             extra_consts=1, output_range="[0, 2q)"),
    "montgomery": ReductionCost("montgomery", mul_instrs=2 + 1, add_instrs=2,
                                extra_consts=1, output_range="[0, 2q)"),
    "shoup": ReductionCost("shoup", mul_instrs=2, add_instrs=1,
                           extra_consts=-1, output_range="[0, 2q)"),
    "smr": ReductionCost("smr", mul_instrs=2, add_instrs=1,
                         extra_consts=1, output_range="(-q, q)"),
}


class BarrettReducer:
    """Classical Barrett reduction for a 64-bit product of 31-bit operands.

    Precomputes mu = floor(2^64 / q).  reduce(x) returns x mod q in [0, 2q)
    (Table 3); ``reduce_strict`` folds into [0, q).

    ``q`` may be one prime or a sequence of L primes; batched mode stores
    ``q``/``mu`` as ``(L, 1)`` columns broadcasting against ``(L, N)``
    limb-matrix data (one row per limb).
    """

    def __init__(self, q) -> None:
        qs, self.batched = _parse_moduli(q, "Barrett")
        for qi in qs:
            if not (2 < qi < 2**31):
                raise ParameterError(
                    f"Barrett modulus {qi} out of 32-bit range"
                )
        self.q_ints = qs
        if self.batched:
            self.q = _column(qs, np.uint64)
            # Each mu fits in 33 bits for q near 2^31, so uint64 carries it.
            self.mu = _column([(1 << 64) // qi for qi in qs], np.uint64)
        else:
            self.q = np.uint64(qs[0])
            self.mu = (1 << 64) // qs[0]  # fits in 33 bits for q near 2^31

    def mulmod(self, a: np.ndarray, b: np.ndarray | int) -> np.ndarray:
        """a * b mod q with result in [0, 2q) (Table 3).

        Valid input range: ``a`` and ``b`` must be canonical residues in
        ``[0, q)`` with ``q < 2^31``; the 64-bit product then never wraps
        and the mu-approximation error stays below 2q.  ``b`` may be a
        scalar or an array broadcastable against ``a``.
        """
        x = a.astype(np.uint64) * np.asarray(b, dtype=np.uint64)
        q = align_rows(self.q, x.ndim)
        # q_hat = floor(x * mu / 2^64), computed via the high product.
        # NumPy lacks 128-bit ints; emulate with 32-bit halves as a GPU would.
        x_hi = x >> _SHIFT32
        x_lo = x & _U32
        mu = align_rows(np.asarray(self.mu, dtype=np.uint64), x.ndim)
        mu_hi = mu >> _SHIFT32
        mu_lo = mu & _U32
        mid = (x_lo * mu_hi + ((x_lo * mu_lo) >> _SHIFT32) + x_hi * mu_lo)
        q_hat = x_hi * mu_hi + (mid >> _SHIFT32)
        r = x - q_hat * q
        return np.where(r >= 2 * q, r - 2 * q, r)

    def reduce_strict(self, r: np.ndarray) -> np.ndarray:
        q = align_rows(self.q, np.ndim(r))
        return np.where(r >= q, r - q, r)


class MontgomeryReducer:
    """Unsigned Montgomery reduction with R = 2^32.

    reduce(x) returns x * 2^-32 mod q in [0, 2q).  to_form / from_form
    convert into and out of the Montgomery representation x*2^32 mod q.
    """

    def __init__(self, q) -> None:
        qs, self.batched = _parse_moduli(q, "Montgomery")
        for qi in qs:
            if not (2 < qi < 2**31) or qi % 2 == 0:
                raise ParameterError(f"Montgomery modulus {qi} invalid")
        self.q_ints = qs
        inv_neg = [(-pow(qi, -1, 1 << 32)) % (1 << 32) for qi in qs]
        r2 = [pow(1 << 32, 2, qi) for qi in qs]  # for to_form
        if self.batched:
            self.q = _column(qs, np.uint64)
            self.q_inv_neg = _column(inv_neg, np.uint64)
            self.r2 = _column(r2, np.uint64)
        else:
            self.q = np.uint64(qs[0])
            self.q_int = qs[0]
            self.q_inv_neg = np.uint64(inv_neg[0])
            self.r2 = r2[0]

    def reduce(self, x: np.ndarray) -> np.ndarray:
        """x in [0, q*2^32) -> x*2^-32 mod q, result in [0, 2q)."""
        m = mullo32(x & _U32, align_rows(self.q_inv_neg, np.ndim(x)))
        t = (x + m * align_rows(self.q, np.ndim(x))) >> _SHIFT32
        return t

    def mulmod(self, a: np.ndarray, b: np.ndarray | int) -> np.ndarray:
        """a * b * 2^-32 mod q with result in [0, 2q) (Table 3).

        Valid input range: any ``a, b >= 0`` with ``a * b < q * 2^32``;
        canonical residues in ``[0, q)`` — or lazy values in ``[0, 2q)``
        for ``q < 2^30`` — always qualify.  Note the implicit ``2^-32``
        factor: feed ``b`` in Montgomery form (``b * 2^32 mod q``, see
        :meth:`to_form`) to get a plain product out.  ``b`` may be a
        scalar or an array broadcastable against ``a``.
        """
        return self.reduce(a.astype(np.uint64) * np.asarray(b, dtype=np.uint64))

    def to_form(self, a: np.ndarray) -> np.ndarray:
        a = a.astype(np.uint64)
        return self.reduce_strict(self.mulmod(a, align_rows(self.r2, a.ndim)))

    def from_form(self, a: np.ndarray) -> np.ndarray:
        return self.reduce_strict(self.reduce(a.astype(np.uint64)))

    def reduce_strict(self, r: np.ndarray) -> np.ndarray:
        q = align_rows(self.q, np.ndim(r))
        return np.where(r >= q, r - q, r)


class ShoupReducer:
    """Shoup modular multiplication by a *constant* w.

    Requires precomputing w' = floor(w * 2^32 / q) per constant, which is
    the "many constants" drawback of Table 3: each unique multiplicand
    needs its own precomputed companion (extra memory traffic).
    """

    def __init__(self, q) -> None:
        qs, self.batched = _parse_moduli(q, "Shoup")
        for qi in qs:
            if not (2 < qi < 2**31):
                raise ParameterError(f"Shoup modulus {qi} out of range")
        self.q_ints = qs
        if self.batched:
            self.q = _column(qs, np.uint64)
        else:
            self.q = np.uint64(qs[0])
            self.q_int = qs[0]

    def precompute(self, w: int | np.ndarray) -> int | np.ndarray:
        """Companion constant(s) w' = floor(w * 2^32 / q) for w in [0, q).

        In batched mode ``w`` broadcasts row-wise against the ``(L, 1)``
        modulus column (a scalar, an ``(L, 1)`` column, or a full ``(L, N)``
        matrix of per-limb constants), and the range check applies per row.

        Raises:
            ParameterError: if any ``w >= q`` (or ``w < 0``).  For such w
                the companion exceeds 32 bits and ``mulmod_const`` would
                silently truncate it, producing wrong residues.
        """
        if self.batched:
            w_arr = np.asarray(w)
            if w_arr.size and w_arr.dtype.kind != "u" and int(w_arr.min()) < 0:
                raise ParameterError(
                    f"Shoup constant out of range: min={int(w_arr.min())} < 0"
                )
            w_u = w_arr.astype(np.uint64)
            q = align_rows(self.q, max(w_u.ndim, 2))
            if w_u.size and np.any(w_u >= q):
                raise ParameterError(
                    f"Shoup constant out of per-limb range [0, q): "
                    f"max={int(w_u.max())} vs min modulus {min(self.q_ints)}"
                )
            # w < q < 2^31, so w << 32 < 2^63 stays inside uint64.
            return (w_u << _SHIFT32) // q
        if isinstance(w, np.ndarray):
            if w.size and (int(w.min()) < 0 or int(w.max()) >= self.q_int):
                raise ParameterError(
                    f"Shoup constant out of range [0, {self.q_int}): "
                    f"min={int(w.min())}, max={int(w.max())}"
                )
            # w < q < 2^31, so w << 32 < 2^63 stays inside uint64.
            return (w.astype(np.uint64) << _SHIFT32) // np.uint64(self.q_int)
        if not 0 <= w < self.q_int:
            raise ParameterError(
                f"Shoup constant {w} out of range [0, {self.q_int}): "
                "precomputed companion would overflow 32 bits"
            )
        return (w << 32) // self.q_int

    def mulmod_const(
        self,
        a: np.ndarray,
        w: int | np.ndarray,
        w_shoup: int | np.ndarray,
    ) -> np.ndarray:
        """a * w mod q with result in [0, 2q) (Table 3).

        Valid input range: ``a`` in ``[0, 2q)`` (lazy inputs are fine —
        Shoup's error analysis only needs ``a < 2^32``), and ``w`` in
        ``[0, q)`` with ``w_shoup = precompute(w)``.  ``w`` may be a scalar
        or an array broadcastable against ``a`` (per-element constants, as
        the NTT's per-stage twiddle vectors require); ``precompute`` is the
        only sanctioned way to build ``w_shoup`` — it enforces ``w < q``.
        """
        w = np.asarray(w, dtype=np.uint64)
        w_shoup = np.asarray(w_shoup, dtype=np.uint64)
        hi = mulhi32(a.astype(np.uint64), w_shoup)
        # Align q to the *product's* rank, not a's: cross-basis uses push
        # higher-rank constants (an (L_out, 1) column against 1-D data),
        # and aligning to a.ndim would broadcast q along the wrong axis.
        q = align_rows(self.q, max(np.ndim(a), w.ndim, w_shoup.ndim))
        r = (a.astype(np.uint64) * w - hi * q) & _U32
        return r

    def mulmod_cross(
        self,
        x: np.ndarray,
        w: np.ndarray,
        w_shoup: np.ndarray,
        *,
        out: np.ndarray | None = None,
        work: np.ndarray | None = None,
    ) -> np.ndarray:
        """Cross-basis product tensor: ``out[j, i] = x[i] * w[j, i] mod q_j``.

        The fast-basis-conversion shape: ``(L_in, N)`` scaled residues
        times an ``(L_out, L_in)`` constant matrix (``q_i_hat mod p_j``
        with its per-row Shoup companions), producing the
        ``(L_out, L_in, N)`` tensor of lazy products in ``[0, 2q_j)`` that
        a deferred-fold accumulator then sums over axis 1.  Requires
        batched mode with ``L_out`` moduli rows.

        ``out`` and ``work`` are optional ``(L_out, L_in, N)`` uint64
        scratch tensors (the converter preallocates them so the hot path
        never allocates); the result lands in — and is returned as —
        ``out``.
        """
        if not self.batched:
            raise ParameterError(
                "mulmod_cross needs a batched Shoup reducer (one modulus "
                "row per output-basis prime)"
            )
        l_out = len(self.q_ints)
        if x.ndim != 2 or w.shape != (l_out, x.shape[0]):
            raise ParameterError(
                f"mulmod_cross: data {x.shape} vs constants {w.shape} "
                f"do not form an ({l_out}, L_in, N) cross product"
            )
        shape = (l_out, x.shape[0], x.shape[1])
        if out is None:
            out = np.empty(shape, dtype=np.uint64)
        if work is None:
            work = np.empty(shape, dtype=np.uint64)
        x3 = x[None, :, :].astype(np.uint64, copy=False)
        w3 = w.astype(np.uint64, copy=False)[:, :, None]
        ws3 = w_shoup.astype(np.uint64, copy=False)[:, :, None]
        q3 = align_rows(self.q, 3)
        np.multiply(x3, ws3, out=work)
        np.right_shift(work, _SHIFT32, out=work)  # hi = mulhi32(x, w')
        np.multiply(work, q3, out=work)  # hi * q (low 64 bits)
        np.multiply(x3, w3, out=out)  # x * w (exact, < 2^62)
        np.subtract(out, work, out=out)
        np.bitwise_and(out, _U32, out=out)  # in [0, 2q_j)
        return out

    def reduce_strict(self, r: np.ndarray) -> np.ndarray:
        q = align_rows(self.q, np.ndim(r))
        return np.where(r >= q, r - q, r)


class SignedMontgomeryReducer:
    """Signed Montgomery reduction (SMR), Alg. 2 of the paper.

    Works on signed representatives.  ``reduce(x)`` takes a 64-bit product
    x in [-q*2^31, q*2^31) and returns y = x * 2^-32 mod q with y in
    (-q, q) using exactly mulhi32 + mullo32 + a 32-bit subtract — the
    cheapest row of Table 3.

    The Montgomery constant here is m = q^-1 mod 2^32 interpreted as a
    *signed* 32-bit value, matching Alg. 2's requirement m in [-2^31, 2^31).
    """

    def __init__(self, q) -> None:
        qs, self.batched = _parse_moduli(q, "SMR")
        for qi in qs:
            if not (2 < qi < 2**31) or qi % 2 == 0:
                raise ParameterError(f"SMR modulus {qi} invalid")
        self.q_ints = qs
        ms = []
        for qi in qs:
            m = pow(qi, -1, 1 << 32)
            if m >= 1 << 31:  # reinterpret as signed 32-bit
                m -= 1 << 32
            ms.append(m)
        r2 = [pow(1 << 32, 2, qi) for qi in qs]  # 2^64 mod q, for to_form
        r1 = [pow(1 << 32, 1, qi) for qi in qs]  # 2^32 mod q
        if self.batched:
            self.q = _column(qs, np.int64)
            self.m = _column(ms, np.int64)
            self.r2 = _column(r2, np.int64)
            self.r1 = _column(r1, np.int64)
        else:
            self.q_int = qs[0]
            self.q = np.int64(qs[0])
            self.m = np.int64(ms[0])
            self.r2 = r2[0]
            self.r1 = r1[0]

    def reduce(self, x: np.ndarray) -> np.ndarray:
        """Alg. 2: x (int64, |x| < q*2^31) -> x*2^-32 mod q in (-q, q)."""
        x = x.astype(np.int64, copy=False)
        x_hi = x >> np.int64(32)  # line 1 (bit extraction, arithmetic shift)
        x_lo = x & np.int64(0xFFFFFFFF)  # unsigned low half
        m = np.broadcast_to(align_rows(self.m, x.ndim), x_lo.shape)
        z = _signed_mullo32(x_lo, m)  # line 2
        q = np.broadcast_to(align_rows(self.q, x.ndim), z.shape)
        z = _signed_mulhi32(z, q)  # line 3
        return x_hi - z  # line 4

    def mulmod(self, a: np.ndarray, b: np.ndarray | int) -> np.ndarray:
        """a * b * 2^-32 mod q with result in (-q, q) (Table 3).

        Valid input range: signed representatives with ``|a| < 2^31`` and
        ``|b| < q``  (so ``|a*b| < q*2^31``, Alg. 2's precondition).  The
        usual case is both in ``(-q, q)``; the slack on ``a`` is what §4.2's
        lazy accumulation spends.  Like Montgomery, the result carries a
        ``2^-32`` factor — pre-scale one operand with :meth:`to_form`.
        """
        prod = a.astype(np.int64) * (
            b.astype(np.int64) if isinstance(b, np.ndarray) else np.int64(b)
        )
        return self.reduce(prod)

    def to_form(self, a: np.ndarray) -> np.ndarray:
        """Lift canonical residues [0, q) into Montgomery form (-q, q)."""
        a = a.astype(np.int64)
        r2 = align_rows(np.asarray(self.r2, dtype=np.int64), a.ndim)
        return self.reduce(a * r2)

    def from_form(self, a: np.ndarray) -> np.ndarray:
        """Drop the 2^32 factor: Montgomery form -> canonical [0, q)."""
        return self.canonical(self.reduce(a.astype(np.int64)))

    def canonical(self, a: np.ndarray) -> np.ndarray:
        """Fold signed representatives (-q, q) into canonical [0, q)."""
        a = a.astype(np.int64, copy=False)
        q = align_rows(self.q, a.ndim)
        return np.where(a < 0, a + q, a).astype(np.uint64)

    def center(self, a: np.ndarray) -> np.ndarray:
        """Fold canonical residues [0, q) into centered (-q/2, q/2]."""
        a = a.astype(np.int64, copy=False)
        q = align_rows(self.q, a.ndim)
        return np.where(a > q // 2, a - q, a)


def make_reducer(method: str, q):
    """Factory over the four reduction methods of Table 3.

    ``q`` is one prime (classic scalar mode) or a sequence of L primes
    (batched mode: constants become ``(L, 1)`` columns broadcasting
    row-wise against ``(L, N)`` limb-matrix data).
    """
    if method == "barrett":
        return BarrettReducer(q)
    if method == "montgomery":
        return MontgomeryReducer(q)
    if method == "shoup":
        return ShoupReducer(q)
    if method == "smr":
        return SignedMontgomeryReducer(q)
    raise ParameterError(f"unknown reduction method {method!r}")
