"""One-call construction of a complete CKKS instance — the public API.

Standing up a working instance previously meant wiring six layers by
hand in the right order — prime pool, polynomial context, extension
basis, key generator, encoder, evaluator, slot-linear algebra — each
with parameters that must agree (the aux basis must cover the digit
products, the Galois keys must cover the rotations the workload will
ask for, ...).  :class:`CkksContext` owns that wiring and, as of the
PR 10 API redesign, is the **single public entry point**: user programs
encrypt/decrypt through it, run slot workloads through it
(:meth:`matvec` / :meth:`poly_eval` / :meth:`multiply_vector` /
:meth:`add_vector`), compile circuits through :meth:`compile`, and
train-and-compile encrypted models through :meth:`model` — without
importing ``SlotLinalg``, ``CircuitTracer`` or any other internal.

>>> cc = CkksContext(ring_degree=1024, num_main=5, num_aux=6, dnum=2,
...                  seed=0, rotations=(1, 2))
>>> ct = cc.encrypt([0.5, -0.25])                  # at cc.scale
>>> plan = cc.compile(lambda p, x: p.matvec(x, M)) # reusable CircuitPlan
"""

from __future__ import annotations

import math

import numpy as np

from repro._compat import warn_once
from repro.errors import ParameterError
from repro.poly.rns_poly import PolyContext
from repro.rns.primes import PrimePool
from repro.scheme._linalg import SlotLinalg
from repro.scheme.encoder import CanonicalEncoder
from repro.scheme.evaluator import Evaluator
from repro.scheme.keys import DEFAULT_SIGMA, KeyGenerator

__all__ = ["CkksContext", "Program"]

#: deprecated CkksContext kwarg -> (canonical kwarg, converter)
_KWARG_ALIASES = {
    "delta": ("scale_bits", lambda v: int(round(math.log2(float(v))))),
    "log_delta": ("scale_bits", int),
}


class Program:
    """The handle a :meth:`CkksContext.compile` build function receives.

    Wraps the recording tracer together with a tracer-bound slot-linalg
    helper: evaluator ops (``add`` / ``multiply`` / ``rotate`` /
    ``rescale`` / ...) delegate to the tracer, and the slot workloads
    (:meth:`matvec`, :meth:`poly_eval`, :meth:`multiply_vector`,
    :meth:`add_vector`) trace their *naive* compositions — the planner
    rediscovers the hoisted/fused fast paths at compile time, so the
    compiled plan stays bit-identical to the eager helpers.
    """

    def __init__(self, tracer, linalg: SlotLinalg) -> None:
        self._tracer = tracer
        self._linalg = linalg

    def matvec(self, ct, matrix, **kwargs):
        """Trace ``matrix @ slots`` (BSGS diagonal form)."""
        return self._linalg.matvec_naive(ct, matrix, **kwargs)

    def poly_eval(self, ct, coeffs, **kwargs):
        """Trace slot-wise polynomial evaluation (scale stacking)."""
        return self._linalg.poly_eval(ct, coeffs, **kwargs)

    def multiply_vector(self, ct, vector, **kwargs):
        return self._linalg.multiply_vector(ct, vector, **kwargs)

    def add_vector(self, ct, vector):
        return self._linalg.add_vector(ct, vector)

    def __getattr__(self, name):
        # evaluator surface (add, sub, multiply, rotate, conjugate,
        # rescale, input, compile, ...) passes straight through
        return getattr(self._tracer, name)


class CkksContext:
    """A fully wired CKKS instance behind one seeded constructor.

    Layers (all public attributes, in wiring order):

    ``pool``       :class:`~repro.rns.primes.PrimePool`
    ``poly_ctx``   :class:`~repro.poly.rns_poly.PolyContext`
    ``keygen``     :class:`~repro.scheme.keys.KeyGenerator`
    ``encoder``    :class:`~repro.scheme.encoder.CanonicalEncoder`
    ``evaluator``  :class:`~repro.scheme.evaluator.Evaluator`

    Canonical construction kwargs (shared with
    :class:`~repro.serving.ServingConfig` and the bench/soak CLIs):
    ``backend`` names the execution tier, ``seed`` drives all
    randomness, ``scale_bits`` fixes the default encoding scale
    ``2**scale_bits`` (defaults to ``main_bits``, the size of the limb a
    rescale drops), and ``checked`` toggles sanitizer-checked execution
    (``None`` defers to ``REPRO_CHECKED``).  The pre-redesign spellings
    ``delta=`` / ``log_delta=`` are accepted with a deprecation warning.

    All randomness — prime-independent key material and encryption
    noise — flows from the single ``seed`` through one
    ``numpy.random.Generator``, so two contexts built with the same
    arguments produce bit-identical keys and (with
    :meth:`encrypt` called in the same order) bit-identical
    ciphertexts.
    """

    def __init__(
        self,
        *,
        ring_degree: int,
        num_main: int,
        num_aux: int,
        dnum: int,
        seed: int,
        num_terminal: int = 1,
        method: str = "smr",
        backend: str | None = None,
        rotations=(),
        conjugate: bool = False,
        sigma: float = DEFAULT_SIGMA,
        hamming_weight: int | None = None,
        main_bits: int = 30,
        terminal_bits: int = 25,
        aux_bits: int | None = None,
        scale_bits: int | None = None,
        checked: bool | None = None,
        **deprecated,
    ) -> None:
        for old, value in deprecated.items():
            alias = _KWARG_ALIASES.get(old)
            if alias is None:
                raise TypeError(
                    f"CkksContext got an unexpected keyword argument {old!r}"
                )
            canonical, convert = alias
            warn_once(f"CkksContext({old}=...)", f"{canonical}=...")
            if scale_bits is not None:
                raise ParameterError(
                    f"CkksContext got both {canonical!r} and its "
                    f"deprecated alias {old!r}"
                )
            scale_bits = convert(value)
        #: nominal prime sizes — the level planner budgets against these
        self.main_bits = int(main_bits)
        self.terminal_bits = int(terminal_bits)
        #: default encoding scale is 2**scale_bits (= main_bits unless
        #: overridden: one rescale then restores the level-entry scale)
        self.scale_bits = self.main_bits if scale_bits is None else int(scale_bits)
        self.scale = 2.0 ** self.scale_bits
        self.pool = PrimePool.generate(
            ring_degree,
            main_bits=main_bits,
            terminal_bits=terminal_bits,
            num_main=num_main,
            num_terminal=num_terminal,
            num_aux=num_aux,
            aux_bits=aux_bits,
        )
        self.poly_ctx = PolyContext.from_pool(
            self.pool,
            num_terminal=num_terminal,
            num_main=num_main,
            method=method,
            backend=backend,
            checked=checked,
        )
        #: resolved execution tier (numpy / sharded / compiled) every
        #: kernel under this instance dispatches through — see
        #: :mod:`repro.poly.backends`
        self.backend = self.poly_ctx.backend
        #: resolved sanitizer mode (constructor arg > REPRO_CHECKED env)
        self.checked = self.poly_ctx.checked
        aux_primes = self.pool.extension_basis(
            num_terminal, num_main, dnum=dnum
        )
        self.rng = np.random.default_rng(seed)
        self.keygen = KeyGenerator(
            self.poly_ctx,
            aux_primes,
            dnum,
            self.rng,
            sigma=sigma,
            hamming_weight=hamming_weight,
        )
        self.encoder = CanonicalEncoder(self.poly_ctx)
        self.evaluator = Evaluator.from_keygen(
            self.keygen, rotations=rotations, conjugate=conjugate
        )
        self._linalg = SlotLinalg(self.encoder, self.evaluator)

    # -- passthrough conveniences -------------------------------------------
    @property
    def ctx(self) -> PolyContext:
        """The polynomial context (for Plan.validate and friends)."""
        return self.poly_ctx

    @property
    def num_slots(self) -> int:
        return self.poly_ctx.ring_degree // 2

    def encrypt(
        self,
        values,
        *,
        scale: float | None = None,
        num_slots: int | None = None,
    ):
        """Encode a slot vector (at ``cc.scale`` unless overridden) and
        encrypt it under the public key."""
        pt = self.encoder.encode(
            values, self.scale if scale is None else scale,
            num_slots=num_slots,
        )
        return self.evaluator.encrypt(pt, self.keygen.public, self.rng)

    def decrypt(self, ct, *, num_slots: int | None = None) -> np.ndarray:
        """Decrypt and decode back to a complex slot vector."""
        pt = self.evaluator.decrypt(ct, self.keygen.secret)
        return self.encoder.decode(pt, num_slots=num_slots)

    # -- eager slot workloads ------------------------------------------------
    def matvec(self, ct, matrix, **kwargs):
        """``matrix @ slots`` eagerly (hoisted + fused BSGS form)."""
        return self._linalg.matvec(ct, matrix, **kwargs)

    def poly_eval(self, ct, coeffs, **kwargs):
        """Slot-wise ``p(ct)`` eagerly (BSGS scale stacking)."""
        return self._linalg.poly_eval(ct, coeffs, **kwargs)

    def multiply_vector(self, ct, vector, **kwargs):
        """Slot-wise product with a plaintext vector, eagerly."""
        return self._linalg.multiply_vector(ct, vector, **kwargs)

    def add_vector(self, ct, vector):
        """Slot-wise sum with a plaintext vector, eagerly."""
        return self._linalg.add_vector(ct, vector)

    @staticmethod
    def matvec_rotations(dim: int, *, baby_steps: int | None = None):
        """The Galois rotation set a ``dim``-slot matvec needs at keygen.

        Pass this as ``rotations=`` when constructing the context so the
        BSGS schedule finds every key it asks for.
        """
        return SlotLinalg.matvec_rotations(dim, baby_steps=baby_steps)

    # -- circuit compilation -------------------------------------------------
    def compile(self, build, *, scale: float | None = None,
                input_names=("x",)):
        """Trace ``build(program, *inputs)`` and compile it to a plan.

        ``build`` receives a :class:`Program` (evaluator ops plus slot
        workloads, all recording) and one traced input handle per name
        in ``input_names``, each declared at ``scale`` (default
        ``cc.scale``); it returns the traced output — a single handle
        or a ``{name: handle}`` mapping.  The returned
        :class:`~repro.scheme._circuit.CircuitPlan` replays against
        fresh ciphertexts via ``plan.run(...)``.
        """
        tracer = self._tracer()
        program = Program(tracer, SlotLinalg(self.encoder, tracer))
        use_scale = self.scale if scale is None else float(scale)
        handles = [
            tracer.input(name, scale=use_scale) for name in input_names
        ]
        out = build(program, *handles)
        return tracer.compile(out)

    def model(self, kind: str, x, y, **kwargs):
        """Train + compile a bundled encrypted model on ``(x, y)``.

        ``kind`` is ``"logreg"`` (binary logistic regression) or
        ``"mlp"`` (one hidden layer, softmax-trained); keyword
        arguments pass through to
        :func:`repro.ml.logistic_regression` / :func:`repro.ml.mlp`.
        Returns a :class:`repro.ml.CompiledModel`.
        """
        from repro import ml

        if kind == "logreg":
            return ml.logistic_regression(self, x, y, **kwargs)
        if kind == "mlp":
            return ml.mlp(self, x, y, **kwargs)
        raise ParameterError(
            f"unknown model kind {kind!r} (choose 'logreg' or 'mlp')"
        )

    # -- internals kept reachable --------------------------------------------
    def _tracer(self):
        """A fresh recording tracer over the evaluator (internal)."""
        from repro.scheme._circuit import CircuitTracer

        return CircuitTracer(self.evaluator)

    def tracer(self):
        """Deprecated: use :meth:`compile` (it owns the tracer now)."""
        warn_once("CkksContext.tracer()", "CkksContext.compile(build)")
        return self._tracer()

    @property
    def linalg(self) -> SlotLinalg:
        """Deprecated: use :meth:`matvec` / :meth:`poly_eval` etc."""
        warn_once(
            "CkksContext.linalg",
            "CkksContext.matvec / poly_eval / multiply_vector / add_vector",
        )
        return self._linalg
