"""One-call construction of a complete CKKS instance.

Standing up a working instance previously meant wiring six layers by
hand in the right order — prime pool, polynomial context, extension
basis, key generator, encoder, evaluator, slot-linear algebra — each
with parameters that must agree (the aux basis must cover the digit
products, the Galois keys must cover the rotations the workload will
ask for, ...).  :class:`CkksContext` owns that wiring: one seeded
constructor, every layer reachable as an attribute, and conveniences
for the encode/encrypt boundary and for starting a circuit trace.

>>> cc = CkksContext(ring_degree=1024, num_main=5, num_aux=6, dnum=2,
...                  seed=0, rotations=(1, 2))
>>> ct = cc.encrypt([0.5, -0.25], scale=2.0**12)
>>> tr = cc.tracer()
"""

from __future__ import annotations

import numpy as np

from repro.poly.rns_poly import PolyContext
from repro.rns.primes import PrimePool
from repro.scheme.encoder import CanonicalEncoder
from repro.scheme.evaluator import Evaluator
from repro.scheme.keys import DEFAULT_SIGMA, KeyGenerator
from repro.scheme.linalg import SlotLinalg

__all__ = ["CkksContext"]


class CkksContext:
    """A fully wired CKKS instance behind one seeded constructor.

    Layers (all public attributes, in wiring order):

    ``pool``       :class:`~repro.rns.primes.PrimePool`
    ``poly_ctx``   :class:`~repro.poly.rns_poly.PolyContext`
    ``keygen``     :class:`~repro.scheme.keys.KeyGenerator`
    ``encoder``    :class:`~repro.scheme.encoder.CanonicalEncoder`
    ``evaluator``  :class:`~repro.scheme.evaluator.Evaluator`
    ``linalg``     :class:`~repro.scheme.linalg.SlotLinalg`

    All randomness — prime-independent key material and encryption
    noise — flows from the single ``seed`` through one
    ``numpy.random.Generator``, so two contexts built with the same
    arguments produce bit-identical keys and (with
    :meth:`encrypt` called in the same order) bit-identical
    ciphertexts.
    """

    def __init__(
        self,
        *,
        ring_degree: int,
        num_main: int,
        num_aux: int,
        dnum: int,
        seed: int,
        num_terminal: int = 1,
        method: str = "smr",
        backend: str | None = None,
        rotations=(),
        conjugate: bool = False,
        sigma: float = DEFAULT_SIGMA,
        hamming_weight: int | None = None,
        main_bits: int = 30,
        terminal_bits: int = 25,
        aux_bits: int | None = None,
    ) -> None:
        self.pool = PrimePool.generate(
            ring_degree,
            main_bits=main_bits,
            terminal_bits=terminal_bits,
            num_main=num_main,
            num_terminal=num_terminal,
            num_aux=num_aux,
            aux_bits=aux_bits,
        )
        self.poly_ctx = PolyContext.from_pool(
            self.pool,
            num_terminal=num_terminal,
            num_main=num_main,
            method=method,
            backend=backend,
        )
        #: resolved execution tier (numpy / sharded / compiled) every
        #: kernel under this instance dispatches through — see
        #: :mod:`repro.poly.backends`
        self.backend = self.poly_ctx.backend
        aux_primes = self.pool.extension_basis(
            num_terminal, num_main, dnum=dnum
        )
        self.rng = np.random.default_rng(seed)
        self.keygen = KeyGenerator(
            self.poly_ctx,
            aux_primes,
            dnum,
            self.rng,
            sigma=sigma,
            hamming_weight=hamming_weight,
        )
        self.encoder = CanonicalEncoder(self.poly_ctx)
        self.evaluator = Evaluator.from_keygen(
            self.keygen, rotations=rotations, conjugate=conjugate
        )
        self.linalg = SlotLinalg(self.encoder, self.evaluator)

    # -- passthrough conveniences -------------------------------------------
    @property
    def ctx(self) -> PolyContext:
        """The polynomial context (for Plan.validate and friends)."""
        return self.poly_ctx

    @property
    def num_slots(self) -> int:
        return self.poly_ctx.ring_degree // 2

    def encrypt(self, values, *, scale: float, num_slots: int | None = None):
        """Encode a slot vector and encrypt it under the public key."""
        pt = self.encoder.encode(values, scale, num_slots=num_slots)
        return self.evaluator.encrypt(pt, self.keygen.public, self.rng)

    def decrypt(self, ct, *, num_slots: int | None = None) -> np.ndarray:
        """Decrypt and decode back to a complex slot vector."""
        pt = self.evaluator.decrypt(ct, self.keygen.secret)
        return self.encoder.decode(pt, num_slots=num_slots)

    def tracer(self):
        """A fresh :class:`~repro.scheme.circuit.CircuitTracer` over the
        evaluator, for recording a program to compile."""
        from repro.scheme.circuit import CircuitTracer

        return CircuitTracer(self.evaluator)
