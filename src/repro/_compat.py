"""One-release deprecation shims for the PR 10 public-API redesign.

Internals that user programs used to import directly (``SlotLinalg``,
``CircuitTracer``, ``KeySwitcher``, the old construction kwargs) keep
working for one release through shims that call :func:`warn_once`: the
first touch of each deprecated name emits a :class:`DeprecationWarning`
naming its replacement, later touches are silent (a tight loop over a
shimmed API must not spam hundreds of identical warnings).
"""

from __future__ import annotations

import warnings

#: deprecated names already warned about this process (tests may clear)
_warned: set[str] = set()


def warn_once(old: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit one DeprecationWarning per deprecated name per process."""
    if old in _warned:
        return
    _warned.add(old)
    warnings.warn(
        f"{old} is deprecated and will be removed in the next release; "
        f"use {replacement} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
