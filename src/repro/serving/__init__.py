"""Fault-tolerant multi-tenant CKKS serving layer.

Public surface:

* :class:`~repro.serving.scheduler.CkksServer` — asyncio request queue
  + batch scheduler with admission control, deadlines, retry/backoff,
  watchdog, and per-tenant circuit breakers;
* :class:`~repro.serving.scheduler.ServingConfig` — tuning knobs;
* :class:`~repro.serving.breaker.CircuitBreaker` — the breaker itself;
* :class:`~repro.serving.faults.FaultInjector` — deterministic seeded
  fault injection through :mod:`repro.hooks`;
* :func:`~repro.serving.loadgen.run_load` /
  :func:`~repro.serving.loadgen.verify_delivered` — deterministic load
  generation and the bit-exact delivery oracle;
* :func:`~repro.serving.soak.soak` — the end-to-end acceptance soak
  (also ``python -m repro.serving.soak``).
"""

from repro.serving.breaker import CircuitBreaker
from repro.serving.faults import FaultInjector
from repro.serving.loadgen import (
    LoadReport,
    draw_specs,
    run_load,
    verify_delivered,
)
from repro.serving.scheduler import BatchRecord, CkksServer, ServingConfig
from repro.serving.soak import soak

__all__ = [
    "BatchRecord",
    "CircuitBreaker",
    "CkksServer",
    "FaultInjector",
    "LoadReport",
    "ServingConfig",
    "draw_specs",
    "run_load",
    "soak",
    "verify_delivered",
]
