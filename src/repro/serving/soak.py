"""Seeded fault-injection soak: the serving layer's acceptance test.

Stands up a small CKKS context, registers two real tenant circuits (and
demonstrates admission control rejecting a broken third), then drives a
synthetic load — 1000 requests by default — through
:class:`~repro.serving.scheduler.CkksServer` while the seeded
:class:`~repro.serving.faults.FaultInjector` flips ciphertext bits,
corrupts plan constants and request payloads, raises kernel faults,
stalls executions past the watchdog, and exhausts noise budgets on a
deterministic schedule.

The run then *asserts* the serving contract:

* **zero wrong answers** — every delivered slot value bit-matches a
  clean replay of its batch (:func:`~repro.serving.loadgen.
  verify_delivered`) *and* approximates the per-request unbatched
  reference (each payload individually encrypted at ``num_slots=1``
  and run through the same plan);
* **zero unstructured failures** — every rejection is a
  :class:`~repro.errors.ServingError` naming its cause;
* **zero deadlocks** — injected stalls are cut short by the watchdog
  (which must have fired) and the whole run is bounded by an outer
  timeout;
* **every injected fault** was either recovered by retry (the request
  still delivered, correctly) or surfaced as a structured rejection.

Run it directly::

    PYTHONPATH=src python -m repro.serving.soak --requests 1000 \\
        --seed 7 --rate 0.05 --json soak_report.json

Exit status is non-zero on any contract violation; ``--json`` writes
the tallies (including p99 latency and requests/sec) for CI artifacts.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

import numpy as np

from repro.context import CkksContext
from repro.errors import AdmissionError
from repro.serving.faults import FaultInjector
from repro.serving.loadgen import draw_specs, run_load, verify_delivered
from repro.serving.scheduler import CkksServer, ServingConfig

__all__ = ["build_server", "main", "soak"]

#: encoding scale Delta, matched to the 30-bit rescale primes so one
#: rescale lands back near Delta with full precision
SCALE_BITS = 30
SCALE = 2.0**SCALE_BITS


#: tenant name -> plaintext reference function (the unbatched oracle)
TENANTS = {
    "affine": lambda v: 0.5 * v + 0.25,
    "square": lambda v: v * v,
}


def make_builds(cc: CkksContext) -> dict:
    """Tenant build recipes, closed over the context's encoder.

    Constants are encoded *inside* each build at ``num_slots=1`` so (a)
    they replicate uniformly under whatever sparse packing the batcher
    picks, and (b) a plan rebuild after corruption re-encodes them
    cleanly from source values.
    """

    def affine(tracer, x):
        # y = 0.5 * x + 0.25: plaintext product, constant folded in at
        # the product scale (the encoder works at the top level), then
        # one rescale.
        half = cc.encoder.encode([0.5], SCALE, num_slots=1)
        prod = tracer.multiply_plain(x, half)
        bump = cc.encoder.encode([0.25], prod.scale, num_slots=1)
        return tracer.rescale(tracer.add_plain(prod, bump))

    def square(tracer, x):
        # y = x * x: ciphertext product, relinearized, rescaled.
        return tracer.rescale(tracer.multiply(x, x))

    def too_deep(tracer, x):
        # Squares past the modulus chain: rejected at admission.
        y = x
        for _ in range(8):
            y = tracer.rescale(tracer.multiply(y, y))
        return y

    return {"affine": affine, "square": square, "too-deep": too_deep}


def build_server(
    *, seed: int, rate: float, watchdog_s: float = 0.5, stall_s: float = 1.0,
    backend: str | None = None, checked: bool | None = None,
) -> CkksServer:
    """A soak-ready server: small ring, two tenants, armed injector.

    ``backend`` picks the kernel execution tier (numpy / sharded /
    compiled) and is threaded through both the context (which dispatches
    on it) and the config (which asserts the two agree), so a soak run
    exercises the full serving path on that tier.
    """
    cc = CkksContext(
        ring_degree=256, num_main=4, num_aux=3, dnum=2, seed=seed,
        backend=backend, checked=checked,
    )
    injector = FaultInjector(seed, rate=rate, stall_s=stall_s)
    config = ServingConfig(
        max_queue=512,
        batch_window_s=0.005,
        default_deadline_s=10.0,
        watchdog_s=watchdog_s,
        max_attempts=4,
        breaker_cooldown_s=0.1,
        seed=seed,
        backend=backend,
    )
    server = CkksServer(cc, config=config, injector=injector)
    builds = make_builds(cc)
    for name in TENANTS:
        server.register_tenant(name, builds[name], scale_bits=SCALE_BITS)
    return server


def _check_admission(server: CkksServer) -> str:
    """Admission control must reject the over-deep tenant; return its code."""
    try:
        server.register_tenant(
            "too-deep", make_builds(server.cc)["too-deep"],
            scale_bits=SCALE_BITS,
        )
    except AdmissionError as exc:
        return exc.code
    raise AssertionError("admission control accepted an over-deep circuit")


def _reference_errors(server: CkksServer, specs, results) -> list[str]:
    """Delivered values must approximate the unbatched per-request path."""
    problems = []
    for index, spec in enumerate(specs):
        value = results.get(index)
        if not isinstance(value, complex):
            continue
        expected = TENANTS[spec.tenant](spec.value)
        if abs(value.real - expected) > 1e-2 or abs(value.imag) > 1e-2:
            problems.append(
                f"request {index} ({spec.tenant}, payload {spec.value}): "
                f"delivered {value:.4f}, reference {expected:.4f}"
            )
    return problems


def soak(
    *,
    requests: int = 1000,
    seed: int = 7,
    rate: float = 0.05,
    spread_s: float = 2.0,
    timeout_s: float = 300.0,
    backend: str | None = None,
    checked: bool | None = None,
) -> dict:
    """Run the full soak; return the report dict; raise on any violation."""
    server = build_server(seed=seed, rate=rate, backend=backend, checked=checked)
    admission_code = _check_admission(server)
    specs = draw_specs(
        tenants=sorted(TENANTS),
        requests=requests,
        seed=seed,
        spread_s=spread_s,
        deadline_s=server.config.default_deadline_s,
    )

    async def driven():
        await server.start()
        try:
            return await run_load(server, specs)
        finally:
            await server.stop()

    # The outer bound is the deadlock detector: injected stalls must be
    # cut short by the watchdog, never wedge the loop.
    report = asyncio.run(asyncio.wait_for(driven(), timeout_s))

    wrong_bits = verify_delivered(server)
    ref_problems = _reference_errors(server, specs, report.results)
    injected = dict(server.injector.injected)
    detected = dict(server.faults_detected)
    summary = {
        "requests": requests,
        "seed": seed,
        "fault_rate": rate,
        "backend": server.backend,
        "checked": bool(getattr(server.cc, "checked", False)),
        "delivered": report.delivered,
        "rejected": dict(report.rejected),
        "unstructured_failures": report.unstructured,
        "wrong_answers_bitmatch": wrong_bits,
        "wrong_answers_reference": len(ref_problems),
        "admission_rejection_code": admission_code,
        "faults_injected": injected,
        "faults_detected": detected,
        "watchdog_fires": int(server.metrics["watchdog_fires"]),
        "retries": int(server.metrics["retries"]),
        "plan_rebuilds": int(server.metrics["plan_rebuilds"]),
        "batches": int(server.metrics["batches"]),
        "requests_per_s": round(report.requests_per_s, 2),
        "p50_ms": round(report.p50_s * 1e3, 3),
        "p99_ms": round(report.p99_s * 1e3, 3),
        "wall_s": round(report.wall_s, 2),
    }

    failures = []
    if wrong_bits:
        failures.append(f"{wrong_bits} delivered slots failed bit-match replay")
    failures.extend(ref_problems[:5])
    if report.unstructured:
        failures.append(
            f"{report.unstructured} unstructured (non-ServingError) failures"
        )
    if report.delivered + sum(report.rejected.values()) != requests:
        failures.append("some requests neither delivered nor rejected")
    injected_total = sum(server.injector.injected.values())
    min_faults = max(1, int(np.ceil(0.01 * requests)))
    if rate > 0 and injected_total < min_faults:
        failures.append(
            f"only {injected_total} faults injected (< {min_faults}); "
            "the soak did not stress recovery"
        )
    if rate > 0 and "stall" in injected and not server.metrics["watchdog_fires"]:
        failures.append("stalls were injected but the watchdog never fired")
    summary["ok"] = not failures
    summary["failures"] = failures
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rate", type=float, default=0.05)
    parser.add_argument("--spread", type=float, default=2.0,
                        help="arrival spread in seconds")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="outer deadlock bound in seconds")
    parser.add_argument("--json", type=str, default=None,
                        help="write the report dict to this path")
    parser.add_argument("--backend", type=str, default=None,
                        choices=("numpy", "sharded", "compiled"),
                        help="kernel execution tier (default: REPRO_BACKEND "
                             "or numpy)")
    parser.add_argument("--checked", action="store_true", default=None,
                        help="run under sanitizer-checked execution "
                             "(default: REPRO_CHECKED)")
    args = parser.parse_args(argv)
    summary = soak(
        requests=args.requests, seed=args.seed, rate=args.rate,
        spread_s=args.spread, timeout_s=args.timeout, backend=args.backend,
        checked=args.checked,
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
    print(json.dumps(summary, indent=2, sort_keys=True))
    if not summary["ok"]:
        for line in summary["failures"]:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(
        f"soak OK: {summary['delivered']}/{summary['requests']} delivered, "
        f"0 wrong answers, {sum(summary['faults_injected'].values())} faults "
        f"injected, {summary['watchdog_fires']} watchdog fires, "
        f"p99 {summary['p99_ms']}ms, {summary['requests_per_s']} req/s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
