"""Per-tenant circuit breaker: quarantine a plan that keeps failing.

Classic three-state breaker (closed / open / half-open) guarding each
tenant's compiled plan.  While *closed*, requests flow; each failed
batch (retries exhausted) counts against ``threshold`` consecutive
failures, and any success resets the count.  At the threshold the
breaker *opens*: submissions fast-fail with
:class:`~repro.errors.CircuitOpenError` instead of joining a queue whose
batches keep dying — during a persistent fault (a corrupted key, a
broken tenant circuit, an injected outage) this converts long tail
latencies into immediate structured rejections and sheds load off the
executor.  After ``cooldown_s`` the next :meth:`allow` moves the breaker
*half-open*: exactly one trial batch is admitted (concurrent
:meth:`allow` calls during the trial are rejected); its success closes
the breaker, its failure re-opens it for another full cool-down, and a
trial that never resolves goes stale after a further ``cooldown_s`` so
a new one can be admitted.

The breaker is timing-driven, so it takes an injectable ``clock``
(defaults to :func:`time.monotonic`) — tests pass a fake clock and step
it instead of sleeping.
"""

from __future__ import annotations

import time
from collections.abc import Callable

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a cool-down and trial probe."""

    __slots__ = ("threshold", "cooldown_s", "_clock", "_state",
                 "_failures", "_opened_at", "_probe_at")

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 1.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"breaker cooldown must be > 0, got {cooldown_s}")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_at = 0.0

    @property
    def state(self) -> str:
        """Current state name (without side effects): closed/open/half-open."""
        return self._state

    @property
    def failures(self) -> int:
        """Consecutive recorded failures since the last success."""
        return self._failures

    @property
    def retry_after_s(self) -> float:
        """Seconds until the breaker admits another call (0 when closed).

        While open, the remainder of the cool-down; while half-open with
        the trial still unresolved, the remainder of the probe window.
        """
        now = self._clock()
        if self._state == OPEN:
            return max(0.0, self.cooldown_s - (now - self._opened_at))
        if self._state == HALF_OPEN:
            return max(0.0, self.cooldown_s - (now - self._probe_at))
        return 0.0

    def allow(self) -> bool:
        """Whether a new request/batch may proceed right now.

        An open breaker whose cool-down has elapsed transitions to
        half-open and admits this one call as the trial; further calls
        are rejected until the trial resolves via
        :meth:`record_success`/:meth:`record_failure`.  A trial that
        never resolves (e.g. its request was cancelled before a batch
        ran) goes stale after another ``cooldown_s`` and a new trial is
        admitted — the breaker cannot wedge shut.
        """
        now = self._clock()
        if self._state == OPEN:
            if now - self._opened_at >= self.cooldown_s:
                self._state = HALF_OPEN
                self._probe_at = now
                return True
            return False
        if self._state == HALF_OPEN:
            if now - self._probe_at >= self.cooldown_s:
                self._probe_at = now
                return True
            return False
        return True

    def record_success(self) -> None:
        """A batch completed: close the breaker and reset the count."""
        self._state = CLOSED
        self._failures = 0

    def record_failure(self) -> None:
        """A batch failed terminally: count it, opening at the threshold.

        A failure while half-open re-opens immediately — the trial batch
        is the evidence the fault persists.
        """
        self._failures += 1
        if self._state == HALF_OPEN or self._failures >= self.threshold:
            self._state = OPEN
            self._opened_at = self._clock()
