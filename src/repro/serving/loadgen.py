"""Deterministic load generation and bit-exact delivery verification.

:func:`run_load` drives a started :class:`~repro.serving.scheduler.
CkksServer` with a pre-drawn request schedule — every tenant choice,
payload value, priority and inter-arrival delay is drawn up front from
one seeded generator, so the *offered load* is identical across runs
even though asyncio interleaving is not.  Outcomes are classified into
delivered results, structured :class:`~repro.errors.ServingError`
rejections (bucketed by ``code``), and unstructured failures (which a
correct server never produces).

:func:`verify_delivered` is the correctness oracle: compiled-plan
execution is deterministic, so replaying each recorded batch's *exact*
input ciphertext through the tenant plan must reproduce, bit for bit,
every slot value that was handed to a client.  Any divergence means a
corrupted execution escaped the recovery machinery — the one thing the
serving layer promises never happens.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServingError

__all__ = ["LoadReport", "LoadSpec", "draw_specs", "run_load",
           "verify_delivered"]


@dataclass
class LoadSpec:
    """One pre-drawn request: who, what, how urgent, when."""

    tenant: str
    value: float
    priority: int
    delay_s: float
    deadline_s: float


@dataclass
class LoadReport:
    """Outcome tallies and latency percentiles for one load run."""

    submitted: int = 0
    delivered: int = 0
    rejected: Counter = field(default_factory=Counter)  #: ServingError code -> n
    unstructured: int = 0       #: non-ServingError failures (must be 0)
    wall_s: float = 0.0
    requests_per_s: float = 0.0
    p50_s: float = 0.0
    p99_s: float = 0.0
    results: dict = field(default_factory=dict)  #: spec index -> value/error

    def summary(self) -> str:
        rej = ", ".join(
            f"{code}={n}" for code, n in sorted(self.rejected.items())
        ) or "none"
        return (
            f"{self.delivered}/{self.submitted} delivered in "
            f"{self.wall_s:.2f}s ({self.requests_per_s:.1f} req/s, "
            f"p50 {self.p50_s * 1e3:.1f}ms, p99 {self.p99_s * 1e3:.1f}ms); "
            f"rejections: {rej}; unstructured failures: {self.unstructured}"
        )


def draw_specs(
    *,
    tenants,
    requests: int,
    seed: int,
    spread_s: float = 0.5,
    deadline_s: float = 2.0,
    priorities: int = 3,
) -> list[LoadSpec]:
    """Pre-draw a deterministic request schedule from one seed."""
    tenants = list(tenants)
    rng = np.random.default_rng(seed)
    specs = []
    for _ in range(requests):
        specs.append(LoadSpec(
            tenant=tenants[int(rng.integers(len(tenants)))],
            value=round(float(rng.uniform(-1.0, 1.0)), 3),
            priority=int(rng.integers(priorities)),
            delay_s=float(rng.uniform(0.0, spread_s)),
            deadline_s=deadline_s,
        ))
    return specs


async def run_load(server, specs) -> LoadReport:
    """Submit every spec on schedule; classify and tally the outcomes."""
    report = LoadReport(submitted=len(specs))

    async def one(index: int, spec: LoadSpec):
        await asyncio.sleep(spec.delay_s)
        try:
            value = await server.submit(
                spec.tenant, spec.value,
                deadline_s=spec.deadline_s, priority=spec.priority,
            )
        except ServingError as exc:
            report.rejected[exc.code] += 1
            report.results[index] = exc
        except Exception as exc:
            report.unstructured += 1
            report.results[index] = exc
        else:
            report.delivered += 1
            report.results[index] = value

    start = time.monotonic()
    await asyncio.gather(*(one(i, s) for i, s in enumerate(specs)))
    report.wall_s = time.monotonic() - start
    if report.wall_s > 0:
        report.requests_per_s = report.delivered / report.wall_s
    lat = sorted(server.latencies_s)
    if lat:
        report.p50_s = lat[len(lat) // 2]
        report.p99_s = lat[min(len(lat) - 1, int(len(lat) * 0.99))]
    return report


def verify_delivered(server) -> int:
    """Replay every recorded batch; count bit-mismatched delivered slots.

    Plan execution is deterministic, so re-running a delivered batch's
    exact input ciphertext through the tenant's plan and decrypting
    must reproduce every delivered slot value *exactly* (complex
    equality, no tolerance).  Returns the number of mismatches — zero
    for a correct server, because every integrity check that could have
    caught a corrupted execution fires before delivery.
    """
    wrong = 0
    for record in server.batch_log:
        tenant = server._tenants[record.tenant]
        out = tenant.plan.run(record.ct, tag=f"verify/{record.batch_index}")
        vals = server.cc.decrypt(out, num_slots=record.slots)
        for _rid, slot, value in record.delivered:
            if complex(vals[slot]) != value:
                wrong += 1
    return wrong
