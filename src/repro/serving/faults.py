"""Deterministic seeded fault injection for the serving layer.

The recovery machinery in :mod:`repro.serving.scheduler` is only worth
trusting if it is exercised against *real* induced failures — a bit
actually flipped in a limb matrix mid-execution, a kernel that actually
raises, a batch that actually stalls past the watchdog — not mocks of
them.  :class:`FaultInjector` provides exactly that, deterministically:
every fault decision is drawn from ``np.random.default_rng((seed,
request_id))``, so a given (seed, request id) always produces the same
fault kind at the same point, independent of batch composition, retry
interleaving or wall-clock timing.  A failing soak run replays exactly.

Fault kinds (``KINDS``):

``corrupt-payload``
    Flip a low bit of the request's submitted value *after* its payload
    fingerprint was taken (at :meth:`on_submit`).  Detected at batch-cut
    time by the payload checksum; the request is rejected alone with a
    structured ``corrupted-payload`` error while its co-batched
    neighbours proceed untouched.
``corrupt-plan``
    Flip a bit inside one of the tenant plan's captured constants — the
    backend-*prepared* operand array a pointwise kernel actually reads
    (at :meth:`on_submit`).  Detected pre-dispatch by
    :meth:`~repro.scheme._circuit.CircuitPlan.fingerprint`; the scheduler
    rebuilds the plan from the tenant's build function.
``bitflip-ct``
    Flip one bit of the batch's input ciphertext limbs from *inside*
    execution (on the second ``circuit.step`` event).  Detected after
    the run by the input-ciphertext fingerprint; the scheduler discards
    the tainted result, re-encrypts and retries.
``kernel-error``
    Raise :class:`~repro.errors.InjectedFaultError` from inside the
    first forward NTT of the batch — a transient kernel failure,
    retried with backoff.
``stall``
    Sleep ``stall_s`` inside the first ``circuit.step`` event so the
    batch blows its watchdog; the scheduler times out, rebuilds the
    plan (the stalled zombie thread may still write into the old plan's
    scratch) and retries.
``noise``
    Exhaust the result's noise budget (a large post-run
    ``noise_bits`` penalty); the scheduler's budget guard refuses to
    deliver the result and retries.

Faults fire only while ``attempt < transient_attempts``, so by
construction every injected fault is *transient* and a correctly
implemented retry path must eventually succeed — any surviving wrong
answer or unstructured error is a real serving bug.  Persistent faults
for breaker tests come from ``outages`` (tenant → batch-counter window
during which every execution raises) and ``forced`` (request id → fault
kind, overriding the seeded draw; ``transient_attempts`` still applies).

The injector installs itself as the process-wide :mod:`repro.hooks`
handler only inside an :meth:`arm` window around a single batch
execution, and uninstalls on exit — the no-fault path never sees a
handler.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager

import numpy as np

from repro.errors import InjectedFaultError
from repro.hooks import install, uninstall

__all__ = ["KINDS", "FaultInjector"]

#: all injectable fault kinds, in draw order
KINDS = (
    "corrupt-payload",
    "corrupt-plan",
    "bitflip-ct",
    "kernel-error",
    "stall",
    "noise",
)

#: bound on remembered planned-fault entries; far above any queue bound
#: (the scheduler only reads entries for in-flight requests), so a
#: long-running injector does not grow without limit
_PLANNED_CAP = 4096


class _Armed:
    """Mutable per-arm-window state shared with the hook closure."""

    __slots__ = ("kinds", "steps_seen", "ntts_seen", "ct", "noise_penalty_bits")

    def __init__(self, kinds: set[str], ct) -> None:
        self.kinds = kinds
        self.steps_seen = 0
        self.ntts_seen = 0
        self.ct = ct
        self.noise_penalty_bits = 0.0


class FaultInjector:
    """Seeded, per-request-deterministic fault source for one server."""

    def __init__(
        self,
        seed: int,
        *,
        rate: float = 0.0,
        kinds: tuple[str, ...] = KINDS,
        stall_s: float = 0.25,
        transient_attempts: int = 1,
        forced: dict[int, str] | None = None,
        outages: dict[str, tuple[int, int]] | None = None,
    ) -> None:
        bad = set(kinds) - set(KINDS)
        if bad:
            raise ValueError(f"unknown fault kinds {sorted(bad)}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        self.seed = int(seed)
        self.rate = float(rate)
        self.kinds = tuple(kinds)
        self.stall_s = float(stall_s)
        self.transient_attempts = int(transient_attempts)
        self.forced = dict(forced or {})
        self.outages = dict(outages or {})
        #: injected fault kinds, counted at the moment they fire
        self.injected: Counter[str] = Counter()
        #: request ids whose seeded/forced draw selected a fault
        #: (bounded to the most recent ``_PLANNED_CAP`` entries)
        self.planned: dict[int, str] = {}
        self._lock = threading.Lock()

    # -- fault selection ---------------------------------------------------
    def draw(self, request_id: int) -> str | None:
        """The fault kind destined for ``request_id``, or ``None``.

        Deterministic in (seed, request id): forced overrides first,
        then one uniform draw against ``rate`` and a uniform choice of
        kind.  Recorded in :attr:`planned` for post-hoc accounting.
        """
        kind = self.forced.get(request_id)
        if kind is None and self.rate > 0.0 and self.kinds:
            rng = np.random.default_rng((self.seed, request_id))
            if rng.random() < self.rate:
                kind = self.kinds[int(rng.integers(len(self.kinds)))]
        if kind is not None:
            self.planned[request_id] = kind
            while len(self.planned) > _PLANNED_CAP:
                # dicts iterate in insertion order: evict the oldest
                # (lowest, long-since-resolved) request ids first
                self.planned.pop(next(iter(self.planned)))
        return kind

    def on_submit(self, request) -> None:
        """Submission-time corruption (after the payload fingerprint).

        ``corrupt-payload`` flips a low bit of the request's value here,
        modelling data corrupted in the queue; every other kind only
        marks the request and fires later, during execution.
        """
        kind = self.draw(request.id)
        if kind == "corrupt-payload":
            if np.ndim(request.value) == 0:
                request.value = float(
                    np.float64(request.value).view(np.uint64)
                    ^ np.uint64(1 << 3)
                )
            else:  # vector tenant: flip a mantissa bit of element 0 in place
                bits = request.value.view(np.uint64)
                bits[0] ^= np.uint64(1 << 3)
            self.injected[kind] += 1

    def corrupt_plan(self, plan) -> bool:
        """Flip one bit in a captured prepared operand of ``plan``.

        Returns ``True`` if a constant was found and corrupted (plans
        with no plaintext constants have nothing to corrupt).
        """
        for step in plan._steps:
            if step.kind == "multiply_plain":
                polys = (step.payload[1],)
            elif step.kind == "mac":
                polys = tuple(step.payload[1])
            else:
                continue
            for poly in polys:
                prepared = poly.state.prepared
                if prepared:
                    flat = prepared[0].reshape(-1).view(np.uint64)
                    flat[0] ^= np.uint64(1 << 7)
                    self.injected["corrupt-plan"] += 1
                    return True
        return False

    # -- the arm window ----------------------------------------------------
    @contextmanager
    def arm(self, *, tenant: str, requests, attempt: int, batch_index: int, ct):
        """Install execution-time faults around one ``plan.run``.

        ``requests`` are the batch's packed requests; the union of their
        planned fault kinds (each gated on ``attempt <
        transient_attempts``) plus any active tenant outage decides what
        the hook does.  Yields the armed-state object; after the block,
        ``noise_penalty_bits`` holds any drawn noise-exhaustion penalty
        to apply to the result.
        """
        kinds: set[str] = set()
        lo, hi = self.outages.get(tenant, (0, -1))
        if lo <= batch_index <= hi:
            kinds.add("kernel-error")
            self.injected["outage"] += 1
        if attempt < self.transient_attempts:
            for req in requests:
                kind = self.planned.get(req.id)
                if kind in ("bitflip-ct", "kernel-error", "stall", "noise"):
                    kinds.add(kind)
        armed = _Armed(kinds, ct)
        if "noise" in kinds:
            armed.noise_penalty_bits = 500.0
            self.injected["noise"] += 1
        if kinds & {"bitflip-ct", "kernel-error", "stall"}:
            install(self._handler(armed))
        try:
            yield armed
        finally:
            uninstall()

    def _handler(self, armed: _Armed):
        def handle(site: str, payload: object) -> None:
            if site == "batch_ntt.forward" and "kernel-error" in armed.kinds:
                with self._lock:
                    armed.ntts_seen += 1
                    fire = armed.ntts_seen == 1
                if fire:
                    self.injected["kernel-error"] += 1
                    raise InjectedFaultError(
                        "injected transient kernel fault in batch_ntt.forward"
                    )
            if site == "circuit.step":
                with self._lock:
                    armed.steps_seen += 1
                    n = armed.steps_seen
                if n == 1 and "stall" in armed.kinds:
                    self.injected["stall"] += 1
                    time.sleep(self.stall_s)
                if n == 2 and "bitflip-ct" in armed.kinds and armed.ct is not None:
                    self.injected["bitflip-ct"] += 1
                    armed.kinds.discard("bitflip-ct")
                    limbs = armed.ct.c0.limbs
                    limbs[0, 0] ^= np.uint64(1 << 11)
                    armed.ct.c0.state.invalidate()

        return handle
