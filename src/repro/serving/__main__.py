"""``python -m repro.serving`` runs the fault-injection soak."""

from repro.serving.soak import main

raise SystemExit(main())
