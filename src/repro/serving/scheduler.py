"""Fault-tolerant multi-tenant CKKS serving: queue, batcher, recovery.

:class:`CkksServer` turns a :class:`~repro.context.CkksContext` plus a
set of registered tenant circuits into an asyncio service: clients
``await server.submit(tenant, value)`` single-slot queries, and the
scheduler packs pending same-tenant queries into one shared sparse-packed
ciphertext (the PR 5 packings: ``s`` slots replicate ``(N/2)/s`` times,
so ``s`` is the next power of two above the batch size and always
divides ``N/2``), dispatches the tenant's precompiled
:class:`~repro.scheme._circuit.CircuitPlan` on an executor thread, and
fans the decrypted slots back out to each caller's future.

**Admission control** happens at :meth:`CkksServer.register_tenant`:
the tenant's circuit is traced, compiled, and pre-flighted through
:meth:`~repro.scheme._circuit.CircuitPlan.analyze`; a plan whose static
report carries errors (noise budget exhausted, scale mismatch,
key-level mismatch, ...) is rejected with a structured
:class:`~repro.errors.AdmissionError` *before* any request can reach
it.  Overload is handled by a bounded queue: at capacity, expired then
lower-priority queued requests are load-shed
(:class:`~repro.errors.QueueFullError`, code ``load-shed``) to make
room, else the new submission is rejected (code ``queue-full``).

**Recovery** is layered per batch execution:

* a *watchdog* (:func:`asyncio.wait_for`) bounds each ``plan.run``; on
  timeout the orphaned worker thread is drained, the plan is rebuilt
  (the zombie may still be writing into the old plan's scratch
  accumulators — retrying into fresh scratch makes the race harmless),
  and the batch retried;
* *integrity checks* — the plan's constant fingerprint before dispatch
  (mismatch → rebuild), the input ciphertext's fingerprint after the
  run (mismatch → re-encrypt + retry), and a noise-budget guard on the
  result (exhausted → retry) — catch silent corruption that raises no
  exception at all;
* *transient* kernel failures (:class:`~repro.errors.InjectedFaultError`,
  :class:`~repro.errors.SanitizerError` under ``REPRO_CHECKED=1``)
  retry with exponential backoff and seeded jitter, up to
  ``max_attempts``; anything else fails the batch fast with the
  :class:`~repro.errors.PlanExecutionError` context intact;
* a per-tenant :class:`~repro.serving.breaker.CircuitBreaker` opens
  after consecutive terminal batch failures so a persistently broken
  tenant fast-fails at submission instead of burning executor time.

Requests carry deadlines throughout: the batch cutoff never waits past
the earliest deadline (minus a margin), and expired requests are
rejected with :class:`~repro.errors.DeadlineExceededError` at cut,
between retries, and at delivery.  A caller cancelling its future never
strands a half-packed batch — cancelled slots are skipped at cut and at
delivery and the rest of the batch proceeds.

Every delivered batch is recorded (input ciphertext, packing, delivered
slot values) in :attr:`CkksServer.batch_log`, so
:func:`repro.serving.loadgen.verify_delivered` can replay the exact
computation and bit-compare what each client received.  The log — like
the latency samples — is a bounded ring buffer
(``max_recorded_batches`` / ``max_latency_samples``) so a long-running
server does not leak memory; size the bounds above the run length (or
set ``record_batches=False``) when full-replay verification matters.

Anything that escapes the layered recovery above (a bug in encrypt,
decrypt, fingerprinting, or the injector itself) is caught by a
last-ditch guard in the scheduler loop: the batch is rejected with a
structured ``internal-error`` :class:`~repro.errors.ServingError` and
the loop keeps serving — an unexpected exception never strands pending
futures.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter, deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.errors import (
    AdmissionError,
    CheddarError,
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFaultError,
    PlanExecutionError,
    QueueFullError,
    SanitizerError,
    ServingError,
)
from repro.serving.breaker import CircuitBreaker

__all__ = ["BatchRecord", "CkksServer", "Request", "ServingConfig"]

#: kernel exceptions worth retrying (vs failing the batch fast)
_TRANSIENT = (InjectedFaultError, SanitizerError)

#: on 3.10 asyncio.wait_for raises asyncio.TimeoutError, which is NOT
#: the builtin TimeoutError (they were unified in 3.11); catch both
_TIMEOUTS = (TimeoutError, asyncio.TimeoutError)


@dataclass
class ServingConfig:
    """Tuning knobs for :class:`CkksServer` (all times in seconds)."""

    max_queue: int = 256            #: bound on queued-but-unserved requests
    batch_window_s: float = 0.002   #: max wait for co-batchable arrivals
    max_batch_slots: int | None = None  #: packing cap (default: all N/2 slots)
    default_deadline_s: float = 2.0     #: per-request deadline if none given
    deadline_margin_s: float = 0.005    #: cut this far before the deadline
    watchdog_s: float = 5.0         #: per-attempt bound on plan execution
    max_attempts: int = 4           #: total tries per batch (1 + retries)
    backoff_base_s: float = 0.002   #: first retry delay (doubles per attempt)
    backoff_cap_s: float = 0.05     #: backoff ceiling
    breaker_threshold: int = 3      #: consecutive batch failures to open
    breaker_cooldown_s: float = 0.25    #: open duration before a trial batch
    min_budget_bits: float = 0.0    #: deliver only above this noise budget
    seed: int = 0                   #: jitter seed (deterministic backoff)
    record_batches: bool = True     #: keep batch_log for replay verification
    max_recorded_batches: int = 4096    #: batch_log ring-buffer bound
    max_latency_samples: int = 8192     #: latencies_s ring-buffer bound
    #: execution tier the server expects of its context — ``None`` accepts
    #: whatever the :class:`~repro.context.CkksContext` resolved (its own
    #: ``backend`` arg > ``REPRO_BACKEND`` > numpy); naming a tier here
    #: makes a context/config mismatch a construction-time error instead
    #: of a silently slower (or faster, unvalidated) serving deployment
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.backend is not None:
            # normalize + reject unknown tiers up front (ParameterError)
            from repro.poly.backends import resolve_backend

            self.backend = resolve_backend(self.backend)
        s = self.max_batch_slots
        if s is not None and (s < 1 or s & (s - 1)):
            # sparse packings must divide N/2 (a power of two), so any
            # non-power-of-two cap would make every batch fail
            # validate_slots at encrypt time
            raise ValueError(
                f"max_batch_slots must be a power of two >= 1, got {s}"
            )


class Request:
    """One queued query (a slot scalar, or a vector-tenant payload)."""

    __slots__ = ("id", "tenant", "value", "priority", "deadline",
                 "submitted_at", "future", "payload_fp")

    def __init__(self, rid, tenant, value, priority, deadline, future):
        self.id = rid
        self.tenant = tenant
        if np.ndim(value) == 0:
            self.value = float(value)
        else:
            self.value = np.asarray(value, dtype=np.float64)
        self.priority = int(priority)
        self.deadline = float(deadline)
        self.submitted_at = time.monotonic()
        self.future = future
        self.payload_fp = _payload_fp(self.value)


def _payload_fp(value) -> int:
    """Bit-exact checksum of a request payload (detects queue corruption).

    Scalars keep the original single-float64 bit view; vector payloads
    fold every element's bit pattern through an FNV-style hash so any
    single-bit flip anywhere in the vector changes the checksum.
    """
    if np.ndim(value) == 0:
        return int(np.float64(value).view(np.uint64))
    bits = np.asarray(value, dtype=np.float64).ravel().view(np.uint64)
    fp = np.uint64(bits.size)
    prime = np.uint64(0x100000001B3)
    with np.errstate(over="ignore"):
        for b in bits:
            fp = (fp * prime) ^ b
    return int(fp)


@dataclass
class BatchRecord:
    """One delivered batch, replayable for bit-exact verification."""

    tenant: str
    batch_index: int
    attempt: int
    ct: object                      #: the exact input Ciphertext dispatched
    slots: int                      #: sparse packing width used
    delivered: list = field(default_factory=list)  #: (request id, slot, value)


class _Tenant:
    """Registered tenant: build recipe, live plan, breaker, queue."""

    __slots__ = ("name", "build", "scale", "plan", "plan_fp",
                 "breaker", "queue", "report", "input_dim")

    def __init__(self, name, build, scale, plan, plan_fp, breaker, report,
                 input_dim=1):
        self.name = name
        self.build = build
        self.scale = float(scale)
        self.plan = plan
        self.plan_fp = plan_fp
        self.breaker = breaker
        self.queue: deque[Request] = deque()
        self.report = report
        #: slots one request occupies; >1 means one request per batch
        self.input_dim = int(input_dim)


class CkksServer:
    """Asyncio batch scheduler over one CKKS context; see module docs."""

    def __init__(self, cc, *, config: ServingConfig | None = None,
                 injector=None) -> None:
        self.cc = cc
        self.config = config or ServingConfig()
        self.injector = injector
        #: execution tier every kernel under this server dispatches through
        self.backend = getattr(cc, "backend", "numpy")
        if (
            self.config.backend is not None
            and self.config.backend != self.backend
        ):
            raise ValueError(
                f"config requires the {self.config.backend!r} backend but "
                f"the context resolved {self.backend!r}; build the "
                "CkksContext with backend=... to match"
            )
        self._tenants: dict[str, _Tenant] = {}
        self._next_id = 0
        self._task: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._stopping = False
        self._rng = np.random.default_rng(self.config.seed)
        self.metrics: Counter[str] = Counter()
        self.faults_detected: Counter[str] = Counter()
        # ring buffers: a long-running server must not grow without bound
        self.latencies_s: deque[float] = deque(
            maxlen=self.config.max_latency_samples
        )
        self.batch_log: deque[BatchRecord] = deque(
            maxlen=self.config.max_recorded_batches
        )

    # -- admission control -------------------------------------------------
    def register_tenant(self, name: str, build, *,
                        scale_bits: int | None = None, input_dim: int = 1,
                        scale: float | None = None) -> None:
        """Admit a tenant circuit, or raise :class:`AdmissionError`.

        ``build(tracer, x)`` receives a fresh tracer and its declared
        input and must return the traced output ciphertext; the same
        recipe is re-run to rebuild the plan after corruption or a
        watchdog fire, so it must be deterministic and self-contained
        (encode constants inside ``build``, at ``num_slots=1`` so they
        replicate uniformly under any batch packing).

        The input scale is ``2**scale_bits`` (default: the context's own
        ``scale_bits``); the pre-redesign raw-scale ``scale=`` kwarg is
        accepted with a deprecation warning.  ``input_dim > 1`` admits a
        vector tenant — each request submits an ``input_dim``-vector
        packed into one ciphertext (so batches are one request wide) and
        is delivered the first ``input_dim`` decrypted slots; a compiled
        model registers as
        ``register_tenant(name, model.build, scale_bits=model.scale_bits,
        input_dim=model.dim)``.
        """
        if scale is not None:
            from repro._compat import warn_once

            warn_once(
                "CkksServer.register_tenant(scale=...)", "scale_bits=..."
            )
            if scale_bits is not None:
                raise AdmissionError(
                    f"tenant {name!r} passed both 'scale_bits' and its "
                    "deprecated alias 'scale'",
                    code="conflicting-kwargs", tenant=name,
                )
            use_scale = float(scale)
        else:
            if scale_bits is None:
                scale_bits = getattr(self.cc, "scale_bits", 30)
            use_scale = 2.0 ** int(scale_bits)
        if name in self._tenants:
            raise AdmissionError(
                f"tenant {name!r} is already registered",
                code="duplicate-tenant", tenant=name,
            )
        input_dim = int(input_dim)
        if input_dim < 1 or input_dim & (input_dim - 1):
            # the vector is the packing, so it must be a legal sparse width
            raise AdmissionError(
                f"tenant {name!r} input_dim must be a power of two >= 1, "
                f"got {input_dim}",
                code="bad-input-dim", tenant=name,
            )
        if input_dim > self._slots_cap():
            raise AdmissionError(
                f"tenant {name!r} input_dim={input_dim} exceeds the "
                f"{self._slots_cap()}-slot packing cap",
                code="bad-input-dim", tenant=name,
            )
        plan, report = self._compile(name, build, use_scale)
        if report.errors:
            summary = "; ".join(str(d) for d in report.errors[:3])
            raise AdmissionError(
                f"tenant {name!r} rejected by static analysis "
                f"({len(report.errors)} error(s)): {summary}",
                code="analysis-rejected", tenant=name,
            )
        breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown_s
        )
        self._tenants[name] = _Tenant(
            name, build, use_scale, plan, plan.fingerprint(), breaker,
            report, input_dim,
        )

    def _compile(self, name: str, build, scale: float):
        tracer = self.cc._tracer()
        try:
            out = build(tracer, tracer.input("x", scale=scale))
            plan = tracer.compile(out)
        except CheddarError as exc:
            raise AdmissionError(
                f"tenant {name!r} circuit failed to trace/compile: {exc}",
                code="trace-rejected", tenant=name,
            ) from exc
        return plan, plan.analyze()

    def tenant_report(self, name: str):
        """The admission-time :class:`PlanReport` for a registered tenant."""
        return self._require(name).report

    def _require(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise AdmissionError(
                f"unknown tenant {name!r}", code="unknown-tenant", tenant=name
            )
        return tenant

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Start the scheduler loop (idempotent)."""
        if self._task is not None:
            return
        self._wake = asyncio.Event()
        self._stopping = False
        self._task = asyncio.create_task(self._run_loop(), name="ckks-serving")

    async def stop(self) -> None:
        """Drain queued requests, then stop the scheduler loop."""
        if self._task is None:
            return
        self._stopping = True
        self._wake.set()
        await self._task
        self._task = None

    # -- submission --------------------------------------------------------
    async def submit(self, tenant: str, value, *,
                     deadline_s: float | None = None, priority: int = 0):
        """Enqueue one query; await its decrypted result.

        Scalar tenants submit one slot value and are delivered one
        complex slot; vector tenants (``input_dim > 1``) submit an
        ``input_dim``-vector and are delivered the ``input_dim``
        decrypted slots as an array.

        Raises the structured :class:`~repro.errors.ServingError`
        subclass naming the failure cause: breaker open, queue full,
        deadline exceeded, retries exhausted, corrupted payload, ...
        """
        t = self._require(tenant)
        if t.input_dim > 1 and np.shape(value) != (t.input_dim,):
            raise ServingError(
                f"tenant {tenant!r} takes a length-{t.input_dim} vector "
                f"payload, got {np.shape(value)}",
                code="bad-payload", tenant=tenant,
            )
        if not t.breaker.allow():
            raise CircuitOpenError(
                f"tenant {tenant!r} breaker is open after "
                f"{t.breaker.failures} consecutive batch failures; retry in "
                f"{t.breaker.retry_after_s:.3f}s",
                tenant=tenant,
            )
        self._make_room(priority)
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        loop = asyncio.get_running_loop()
        req = Request(
            self._next_id, tenant, value, priority,
            time.monotonic() + deadline_s, loop.create_future(),
        )
        self._next_id += 1
        if self.injector is not None:
            self.injector.on_submit(req)
        t.queue.append(req)
        self.metrics["submitted"] += 1
        if self._wake is not None:
            self._wake.set()
        return await req.future

    def _queued(self) -> int:
        return sum(
            1 for t in self._tenants.values()
            for r in t.queue if not r.future.done()
        )

    def _make_room(self, priority: int) -> None:
        """Bounded-queue backpressure: shed or reject at capacity."""
        if self._queued() < self.config.max_queue:
            return
        now = time.monotonic()
        live = [
            r for t in self._tenants.values() for r in t.queue
            if not r.future.done()
        ]
        expired = [r for r in live if now > r.deadline]
        if expired:
            victim = expired[0]
            self._reject(victim, DeadlineExceededError(
                f"request {victim.id} shed at capacity after its deadline",
                tenant=victim.tenant, request_id=victim.id,
            ))
            self.metrics["shed"] += 1
            return
        victim = min(live, key=lambda r: (r.priority, -r.id))
        if victim.priority < priority:
            self._reject(victim, QueueFullError(
                f"request {victim.id} (priority {victim.priority}) load-shed "
                f"for a priority-{priority} submission at capacity",
                code="load-shed", tenant=victim.tenant, request_id=victim.id,
            ))
            self.metrics["shed"] += 1
            return
        raise QueueFullError(
            f"queue at capacity ({self.config.max_queue}) and no "
            f"lower-priority request to shed",
        )

    @staticmethod
    def _reject(req: Request, exc: ServingError) -> None:
        if not req.future.done():
            req.future.set_exception(exc)

    # -- scheduler loop ----------------------------------------------------
    def _pick(self) -> _Tenant | None:
        """The tenant whose queue head has the earliest deadline."""
        best = None
        for t in self._tenants.values():
            while t.queue and t.queue[0].future.done():
                t.queue.popleft()
            if not t.queue:
                continue
            if best is None or t.queue[0].deadline < best.queue[0].deadline:
                best = t
        return best

    def _slots_cap(self) -> int:
        cap = self.cc.num_slots
        if self.config.max_batch_slots is not None:
            cap = min(cap, self.config.max_batch_slots)
        return cap

    async def _run_loop(self) -> None:
        cfg = self.config
        while True:
            tenant = self._pick()
            if tenant is None:
                if self._stopping:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            head = tenant.queue[0]
            cut_at = min(
                head.submitted_at + cfg.batch_window_s,
                head.deadline - cfg.deadline_margin_s,
            )
            wait_s = cut_at - time.monotonic()
            live = sum(1 for r in tenant.queue if not r.future.done())
            if wait_s > 0 and live < self._slots_cap():
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), wait_s)
                except _TIMEOUTS:
                    pass
                continue  # re-pick: arrivals may change the best tenant
            batch = self._cut_batch(tenant)
            if batch:
                try:
                    await self._execute_batch(tenant, batch)
                except Exception as exc:
                    self._fail_unexpected(tenant, batch, exc)

    def _cut_batch(self, tenant: _Tenant) -> list[Request]:
        """Pop up to a packing's worth of live requests off one queue.

        Cancelled futures are skipped (a cancelled slot never strands
        the rest of the batch); expired requests are rejected here with
        :class:`DeadlineExceededError`; a payload whose checksum no
        longer matches its submission-time fingerprint is rejected
        *alone* with code ``corrupted-payload`` — its co-batched
        neighbours proceed.
        """
        now = time.monotonic()
        batch: list[Request] = []
        # a vector tenant's request owns the whole packing: batches of 1
        cap = 1 if tenant.input_dim > 1 else self._slots_cap()
        while tenant.queue and len(batch) < cap:
            req = tenant.queue.popleft()
            if req.future.done():
                self.metrics["cancelled"] += 1
                continue
            if now > req.deadline:
                self._reject(req, DeadlineExceededError(
                    f"request {req.id} expired before batching",
                    tenant=tenant.name, request_id=req.id,
                ))
                self.metrics["expired"] += 1
                continue
            if _payload_fp(req.value) != req.payload_fp:
                self.faults_detected["corrupted-payload"] += 1
                self._reject(req, ServingError(
                    f"request {req.id} payload failed its integrity check "
                    "between submission and batching",
                    code="corrupted-payload",
                    tenant=tenant.name, request_id=req.id,
                ))
                continue
            batch.append(req)
        return batch

    def _rebuild_plan(self, tenant: _Tenant) -> None:
        """Recompile the tenant circuit from its build recipe.

        Used after plan-constant corruption and after a watchdog fire
        (the abandoned worker thread may still be writing into the old
        plan's scratch accumulators; retrying into a fresh plan makes
        that race harmless).
        """
        plan, _ = self._compile(tenant.name, tenant.build, tenant.scale)
        tenant.plan = plan
        tenant.plan_fp = plan.fingerprint()
        self.metrics["plan_rebuilds"] += 1

    def _backoff_s(self, attempt: int) -> float:
        base = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * (2.0 ** attempt),
        )
        return base * (0.5 + float(self._rng.random()))

    async def _execute_batch(self, tenant: _Tenant, batch: list[Request]):
        cfg = self.config
        loop = asyncio.get_running_loop()
        batch_index = self.metrics["batches"]
        self.metrics["batches"] += 1
        last_fault = "unknown"
        for attempt in range(cfg.max_attempts):
            now = time.monotonic()
            live = []
            for req in batch:
                if req.future.done():
                    self.metrics["cancelled"] += 1
                elif now > req.deadline:
                    self._reject(req, DeadlineExceededError(
                        f"request {req.id} expired during retries "
                        f"(attempt {attempt}, last fault: {last_fault})",
                        tenant=tenant.name, request_id=req.id,
                    ))
                    self.metrics["expired"] += 1
                else:
                    live.append(req)
            batch = live
            if not batch:
                return
            if tenant.plan.fingerprint() != tenant.plan_fp:
                self.faults_detected["plan-corruption"] += 1
                self._rebuild_plan(tenant)
            k = len(batch)
            if tenant.input_dim > 1:
                s = tenant.input_dim
                values = batch[0].value
            else:
                s = min(max(1, 1 << (k - 1).bit_length()), self._slots_cap())
                values = [r.value for r in batch] + [0.0] * (s - k)
            ct = self.cc.encrypt(values, scale=tenant.scale, num_slots=s)
            in_fp = ct.fingerprint()
            tag = f"{tenant.name}/b{batch_index}a{attempt}"
            arm = nullcontext(None) if self.injector is None else (
                self.injector.arm(
                    tenant=tenant.name, requests=batch, attempt=attempt,
                    batch_index=batch_index, ct=ct,
                )
            )
            fault = None
            with arm as armed:
                fut = loop.run_in_executor(
                    None, partial(tenant.plan.run, ct, tag=tag)
                )
                try:
                    out = await asyncio.wait_for(
                        asyncio.shield(fut), cfg.watchdog_s
                    )
                except _TIMEOUTS:
                    self.metrics["watchdog_fires"] += 1
                    self.faults_detected["watchdog-timeout"] += 1
                    fault = "watchdog-timeout"
                    await self._drain_zombie(fut)
                    self._rebuild_plan(tenant)
                except PlanExecutionError as exc:
                    if isinstance(exc.__cause__, _TRANSIENT):
                        self.faults_detected["kernel-fault"] += 1
                        fault = f"kernel-fault at {exc.label}"
                    else:
                        return self._fail_batch(tenant, batch, exc)
                except _TRANSIENT:
                    self.faults_detected["kernel-fault"] += 1
                    fault = "kernel-fault"
                except CheddarError as exc:
                    return self._fail_batch(tenant, batch, exc)
            if fault is None:
                if armed is not None and armed.noise_penalty_bits:
                    out.noise_bits += armed.noise_penalty_bits
                if ct.fingerprint() != in_fp:
                    self.faults_detected["input-corruption"] += 1
                    fault = "input-corruption"
                elif out.noise_budget_bits <= cfg.min_budget_bits:
                    self.faults_detected["budget-exhausted"] += 1
                    fault = "budget-exhausted"
                else:
                    self._deliver(tenant, batch, out, ct, s,
                                  batch_index, attempt)
                    return
            last_fault = fault
            self.metrics["retries"] += 1
            await asyncio.sleep(self._backoff_s(attempt))
        tenant.breaker.record_failure()
        for req in batch:
            self._reject(req, ServingError(
                f"request {req.id} failed after {cfg.max_attempts} attempts; "
                f"last fault: {last_fault}",
                code="retries-exhausted",
                tenant=tenant.name, request_id=req.id,
            ))
            self.metrics["failed"] += 1

    async def _drain_zombie(self, fut) -> None:
        """Wait (bounded) for a timed-out worker thread to finish.

        The thread cannot be killed; draining it before the retry keeps
        it from racing the retry's kernels on shared backend scratch.
        If it outlives the drain budget the plan rebuild still isolates
        the retry from the zombie's plan-scratch writes.
        """
        stall = getattr(self.injector, "stall_s", 0.0) or 0.0
        budget = self.config.watchdog_s + stall
        try:
            await asyncio.wait_for(asyncio.shield(fut), budget)
        except _TIMEOUTS:
            pass
        except Exception:
            pass

    def _fail_unexpected(self, tenant: _Tenant, batch, exc: Exception) -> None:
        """Last-ditch guard: an exception escaping the per-batch recovery
        machinery (encrypt, decrypt, fingerprinting, the injector) must
        reject its batch with a structured error and leave the scheduler
        loop alive — a dead loop silently strands every pending future.
        """
        tenant.breaker.record_failure()
        self.metrics["internal_errors"] += 1
        detail = f"{type(exc).__name__}: {exc}"
        for req in batch:
            self._reject(req, ServingError(
                f"request {req.id} failed on an internal serving error: "
                f"{detail}",
                code="internal-error", tenant=tenant.name, request_id=req.id,
            ))
            self.metrics["failed"] += 1

    def _fail_batch(self, tenant: _Tenant, batch, exc: CheddarError) -> None:
        """Terminal (non-transient) failure: structured fail, count it."""
        tenant.breaker.record_failure()
        detail = f"{type(exc).__name__}: {exc}"
        for req in batch:
            self._reject(req, ServingError(
                f"request {req.id} failed permanently: {detail}",
                code="plan-failed", tenant=tenant.name, request_id=req.id,
            ))
            self.metrics["failed"] += 1

    def _deliver(self, tenant, batch, out, ct, slots, batch_index, attempt):
        vals = self.cc.decrypt(out, num_slots=slots)
        tenant.breaker.record_success()
        record = BatchRecord(tenant.name, batch_index, attempt, ct, slots)
        now = time.monotonic()
        for slot, req in enumerate(batch):
            if req.future.done():
                self.metrics["cancelled"] += 1
                continue
            if now > req.deadline:
                self._reject(req, DeadlineExceededError(
                    f"request {req.id} expired before delivery",
                    tenant=tenant.name, request_id=req.id,
                ))
                self.metrics["expired"] += 1
                continue
            if tenant.input_dim > 1:
                value = np.asarray(vals[: tenant.input_dim])
            else:
                value = complex(vals[slot])
            req.future.set_result(value)
            record.delivered.append((req.id, slot, value))
            self.metrics["served"] += 1
            self.latencies_s.append(now - req.submitted_at)
        if self.config.record_batches and record.delivered:
            self.batch_log.append(record)
