"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`CheddarError` so callers can
catch library failures without masking programming errors.
"""

from __future__ import annotations


class CheddarError(Exception):
    """Base class for every error raised by this library."""


class ParameterError(CheddarError):
    """A parameter set is inconsistent or unsupported.

    Examples: a ring degree that is not a power of two, a scale for which no
    rescaling cycle exists, or a modulus chain that exceeds the security
    budget recorded in the parameter set.
    """


class PrimeSearchError(CheddarError):
    """Prime generation could not find enough NTT-friendly primes."""


class LevelError(CheddarError):
    """An operation was requested at an invalid or exhausted level."""


class ScaleMismatchError(CheddarError):
    """Two operands carry scales too far apart to combine soundly."""


class KeyError_(CheddarError):
    """A required evaluation key is missing or incompatible."""


class LayoutError(CheddarError):
    """A polynomial's limb layout does not match the requested basis."""


class AccumulatorOverflowError(CheddarError):
    """A lazy-reduction accumulator was asked to exceed its range bound.

    Raised *before* the offending accumulation so no wrapped value can
    silently corrupt a result (§4.2's deferred-fold range discipline).
    """


class TraceError(CheddarError):
    """A trace-mode operation was asked to produce real numeric data."""


class StaticAnalysisError(CheddarError):
    """A static-analysis pass could not prove a required invariant.

    Raised by :meth:`repro.analysis.KernelCertificate.raise_if_failed` and
    :meth:`repro.analysis.PlanReport.raise_if_failed` when the interval
    analysis finds a carrier overflow, a broken 2q-lazy invariant, or a
    plan whose noise budget is statically exhausted.
    """


class SanitizerError(CheddarError):
    """Checked-mode execution observed a value outside its proved bound.

    Raised by the ``REPRO_CHECKED=1`` instrumentation when a real kernel
    produces a value that violates the statically derived per-stage range
    certificate — the runtime half of the analyzer/implementation
    cross-check.
    """
