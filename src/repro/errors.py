"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`CheddarError` so callers can
catch library failures without masking programming errors.
"""

from __future__ import annotations


class CheddarError(Exception):
    """Base class for every error raised by this library."""


class ParameterError(CheddarError):
    """A parameter set is inconsistent or unsupported.

    Examples: a ring degree that is not a power of two, a scale for which no
    rescaling cycle exists, or a modulus chain that exceeds the security
    budget recorded in the parameter set.
    """


class ModelPlanError(ParameterError):
    """An encrypted-model layer cannot be deployed on these parameters.

    Raised *statically* by the :class:`repro.ml.LevelPlanner` — before
    any ciphertext exists — when a layer's depth or scale requirement
    does not fit the modulus chain.  Mirrors the
    ``PolyContext.mismatch_reason`` convention: the message names the
    offending ``layer`` and the failing budget (levels or bits, needed
    vs available), and the layer name also rides along as an attribute
    for programmatic handling.
    """

    def __init__(self, message: str, *, layer: str | None = None) -> None:
        super().__init__(message)
        self.layer = layer


class PrimeSearchError(CheddarError):
    """Prime generation could not find enough NTT-friendly primes."""


class LevelError(CheddarError):
    """An operation was requested at an invalid or exhausted level."""


class ScaleMismatchError(CheddarError):
    """Two operands carry scales too far apart to combine soundly."""


class KeyError_(CheddarError):
    """A required evaluation key is missing or incompatible."""


class LayoutError(CheddarError):
    """A polynomial's limb layout does not match the requested basis."""


class AccumulatorOverflowError(CheddarError):
    """A lazy-reduction accumulator was asked to exceed its range bound.

    Raised *before* the offending accumulation so no wrapped value can
    silently corrupt a result (§4.2's deferred-fold range discipline).
    """


class TraceError(CheddarError):
    """A trace-mode operation was asked to produce real numeric data."""


class StaticAnalysisError(CheddarError):
    """A static-analysis pass could not prove a required invariant.

    Raised by :meth:`repro.analysis.KernelCertificate.raise_if_failed` and
    :meth:`repro.analysis.PlanReport.raise_if_failed` when the interval
    analysis finds a carrier overflow, a broken 2q-lazy invariant, or a
    plan whose noise budget is statically exhausted.
    """


class BackendError(CheddarError):
    """A backend dispatch-layer failure (see :mod:`repro.poly.backends`).

    Raised when a non-numpy execution tier cannot honor a request in a
    way that falls outside normal graceful degradation — the base of the
    tier-specific errors below.  Mere *unavailability* (no C toolchain,
    pool already closed) is not an error: those paths degrade to the
    numpy reference tier with a :class:`~repro.poly.backends.
    BackendFallbackWarning` instead.
    """


class ShardCrashError(BackendError):
    """The process-sharded tier's worker pool died mid-operation.

    Raised by the dispatching call that observed the crash (a worker
    process exited or its pipe broke while a transform or conversion was
    in flight).  The pool is marked broken and its shared-memory
    segments are released; every engine bound to the sharded tier then
    *recovers on the numpy tier* — subsequent calls fall back silently
    rather than erroring forever.
    """


class SanitizerError(CheddarError):
    """Checked-mode execution observed a value outside its proved bound.

    Raised by the ``REPRO_CHECKED=1`` instrumentation when a real kernel
    produces a value that violates the statically derived per-stage range
    certificate — the runtime half of the analyzer/implementation
    cross-check.
    """


class InjectedFaultError(CheddarError):
    """A seeded fault-injection hook induced this kernel failure.

    Raised by the serving layer's deterministic fault harness
    (:mod:`repro.serving.faults`) from inside a real kernel via
    :mod:`repro.hooks`, so recovery paths are exercised against genuine
    mid-execution failures.  The scheduler treats it — like
    :class:`SanitizerError` — as transient and retries with backoff.
    """


class PlanExecutionError(CheddarError):
    """A compiled-plan step failed during replay; names the step.

    Wraps the underlying kernel/evaluator error so a failure deep inside
    :meth:`~repro.scheme._circuit.CircuitPlan.run` surfaces with plan
    context instead of a bare kernel message: ``step_index`` into the
    step list, the trace-node provenance ``label`` (``"n<id>:<op>"``),
    and the caller-supplied ``tag`` (the serving layer passes its
    ``tenant/request`` identity).  The original exception rides along as
    ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        step_index: int,
        label: str,
        tag: str | None = None,
    ) -> None:
        super().__init__(message)
        self.step_index = int(step_index)
        self.label = label
        self.tag = tag


class ServingError(CheddarError):
    """Base of the serving-layer hierarchy: a structured rejection.

    Every serving failure delivered to a client names its cause: a
    stable machine-matchable ``code`` (e.g. ``"corrupted-payload"``,
    ``"retries-exhausted"``, ``"watchdog-timeout"``), plus the
    ``tenant`` and ``request_id`` it applies to when known.  Subclasses
    carry a ``default_code`` so the common cases need no boilerplate.
    """

    default_code = "serving"

    def __init__(
        self,
        message: str,
        *,
        code: str | None = None,
        tenant: str | None = None,
        request_id: int | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code if code is not None else self.default_code
        self.tenant = tenant
        self.request_id = request_id


class AdmissionError(ServingError):
    """A tenant circuit was rejected at registration.

    Raised before any request is accepted: the circuit failed to trace,
    failed :meth:`~repro.scheme._circuit.CircuitPlan.analyze` (budget
    exhaustion, scale mismatch, key-level mismatch, ...), or the tenant
    name is unknown/duplicate.  The ``code`` distinguishes the cases.
    """

    default_code = "admission-rejected"


class QueueFullError(ServingError):
    """Backpressure: the bounded request queue rejected or shed a request."""

    default_code = "queue-full"


class DeadlineExceededError(ServingError):
    """A request's deadline passed before a result could be delivered."""

    default_code = "deadline-exceeded"


class CircuitOpenError(ServingError):
    """The tenant's circuit breaker is open: requests fast-fail.

    The breaker quarantines a plan after repeated batch failures; the
    message names the consecutive-failure count and the remaining
    cool-down before a trial batch is admitted again.
    """

    default_code = "circuit-open"
